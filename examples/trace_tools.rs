//! Working with traces: generate, persist, reload, characterise.
//!
//! Shows the trace-file workflow for users who want to bring their own
//! workloads: any CSV of `time_s,sector,sectors,kind` rows drives the
//! simulator exactly like the synthetic generators do.
//!
//! ```text
//! cargo run --release --example trace_tools
//! ```

use workload::trace_io::{read_csv, write_csv, write_jsonl};
use workload::{TraceStats, WorkloadSpec};

fn main() {
    // Generate a 10-minute OLTP burst.
    let spec = WorkloadSpec::oltp(600.0, 120.0);
    let trace = spec.generate(99);

    // Characterise it (table T2's machinery).
    let stats = TraceStats::compute(&trace).expect("non-empty");
    println!("generated trace:");
    println!("  requests      {}", stats.requests);
    println!("  mean rate     {:.1} req/s", stats.mean_rate);
    println!("  read fraction {:.0}%", stats.read_fraction * 100.0);
    println!("  mean size     {:.1} KiB", stats.mean_size_kib);
    println!("  footprint     {} MiB", stats.footprint_mib);
    println!("  top-10% share {:.0}%", stats.top_decile_share * 100.0);

    // Persist as CSV and JSONL.
    let dir = std::env::temp_dir().join("hibernator-trace-demo");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let csv_path = dir.join("oltp.csv");
    let jsonl_path = dir.join("oltp.jsonl");
    write_csv(&trace, std::fs::File::create(&csv_path).expect("create")).expect("write csv");
    write_jsonl(&trace, std::fs::File::create(&jsonl_path).expect("create")).expect("write jsonl");
    println!(
        "\nwrote {} and {}",
        csv_path.display(),
        jsonl_path.display()
    );

    // Reload and verify.
    let back = read_csv(std::fs::File::open(&csv_path).expect("open")).expect("parse csv");
    assert_eq!(back.len(), trace.len());
    assert_eq!(back.max_sector(), trace.max_sector());
    println!(
        "reloaded {} requests; first arrives at {:.3} s touching sector {}",
        back.len(),
        back.requests[0].time.as_secs(),
        back.requests[0].sector
    );
}
