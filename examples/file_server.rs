//! File-server scenario: a day in the life of a diurnal array.
//!
//! Runs Hibernator on a Cello-like workload (office-hours load, nightly
//! backup bump, quiet small hours) and prints how the array redistributes
//! disks across speed tiers as the day progresses — the miniature F10.
//!
//! ```text
//! cargo run --release --example file_server
//! ```

use array::{run_policy, ArrayConfig, BasePolicy, RunOptions};
use hibernator::{Hibernator, HibernatorConfig};
use simkit::SimDuration;
use workload::WorkloadSpec;

fn main() {
    let day = 24.0 * 3600.0;
    let spec = WorkloadSpec::cello_like(day, 50.0);
    let trace = spec.generate(11);
    let config = ArrayConfig::default_for_volume(24 << 30);
    let mut opts = RunOptions::for_horizon(day);
    opts.series_bucket = SimDuration::from_mins(30.0);
    opts.sample_interval = opts.series_bucket;

    println!(
        "simulating 24 h of file-server traffic ({} requests)…",
        trace.len()
    );
    let base = run_policy(config.clone(), BasePolicy, &trace, opts.clone());
    let goal = base.response.mean() * 1.3;
    let hib = run_policy(
        config,
        Hibernator::new(HibernatorConfig::for_goal(goal)),
        &trace,
        opts,
    );

    println!(
        "\nenergy: Base {:.0} kJ -> Hibernator {:.0} kJ ({:.1}% saved); \
         mean response {:.2} -> {:.2} ms (goal {:.2} ms)\n",
        base.energy_kj(),
        hib.energy_kj(),
        hib.savings_vs(&base) * 100.0,
        base.mean_response_ms(),
        hib.mean_response_ms(),
        goal * 1e3
    );

    // Tier occupancy through the day: one row per 2 hours.
    let levels = hib.level_series.len() - 2;
    println!(
        "hour   power(W)   disks per level (L0=slowest .. L{})",
        levels - 1
    );
    let power = hib.power_series.mean_points();
    for (i, (t, w)) in power.iter().enumerate().step_by(4) {
        let hour = t / 3600.0;
        let mut lv = String::new();
        for series in hib.level_series.iter().take(levels) {
            let v = series.mean_points().get(i).map(|p| p.1).unwrap_or(0.0);
            lv.push_str(&format!("{v:4.0}"));
        }
        println!("{hour:4.1}   {w:8.0}  {lv}");
    }
}
