//! Cache storm: the controller DRAM cache versus a spin-down policy.
//!
//! A skewed, write-leaning OLTP trace runs twice over the same array under
//! TPM spin-down — once raw, once behind a write-back controller cache.
//! The cache absorbs repeat reads and dirty writes at DRAM latency, so the
//! disks underneath finally idle long enough for TPM to spin them down.
//! That is the storm: every cache *miss* now lands on a sleeping disk, and
//! every periodic flush destages a batch of deferred writes that yanks
//! disks back out of standby. The run prints both sides of the trade —
//! absorbed traffic and DRAM hits against spin transitions and the
//! spin-up penalties the misses eat.
//!
//! ```text
//! cargo run --release --example cache_storm
//! ```

use array::{run_policy, ArrayConfig, RunOptions};
use policies::TpmPolicy;
use workload::WorkloadSpec;

fn main() {
    // 1. Two hours of hot, write-leaning traffic: a small extent set keeps
    //    the working set inside the cache, and 60% writes gives the
    //    write-back path real work. The rate is low enough that a shielded
    //    disk can reach the TPM idle threshold.
    let horizon_s = 2.0 * 3600.0;
    let mut spec = WorkloadSpec::oltp(horizon_s, 10.0);
    spec.extents = 2048;
    spec.zipf_theta = 1.05;
    spec.read_fraction = 0.4;
    let trace = spec.generate(11);
    let mut config = ArrayConfig::default_for_volume(4 << 30);
    config.disks = 8;

    // 2. The same aggressive TPM run, with and without the cache.
    let opts = RunOptions::for_horizon(horizon_s);
    let raw = run_policy(
        config.clone(),
        TpmPolicy::competitive(),
        &trace,
        opts.clone(),
    );

    let mut cached_opts = opts;
    let mut cache_cfg = cache::CacheConfig::with_capacity(512); // 512 MiB
    cache_cfg.flush_interval_s = 120.0;
    cached_opts.cache = Some(cache_cfg);
    let cached = run_policy(config, TpmPolicy::competitive(), &trace, cached_opts);

    // 3. What the cache bought — and what the storm of flushes and
    //    cold misses cost.
    let stats = cached.cache.expect("cache was enabled");
    println!(
        "raw:    {:.2} ms mean response, {:.0} kJ, {} spin transitions",
        raw.response.mean() * 1e3,
        raw.energy.total_joules() / 1e3,
        raw.transitions
    );
    println!(
        "cached: {:.2} ms mean response, {:.0} kJ, {} spin transitions",
        cached.response.mean() * 1e3,
        cached.energy.total_joules() / 1e3,
        cached.transitions
    );
    println!(
        "cache:  {:.1}% read hit rate ({} hits / {} misses), {} writes absorbed",
        stats.read_hit_rate() * 100.0,
        stats.read_hits,
        stats.read_misses,
        stats.write_absorbs
    );
    println!(
        "flush:  {} batches ({} forced) destaged {} chunks; {} dirty evictions",
        stats.flushes, stats.forced_flushes, stats.flushed_chunks, stats.writebacks
    );
    println!(
        "\nThe raw run never sleeps: the trace keeps every disk busy, so TPM\n\
         sees no idle window. Behind the cache ~{:.0}% of requests never\n\
         reach a disk, the array finally idles into standby — and then each\n\
         miss pays a spin-up, which is why the cached mean response is\n\
         dominated by wake-ups rather than DRAM hits.",
        (stats.read_hits + stats.write_absorbs) as f64 / cached.completed as f64 * 100.0
    );
    assert!(stats.read_hits > 0, "hot set should hit in DRAM");
    assert!(
        cached.transitions > raw.transitions,
        "the cache's shield should let TPM spin disks down"
    );
}
