//! Data-center OLTP scenario: the paper's motivating case.
//!
//! Runs the six-policy comparison (Base, TPM, DRPM, PDC, MAID, Hibernator)
//! on a steady, skewed OLTP workload and prints the energy/performance
//! trade-off each policy lands on — the miniature version of tables T3/T4.
//!
//! ```text
//! cargo run --release --example datacenter_oltp
//! ```

use array::{run_policy, ArrayConfig, BasePolicy, RunOptions, RunReport};
use hibernator::{Hibernator, HibernatorConfig};
use policies::{maid_array_config, DrpmPolicy, MaidConfig, MaidPolicy, PdcPolicy, TpmPolicy};
use simkit::SimDuration;
use workload::WorkloadSpec;

const HOURS: f64 = 4.0;

fn scenario() -> (ArrayConfig, workload::Trace, RunOptions) {
    let spec = WorkloadSpec::oltp(HOURS * 3600.0, 100.0);
    let trace = spec.generate(42);
    let config = ArrayConfig::default_for_volume(16 << 30);
    let opts = RunOptions::for_horizon(HOURS * 3600.0);
    (config, trace, opts)
}

fn show(name: &str, r: &RunReport, base: &RunReport, goal_s: f64) {
    let flag = if r.response.mean() <= goal_s {
        "meets"
    } else {
        "BLOWS"
    };
    println!(
        "{name:>12}: {:7.0} kJ ({:+5.1}%)   mean {:6.2} ms   p95 {:6.2} ms   {flag} goal",
        r.energy_kj(),
        -r.savings_vs(base) * 100.0,
        r.mean_response_ms(),
        r.response_hist.quantile(0.95).unwrap_or(0.0) * 1e3,
    );
}

fn main() {
    let (config, trace, opts) = scenario();
    println!(
        "16-disk array, {} requests over {HOURS} h; goal = 1.3 x Base mean response\n",
        trace.len()
    );

    let base = run_policy(config.clone(), BasePolicy, &trace, opts.clone());
    let goal = base.response.mean() * 1.3;
    show("Base", &base, &base, goal);

    let tpm = run_policy(
        config.clone(),
        TpmPolicy::competitive(),
        &trace,
        opts.clone(),
    );
    show("TPM", &tpm, &base, goal);

    let drpm = run_policy(config.clone(), DrpmPolicy::default(), &trace, opts.clone());
    show("DRPM", &drpm, &base, goal);

    let pdc = run_policy(config.clone(), PdcPolicy::default(), &trace, opts.clone());
    show("PDC", &pdc, &base, goal);

    let maid_cfg = maid_array_config(config.clone(), 3);
    let maid = run_policy(
        maid_cfg,
        MaidPolicy::new(MaidConfig {
            cache_disks: 3,
            cache_chunks_per_disk: 2048,
            tpm_threshold_s: None,
        }),
        &trace,
        opts.clone(),
    );
    show("MAID", &maid, &base, goal);

    let mut hib_cfg = HibernatorConfig::for_goal(goal);
    hib_cfg.epoch = SimDuration::from_mins(40.0);
    hib_cfg.heat_tau = hib_cfg.epoch;
    let hib = run_policy(config, Hibernator::new(hib_cfg), &trace, opts);
    show("Hibernator", &hib, &base, goal);

    println!(
        "\nHibernator: {} reconfig transitions, {} chunks migrated, goal {:.2} ms",
        hib.transitions,
        hib.migration.committed,
        goal * 1e3
    );
}
