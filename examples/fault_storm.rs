//! Fault storm: run Hibernator through two whole-disk failures on a
//! RAID-5-like array and watch degraded mode work — redirected reads,
//! rebuild traffic, the guard's forced boost, and the per-disk reliability
//! ledgers every run now reports.
//!
//! ```text
//! cargo run --release --example fault_storm
//! ```

use array::{ArrayConfig, Redundancy, RunOptions, Simulation};
use faults::{FaultConfig, FaultEvent, FaultKind, FaultPlan, FaultSchedule};
use hibernator::{Hibernator, HibernatorConfig};
use simkit::{SimDuration, SimTime};
use workload::WorkloadSpec;

fn main() {
    // 1. Two hours of steady OLTP traffic over an 8-disk RAID-5-like array.
    let horizon_s = 2.0 * 3600.0;
    let mut spec = WorkloadSpec::oltp(horizon_s, 60.0);
    spec.extents = 4096;
    let trace = spec.generate(7);
    let mut config = ArrayConfig::default_for_volume(4 << 30);
    config.disks = 8;
    config.redundancy = Redundancy::Raid5Like;

    // 2. The storm: disk 2 degrades (transient errors, sticky spindle) and
    //    dies at t = 40 min; disk 5 dies cold at t = 80 min.
    let schedule = FaultSchedule::new(vec![
        FaultEvent {
            time: SimTime::from_secs(30.0 * 60.0),
            disk: 2,
            kind: FaultKind::TransientBurst {
                error_prob: 0.2,
                duration_s: 600.0,
            },
        },
        FaultEvent {
            time: SimTime::from_secs(30.0 * 60.0),
            disk: 2,
            kind: FaultKind::SlowTransition {
                factor: 3.0,
                duration_s: 900.0,
            },
        },
        FaultEvent {
            time: SimTime::from_secs(40.0 * 60.0),
            disk: 2,
            kind: FaultKind::DiskFailure,
        },
        FaultEvent {
            time: SimTime::from_secs(80.0 * 60.0),
            disk: 5,
            kind: FaultKind::DiskFailure,
        },
    ]);
    let plan = FaultPlan {
        schedule,
        config: FaultConfig::default(),
    };

    // 3. Hibernator with a relaxed goal, so it actually slows disks down
    //    before the storm hits.
    let mut cfg = HibernatorConfig::for_goal(0.015);
    cfg.epoch = SimDuration::from_mins(20.0);
    cfg.heat_tau = cfg.epoch;
    let opts = RunOptions::with_faults(horizon_s, plan);
    let sim = Simulation::new(config, Hibernator::new(cfg), &trace, opts);
    let (report, policy) = sim.run_returning_policy();

    // 4. What happened.
    let f = &report.faults;
    println!(
        "completed {} / lost {} of {} requests ({} redirected to partners)",
        report.completed,
        f.lost_requests,
        trace.len(),
        f.degraded_redirects
    );
    println!(
        "failures: {} (first at {:.0} s); transient errors {} ({} retries); slow transitions {}",
        f.disk_failures,
        f.first_failure_s.unwrap_or(f64::NAN),
        f.transient_errors,
        f.retries,
        f.slow_transition_events
    );
    match (f.rebuild_chunks, f.rebuild_completed_s) {
        (n, Some(t)) => println!("rebuild: {n} chunks, finished at {t:.0} s"),
        (n, None) => println!("rebuild: {n} chunks, unfinished at the horizon"),
    }
    println!(
        "guard: {} boost(s) — a failure forces an immediate boost",
        policy.stats().boosts
    );
    println!(
        "energy {:.1} kJ, mean response {:.2} ms",
        report.energy_kj(),
        report.mean_response_ms()
    );

    // 5. The per-disk reliability ledgers (reported for every run, faulted
    //    or not): transitions, duty cycle, wear, and failure state.
    println!("\ndisk  transitions  active(h)  standby(h)  duty%   wear(%)  state");
    for (i, l) in report.reliability.iter().enumerate() {
        println!(
            "{i:>4}  {:>11}  {:>9.2}  {:>10.2}  {:>5.1}  {:>7.3}  {}",
            l.transitions,
            l.active_hours,
            l.standby_hours,
            l.duty_cycle() * 100.0,
            l.wear() * 100.0,
            match l.failed_at_s {
                Some(t) => format!("FAILED at {t:.0} s"),
                None => "ok".to_string(),
            }
        );
    }
}
