//! Fleet under a tightening datacenter power cap.
//!
//! Eight Hibernator arrays serve a shared 16-tenant OLTP workload while
//! the datacenter budget steps down twice over the run: 100 % of the
//! fleet's nominal idle draw, then 60 %, then 40 %. Between fleet epochs
//! the arbiter observes each array's power and re-grants caps in
//! proportion to observed demand; each Hibernator folds its cap into the
//! next epoch's speed plan via the capped allocator.
//!
//! Watch the epoch table: the array hosting the hottest tenant initially
//! spins fast (its grant is the biggest, by design), and the 60 % step
//! is what forces it down toward the fleet floor — deeper sleep bought
//! with tail latency on the hot tenant, while every other tenant keeps
//! the mean-response goal. That asymmetry — who pays when the budget
//! dives — is exactly what the proportional arbiter makes visible.
//!
//! ```text
//! cargo run --release --example fleet_powercap
//! ```

use array::{ArrayConfig, RunOptions};
use fleet::{run_fleet, BudgetSchedule, FleetSpec};
use hibernator::{Hibernator, HibernatorConfig};
use parallel::Pool;
use simkit::SimDuration;
use workload::WorkloadSpec;

/// Bucket-weighted mean of a latency histogram, seconds.
fn hist_mean(h: &simkit::LatencyHistogram) -> f64 {
    let (mut sum, mut n) = (0.0, 0u64);
    for (v, c) in h.nonempty_buckets() {
        sum += v * c as f64;
        n += c;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

const HOURS: f64 = 2.0;
const ARRAYS: usize = 8;
const TENANTS: u32 = 16;
const GOAL_S: f64 = 0.016;

fn main() {
    let horizon_s = HOURS * 3600.0;
    // Heavy enough that the unconstrained plan keeps disks spinning fast
    // — so the tightening cap has real speed levels left to take away.
    let mut wspec = WorkloadSpec::oltp(horizon_s, 400.0);
    wspec.zipf_theta = 1.05; // sharpen the skew: a handful of hot tenants
    let trace = wspec.generate(42);

    let mut config = ArrayConfig::default_for_volume(16 << 30);
    config.disks = 8;

    // Nominal draw: every disk of every array idling at full speed.
    let pm = diskmodel::PowerModel::new(&config.spec);
    let nominal_w = ARRAYS as f64 * config.disks as f64 * pm.idle_w(config.spec.top_level());
    // The steps land *below* the hot array's unconstrained draw, so the
    // cap genuinely forces deeper sleep rather than ratifying it.
    let budget = BudgetSchedule::steps(vec![
        (0.0, Some(nominal_w)),
        (horizon_s / 3.0, Some(nominal_w * 0.60)),
        (horizon_s * 2.0 / 3.0, Some(nominal_w * 0.40)),
    ]);

    let mut hib_cfg = HibernatorConfig::for_goal(GOAL_S);
    hib_cfg.epoch = SimDuration::from_mins(20.0);
    hib_cfg.heat_tau = hib_cfg.epoch;

    let spec = FleetSpec::new(
        ARRAYS,
        TENANTS,
        config,
        RunOptions::for_horizon(horizon_s),
        budget,
    );
    println!(
        "{ARRAYS} arrays x {} disks, {} requests, {TENANTS} tenants over {HOURS} h",
        spec.config.disks,
        trace.len()
    );
    println!(
        "budget: {nominal_w:.0} W -> {:.0} W -> {:.0} W (nominal {nominal_w:.0} W)\n",
        nominal_w * 0.60,
        nominal_w * 0.40
    );

    let pool = Pool::new(parallel::available_parallelism());
    let report = run_fleet(&spec, &trace, &pool, |_| Hibernator::new(hib_cfg.clone()));

    println!("epoch  start   budget_w  demand_w   cap range (W)   moves  over?");
    for (k, e) in report.epochs.iter().enumerate() {
        let caps_w = report.epoch_caps(k);
        let caps = if caps_w.is_empty() {
            "      —      ".to_string()
        } else {
            let lo = caps_w.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = caps_w.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            format!("{lo:6.1}–{hi:6.1}")
        };
        println!(
            "{:>5}  {:>5.0}  {:>9.1}  {:>8.1}  {caps:>14}  {:>5}  {}",
            e.epoch,
            e.start_s,
            e.budget_w.unwrap_or(f64::NAN),
            e.demand_w,
            e.moves,
            if e.violated { "OVER" } else { "ok" }
        );
    }

    // Hottest tenants by served volume — did they keep the goal while the
    // fleet slept deeper? The goal is the mean-response contract the
    // Hibernator guard enforces (the paper's formulation), with p95 shown
    // for tail context.
    let mut by_heat: Vec<(usize, u64)> = report
        .tenant_latency
        .iter()
        .enumerate()
        .map(|(t, h)| (t, h.count()))
        .collect();
    by_heat.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    println!(
        "\ntenant   served    p50 ms   p95 ms   mean vs goal ({:.0} ms)",
        GOAL_S * 1e3
    );
    for &(t, served) in by_heat.iter().take(4).chain(by_heat.iter().rev().take(2)) {
        let h = &report.tenant_latency[t];
        let mean_ms = hist_mean(h) * 1e3;
        let p50 = report.tenant_quantile(t, 0.50).unwrap_or(0.0) * 1e3;
        let p95 = report.tenant_quantile(t, 0.95).unwrap_or(0.0) * 1e3;
        println!(
            "{t:>6}  {served:>7}  {p50:>7.2}  {p95:>7.2}   {mean_ms:>6.2} {}",
            if mean_ms <= GOAL_S * 1e3 {
                "meets"
            } else {
                "BLOWS"
            }
        );
    }

    let budget_j = report.budget_j.expect("finite schedule integrates");
    println!(
        "\nfleet energy {:.0} kJ vs integrated budget {:.0} kJ ({} s over cap, {} tenant moves)",
        report.fleet_energy_j / 1e3,
        budget_j / 1e3,
        report.cap_violation_s,
        report.tenant_moves
    );
    println!(
        "requests: {} routed / {} completed / {} in flight",
        report.routed_requests, report.completed, report.incomplete
    );
    let audit = report.audit().expect("fleet stream parses");
    println!(
        "fleet audit: {}",
        if audit.passed() {
            "all invariants hold"
        } else {
            "VIOLATIONS FOUND"
        }
    );
}
