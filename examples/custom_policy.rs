//! Extending the framework: writing your own power policy.
//!
//! Implements a deliberately simple "night mode" policy — slow everything
//! between midnight and 6 am, full speed otherwise — against the
//! [`array::PowerPolicy`] trait, and compares it with Hibernator on the
//! same diurnal trace. The point is the *shape* of the trait: three hooks
//! and you have a policy the whole harness can evaluate.
//!
//! ```text
//! cargo run --release --example custom_policy
//! ```

use array::{run_policy, ArrayConfig, ArrayState, BasePolicy, PowerPolicy, RunOptions};
use diskmodel::{SpeedLevel, SpinTarget};
use hibernator::{Hibernator, HibernatorConfig};
use simkit::{SimDuration, SimTime};
use workload::WorkloadSpec;

/// Slow at night, fast by day — a static schedule with none of
/// Hibernator's feedback.
struct NightMode {
    night_level: SpeedLevel,
}

impl PowerPolicy for NightMode {
    fn name(&self) -> &str {
        "NightMode"
    }

    fn tick_interval(&self) -> Option<SimDuration> {
        Some(SimDuration::from_mins(5.0))
    }

    fn on_tick(&mut self, now: SimTime, state: &mut ArrayState) {
        let hour = (now.as_secs() / 3600.0) % 24.0;
        let target = if (0.0..6.0).contains(&hour) {
            SpinTarget::Level(self.night_level)
        } else {
            SpinTarget::Level(state.config.spec.top_level())
        };
        for d in &mut state.disks {
            d.request_speed(now, target);
        }
    }
}

fn main() {
    let day = 24.0 * 3600.0;
    let trace = WorkloadSpec::cello_like(day, 50.0).generate(3);
    let config = ArrayConfig::default_for_volume(24 << 30);
    let opts = RunOptions::for_horizon(day);

    let base = run_policy(config.clone(), BasePolicy, &trace, opts.clone());
    let night = run_policy(
        config.clone(),
        NightMode {
            night_level: SpeedLevel(0),
        },
        &trace,
        opts.clone(),
    );
    let goal = base.response.mean() * 1.3;
    let hib = run_policy(
        config,
        Hibernator::new(HibernatorConfig::for_goal(goal)),
        &trace,
        opts,
    );

    for (name, r) in [("Base", &base), ("NightMode", &night), ("Hibernator", &hib)] {
        println!(
            "{name:>10}: {:7.0} kJ  ({:5.1}% saved)   mean {:6.2} ms   p99 {:7.1} ms",
            r.energy_kj(),
            r.savings_vs(&base) * 100.0,
            r.mean_response_ms(),
            r.response_hist.quantile(0.99).unwrap_or(0.0) * 1e3,
        );
    }
    println!(
        "\nNightMode is blind: it saves only in its fixed window and eats the \
         backup burst at {} RPM. Hibernator adapts tier sizes to measured \
         temperatures instead.",
        3600
    );
}
