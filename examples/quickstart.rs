//! Quickstart: simulate a disk array under an OLTP-style workload, first
//! with no power management, then with Hibernator, and compare energy and
//! response time.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use array::{run_policy, ArrayConfig, BasePolicy, RunOptions};
use hibernator::{Hibernator, HibernatorConfig};
use simkit::SimDuration;
use workload::WorkloadSpec;

fn main() {
    // 1. A workload: two hours of steady OLTP traffic, 60 req/s, over a
    //    4 GiB hot footprint with Zipf-skewed popularity.
    let mut spec = WorkloadSpec::oltp(2.0 * 3600.0, 60.0);
    spec.extents = 4096; // 4 GiB of 1 MiB extents
    let trace = spec.generate(7);
    println!("generated {} requests", trace.len());

    // 2. An array: 8 multi-speed disks (6 speed levels, 3600–15000 RPM).
    let mut config = ArrayConfig::default_for_volume(4 << 30);
    config.disks = 8;

    // 3. Baseline: all disks at full speed around the clock.
    let opts = RunOptions::for_horizon(2.0 * 3600.0);
    let base = run_policy(config.clone(), BasePolicy, &trace, opts.clone());
    println!(
        "Base:       {:7.1} kJ, mean response {:5.2} ms",
        base.energy_kj(),
        base.mean_response_ms()
    );

    // 4. Hibernator, allowed to degrade mean response by at most 30%.
    let goal = base.response.mean() * 1.3;
    let mut cfg = HibernatorConfig::for_goal(goal);
    cfg.epoch = SimDuration::from_mins(20.0); // short run, short epochs
    cfg.heat_tau = cfg.epoch;
    let hib = run_policy(config, Hibernator::new(cfg), &trace, opts);
    println!(
        "Hibernator: {:7.1} kJ, mean response {:5.2} ms (goal {:.2} ms)",
        hib.energy_kj(),
        hib.mean_response_ms(),
        goal * 1e3
    );
    println!(
        "energy savings: {:.1}%  ({} chunk migrations, {} spindle transitions)",
        hib.savings_vs(&base) * 100.0,
        hib.migration.committed,
        hib.transitions
    );
}
