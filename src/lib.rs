//! # hibernator-suite — the umbrella crate
//!
//! Re-exports the whole Hibernator reproduction workspace so examples and
//! integration tests can reach every layer through one dependency:
//!
//! * [`simkit`] — discrete-event substrate (time, events, RNG, statistics,
//!   energy ledger);
//! * [`diskmodel`] — the multi-speed disk simulator;
//! * [`workload`] — OLTP / file-server workload generation and trace I/O;
//! * [`array`](mod@array) — the disk-array substrate and simulation driver;
//! * [`policies`] — the baseline energy policies (TPM, DRPM, PDC, MAID…);
//! * [`core`](mod@core_lib) — the Hibernator policy itself;
//! * [`fleet`](mod@fleet) — N arrays under one datacenter power budget
//!   (arbiter, tenant placement, fleet rollup/audit);
//! * [`parallel`](mod@parallel) — the scoped worker pool the fleet and
//!   experiment harness fan out on.
//!
//! Start with the `quickstart` example; `DESIGN.md` maps the paper onto
//! the crates, and `EXPERIMENTS.md` records the reproduced evaluation.

pub use array;
pub use diskmodel;
pub use fleet;
/// The Hibernator core library (the `hibernator` crate).
pub use hibernator as core_lib;
pub use parallel;
pub use policies;
pub use simkit;
pub use workload;
