//! Controller cache hierarchy for the disk-array simulator.
//!
//! Two mechanisms live here, both deterministic and std-only:
//!
//! * [`DramCache`] — a set-associative controller DRAM cache with a
//!   write-back buffer. Read hits are served at DRAM latency without
//!   touching a spindle; writes are absorbed and marked dirty, then
//!   destaged in periodic flush batches (or a forced flush when the dirty
//!   set grows past a cap). Flushes are *batched disk writes*, so they can
//!   wake disks a spin-down policy put to sleep — that interaction is the
//!   point of modelling the cache at all.
//! * [`TierDirectory`] — the directory for a cache-*disk* tier (MAID-style):
//!   an LRU map from chunk to a (disk, slot) location on one of a few
//!   always-spinning cache disks. `policies/maid.rs` routes read hits
//!   through it instead of approximating the tier internally.
//!
//! Eviction order, flush order, and set indexing are pure functions of the
//! request history: no hashing randomness, no clocks. The simulator relies
//! on that for bit-identical replays.

/// Tunables for the controller DRAM cache.
///
/// `capacity_chunks == 0` disables the cache entirely: the simulator
/// behaves bit-identically to a build without one (locked down by
/// `tests/cache_equivalence.rs`).
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Total capacity in chunks. Rounded up to a multiple of `ways`.
    /// `0` disables the cache.
    pub capacity_chunks: u32,
    /// Set associativity. Eviction is LRU within a set.
    pub ways: u32,
    /// Latency charged to a request served entirely from DRAM, seconds.
    pub hit_latency_s: f64,
    /// Interval between periodic write-back flushes, seconds.
    pub flush_interval_s: f64,
    /// Dirty chunks that trigger a forced flush before the periodic timer.
    pub max_dirty_chunks: u32,
}

impl CacheConfig {
    /// A cache of `capacity_chunks` with the default shape: 8-way sets,
    /// 200 µs hit latency, 30 s flush interval, forced flush at a quarter
    /// of capacity dirty.
    pub fn with_capacity(capacity_chunks: u32) -> Self {
        CacheConfig {
            capacity_chunks,
            ways: 8,
            hit_latency_s: 200e-6,
            flush_interval_s: 30.0,
            max_dirty_chunks: (capacity_chunks / 4).max(64),
        }
    }

    /// True if the cache participates in the request path at all.
    pub fn is_enabled(&self) -> bool {
        self.capacity_chunks > 0
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self::with_capacity(4096)
    }
}

/// Counters for everything the DRAM layer did during a run.
///
/// `read_hits`/`write_absorbs` count *requests* served without disk
/// traffic; `writebacks`/`flushed_chunks` count *chunks* destaged. The
/// auditor reconciles these against the replayed event stream.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CacheStats {
    /// Read requests whose every piece was resident.
    pub read_hits: u64,
    /// Read requests with at least one non-resident piece.
    pub read_misses: u64,
    /// Write requests absorbed into the write-back buffer.
    pub write_absorbs: u64,
    /// Dirty chunks destaged by eviction pressure (outside a flush batch).
    pub writebacks: u64,
    /// Flush batches issued (periodic + forced).
    pub flushes: u64,
    /// Flush batches forced by the dirty cap.
    pub forced_flushes: u64,
    /// Dirty chunks destaged by flush batches.
    pub flushed_chunks: u64,
}

impl CacheStats {
    /// Fraction of read requests served from DRAM.
    pub fn read_hit_rate(&self) -> f64 {
        let total = self.read_hits + self.read_misses;
        if total == 0 {
            0.0
        } else {
            self.read_hits as f64 / total as f64
        }
    }
}

/// One resident chunk within a set.
#[derive(Debug, Clone, Copy)]
struct Way {
    chunk: u32,
    dirty: bool,
    /// Logical LRU clock value of the last touch; smaller = colder.
    tick: u64,
}

/// A set-associative DRAM cache over chunk ids.
///
/// Pure mechanism: it tracks residency, dirtiness, and LRU order, and
/// reports which dirty chunk an insertion evicted. The simulator decides
/// what a hit, an absorb, or a flush *costs* — this type never touches
/// time or energy.
#[derive(Debug, Clone)]
pub struct DramCache {
    cfg: CacheConfig,
    sets: Vec<Vec<Way>>,
    ways: usize,
    /// Monotonic logical clock driving LRU order (deterministic — no wall
    /// time involved).
    clock: u64,
    dirty: usize,
}

impl DramCache {
    /// Builds a cache for `cfg`. Panics if `cfg` is disabled — callers
    /// gate on [`CacheConfig::is_enabled`].
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.is_enabled(), "DramCache::new on a disabled config");
        let ways = cfg.ways.max(1) as usize;
        let sets = (cfg.capacity_chunks as usize).div_ceil(ways).max(1);
        DramCache {
            cfg,
            sets: vec![Vec::new(); sets],
            ways,
            clock: 0,
            dirty: 0,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Number of dirty chunks awaiting destage.
    pub fn dirty_count(&self) -> usize {
        self.dirty
    }

    /// Total resident chunks.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// True if nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.sets.iter().all(Vec::is_empty)
    }

    #[inline]
    fn set_index(&self, chunk: u32) -> usize {
        // Fibonacci spread so striding chunk ids don't alias into one set.
        let h = (chunk as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize % self.sets.len()
    }

    /// True if `chunk` is resident; touches it to MRU.
    pub fn lookup(&mut self, chunk: u32) -> bool {
        let si = self.set_index(chunk);
        self.clock += 1;
        let clock = self.clock;
        match self.sets[si].iter_mut().find(|w| w.chunk == chunk) {
            Some(w) => {
                w.tick = clock;
                true
            }
            None => false,
        }
    }

    /// Makes `chunk` resident (clean if absent), returning the dirty chunk
    /// the insertion evicted, if any. Used to promote read misses.
    pub fn insert_clean(&mut self, chunk: u32) -> Option<u32> {
        self.touch(chunk, false)
    }

    /// Absorbs a write to `chunk`: resident and dirty afterwards. Returns
    /// the dirty chunk the insertion evicted, if any.
    pub fn write(&mut self, chunk: u32) -> Option<u32> {
        self.touch(chunk, true)
    }

    fn touch(&mut self, chunk: u32, dirty: bool) -> Option<u32> {
        let si = self.set_index(chunk);
        self.clock += 1;
        let clock = self.clock;
        let set = &mut self.sets[si];
        if let Some(w) = set.iter_mut().find(|w| w.chunk == chunk) {
            w.tick = clock;
            if dirty && !w.dirty {
                w.dirty = true;
                self.dirty += 1;
            }
            return None;
        }
        let mut evicted = None;
        if set.len() >= self.ways {
            let (coldest, _) = set
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.tick)
                .expect("set is non-empty");
            let victim = set.swap_remove(coldest);
            if victim.dirty {
                self.dirty -= 1;
                evicted = Some(victim.chunk);
            }
        }
        set.push(Way {
            chunk,
            dirty,
            tick: clock,
        });
        if dirty {
            self.dirty += 1;
        }
        evicted
    }

    /// Collects every dirty chunk into `out` (ascending order), marking
    /// them all clean. The chunks stay resident.
    pub fn drain_dirty(&mut self, out: &mut Vec<u32>) {
        out.clear();
        for set in &mut self.sets {
            for w in set.iter_mut() {
                if w.dirty {
                    w.dirty = false;
                    out.push(w.chunk);
                }
            }
        }
        self.dirty = 0;
        // Ascending chunk order: flush submission order must not depend on
        // set layout, only on which chunks are dirty.
        out.sort_unstable();
    }
}

/// Directory for a cache-disk tier: an LRU map from chunk to a
/// `(disk, slot)` location on one of the dedicated cache disks.
///
/// This is the tier MAID routes read hits through. The `HashMap` is only
/// ever point-queried (never iterated), so its seeded layout cannot leak
/// into simulation state.
#[derive(Debug)]
pub struct TierDirectory {
    /// chunk → (cache disk, slot)
    entries: std::collections::HashMap<u32, (u32, u32)>,
    /// LRU order: front = coldest. Vec-based LRU is fine at these sizes
    /// (thousands of entries, touched per request).
    lru: Vec<u32>,
    capacity: usize,
    /// Free (disk, slot) pairs, handed out disk-0-first, low slots first.
    free: Vec<(u32, u32)>,
}

impl TierDirectory {
    /// Builds a directory over `cache_disks`, each holding
    /// `chunks_per_disk` slots.
    pub fn new(cache_disks: &[u32], chunks_per_disk: u32) -> TierDirectory {
        let mut free = Vec::new();
        // Reverse so pop() hands out disk-0-first, low slots first.
        for &d in cache_disks.iter().rev() {
            for s in (0..chunks_per_disk).rev() {
                free.push((d, s));
            }
        }
        TierDirectory {
            entries: std::collections::HashMap::new(),
            lru: Vec::new(),
            capacity: cache_disks.len() * chunks_per_disk as usize,
            free,
        }
    }

    /// The tier location holding a copy of `chunk`, if any; touches it to
    /// MRU.
    pub fn lookup(&mut self, chunk: u32) -> Option<(u32, u32)> {
        let hit = self.entries.get(&chunk).copied();
        if hit.is_some() {
            // Move to MRU position.
            if let Some(pos) = self.lru.iter().position(|&c| c == chunk) {
                let c = self.lru.remove(pos);
                self.lru.push(c);
            }
        }
        hit
    }

    /// Inserts `chunk`, evicting the LRU entry if full. Returns the slot
    /// the copy must be written to.
    pub fn insert(&mut self, chunk: u32) -> (u32, u32) {
        if let Some(&loc) = self.entries.get(&chunk) {
            return loc;
        }
        let loc = if self.entries.len() < self.capacity {
            self.free.pop().expect("capacity accounted")
        } else {
            let victim = self.lru.remove(0);
            self.entries
                .remove(&victim)
                .expect("victim must be present")
        };
        self.entries.insert(chunk, loc);
        self.lru.push(chunk);
        loc
    }

    /// Number of chunks currently cached in the tier.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the tier holds no copies.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total slots across all cache disks.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> DramCache {
        let mut cfg = CacheConfig::with_capacity(8);
        cfg.ways = 4;
        DramCache::new(cfg)
    }

    #[test]
    fn read_path_hits_after_promotion() {
        let mut c = small();
        assert!(!c.lookup(3), "cold cache misses");
        assert_eq!(c.insert_clean(3), None);
        assert!(c.lookup(3), "promoted chunk hits");
        assert_eq!(c.dirty_count(), 0, "clean promotion stays clean");
    }

    #[test]
    fn writes_mark_dirty_once() {
        let mut c = small();
        assert_eq!(c.write(5), None);
        assert_eq!(c.write(5), None);
        assert_eq!(c.dirty_count(), 1, "re-dirtying is idempotent");
        let mut out = Vec::new();
        c.drain_dirty(&mut out);
        assert_eq!(out, vec![5]);
        assert_eq!(c.dirty_count(), 0);
        assert!(c.lookup(5), "drained chunk stays resident");
    }

    #[test]
    fn drain_is_sorted_and_complete() {
        let mut c = DramCache::new(CacheConfig::with_capacity(64));
        for chunk in [40u32, 3, 17, 29, 8] {
            c.write(chunk);
        }
        let mut out = Vec::new();
        c.drain_dirty(&mut out);
        assert_eq!(out, vec![3, 8, 17, 29, 40], "ascending chunk order");
    }

    #[test]
    fn lru_eviction_within_set_returns_dirty_victim() {
        let mut cfg = CacheConfig::with_capacity(2);
        cfg.ways = 2;
        let mut c = DramCache::new(cfg);
        // One set of two ways: force eviction by finding three chunks that
        // share the set (with a single set, all do).
        assert_eq!(c.sets.len(), 1);
        c.write(1);
        c.insert_clean(2);
        c.lookup(1); // 2 is now LRU
        assert_eq!(c.insert_clean(3), None, "clean victim needs no writeback");
        assert!(!c.lookup(2), "LRU entry evicted");
        assert!(c.lookup(1), "MRU entry survives");
        // Now 1 (dirty) is cold after touching 3.
        c.lookup(3);
        assert_eq!(c.write(4), Some(1), "dirty victim surfaces for writeback");
        assert_eq!(c.dirty_count(), 1, "only the new write remains dirty");
    }

    #[test]
    fn capacity_rounds_up_to_way_multiple() {
        let mut cfg = CacheConfig::with_capacity(10);
        cfg.ways = 4;
        let c = DramCache::new(cfg);
        assert_eq!(c.sets.len(), 3, "ceil(10/4) sets");
    }

    #[test]
    fn zero_capacity_is_disabled() {
        assert!(!CacheConfig::with_capacity(0).is_enabled());
        assert!(CacheConfig::with_capacity(1).is_enabled());
    }

    #[test]
    fn stats_hit_rate() {
        let s = CacheStats {
            read_hits: 3,
            read_misses: 1,
            ..CacheStats::default()
        };
        assert!((s.read_hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().read_hit_rate(), 0.0);
    }

    // Tier-directory behavior carried over from the MAID-internal version
    // it replaces (policies/maid.rs), so the swap is semantics-preserving.

    #[test]
    fn tier_lru_eviction() {
        let mut dir = TierDirectory::new(&[4, 5], 2); // capacity 4
        for c in 0..4u32 {
            dir.insert(c);
        }
        assert_eq!(dir.len(), 4);
        // Touch chunk 0 so it is MRU; inserting a 5th evicts chunk 1.
        assert!(dir.lookup(0).is_some());
        dir.insert(10);
        assert!(dir.lookup(1).is_none(), "LRU entry evicted");
        assert!(dir.lookup(0).is_some(), "MRU entry survives");
        assert_eq!(dir.len(), 4);
    }

    #[test]
    fn tier_slots_unique() {
        let mut dir = TierDirectory::new(&[4, 5], 64);
        let mut seen = std::collections::HashSet::new();
        for c in 0..128u32 {
            let loc = dir.insert(c);
            assert!(seen.insert(loc), "slot reused while not evicted: {loc:?}");
        }
    }

    #[test]
    fn tier_slots_fill_disk_zero_first() {
        let mut dir = TierDirectory::new(&[7, 9], 2);
        assert_eq!(dir.insert(0), (7, 0));
        assert_eq!(dir.insert(1), (7, 1));
        assert_eq!(dir.insert(2), (9, 0));
        assert_eq!(dir.insert(3), (9, 1));
        assert_eq!(dir.capacity(), 4);
    }

    #[test]
    fn tier_reinsert_is_stable() {
        let mut dir = TierDirectory::new(&[2], 8);
        let loc = dir.insert(11);
        assert_eq!(dir.insert(11), loc, "re-insert keeps the slot");
        assert_eq!(dir.len(), 1);
    }
}
