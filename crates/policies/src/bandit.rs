//! Epsilon-greedy / UCB bandit tier classifier: learns per-chunk tier
//! placement online instead of deriving it from a queueing model.
//!
//! Each chunk keeps a per-tier action value `q[chunk][tier]`, updated at
//! every planning round from the reward observed at the tier the chunk
//! actually sat on:
//!
//! ```text
//! reward = −(latency_weight · accesses · service_s(tier)
//!            + power_weight · idle_w(tier) / chunks_per_disk)
//! q += learning_rate · (reward − q)
//! ```
//!
//! so a hot chunk on a slow tier earns a large latency penalty (learn:
//! promote) while a cold chunk on a fast tier pays the tier's idle power
//! for nothing (learn: demote). Tier preference is the argmax over
//! *visited* tiers — optionally with a UCB exploration bonus — except
//! with probability ε (decaying per round) a uniformly random tier is
//! preferred instead. The preference only orders the chunk ranking; the
//! shared filtered planner maps rank positions onto the epoch's actual
//! tiers, enforcing grace, dedupe, and budget like every other policy.

use array::{ChunkId, MigrationJob};
use hibernator::{
    plan_migrations_filtered, GraceTracker, MigrationConfig, MigrationPolicy, PolicyDecisionInfo,
    PolicyObservation,
};
use simkit::{DetRng, SimTime};
use std::collections::BTreeMap;

/// Sectors per probe I/O used to price a tier's service time.
const PROBE_SECTORS: u32 = 16;

/// Bandit learner tunables.
#[derive(Debug, Clone)]
pub struct BanditConfig {
    /// Initial exploration probability.
    pub epsilon0: f64,
    /// Rounds over which ε decays: `ε = ε₀ / (1 + rounds / decay)`.
    pub epsilon_decay: f64,
    /// Q-value step size α in `q += α (reward − q)`.
    pub learning_rate: f64,
    /// Weight of the latency term (per access-second of service time).
    pub latency_weight: f64,
    /// Weight of the idle-power term (per watt amortized over a disk's
    /// chunk share).
    pub power_weight: f64,
    /// UCB exploration bonus weight (0 = pure ε-greedy).
    pub ucb_weight: f64,
    /// Seed for the exploration RNG.
    pub seed: u64,
}

impl Default for BanditConfig {
    fn default() -> Self {
        BanditConfig {
            epsilon0: 0.2,
            epsilon_decay: 10.0,
            learning_rate: 0.3,
            latency_weight: 100.0,
            power_weight: 1.0,
            ucb_weight: 0.0,
            seed: 0xBA4D17,
        }
    }
}

/// The bandit tier classifier (see module docs).
pub struct BanditPolicy {
    cfg: MigrationConfig,
    bcfg: BanditConfig,
    /// chunk -> per-tier action value; NaN marks a never-visited tier.
    q: BTreeMap<u32, Vec<f64>>,
    /// chunk -> per-tier visit count (feeds the UCB bonus).
    visits: BTreeMap<u32, Vec<u64>>,
    /// chunk -> accesses since the last planning round.
    counts: BTreeMap<u32, f64>,
    /// chunk -> tier preferred at the last round.
    preferred: BTreeMap<u32, usize>,
    rounds: u64,
    rng: DetRng,
    grace: GraceTracker,
    last: Option<PolicyDecisionInfo>,
}

impl BanditPolicy {
    /// Bandit with default learner tunables and the shared adaptive
    /// migration config.
    pub fn new() -> BanditPolicy {
        BanditPolicy::with_configs(MigrationConfig::adaptive(), BanditConfig::default())
    }

    /// Bandit with explicit configs.
    pub fn with_configs(cfg: MigrationConfig, bcfg: BanditConfig) -> BanditPolicy {
        let rng = DetRng::new(bcfg.seed, "bandit-explore");
        BanditPolicy {
            cfg,
            bcfg,
            q: BTreeMap::new(),
            visits: BTreeMap::new(),
            counts: BTreeMap::new(),
            preferred: BTreeMap::new(),
            rounds: 0,
            rng,
            grace: GraceTracker::new(),
            last: None,
        }
    }

    /// Current exploration probability.
    pub fn epsilon(&self) -> f64 {
        self.bcfg.epsilon0 / (1.0 + self.rounds as f64 / self.bcfg.epsilon_decay)
    }

    /// The tier preferred for `chunk` at the last planning round.
    pub fn preferred_tier(&self, chunk: ChunkId) -> Option<usize> {
        self.preferred.get(&chunk.0).copied()
    }

    /// The learned action value for (`chunk`, `tier`), if ever visited.
    pub fn q_value(&self, chunk: ChunkId, tier: usize) -> Option<f64> {
        self.q
            .get(&chunk.0)
            .and_then(|v| v.get(tier))
            .copied()
            .filter(|q| !q.is_nan())
    }

    /// Argmax over visited tiers plus optional UCB bonus; ties break to
    /// the highest tier (deterministic). `None` when nothing was visited.
    fn exploit(&self, chunk: u32) -> Option<usize> {
        let q = self.q.get(&chunk)?;
        let visits = self.visits.get(&chunk)?;
        let mut best: Option<(usize, f64)> = None;
        for (tier, &val) in q.iter().enumerate() {
            if val.is_nan() {
                continue;
            }
            let bonus = if self.bcfg.ucb_weight > 0.0 && visits[tier] > 0 {
                self.bcfg.ucb_weight
                    * ((1.0 + self.rounds as f64).ln() / visits[tier] as f64).sqrt()
            } else {
                0.0
            };
            let score = val + bonus;
            match best {
                Some((_, b)) if score < b => {}
                _ => best = Some((tier, score)),
            }
        }
        best.map(|(t, _)| t)
    }
}

impl Default for BanditPolicy {
    fn default() -> Self {
        BanditPolicy::new()
    }
}

impl MigrationPolicy for BanditPolicy {
    fn name(&self) -> &'static str {
        "bandit"
    }

    fn config(&self) -> &MigrationConfig {
        &self.cfg
    }

    fn observe_access(&mut self, _now: SimTime, chunk: ChunkId) {
        *self.counts.entry(chunk.0).or_insert(0.0) += 1.0;
    }

    fn propose(&mut self, obs: &PolicyObservation<'_>) -> Vec<MigrationJob> {
        self.grace.note_commits(obs.now, obs.state, self.cfg.grace);
        self.rounds += 1;
        let levels = obs.state.config.spec.num_levels();
        let chunks = obs.state.remap.chunks();
        let alive = obs.state.alive_disks().max(1);
        let cpd = (chunks as usize).div_ceil(alive) as f64;
        let svc_model = obs.state.disks[0].service_model();
        let power_model = obs.state.disks[0].power_model();
        let eps = self.epsilon();

        // 1. Reward the tier each chunk actually sat on this round.
        let mut ranked: Vec<(usize, f64, u32)> = Vec::with_capacity(chunks as usize);
        for c in 0..chunks {
            let rate = self.counts.get(&c).copied().unwrap_or(0.0);
            let cur_disk = obs.state.remap.disk_of(ChunkId(c));
            let tier = obs.disk_levels[cur_disk.index()].index();
            let svc =
                svc_model.expected_random_service_s(diskmodel::SpeedLevel(tier), PROBE_SECTORS);
            let idle = power_model.idle_w(diskmodel::SpeedLevel(tier));
            let reward =
                -(self.bcfg.latency_weight * rate * svc + self.bcfg.power_weight * idle / cpd);
            let q = self.q.entry(c).or_insert_with(|| vec![f64::NAN; levels]);
            if q[tier].is_nan() {
                q[tier] = reward;
            } else {
                q[tier] += self.bcfg.learning_rate * (reward - q[tier]);
            }
            self.visits.entry(c).or_insert_with(|| vec![0; levels])[tier] += 1;

            // 2. Prefer a tier: explore with probability ε, else exploit.
            let preferred = if eps > 0.0 && self.rng.chance(eps) {
                self.rng.below(levels as u64) as usize
            } else {
                self.exploit(c).unwrap_or(tier)
            };
            self.preferred.insert(c, preferred);
            ranked.push((preferred, rate, c));
        }
        self.counts.clear();

        // 3. Desired ranking: preferred tier (fastest first), then this
        // round's access rate, then chunk id — all deterministic.
        ranked.sort_by(|a, b| b.0.cmp(&a.0).then(b.1.total_cmp(&a.1)).then(a.2.cmp(&b.2)));
        let ranking: Vec<ChunkId> = ranked.iter().map(|&(_, _, c)| ChunkId(c)).collect();

        let out = plan_migrations_filtered(
            obs.state,
            &ranking,
            &[],
            obs.disk_levels,
            &self.cfg,
            obs.budget,
            &mut self.grace,
            obs.now,
        );
        self.last = Some(PolicyDecisionInfo {
            policy: self.name(),
            moves: out.jobs.len() as u32,
            deferred_grace: out.deferred_grace,
            deferred_inflight: out.deferred_inflight,
            skipped_threshold: out.skipped_threshold,
            grace_s: self.cfg.grace.as_secs(),
            sleepers: 0,
        });
        out.jobs
    }

    fn decision(&self) -> Option<PolicyDecisionInfo> {
        self.last.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use array::{ArrayConfig, ArrayState, ArrayStats, MigrationEngine, RemapTable};
    use diskmodel::{Disk, SpeedLevel};
    use simkit::SimDuration;

    fn mk_state(disks: usize, chunks: u32) -> ArrayState {
        let mut config = ArrayConfig::default_for_volume(1 << 30);
        config.disks = disks;
        config.volume_chunks = chunks;
        let remap = RemapTable::striped(&config);
        let ds = (0..disks)
            .map(|i| Disk::new(i, &config.spec, 1, config.spec.top_level()))
            .collect();
        let stats = ArrayStats::new(config.spec.num_levels(), SimDuration::from_secs(60.0));
        ArrayState {
            config,
            disks: ds,
            remap,
            migrator: MigrationEngine::new(2),
            stats,
            telemetry: telemetry::Recorder::disabled(),
            wake_marks: array::WakeMarks::new(disks),
        }
    }

    fn obs<'a>(
        state: &'a ArrayState,
        targets: &'a [SpeedLevel],
        ranking: &'a [ChunkId],
    ) -> PolicyObservation<'a> {
        PolicyObservation {
            now: SimTime::ZERO,
            state,
            ranking,
            rates: &[],
            disk_levels: targets,
            budget: 100,
            goal_s: 0.02,
        }
    }

    fn greedy() -> BanditPolicy {
        // Exploitation only: deterministic learning path.
        let b = BanditConfig {
            epsilon0: 0.0,
            ..BanditConfig::default()
        };
        BanditPolicy::with_configs(MigrationConfig::adaptive(), b)
    }

    /// First visit seeds q with the raw reward; later visits blend with
    /// the learning rate — checked against the formula by hand.
    #[test]
    fn reward_accounting_follows_the_update_rule() {
        let state = mk_state(4, 16);
        let targets = vec![SpeedLevel(5); 4];
        let ranking: Vec<ChunkId> = (0..16).map(ChunkId).collect();
        let mut p = greedy();
        for _ in 0..3 {
            p.observe_access(SimTime::ZERO, ChunkId(0));
        }
        let _ = p.propose(&obs(&state, &targets, &ranking));

        let svc = state.disks[0]
            .service_model()
            .expected_random_service_s(SpeedLevel(5), PROBE_SECTORS);
        let idle = state.disks[0].power_model().idle_w(SpeedLevel(5));
        let cpd = 16.0 / 4.0;
        let b = BanditConfig::default();
        let expect = -(b.latency_weight * 3.0 * svc + b.power_weight * idle / cpd);
        let q1 = p.q_value(ChunkId(0), 5).expect("tier visited");
        assert!(
            (q1 - expect).abs() < 1e-12,
            "first visit seeds q: {q1} vs {expect}"
        );

        // Second round with no accesses: reward is the pure idle penalty.
        let _ = p.propose(&obs(&state, &targets, &ranking));
        let r2 = -(b.power_weight * idle / cpd);
        let expect2 = q1 + b.learning_rate * (r2 - q1);
        let q2 = p.q_value(ChunkId(0), 5).expect("tier visited");
        assert!((q2 - expect2).abs() < 1e-12, "blend: {q2} vs {expect2}");
    }

    #[test]
    fn epsilon_decays_with_rounds() {
        let state = mk_state(4, 16);
        let targets = vec![SpeedLevel(5); 4];
        let ranking: Vec<ChunkId> = (0..16).map(ChunkId).collect();
        let mut p = BanditPolicy::new();
        let e0 = p.epsilon();
        for _ in 0..20 {
            let _ = p.propose(&obs(&state, &targets, &ranking));
        }
        assert!(p.epsilon() < e0 / 2.0, "{} vs {}", p.epsilon(), e0);
        assert!(p.epsilon() > 0.0);
    }

    /// Two identically-seeded bandits fed the same observations make the
    /// same proposals round after round, including explore rounds.
    #[test]
    fn fixed_seed_tie_breaking_is_deterministic() {
        let state = mk_state(4, 32);
        let targets = vec![SpeedLevel(5), SpeedLevel(5), SpeedLevel(0), SpeedLevel(0)];
        let ranking: Vec<ChunkId> = (0..32).map(ChunkId).collect();
        let mut a = BanditPolicy::new();
        let mut b = BanditPolicy::new();
        for round in 0..10 {
            for c in 0..(round % 5) {
                a.observe_access(SimTime::ZERO, ChunkId(c));
                b.observe_access(SimTime::ZERO, ChunkId(c));
            }
            let ja = a.propose(&obs(&state, &targets, &ranking));
            let jb = b.propose(&obs(&state, &targets, &ranking));
            assert_eq!(ja, jb, "round {round} diverged");
            assert_eq!(a.preferred, b.preferred);
        }
    }

    /// On a stationary workload the greedy bandit converges: the hot chunk
    /// ends up preferring a tier at least as fast as the cold chunk's, and
    /// its learned fast-tier value beats its slow-tier value.
    #[test]
    fn converges_on_stationary_workload() {
        let state = mk_state(4, 16);
        // Alternate the plan so every chunk experiences both tiers.
        let split_a = vec![SpeedLevel(5), SpeedLevel(5), SpeedLevel(0), SpeedLevel(0)];
        let split_b = vec![SpeedLevel(0), SpeedLevel(0), SpeedLevel(5), SpeedLevel(5)];
        let ranking: Vec<ChunkId> = (0..16).map(ChunkId).collect();
        let mut p = greedy();
        for round in 0..60 {
            for _ in 0..40 {
                p.observe_access(SimTime::ZERO, ChunkId(0)); // hot: on disk 0
            }
            let t = if round % 2 == 0 { &split_a } else { &split_b };
            let _ = p.propose(&obs(&state, t, &ranking));
        }
        let hot = p.preferred_tier(ChunkId(0)).expect("preferred");
        let cold = p.preferred_tier(ChunkId(15)).expect("preferred");
        assert!(hot >= cold, "hot tier {hot} vs cold tier {cold}");
        let q_fast = p.q_value(ChunkId(0), 5).expect("visited fast");
        let q_slow = p.q_value(ChunkId(0), 0).expect("visited slow");
        assert!(
            q_fast > q_slow,
            "hot chunk must value the fast tier: {q_fast} vs {q_slow}"
        );
    }
}
