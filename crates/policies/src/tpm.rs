//! TPM — traditional (threshold) power management.
//!
//! The laptop-disk classic applied per spindle: if a disk has been idle
//! longer than a threshold, spin it down to standby; spin it back up on the
//! next request (the disk model does this automatically). The default
//! threshold is the *competitive* choice — the standby round-trip break-even
//! time — which 2-competitive analysis shows is the best online threshold in
//! the worst case.
//!
//! TPM is the canonical "saves nothing in data centers" baseline: OLTP-style
//! workloads almost never leave a disk idle long enough to cross the
//! threshold, and when they briefly do, the 10.9 s spin-up stall wrecks the
//! response time of the request that pays for it.

use array::{ArrayState, PowerPolicy};
use diskmodel::SpinTarget;
use simkit::{SimDuration, SimTime};

/// Per-disk idle-threshold spin-down.
#[derive(Debug, Clone)]
pub struct TpmPolicy {
    /// Idle time before spin-down, seconds; `None` = competitive (break-even).
    threshold_s: Option<f64>,
    /// Polling cadence.
    tick: SimDuration,
    resolved_threshold_s: f64,
}

impl TpmPolicy {
    /// TPM with the competitive (break-even) threshold.
    pub fn competitive() -> Self {
        TpmPolicy {
            threshold_s: None,
            tick: SimDuration::from_secs(5.0),
            resolved_threshold_s: 0.0,
        }
    }

    /// TPM with a fixed idle threshold in seconds.
    ///
    /// # Panics
    /// Panics if the threshold is not positive.
    pub fn with_threshold(threshold_s: f64) -> Self {
        assert!(threshold_s > 0.0, "threshold must be positive");
        TpmPolicy {
            threshold_s: Some(threshold_s),
            tick: SimDuration::from_secs(5.0),
            resolved_threshold_s: 0.0,
        }
    }

    /// The threshold actually in use (after `init`).
    pub fn threshold_s(&self) -> f64 {
        self.resolved_threshold_s
    }
}

impl PowerPolicy for TpmPolicy {
    fn name(&self) -> &str {
        "TPM"
    }

    fn init(&mut self, _now: SimTime, state: &mut ArrayState) {
        self.resolved_threshold_s = match self.threshold_s {
            Some(t) => t,
            None => {
                let pm = state.disks[0].power_model();
                pm.breakeven_standby_s(state.config.spec.top_level())
            }
        };
    }

    fn tick_interval(&self) -> Option<SimDuration> {
        Some(self.tick)
    }

    fn on_tick(&mut self, now: SimTime, state: &mut ArrayState) {
        for i in 0..state.disks.len() {
            let d = &state.disks[i];
            if let Some(idle) = d.idle_duration(now) {
                if idle >= self.resolved_threshold_s && !d.is_standby() {
                    state.request_speed(now, i, SpinTarget::Standby);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use array::{run_policy, ArrayConfig, BasePolicy, RunOptions};
    use simkit::SimTime;
    use workload::{Trace, VolumeIoKind, VolumeRequest};

    fn config() -> ArrayConfig {
        let mut c = ArrayConfig::default_for_volume(1 << 30);
        c.disks = 4;
        c
    }

    /// A trace with a burst at the start, then total silence.
    fn bursty_then_idle() -> Trace {
        Trace::from_requests(
            (0..50)
                .map(|i| VolumeRequest {
                    time: SimTime::from_secs(0.1 * i as f64),
                    sector: (i * 37 * 2048) % 2_000_000,
                    sectors: 16,
                    kind: VolumeIoKind::Read,
                })
                .collect(),
        )
    }

    #[test]
    fn spins_down_after_idle_threshold() {
        let trace = bursty_then_idle();
        let report = run_policy(
            config(),
            TpmPolicy::with_threshold(30.0),
            &trace,
            RunOptions::for_horizon(1800.0),
        );
        let base = run_policy(
            config(),
            BasePolicy,
            &trace,
            RunOptions::for_horizon(1800.0),
        );
        // 30 minutes of silence: TPM disks sleep, spending far less.
        assert!(
            report.energy.total_joules() < base.energy.total_joules() * 0.45,
            "tpm {} base {}",
            report.energy.total_joules(),
            base.energy.total_joules()
        );
        assert!(report.energy.joules(simkit::EnergyComponent::Standby) > 0.0);
        assert!(report.transitions >= 4);
        assert_eq!(report.completed, base.completed);
    }

    #[test]
    fn steady_load_defeats_tpm() {
        // Requests every 2 s per disk leave idle gaps far below breakeven.
        let trace = Trace::from_requests(
            (0..600)
                .map(|i| VolumeRequest {
                    time: SimTime::from_secs(0.5 * i as f64),
                    sector: (i * 53 * 2048) % 2_000_000,
                    sectors: 16,
                    kind: VolumeIoKind::Read,
                })
                .collect(),
        );
        let opts = RunOptions::for_horizon(300.0);
        let tpm = run_policy(config(), TpmPolicy::competitive(), &trace, opts.clone());
        let base = run_policy(config(), BasePolicy, &trace, opts);
        let savings = tpm.savings_vs(&base);
        assert!(
            savings.abs() < 0.05,
            "TPM should save ~nothing under steady load, got {savings}"
        );
    }

    #[test]
    fn spinup_stall_visible_in_tail_latency() {
        // Silence long enough to sleep, then one request that pays spin-up.
        let mut reqs: Vec<VolumeRequest> = (0..20)
            .map(|i| VolumeRequest {
                time: SimTime::from_secs(0.1 * i as f64),
                sector: (i * 41 * 2048) % 2_000_000,
                sectors: 16,
                kind: VolumeIoKind::Read,
            })
            .collect();
        reqs.push(VolumeRequest {
            time: SimTime::from_secs(500.0),
            sector: 4096,
            sectors: 16,
            kind: VolumeIoKind::Read,
        });
        let trace = Trace::from_requests(reqs);
        let report = run_policy(
            config(),
            TpmPolicy::with_threshold(60.0),
            &trace,
            RunOptions::for_horizon(600.0),
        );
        let max = report.response_hist.observed_max().unwrap();
        assert!(
            max > 10.0,
            "late request should pay ~10.9s spin-up, max {max}"
        );
    }

    #[test]
    fn competitive_threshold_resolves_to_breakeven() {
        let trace = bursty_then_idle();
        let cfg = config();
        let mut p = TpmPolicy::competitive();
        // init() resolves the threshold; run through a simulation.
        let _ = &mut p;
        let pm = diskmodel::PowerModel::new(&cfg.spec);
        let expected = pm.breakeven_standby_s(cfg.spec.top_level());
        let report = run_policy(
            cfg,
            TpmPolicy::competitive(),
            &trace,
            RunOptions::for_horizon(60.0),
        );
        let _ = report;
        assert!(expected > 0.0);
    }
}
