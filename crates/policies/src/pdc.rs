//! PDC — Popular Data Concentration (after Pinheiro & Bianchini, ICS 2004).
//!
//! Periodically rank all data by recent popularity and pack the hottest
//! data onto the first disks, the coldest onto the last — then let a TPM
//! layer spin down whichever disks end up receiving no traffic. On skewed
//! workloads the cold tail concentrates real idleness onto the last disks,
//! which TPM alone could never find under striping.
//!
//! The known weakness (and the reason Hibernator exists): the *hot* disks
//! absorb nearly all the load at full speed, becoming a bottleneck, and
//! cold disks still stall 10.9 s whenever a cold read arrives.

use array::{ArrayState, ChunkId, DiskId, HeatMap, MigrationJob, PowerPolicy, RankScratch};
use diskmodel::SpinTarget;
use simkit::{SimDuration, SimTime};
use workload::VolumeRequest;

/// Tunables for [`PdcPolicy`].
#[derive(Debug, Clone)]
pub struct PdcConfig {
    /// How often the layout is re-ranked and reshaped.
    pub epoch: SimDuration,
    /// Idle threshold for the TPM layer, seconds; `None` = break-even.
    pub tpm_threshold_s: Option<f64>,
    /// Maximum chunks migrated per epoch (migration-bandwidth cap).
    pub migration_budget: usize,
    /// Popularity decay time constant.
    pub heat_tau: SimDuration,
}

impl Default for PdcConfig {
    fn default() -> Self {
        PdcConfig {
            epoch: SimDuration::from_hours(1.0),
            tpm_threshold_s: None,
            migration_budget: 512,
            heat_tau: SimDuration::from_hours(1.0),
        }
    }
}

/// The PDC baseline policy.
pub struct PdcPolicy {
    cfg: PdcConfig,
    heat: Option<HeatMap>,
    rank_scratch: RankScratch,
    tpm_threshold_s: f64,
    next_epoch: SimTime,
    tick: SimDuration,
}

impl PdcPolicy {
    /// Creates the policy with `cfg`.
    pub fn new(cfg: PdcConfig) -> Self {
        PdcPolicy {
            tick: SimDuration::from_secs(5.0),
            heat: None,
            rank_scratch: RankScratch::new(),
            tpm_threshold_s: 0.0,
            next_epoch: SimTime::ZERO,
            cfg,
        }
    }

    /// Plans the concentration moves for the current ranking: the hottest
    /// `per_disk` chunks target disk 0, the next disk 1, and so on.
    fn plan_epoch(&mut self, now: SimTime, state: &mut ArrayState) {
        let Some(heat) = &self.heat else { return };
        heat.ranking_into(now, &mut self.rank_scratch);
        let ranking = self.rank_scratch.ranked();
        let n = state.config.disks;
        let per_disk = ranking.len().div_ceil(n);
        let mut jobs: Vec<MigrationJob> = Vec::new();
        'outer: for (rank, &chunk) in ranking.iter().enumerate() {
            let target = DiskId((rank / per_disk).min(n - 1));
            if state.remap.disk_of(chunk) != target {
                jobs.push(MigrationJob::Relocate { chunk, dst: target });
                if jobs.len() >= self.cfg.migration_budget {
                    break 'outer;
                }
            }
        }
        state.migrator.clear_pending();
        state.migrator.enqueue(jobs);
    }
}

impl Default for PdcPolicy {
    fn default() -> Self {
        Self::new(PdcConfig::default())
    }
}

impl PowerPolicy for PdcPolicy {
    fn name(&self) -> &str {
        "PDC"
    }

    fn init(&mut self, now: SimTime, state: &mut ArrayState) {
        self.heat = Some(HeatMap::new(state.remap.chunks(), self.cfg.heat_tau));
        self.tpm_threshold_s = match self.cfg.tpm_threshold_s {
            Some(t) => t,
            None => state.disks[0]
                .power_model()
                .breakeven_standby_s(state.config.spec.top_level()),
        };
        self.next_epoch = now + self.cfg.epoch;
    }

    fn tick_interval(&self) -> Option<SimDuration> {
        Some(self.tick)
    }

    fn on_volume_arrival(
        &mut self,
        now: SimTime,
        _req: &VolumeRequest,
        chunks: &[ChunkId],
        _state: &mut ArrayState,
    ) {
        if let Some(heat) = &mut self.heat {
            for &c in chunks {
                heat.touch(now, c, 1.0);
            }
        }
    }

    fn on_tick(&mut self, now: SimTime, state: &mut ArrayState) {
        if now >= self.next_epoch {
            self.next_epoch = now + self.cfg.epoch;
            self.plan_epoch(now, state);
        }
        // TPM layer underneath.
        for i in 0..state.disks.len() {
            let d = &state.disks[i];
            if let Some(idle) = d.idle_duration(now) {
                if idle >= self.tpm_threshold_s && !d.is_standby() {
                    state.request_speed(now, i, SpinTarget::Standby);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use array::{run_policy, ArrayConfig, BasePolicy, RunOptions};
    use workload::WorkloadSpec;

    fn config() -> ArrayConfig {
        let mut c = ArrayConfig::default_for_volume(1 << 30);
        c.disks = 4;
        c
    }

    /// Strongly skewed, light workload over a 1 GiB footprint.
    fn skewed_trace(rate: f64, duration: f64) -> workload::Trace {
        let mut spec = WorkloadSpec::oltp(duration, rate);
        spec.extents = 512;
        spec.zipf_theta = 1.1;
        spec.generate(21)
    }

    fn fast_cfg() -> PdcConfig {
        PdcConfig {
            epoch: SimDuration::from_secs(120.0),
            tpm_threshold_s: Some(60.0),
            migration_budget: 512,
            heat_tau: SimDuration::from_secs(300.0),
        }
    }

    #[test]
    fn concentrates_hot_data_on_first_disks() {
        let trace = skewed_trace(20.0, 1200.0);
        let report = run_policy(
            config(),
            PdcPolicy::new(fast_cfg()),
            &trace,
            RunOptions::for_horizon(1800.0),
        );
        assert!(
            report.migration.committed > 50,
            "PDC must migrate, committed {}",
            report.migration.committed
        );
        // With the cold tail isolated, at least one disk slept.
        assert!(
            report.energy.joules(simkit::EnergyComponent::Standby) > 0.0,
            "cold disks should reach standby"
        );
    }

    #[test]
    fn saves_energy_on_skewed_light_load() {
        let trace = skewed_trace(10.0, 2400.0);
        let opts = RunOptions::for_horizon(3600.0);
        let pdc = run_policy(config(), PdcPolicy::new(fast_cfg()), &trace, opts.clone());
        let base = run_policy(config(), BasePolicy, &trace, opts);
        let savings = pdc.savings_vs(&base);
        assert!(savings > 0.1, "PDC savings {savings}");
        assert_eq!(pdc.completed, base.completed);
    }

    #[test]
    fn respects_migration_budget() {
        let trace = skewed_trace(20.0, 600.0);
        let mut cfg = fast_cfg();
        cfg.migration_budget = 10;
        let report = run_policy(
            config(),
            PdcPolicy::new(cfg),
            &trace,
            RunOptions::for_horizon(700.0),
        );
        // ≤ budget per epoch × (700/120 ≈ 5 epochs) + aborted few.
        assert!(
            report.migration.committed + report.migration.aborted <= 60,
            "budget exceeded: {:?}",
            report.migration
        );
    }
}
