//! DRPM — dynamic per-disk RPM modulation (after Gurumurthi et al.,
//! ISCA 2003).
//!
//! Each disk adjusts its own speed on a short control window from local
//! congestion feedback:
//!
//! * the array watches recent foreground response times; if they degrade
//!   past a tolerance over the control window, **every** disk snaps to
//!   full speed (DRPM's global performance valve);
//! * otherwise each disk steps *down* one level when its queue has stayed
//!   empty, and steps *up* one level when its queue is building.
//!
//! This is the fine-grained counterpoint to Hibernator's coarse epochs: it
//! reacts in seconds, pays many more spindle transitions, and has no
//! explicit response-time goal — only a relative degradation valve.

use array::{ArrayState, PowerPolicy};
use diskmodel::{Completion, SpeedLevel, SpinTarget};
use simkit::{SimDuration, SimTime, SlidingWindow};

/// Tunables for [`DrpmPolicy`].
#[derive(Debug, Clone)]
pub struct DrpmConfig {
    /// Control-window length (also the tick cadence).
    pub window: SimDuration,
    /// Queue length at/above which a disk steps up one level.
    pub queue_up: usize,
    /// Snap everything to full speed when the windowed mean response
    /// exceeds `degrade_factor ×` the long-run mean.
    pub degrade_factor: f64,
}

impl Default for DrpmConfig {
    fn default() -> Self {
        DrpmConfig {
            window: SimDuration::from_secs(10.0),
            queue_up: 2,
            degrade_factor: 1.5,
        }
    }
}

/// The DRPM baseline policy.
pub struct DrpmPolicy {
    cfg: DrpmConfig,
    window: SlidingWindow,
    long_run_mean: f64,
    long_run_count: u64,
}

impl DrpmPolicy {
    /// Creates the policy with `cfg`.
    pub fn new(cfg: DrpmConfig) -> Self {
        DrpmPolicy {
            window: SlidingWindow::new(cfg.window),
            cfg,
            long_run_mean: 0.0,
            long_run_count: 0,
        }
    }
}

impl Default for DrpmPolicy {
    fn default() -> Self {
        Self::new(DrpmConfig::default())
    }
}

impl PowerPolicy for DrpmPolicy {
    fn name(&self) -> &str {
        "DRPM"
    }

    fn tick_interval(&self) -> Option<SimDuration> {
        Some(self.cfg.window)
    }

    fn on_completion(
        &mut self,
        now: SimTime,
        _comp: &Completion,
        volume_response_s: Option<f64>,
        _state: &mut ArrayState,
    ) {
        if let Some(r) = volume_response_s {
            self.window.record(now, r);
            self.long_run_count += 1;
            self.long_run_mean += (r - self.long_run_mean) / self.long_run_count as f64;
        }
    }

    fn on_tick(&mut self, now: SimTime, state: &mut ArrayState) {
        let windowed = self.window.mean(now);
        let degraded = match windowed {
            Some(w) if self.long_run_count > 100 => {
                w > self.long_run_mean * self.cfg.degrade_factor
            }
            _ => false,
        };
        let top = state.config.spec.top_level();
        if degraded {
            for i in 0..state.disks.len() {
                state.request_speed(now, i, SpinTarget::Level(top));
            }
            return;
        }
        for i in 0..state.disks.len() {
            let d = &state.disks[i];
            let level = d.effective_level();
            if d.fg_queue_len() >= self.cfg.queue_up {
                if level < top {
                    state.request_speed(now, i, SpinTarget::Level(SpeedLevel(level.index() + 1)));
                }
            } else if d.fg_queue_len() == 0 && !d.is_busy() && level.index() > 0 {
                state.request_speed(now, i, SpinTarget::Level(SpeedLevel(level.index() - 1)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use array::{run_policy, ArrayConfig, BasePolicy, RunOptions};
    use workload::WorkloadSpec;

    fn config() -> ArrayConfig {
        let mut c = ArrayConfig::default_for_volume(1 << 30);
        c.disks = 4;
        c
    }

    fn light_trace() -> workload::Trace {
        let mut spec = WorkloadSpec::oltp(600.0, 4.0);
        spec.extents = 1000;
        spec.generate(8)
    }

    #[test]
    fn saves_energy_at_light_load() {
        let trace = light_trace();
        let opts = RunOptions::for_horizon(600.0);
        let drpm = run_policy(config(), DrpmPolicy::default(), &trace, opts.clone());
        let base = run_policy(config(), BasePolicy, &trace, opts);
        let savings = drpm.savings_vs(&base);
        assert!(
            savings > 0.2,
            "DRPM should save at light load, got {savings}"
        );
        assert_eq!(drpm.completed, base.completed);
    }

    #[test]
    fn pays_many_transitions() {
        let trace = light_trace();
        let report = run_policy(
            config(),
            DrpmPolicy::default(),
            &trace,
            RunOptions::for_horizon(600.0),
        );
        // Fine-grained control means frequent ramping: that is its signature.
        assert!(
            report.transitions > 8,
            "expected frequent ramping, got {}",
            report.transitions
        );
    }

    #[test]
    fn degrades_response_vs_base() {
        let mut spec = WorkloadSpec::oltp(600.0, 20.0);
        spec.extents = 1000;
        let trace = spec.generate(9);
        let opts = RunOptions::for_horizon(600.0);
        let drpm = run_policy(config(), DrpmPolicy::default(), &trace, opts.clone());
        let base = run_policy(config(), BasePolicy, &trace, opts);
        assert!(
            drpm.response.mean() > base.response.mean(),
            "slow service must show up in response time"
        );
    }

    #[test]
    fn heavy_queues_push_speed_back_up() {
        // High steady load: after the initial descent, queues force the
        // disks back toward full speed, so the mean response stays bounded.
        let mut spec = WorkloadSpec::oltp(300.0, 120.0);
        spec.extents = 1000;
        let trace = spec.generate(10);
        let report = run_policy(
            config(),
            DrpmPolicy::default(),
            &trace,
            RunOptions::for_horizon(330.0),
        );
        assert!(
            report.response.mean() < 1.0,
            "response collapsed: {} s",
            report.response.mean()
        );
        assert!(
            report.incomplete < 20,
            "queues diverged: {} incomplete",
            report.incomplete
        );
    }
}
