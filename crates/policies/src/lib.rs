//! # policies — the baseline energy-management schemes
//!
//! Faithful reimplementations (from their own papers' descriptions) of the
//! comparison points the Hibernator evaluation runs against:
//!
//! * [`FixedSpeed`] — every disk pinned at one level (sanity brackets);
//! * [`TpmPolicy`] — per-disk threshold spin-down to standby, with the
//!   competitive (break-even) threshold by default;
//! * [`DrpmPolicy`] — per-disk fine-grained RPM modulation with a global
//!   response-degradation valve (Gurumurthi et al., ISCA 2003);
//! * [`PdcPolicy`] — Popular Data Concentration: periodic popularity
//!   ranking packs hot data onto the first disks so TPM can sleep the rest
//!   (Pinheiro & Bianchini, ICS 2004);
//! * [`MaidPolicy`] — cache disks shield data disks, which run TPM
//!   (Colarelli & Grunwald, SC 2002).
//!
//! Alongside the baselines live the pluggable **migration policies** for
//! the Hibernator host (implementations of
//! [`hibernator::MigrationPolicy`], see `DESIGN.md` §17):
//!
//! * [`LfuPolicy`] — LFU promote/demote on decayed access counters;
//! * [`BanditPolicy`] — an ε-greedy/UCB learner that classifies each
//!   chunk's tier online from observed rewards;
//! * [`SleepScalePolicy`] — a SleepScale-style joint optimizer co-selecting
//!   disk speed *and* sleep state per epoch (Liu et al., ISCA 2014).
//!
//! The `Base` reference (all disks full speed) lives in
//! [`array::BasePolicy`]; the paper's own policy lives in the `hibernator`
//! crate.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod bandit;
mod drpm;
mod fixed;
mod lfu;
mod maid;
mod pdc;
mod sleepscale;
mod tpm;

pub use bandit::{BanditConfig, BanditPolicy};
pub use drpm::{DrpmConfig, DrpmPolicy};
pub use fixed::FixedSpeed;
pub use lfu::LfuPolicy;
pub use maid::{maid_array_config, MaidConfig, MaidPolicy};
pub use pdc::{PdcConfig, PdcPolicy};
pub use sleepscale::SleepScalePolicy;
pub use tpm::TpmPolicy;
