//! LFU promote/demote migration policy: frequency counters instead of the
//! analytic EWMA temperature.
//!
//! Every foreground access bumps a per-chunk counter; at each refresh
//! (gated by [`MigrationConfig::update_period`]) the counters are ranked
//! — most-frequently-used first — and halved, so the ranking tracks a
//! geometrically-weighted access history rather than all-time counts.
//! Moves route through the shared filtered planner: grace period,
//! in-flight dedupe, and count-scale promote/demote hysteresis (a chunk
//! must earn at least `promote_threshold` accesses per round to climb,
//! and drop to at most `demote_threshold` to sink).

use array::{ChunkId, MigrationJob};
use hibernator::{
    plan_migrations_filtered, GraceTracker, MigrationConfig, MigrationPolicy, PolicyDecisionInfo,
    PolicyObservation,
};
use simkit::SimTime;
use std::collections::BTreeMap;

/// The LFU promote/demote policy (see module docs).
pub struct LfuPolicy {
    cfg: MigrationConfig,
    /// chunk -> decayed access count.
    counts: BTreeMap<u32, f64>,
    /// Cached desired ranking (hottest first) and aligned scores from the
    /// last refresh.
    ranking: Vec<ChunkId>,
    scores: Vec<f64>,
    next_update: SimTime,
    grace: GraceTracker,
    last: Option<PolicyDecisionInfo>,
}

impl LfuPolicy {
    /// LFU with the shared adaptive defaults plus count-scale hysteresis:
    /// promote at ≥ 1 access per round, demote at ≤ 0.5 (i.e. no raw
    /// access since the last halving).
    pub fn new() -> LfuPolicy {
        let mut cfg = MigrationConfig::adaptive();
        cfg.promote_threshold = 1.0;
        cfg.demote_threshold = 0.5;
        LfuPolicy::with_config(cfg)
    }

    /// LFU with explicit shared config.
    pub fn with_config(cfg: MigrationConfig) -> LfuPolicy {
        LfuPolicy {
            cfg,
            counts: BTreeMap::new(),
            ranking: Vec::new(),
            scores: Vec::new(),
            next_update: SimTime::ZERO,
            grace: GraceTracker::new(),
            last: None,
        }
    }

    fn refresh(&mut self, now: SimTime, chunks: u32) {
        let mut scored: Vec<(ChunkId, f64)> = (0..chunks)
            .map(|c| (ChunkId(c), self.counts.get(&c).copied().unwrap_or(0.0)))
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0 .0.cmp(&b.0 .0)));
        self.ranking = scored.iter().map(|&(c, _)| c).collect();
        self.scores = scored.iter().map(|&(_, s)| s).collect();
        // Halve instead of reset: the ranking remembers past popularity
        // with geometric decay, like LFU-aging.
        for v in self.counts.values_mut() {
            *v *= 0.5;
        }
        self.counts.retain(|_, v| *v > 1e-6);
        self.next_update = now + self.cfg.update_period;
    }
}

impl Default for LfuPolicy {
    fn default() -> Self {
        LfuPolicy::new()
    }
}

impl MigrationPolicy for LfuPolicy {
    fn name(&self) -> &'static str {
        "lfu"
    }

    fn config(&self) -> &MigrationConfig {
        &self.cfg
    }

    fn observe_access(&mut self, _now: SimTime, chunk: ChunkId) {
        *self.counts.entry(chunk.0).or_insert(0.0) += 1.0;
    }

    fn propose(&mut self, obs: &PolicyObservation<'_>) -> Vec<MigrationJob> {
        self.grace.note_commits(obs.now, obs.state, self.cfg.grace);
        if self.ranking.len() != obs.state.remap.chunks() as usize || obs.now >= self.next_update {
            self.refresh(obs.now, obs.state.remap.chunks());
        }
        let out = plan_migrations_filtered(
            obs.state,
            &self.ranking,
            &self.scores,
            obs.disk_levels,
            &self.cfg,
            obs.budget,
            &mut self.grace,
            obs.now,
        );
        self.last = Some(PolicyDecisionInfo {
            policy: self.name(),
            moves: out.jobs.len() as u32,
            deferred_grace: out.deferred_grace,
            deferred_inflight: out.deferred_inflight,
            skipped_threshold: out.skipped_threshold,
            grace_s: self.cfg.grace.as_secs(),
            sleepers: 0,
        });
        out.jobs
    }

    fn decision(&self) -> Option<PolicyDecisionInfo> {
        self.last.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use array::{ArrayConfig, ArrayState, ArrayStats, MigrationEngine, RemapTable};
    use diskmodel::{Disk, SpeedLevel};
    use simkit::SimDuration;

    fn mk_state(disks: usize, chunks: u32) -> ArrayState {
        let mut config = ArrayConfig::default_for_volume(1 << 30);
        config.disks = disks;
        config.volume_chunks = chunks;
        let remap = RemapTable::striped(&config);
        let ds = (0..disks)
            .map(|i| Disk::new(i, &config.spec, 1, config.spec.top_level()))
            .collect();
        let stats = ArrayStats::new(config.spec.num_levels(), SimDuration::from_secs(60.0));
        ArrayState {
            config,
            disks: ds,
            remap,
            migrator: MigrationEngine::new(2),
            stats,
            telemetry: telemetry::Recorder::disabled(),
            wake_marks: array::WakeMarks::new(disks),
        }
    }

    #[test]
    fn frequent_chunks_rank_first_and_promote() {
        let state = mk_state(4, 16);
        let mut p = LfuPolicy::new();
        // Chunks 2 and 3 live on the slow disks under striping; hammer them.
        for _ in 0..50 {
            p.observe_access(SimTime::ZERO, ChunkId(2));
            p.observe_access(SimTime::ZERO, ChunkId(3));
        }
        let targets = vec![SpeedLevel(5), SpeedLevel(5), SpeedLevel(0), SpeedLevel(0)];
        let ranking: Vec<ChunkId> = (0..16).map(ChunkId).collect();
        let jobs = p.propose(&PolicyObservation {
            now: SimTime::ZERO,
            state: &state,
            ranking: &ranking,
            rates: &[],
            disk_levels: &targets,
            budget: 100,
            goal_s: 0.02,
        });
        assert_eq!(p.ranking[0], ChunkId(2));
        assert_eq!(p.ranking[1], ChunkId(3));
        let promoted: Vec<u32> = jobs
            .iter()
            .filter_map(|j| match j {
                MigrationJob::Relocate { chunk, dst } if dst.index() <= 1 => Some(chunk.0),
                _ => None,
            })
            .collect();
        assert!(
            promoted.contains(&2) && promoted.contains(&3),
            "{promoted:?}"
        );
    }

    #[test]
    fn unaccessed_chunks_never_promote() {
        let state = mk_state(4, 16);
        let mut p = LfuPolicy::new();
        // No accesses at all: every candidate promotion is below the
        // 1-access threshold, every demotion candidate is below 0.5 so
        // demotions still happen — but nothing may climb.
        let targets = vec![SpeedLevel(5), SpeedLevel(5), SpeedLevel(0), SpeedLevel(0)];
        let ranking: Vec<ChunkId> = (0..16).map(ChunkId).collect();
        let jobs = p.propose(&PolicyObservation {
            now: SimTime::ZERO,
            state: &state,
            ranking: &ranking,
            rates: &[],
            disk_levels: &targets,
            budget: 100,
            goal_s: 0.02,
        });
        for j in &jobs {
            if let MigrationJob::Relocate { chunk, dst } = j {
                let cur = state.remap.disk_of(*chunk);
                assert!(
                    targets[dst.index()].index() <= targets[cur.index()].index(),
                    "cold chunk {chunk:?} promoted to disk {dst:?}"
                );
            }
        }
    }

    #[test]
    fn counts_halve_each_refresh() {
        let mut p = LfuPolicy::new();
        p.observe_access(SimTime::ZERO, ChunkId(0));
        p.observe_access(SimTime::ZERO, ChunkId(0));
        p.refresh(SimTime::ZERO, 4);
        assert_eq!(p.counts.get(&0).copied(), Some(1.0));
        assert_eq!(p.scores[0], 2.0, "refresh ranks on pre-decay counts");
        p.refresh(SimTime::ZERO, 4);
        assert_eq!(p.counts.get(&0).copied(), Some(0.5));
    }
}
