//! Fixed-speed policies: upper/lower bounds for the comparison.
//!
//! [`FixedSpeed`] pins every disk at one level forever. With the bottom
//! level it is the energy *floor* among always-spinning schemes (and the
//! performance worst case); with the top level it is identical to
//! [`array::BasePolicy`]. Useful as a sanity bracket in every experiment.

use array::{ArrayState, PowerPolicy};
use diskmodel::{SpeedLevel, SpinTarget};
use simkit::SimTime;

/// Every disk pinned at `level`.
#[derive(Debug, Clone)]
pub struct FixedSpeed {
    level: SpeedLevel,
    name: String,
}

impl FixedSpeed {
    /// Creates the policy pinning all disks at `level`.
    pub fn new(level: SpeedLevel) -> Self {
        FixedSpeed {
            name: format!("Fixed(L{})", level.index()),
            level,
        }
    }

    /// Convenience: pinned at the slowest level.
    pub fn slowest() -> Self {
        Self::new(SpeedLevel(0))
    }
}

impl PowerPolicy for FixedSpeed {
    fn name(&self) -> &str {
        &self.name
    }

    fn init(&mut self, now: SimTime, state: &mut ArrayState) {
        assert!(
            self.level.index() < state.config.spec.num_levels(),
            "fixed level out of range"
        );
        for i in 0..state.disks.len() {
            state.request_speed(now, i, SpinTarget::Level(self.level));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use array::{run_policy, ArrayConfig, BasePolicy, RunOptions};
    use workload::WorkloadSpec;

    fn setup() -> (ArrayConfig, workload::Trace) {
        let mut config = ArrayConfig::default_for_volume(1 << 30);
        config.disks = 4;
        let mut spec = WorkloadSpec::oltp(60.0, 10.0);
        spec.extents = 1000;
        (config, spec.generate(3))
    }

    #[test]
    fn slow_fixed_saves_energy_and_costs_latency() {
        let (config, trace) = setup();
        let opts = RunOptions::for_horizon(120.0);
        let base = run_policy(config.clone(), BasePolicy, &trace, opts.clone());
        let slow = run_policy(config, FixedSpeed::new(SpeedLevel(0)), &trace, opts);
        assert!(slow.energy.total_joules() < base.energy.total_joules() * 0.6);
        assert!(slow.response.mean() > base.response.mean());
        assert_eq!(slow.completed, base.completed);
    }

    #[test]
    fn top_fixed_matches_base_energy() {
        let (config, trace) = setup();
        let opts = RunOptions::for_horizon(120.0);
        let base = run_policy(config.clone(), BasePolicy, &trace, opts.clone());
        let top = run_policy(config, FixedSpeed::new(SpeedLevel(5)), &trace, opts);
        let diff = (top.energy.total_joules() - base.energy.total_joules()).abs();
        assert!(diff < 1.0, "diff {diff} J");
    }

    #[test]
    fn name_reports_level() {
        assert_eq!(FixedSpeed::new(SpeedLevel(2)).name(), "Fixed(L2)");
        assert_eq!(FixedSpeed::slowest().name(), "Fixed(L0)");
    }
}
