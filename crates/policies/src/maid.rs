//! MAID — Massive Array of Idle Disks (after Colarelli & Grunwald, SC 2002).
//!
//! A few disks are dedicated *cache disks* that always spin at full speed
//! and hold copies of recently-read chunks (LRU). Data disks run a TPM
//! layer underneath. Read hits are served from the cache disks; misses go
//! to the data disk and promote a copy into the cache (modelled as one
//! background write — the data just passed through controller RAM). Writes
//! are write-through: they go to the data disk and refresh any cache copy.
//!
//! Configure the array with `stripe_width = disks − cache_disks` so the
//! initial layout leaves the cache disks (the **last** `cache_disks` of the
//! array) data-free.

use array::{ArrayState, ChunkId, DiskId, MigrationJob, PowerPolicy};
use cache::TierDirectory;
use diskmodel::{IoKind, SpinTarget};
use simkit::{SimDuration, SimTime};

/// Tunables for [`MaidPolicy`].
#[derive(Debug, Clone)]
pub struct MaidConfig {
    /// Number of cache disks (the last disks of the array).
    pub cache_disks: usize,
    /// Capacity of each cache disk, in chunks.
    pub cache_chunks_per_disk: u32,
    /// Idle threshold for the data-disk TPM layer, seconds; `None` =
    /// break-even.
    pub tpm_threshold_s: Option<f64>,
}

impl Default for MaidConfig {
    fn default() -> Self {
        MaidConfig {
            cache_disks: 2,
            cache_chunks_per_disk: 2048, // 2 GiB of 1 MiB chunks
            tpm_threshold_s: None,
        }
    }
}

/// The MAID baseline policy.
///
/// The cache-disk tier itself lives in [`cache::TierDirectory`] (shared
/// with the controller-cache subsystem); this policy owns the routing: hits
/// go to the tier disk, misses go home and promote a copy, writes go home
/// and refresh any tier copy.
pub struct MaidPolicy {
    cfg: MaidConfig,
    cache: Option<TierDirectory>,
    cache_disk_ids: Vec<DiskId>,
    tpm_threshold_s: f64,
    hits: u64,
    misses: u64,
}

impl MaidPolicy {
    /// Creates the policy with `cfg`.
    pub fn new(cfg: MaidConfig) -> Self {
        MaidPolicy {
            cfg,
            cache: None,
            cache_disk_ids: Vec::new(),
            tpm_threshold_s: 0.0,
            hits: 0,
            misses: 0,
        }
    }

    /// Read hit ratio so far.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Number of chunks currently cached.
    pub fn cached_chunks(&self) -> usize {
        self.cache.as_ref().map_or(0, |c| c.len())
    }
}

impl Default for MaidPolicy {
    fn default() -> Self {
        Self::new(MaidConfig::default())
    }
}

impl PowerPolicy for MaidPolicy {
    fn name(&self) -> &str {
        "MAID"
    }

    fn init(&mut self, _now: SimTime, state: &mut ArrayState) {
        let n = state.config.disks;
        assert!(
            self.cfg.cache_disks < n,
            "need at least one data disk ({n} disks, {} cache)",
            self.cfg.cache_disks
        );
        assert_eq!(
            state.config.effective_stripe_width(),
            n - self.cfg.cache_disks,
            "configure stripe_width = disks - cache_disks so cache disks hold no data"
        );
        self.cache_disk_ids = (n - self.cfg.cache_disks..n).map(DiskId).collect();
        let tier_ids: Vec<u32> = self.cache_disk_ids.iter().map(|d| d.0 as u32).collect();
        self.cache = Some(TierDirectory::new(
            &tier_ids,
            self.cfg.cache_chunks_per_disk,
        ));
        self.tpm_threshold_s = match self.cfg.tpm_threshold_s {
            Some(t) => t,
            None => state.disks[0]
                .power_model()
                .breakeven_standby_s(state.config.spec.top_level()),
        };
    }

    fn tick_interval(&self) -> Option<SimDuration> {
        Some(SimDuration::from_secs(5.0))
    }

    fn route(
        &mut self,
        _now: SimTime,
        chunk: ChunkId,
        _offset: u64,
        kind: IoKind,
        state: &mut ArrayState,
    ) -> Option<(DiskId, u64)> {
        let cache = self.cache.as_mut()?;
        let cs = state.config.chunk_sectors;
        let tier_chunk = chunk.0;
        match kind {
            IoKind::Read => match cache.lookup(tier_chunk) {
                Some((disk, slot)) => {
                    self.hits += 1;
                    Some((DiskId(disk as usize), u64::from(slot) * cs))
                }
                None => {
                    self.misses += 1;
                    // Miss: serve from the data disk, promote a copy.
                    let (disk, slot) = cache.insert(tier_chunk);
                    state.migrator.enqueue([MigrationJob::RawWrite {
                        disk: DiskId(disk as usize),
                        sector: u64::from(slot) * cs,
                        sectors: cs as u32,
                    }]);
                    None
                }
            },
            IoKind::Write => {
                // Write-through: data disk gets the foreground write; any
                // cache copy is refreshed in the background.
                if let Some((disk, slot)) = cache.lookup(tier_chunk) {
                    state.migrator.enqueue([MigrationJob::RawWrite {
                        disk: DiskId(disk as usize),
                        sector: u64::from(slot) * cs,
                        sectors: cs as u32,
                    }]);
                }
                None
            }
        }
    }

    fn on_tick(&mut self, now: SimTime, state: &mut ArrayState) {
        // TPM on data disks only; cache disks always spin.
        let data_disks = state.config.disks - self.cfg.cache_disks;
        for i in 0..data_disks {
            let d = &state.disks[i];
            if let Some(idle) = d.idle_duration(now) {
                if idle >= self.tpm_threshold_s && !d.is_standby() {
                    state.request_speed(now, i, SpinTarget::Standby);
                }
            }
        }
    }
}

/// Builds an [`array::ArrayConfig`] adjusted for MAID: the initial stripe
/// excludes the cache disks.
pub fn maid_array_config(mut config: array::ArrayConfig, cache_disks: usize) -> array::ArrayConfig {
    assert!(cache_disks < config.disks, "too many cache disks");
    config.stripe_width = Some(config.disks - cache_disks);
    config
}

#[cfg(test)]
mod tests {
    use super::*;
    use array::{run_policy, ArrayConfig, BasePolicy, RunOptions};
    use workload::WorkloadSpec;

    fn config() -> ArrayConfig {
        let mut c = ArrayConfig::default_for_volume(1 << 30);
        c.disks = 6;
        maid_array_config(c, 2)
    }

    fn skewed_trace(rate: f64, duration: f64) -> workload::Trace {
        let mut spec = WorkloadSpec::oltp(duration, rate);
        spec.extents = 512;
        spec.zipf_theta = 1.1;
        spec.generate(31)
    }

    fn maid() -> MaidPolicy {
        MaidPolicy::new(MaidConfig {
            cache_disks: 2,
            cache_chunks_per_disk: 128,
            tpm_threshold_s: Some(60.0),
        })
    }

    #[test]
    fn hot_reads_hit_cache_disks() {
        let trace = skewed_trace(30.0, 600.0);
        let mut policy = maid();
        // Run via the simulation; inspect hit ratio through a second run's
        // policy object (run_policy consumes it, so simulate inline).
        let sim = array::Simulation::new(config(), maid(), &trace, RunOptions::for_horizon(600.0));
        let report = sim.run();
        let _ = &mut policy;
        assert_eq!(report.incomplete, 0);
        // Promotions happened (raw writes to cache disks).
        assert!(
            report.migration.raw_writes > 10,
            "promotions expected, got {}",
            report.migration.raw_writes
        );
        // Cache disks (last two) did real foreground work: their transfer
        // energy is nonzero.
        let cache_active: f64 = report.per_disk_energy[4..]
            .iter()
            .map(|e| e.joules(simkit::EnergyComponent::Transfer))
            .sum();
        assert!(cache_active > 0.0, "cache disks served no reads");
    }

    #[test]
    fn data_disks_sleep_under_cache_shield() {
        // Highly skewed reads: after warm-up nearly everything hits cache,
        // so data disks idle long enough for the TPM layer.
        let mut spec = WorkloadSpec::oltp(1800.0, 10.0);
        spec.extents = 64; // tiny hot set: fits entirely in cache
        spec.zipf_theta = 1.2;
        spec.read_fraction = 1.0;
        let trace = spec.generate(32);
        let report = run_policy(config(), maid(), &trace, RunOptions::for_horizon(2400.0));
        assert!(
            report.energy.joules(simkit::EnergyComponent::Standby) > 0.0,
            "data disks should reach standby behind the cache"
        );
    }

    #[test]
    fn saves_energy_vs_base_on_cacheable_load() {
        let mut spec = WorkloadSpec::oltp(1800.0, 10.0);
        spec.extents = 64;
        spec.zipf_theta = 1.2;
        spec.read_fraction = 1.0;
        let trace = spec.generate(33);
        let opts = RunOptions::for_horizon(2400.0);
        let m = run_policy(config(), maid(), &trace, opts.clone());
        let base = run_policy(config(), BasePolicy, &trace, opts);
        assert!(
            m.savings_vs(&base) > 0.1,
            "MAID savings {}",
            m.savings_vs(&base)
        );
    }

    #[test]
    #[should_panic(expected = "stripe_width")]
    fn rejects_missing_stripe_adjustment() {
        let mut c = ArrayConfig::default_for_volume(1 << 30);
        c.disks = 6; // no stripe_width set
        let trace = skewed_trace(5.0, 10.0);
        let _ = run_policy(c, maid(), &trace, RunOptions::for_horizon(10.0));
    }
}
