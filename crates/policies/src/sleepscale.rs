//! SleepScale-style joint optimizer: co-selects disk *speed* and *sleep
//! state* per epoch from the observed arrival process (after Liu et al.,
//! "SleepScale: runtime joint speed scaling and sleep states management",
//! ISCA 2014 — applied here to multi-speed disk arrays).
//!
//! The analytic Hibernator treats sleep as a bolted-on extension: it first
//! picks per-level spin counts, then maybe parks the bottom tier. This
//! policy searches the joint space instead: for every candidate sleeper
//! count `k` it re-runs the speed allocator over the remaining
//! `alive − k` spinning disks, prices the cold tail's wake-up stalls and
//! wake energy into the predicted response and power, and adopts the
//! feasible combination with the lowest total power. `k = 0` always
//! remains a candidate, so the policy never does worse than pure speed
//! scaling by its own model.

use array::MigrationJob;
use diskmodel::SpeedLevel;
use hibernator::{
    plan_migrations_filtered, AllocationInput, GraceTracker, MigrationConfig, MigrationPolicy,
    PolicyDecisionInfo, PolicyObservation, SpeedObservation, SpeedPlan,
};

/// The SleepScale-style joint speed + sleep optimizer (see module docs).
pub struct SleepScalePolicy {
    cfg: MigrationConfig,
    grace: GraceTracker,
    /// Sleepers chosen by the last speed plan.
    last_sleepers: u32,
    last: Option<PolicyDecisionInfo>,
}

impl SleepScalePolicy {
    /// Joint optimizer with the shared adaptive migration defaults.
    pub fn new() -> SleepScalePolicy {
        SleepScalePolicy::with_config(MigrationConfig::adaptive())
    }

    /// Joint optimizer with explicit shared config.
    pub fn with_config(cfg: MigrationConfig) -> SleepScalePolicy {
        SleepScalePolicy {
            cfg,
            grace: GraceTracker::new(),
            last_sleepers: 0,
            last: None,
        }
    }
}

impl Default for SleepScalePolicy {
    fn default() -> Self {
        SleepScalePolicy::new()
    }
}

impl MigrationPolicy for SleepScalePolicy {
    fn name(&self) -> &'static str {
        "sleepscale"
    }

    fn config(&self) -> &MigrationConfig {
        &self.cfg
    }

    fn plan_speeds(&mut self, obs: &SpeedObservation<'_>) -> Option<SpeedPlan> {
        let alive = obs.input.disks;
        let rates = obs.input.chunk_rates; // sorted descending by the host
        let cpd = rates.len().div_ceil(alive).max(1);
        let pm = obs.state.disks[0].power_model();
        let standby_w = pm.standby_w();
        let wake = pm.spinup_from_standby(SpeedLevel(0));
        let total_rate: f64 = rates.iter().sum();

        // k = 0 baseline: exactly the analytic path (allocate, re-plan
        // under the cap only if busted), so the joint search can only
        // improve on pure speed scaling by its own model.
        let mut base = obs.allocator.allocate(obs.input, obs.estimator);
        if let Some(cap) = obs.power_cap {
            if base.predicted_power_w > cap {
                base = obs.allocator.allocate_capped(obs.input, obs.estimator, cap);
            }
        }
        let mut best_k = 0usize;
        let mut best_power = base.predicted_power_w;
        let mut best = base;

        for k in 1..alive {
            let spinning = alive - k;
            // The coldest k disk-shares go dark; their accesses pay a
            // wake-up stall and are then served by the spinning set.
            let hot_end = (spinning * cpd).min(rates.len());
            let hot = &rates[..hot_end];
            let cold_rate: f64 = rates[hot_end..].iter().sum();
            let hot_rate: f64 = hot.iter().sum();
            let input = AllocationInput {
                chunk_rates: hot,
                disks: spinning,
                goal_s: obs.input.goal_s,
            };
            let a = obs.allocator.allocate(&input, obs.estimator);
            if !a.feasible {
                continue;
            }
            let resp = if total_rate > 1e-12 {
                (hot_rate * a.predicted_response_s
                    + cold_rate * (wake.duration_s + a.predicted_response_s))
                    / total_rate
            } else {
                a.predicted_response_s
            };
            if resp > obs.input.goal_s {
                continue;
            }
            // Every cold access is priced at a full wake — pessimistic, so
            // sleepers are only chosen for genuinely cold tails.
            let power = a.predicted_power_w + k as f64 * standby_w + cold_rate * wake.energy_j;
            if obs.power_cap.is_some_and(|cap| power > cap) {
                continue;
            }
            if power < best_power {
                let mut joint = a;
                joint.per_level[0] += k; // sleepers park at the bottom slot
                joint.predicted_response_s = resp;
                joint.predicted_power_w = power;
                best_power = power;
                best_k = k;
                best = joint;
            }
        }
        self.last_sleepers = best_k as u32;
        Some(SpeedPlan {
            alloc: best,
            sleep_bottom: best_k > 0,
        })
    }

    fn propose(&mut self, obs: &PolicyObservation<'_>) -> Vec<MigrationJob> {
        self.grace.note_commits(obs.now, obs.state, self.cfg.grace);
        let out = plan_migrations_filtered(
            obs.state,
            obs.ranking,
            obs.rates,
            obs.disk_levels,
            &self.cfg,
            obs.budget,
            &mut self.grace,
            obs.now,
        );
        self.last = Some(PolicyDecisionInfo {
            policy: self.name(),
            moves: out.jobs.len() as u32,
            deferred_grace: out.deferred_grace,
            deferred_inflight: out.deferred_inflight,
            skipped_threshold: out.skipped_threshold,
            grace_s: self.cfg.grace.as_secs(),
            sleepers: self.last_sleepers,
        });
        out.jobs
    }

    fn decision(&self) -> Option<PolicyDecisionInfo> {
        self.last.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use array::{ArrayConfig, ArrayState, ArrayStats, MigrationEngine, RemapTable};
    use diskmodel::Disk;
    use hibernator::ServiceEstimator;
    use simkit::{SimDuration, SimTime};

    fn mk_state(disks: usize, chunks: u32) -> ArrayState {
        let mut config = ArrayConfig::default_for_volume(1 << 30);
        config.disks = disks;
        config.volume_chunks = chunks;
        let remap = RemapTable::striped(&config);
        let ds = (0..disks)
            .map(|i| Disk::new(i, &config.spec, 1, config.spec.top_level()))
            .collect();
        let stats = ArrayStats::new(config.spec.num_levels(), SimDuration::from_secs(60.0));
        ArrayState {
            config,
            disks: ds,
            remap,
            migrator: MigrationEngine::new(2),
            stats,
            telemetry: telemetry::Recorder::disabled(),
            wake_marks: array::WakeMarks::new(disks),
        }
    }

    fn harness(state: &ArrayState) -> (hibernator::SpeedAllocator, ServiceEstimator) {
        let levels = state.config.spec.num_levels();
        (
            hibernator::SpeedAllocator::new(state.disks[0].power_model(), levels),
            ServiceEstimator::new(state.disks[0].service_model(), levels, 16),
        )
    }

    /// A dead-cold tail puts disks to sleep; sum of per-level counts still
    /// covers every alive disk (the host's matching requires it).
    #[test]
    fn cold_tail_sleeps_and_counts_stay_covering() {
        let state = mk_state(4, 16);
        let (alloc, est) = harness(&state);
        // One lukewarm chunk, fifteen stone-cold ones, generous goal.
        let mut rates = vec![0.0; 16];
        rates[0] = 0.5;
        let input = AllocationInput {
            chunk_rates: &rates,
            disks: 4,
            goal_s: 1.0,
        };
        let mut p = SleepScalePolicy::new();
        let plan = p
            .plan_speeds(&SpeedObservation {
                now: SimTime::ZERO,
                input: &input,
                allocator: &alloc,
                estimator: &est,
                power_cap: None,
                state: &state,
                epoch_s: 7200.0,
            })
            .expect("sleepscale always plans");
        assert_eq!(plan.alloc.per_level.iter().sum::<usize>(), 4);
        assert!(plan.sleep_bottom, "a dead-cold tail should sleep");
        assert!(p.last_sleepers > 0);
        // Sleeping must beat the pure speed-scaling baseline on power.
        let base = alloc.allocate(&input, &est);
        assert!(
            plan.alloc.predicted_power_w < base.predicted_power_w,
            "joint {} W vs speed-only {} W",
            plan.alloc.predicted_power_w,
            base.predicted_power_w
        );
    }

    /// A hot uniform load keeps everything spinning: the joint plan
    /// degrades to exactly the analytic baseline.
    #[test]
    fn hot_load_falls_back_to_speed_scaling() {
        let state = mk_state(4, 16);
        let (alloc, est) = harness(&state);
        let rates = vec![20.0; 16];
        let input = AllocationInput {
            chunk_rates: &rates,
            disks: 4,
            goal_s: 0.02,
        };
        let mut p = SleepScalePolicy::new();
        let plan = p
            .plan_speeds(&SpeedObservation {
                now: SimTime::ZERO,
                input: &input,
                allocator: &alloc,
                estimator: &est,
                power_cap: None,
                state: &state,
                epoch_s: 7200.0,
            })
            .expect("plans");
        let base = alloc.allocate(&input, &est);
        assert!(!plan.sleep_bottom);
        assert_eq!(plan.alloc.per_level, base.per_level);
        assert_eq!(p.last_sleepers, 0);
    }

    /// The power cap filters sleeping candidates too: a cap between the
    /// baseline and a cheaper sleeping plan still admits the sleeper, and
    /// a cap below everything falls back to the capped analytic plan.
    #[test]
    fn power_cap_is_respected() {
        let state = mk_state(4, 16);
        let (alloc, est) = harness(&state);
        let mut rates = vec![0.0; 16];
        rates[0] = 0.5;
        let input = AllocationInput {
            chunk_rates: &rates,
            disks: 4,
            goal_s: 1.0,
        };
        let mut p = SleepScalePolicy::new();
        let free = p
            .plan_speeds(&SpeedObservation {
                now: SimTime::ZERO,
                input: &input,
                allocator: &alloc,
                estimator: &est,
                power_cap: None,
                state: &state,
                epoch_s: 7200.0,
            })
            .expect("plans");
        let capped = p
            .plan_speeds(&SpeedObservation {
                now: SimTime::ZERO,
                input: &input,
                allocator: &alloc,
                estimator: &est,
                power_cap: Some(free.alloc.predicted_power_w * 1.01),
                state: &state,
                epoch_s: 7200.0,
            })
            .expect("plans");
        assert!(capped.alloc.predicted_power_w <= free.alloc.predicted_power_w * 1.01 + 1e-9);
    }
}
