//! Contention-free sharded fleet state: tenant heat, tenant ownership,
//! and per-array draw observations.
//!
//! With hundreds of arrays stepped by persistent workers, every worker
//! wants to publish per-tenant completion heat and per-array power draw
//! each segment, and the controller wants to read it all back at epoch
//! boundaries. One mutex-guarded map would serialize exactly the part of
//! the run that is supposed to scale, so the map is sharded instead:
//!
//! * tenants hash to `shards` power-of-two shards by their **low bits**
//!   (`shard = t & mask`, `slot = t >> bits`), so consecutive tenant ids
//!   — which round-robin placement puts on *different* arrays — land in
//!   different shards and concurrent writers spread out;
//! * each shard's counters live in a contiguous span of one flat slab,
//!   with at least a cache line of dead slots between spans, so two
//!   workers hammering different shards never false-share a line;
//! * heat counters are plain `AtomicU64` adds (commutative, so the final
//!   value is schedule-independent); draw cells are one cache-line-padded
//!   `AtomicU64` (f64 bits) per array with a single writer each.
//!
//! Draining is deterministic by construction: [`ShardMap::drain_heat`]
//! walks shards in ascending shard index (slots ascending within each),
//! so the emitted order is a pure function of the tenant universe — never
//! of worker scheduling. Together with commutative adds this is what
//! keeps fleet output byte-identical at any `--jobs` value.
//!
//! Memory ordering: all operations are `Relaxed`. The driver only reads
//! across threads at epoch boundaries, after the per-worker mailbox
//! rendezvous ([`parallel::lockstep`]) has already established the
//! happens-before edge; the atomics only need to make the concurrent
//! *adds* themselves sound.

use crate::placement::TenantMove;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Target cache-line separation between shard spans, in bytes. 128 covers
/// the common 64 B line plus adjacent-line prefetchers.
const LINE_BYTES: usize = 128;

/// A per-array draw observation cell, padded to its own cache line(s)
/// (the `#[repr(align)]` makes every element of a slice start a new
/// line, so neighbouring arrays' single writers never share one).
#[repr(align(128))]
struct DrawCell(AtomicU64);

/// The sharded map. Created once per fleet run, written by workers,
/// drained by the controller at epoch boundaries.
pub struct ShardMap {
    /// log2(number of shards).
    bits: u32,
    /// `shards - 1`, for the low-bits slice.
    mask: u32,
    /// Tenant slots actually used per shard (`ceil(tenants / shards)`).
    slots: u32,
    /// Allocated slots per shard in `heat` (≥ `slots + 16`, multiple of
    /// 16 u64s = one 128 B line, so spans stay a line apart even though
    /// the slab's base is only 8-byte aligned).
    heat_stride: usize,
    /// Flat heat slab: shard `s`'s counters at `s * heat_stride ..`.
    heat: Box<[AtomicU64]>,
    /// Allocated slots per shard in `owners` (u32 slots; ≥ `slots + 32`,
    /// multiple of 32).
    owner_stride: usize,
    /// Flat owner slab, same sharding as `heat`.
    owners: Box<[AtomicU32]>,
    /// One padded draw cell per array (f64 bits; single writer each).
    draws: Box<[DrawCell]>,
    /// Tenant universe size.
    tenants: u32,
}

impl ShardMap {
    /// A map for `tenants` tenants across `arrays` arrays. The shard
    /// count is the tenant count's power-of-two ceiling clamped to
    /// [64, 1024] — small fleets still spread hot neighbours out, huge
    /// tenant universes stop growing the shard directory at 1024.
    pub fn new(tenants: u32, arrays: usize) -> ShardMap {
        assert!(tenants > 0, "need at least one tenant");
        assert!(arrays > 0, "need at least one array");
        let shards = tenants.next_power_of_two().clamp(64, 1024);
        let bits = shards.trailing_zeros();
        let slots = tenants.div_ceil(shards);
        let line_u64 = LINE_BYTES / 8;
        let line_u32 = LINE_BYTES / 4;
        let heat_stride = (slots as usize + line_u64).next_multiple_of(line_u64);
        let owner_stride = (slots as usize + line_u32).next_multiple_of(line_u32);
        let heat = (0..shards as usize * heat_stride)
            .map(|_| AtomicU64::new(0))
            .collect();
        let owners = (0..shards as usize * owner_stride)
            .map(|_| AtomicU32::new(0))
            .collect();
        let draws = (0..arrays).map(|_| DrawCell(AtomicU64::new(0))).collect();
        ShardMap {
            bits,
            mask: shards - 1,
            slots,
            heat_stride,
            heat,
            owner_stride,
            owners,
            draws,
            tenants,
        }
    }

    /// Number of shards (a power of two in [64, 1024]).
    pub fn shards(&self) -> usize {
        self.mask as usize + 1
    }

    /// Number of arrays (draw cells).
    pub fn arrays(&self) -> usize {
        self.draws.len()
    }

    /// Tenant universe size.
    pub fn tenants(&self) -> u32 {
        self.tenants
    }

    /// `(shard, slot)` of a tenant.
    #[inline]
    fn place(&self, tenant: u32) -> (usize, usize) {
        debug_assert!(tenant < self.tenants, "tenant {tenant} out of range");
        (
            (tenant & self.mask) as usize,
            (tenant >> self.bits) as usize,
        )
    }

    /// Adds `n` completions to a tenant's heat counter. Safe from any
    /// number of workers concurrently; adds commute, so the drained total
    /// is schedule-independent.
    #[inline]
    pub fn record_heat(&self, tenant: u32, n: u64) {
        let (shard, slot) = self.place(tenant);
        self.heat[shard * self.heat_stride + slot].fetch_add(n, Ordering::Relaxed);
    }

    /// Publishes array `array`'s trailing power observation, watts. Each
    /// array has exactly one writer (the worker that owns it).
    #[inline]
    pub fn record_draw(&self, array: usize, watts: f64) {
        self.draws[array]
            .0
            .store(watts.to_bits(), Ordering::Relaxed);
    }

    /// Array `array`'s last published draw, watts (0.0 before the first
    /// segment).
    #[inline]
    pub fn draw(&self, array: usize) -> f64 {
        f64::from_bits(self.draws[array].0.load(Ordering::Relaxed))
    }

    /// The array currently serving a tenant.
    #[inline]
    pub fn owner(&self, tenant: u32) -> u32 {
        let (shard, slot) = self.place(tenant);
        self.owners[shard * self.owner_stride + slot].load(Ordering::Relaxed)
    }

    /// Points a tenant at a new serving array.
    #[inline]
    pub fn set_owner(&self, tenant: u32, array: u32) {
        let (shard, slot) = self.place(tenant);
        self.owners[shard * self.owner_stride + slot].store(array, Ordering::Relaxed);
    }

    /// Seeds the owner table from a placement row (`row[tenant]` = array).
    /// Tenants at or past the row's end — the volume's folded tail, which
    /// request routing clamps onto the last placement tenant — take the
    /// row's last entry.
    ///
    /// # Panics
    /// Panics if the row is empty or longer than the tenant universe.
    pub fn seed_owners(&self, row: &[u32]) {
        assert!(!row.is_empty(), "placement row is empty");
        assert!(row.len() <= self.tenants as usize, "placement row too long");
        let last = *row.last().expect("non-empty row");
        for t in 0..self.tenants {
            self.set_owner(t, row.get(t as usize).copied().unwrap_or(last));
        }
    }

    /// Applies a batch of planned tenant moves to the owner table,
    /// checking each move's `from` side against the current owner.
    pub fn apply_moves(&self, moves: &[TenantMove]) {
        for m in moves {
            debug_assert_eq!(
                self.owner(m.tenant),
                m.from,
                "move of tenant {} departs from the wrong array",
                m.tenant
            );
            self.set_owner(m.tenant, m.to);
        }
    }

    /// Drains every heat counter to zero in **deterministic order** —
    /// ascending shard index, slots ascending within a shard — calling
    /// `f(tenant, heat)` for every tenant in the universe (including
    /// zero-heat ones, so the call sequence is a constant of the map).
    pub fn drain_heat(&self, mut f: impl FnMut(u32, u64)) {
        for shard in 0..self.shards() {
            let base = shard * self.heat_stride;
            for slot in 0..self.slots as usize {
                let tenant = ((slot as u32) << self.bits) | shard as u32;
                if tenant < self.tenants {
                    let h = self.heat[base + slot].swap(0, Ordering::Relaxed);
                    f(tenant, h);
                }
            }
        }
    }

    /// Drains heat into a dense per-tenant vector (resized to the tenant
    /// universe, previous contents overwritten) and returns the total.
    /// Allocation-free once `out` has reached capacity.
    pub fn drain_heat_into(&self, out: &mut Vec<u64>) -> u64 {
        out.clear();
        out.resize(self.tenants as usize, 0);
        let mut total = 0u64;
        self.drain_heat(|t, h| {
            out[t as usize] = h;
            total += h;
        });
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parallel::Pool;
    use std::collections::BTreeMap;

    #[test]
    fn shard_count_is_clamped_power_of_two() {
        assert_eq!(ShardMap::new(1, 1).shards(), 64);
        assert_eq!(ShardMap::new(8, 4).shards(), 64);
        assert_eq!(ShardMap::new(100, 4).shards(), 128);
        assert_eq!(ShardMap::new(512, 4).shards(), 512);
        assert_eq!(ShardMap::new(100_000, 4).shards(), 1024);
    }

    #[test]
    fn every_tenant_has_a_unique_slot() {
        for tenants in [1u32, 7, 64, 65, 100, 1000, 5000] {
            let m = ShardMap::new(tenants, 2);
            let mut seen = std::collections::BTreeSet::new();
            for t in 0..tenants {
                let (shard, slot) = m.place(t);
                assert!(slot < m.slots as usize, "slot {slot} of {}", m.slots);
                assert!(seen.insert((shard, slot)), "collision at tenant {t}");
            }
        }
    }

    #[test]
    fn spans_leave_a_cache_line_between_shards() {
        for tenants in [1u32, 64, 1000, 5000] {
            let m = ShardMap::new(tenants, 2);
            assert!(
                (m.heat_stride - m.slots as usize) * 8 >= LINE_BYTES,
                "heat spans touch: stride {} slots {}",
                m.heat_stride,
                m.slots
            );
            assert!(
                (m.owner_stride - m.slots as usize) * 4 >= LINE_BYTES,
                "owner spans touch: stride {} slots {}",
                m.owner_stride,
                m.slots
            );
            assert_eq!(m.heat_stride * 8 % LINE_BYTES, 0);
            assert_eq!(m.owner_stride * 4 % LINE_BYTES, 0);
        }
    }

    #[test]
    fn draw_cells_are_line_padded_single_slots() {
        assert_eq!(std::mem::size_of::<DrawCell>(), LINE_BYTES);
        let m = ShardMap::new(4, 3);
        m.record_draw(1, 42.5);
        assert_eq!(m.draw(0), 0.0);
        assert_eq!(m.draw(1), 42.5);
        assert_eq!(m.draw(2), 0.0);
    }

    #[test]
    fn drain_order_is_ascending_shard_then_slot() {
        // 100 tenants over 128 shards: tenants 0..100 map to shards
        // t % 128 == t, slot 0. Drain order must be ascending shard
        // index regardless of the order heat was recorded in.
        let m = ShardMap::new(100, 1);
        for t in (0..100u32).rev() {
            m.record_heat(t, u64::from(t) + 1);
        }
        let mut order = Vec::new();
        m.drain_heat(|t, h| order.push((t, h)));
        assert_eq!(order.len(), 100);
        let expected: Vec<(u32, u64)> = (0..100u32).map(|t| (t, u64::from(t) + 1)).collect();
        assert_eq!(order, expected, "drain must walk shards in order");
        // And with multiple slots per shard: 200 tenants over 64 shards
        // (clamp keeps 256 → no; 200.next_power_of_two() = 256) — use a
        // universe big enough to wrap: 3000 tenants, 1024 shards.
        let m = ShardMap::new(3000, 1);
        let mut order = Vec::new();
        m.drain_heat(|t, _| order.push(t));
        assert_eq!(order.len(), 3000);
        let mut expected: Vec<u32> = (0..3000).collect();
        expected.sort_by_key(|&t| (t & m.mask, t >> m.bits));
        assert_eq!(order, expected);
    }

    #[test]
    fn drain_resets_counters() {
        let m = ShardMap::new(16, 1);
        m.record_heat(3, 7);
        let mut out = Vec::new();
        assert_eq!(m.drain_heat_into(&mut out), 7);
        assert_eq!(out[3], 7);
        assert_eq!(m.drain_heat_into(&mut out), 0);
        assert!(out.iter().all(|&h| h == 0));
    }

    /// A deterministic splitmix-style step, for generating churn without
    /// any external RNG.
    fn mix(x: &mut u64) -> u64 {
        *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn concurrent_churn_matches_single_locked_reference() {
        // Oracle: J workers each run a deterministic op sequence against
        // the sharded map; the same sequences applied to a single-locked
        // BTreeMap must produce the same final heat *and* the same drain
        // sequence. Owner writes are partitioned (worker j owns tenants
        // with t % J == j) so the reference's final owner is well-defined;
        // heat adds overlap freely because addition commutes.
        const TENANTS: u32 = 777;
        const JOBS: usize = 4;
        const OPS: usize = 20_000;
        let map = ShardMap::new(TENANTS, JOBS);
        map.seed_owners(&vec![0u32; TENANTS as usize]);
        let pool = Pool::new(JOBS);
        pool.map(
            (0..JOBS)
                .map(|j| {
                    let map = &map;
                    move || {
                        let mut rng = j as u64 + 1;
                        for _ in 0..OPS {
                            let r = mix(&mut rng);
                            let t = (r % u64::from(TENANTS)) as u32;
                            if r >> 32 & 1 == 0 {
                                map.record_heat(t, 1 + (r >> 40));
                            } else {
                                let own = t - t % JOBS as u32 + j as u32;
                                if own < TENANTS {
                                    map.set_owner(own, (r >> 33) as u32 % 8);
                                }
                            }
                        }
                    }
                })
                .collect::<Vec<_>>(),
        );

        // Reference: one BTreeMap, the same op sequences replayed
        // serially (any interleaving gives this same final state).
        let mut heat_ref: BTreeMap<u32, u64> = BTreeMap::new();
        let mut owner_ref: BTreeMap<u32, u32> = (0..TENANTS).map(|t| (t, 0)).collect();
        for j in 0..JOBS {
            let mut rng = j as u64 + 1;
            for _ in 0..OPS {
                let r = mix(&mut rng);
                let t = (r % u64::from(TENANTS)) as u32;
                if r >> 32 & 1 == 0 {
                    *heat_ref.entry(t).or_insert(0) += 1 + (r >> 40);
                } else {
                    let own = t - t % JOBS as u32 + j as u32;
                    if own < TENANTS {
                        owner_ref.insert(own, (r >> 33) as u32 % 8);
                    }
                }
            }
        }

        // Same drain sequence: ascending (shard, slot), which we compute
        // for the reference from the map's own placement function (the
        // *order* contract) and its BTreeMap totals (the *value* oracle).
        let mut drained = Vec::new();
        map.drain_heat(|t, h| drained.push((t, h)));
        let mut expected: Vec<(u32, u64)> = (0..TENANTS)
            .map(|t| (t, heat_ref.get(&t).copied().unwrap_or(0)))
            .collect();
        expected.sort_by_key(|&(t, _)| (t & map.mask, t >> map.bits));
        assert_eq!(drained, expected);
        for t in 0..TENANTS {
            assert_eq!(map.owner(t), owner_ref[&t], "owner of tenant {t}");
        }
    }

    #[test]
    fn pool_interleaving_smoke_preserves_totals() {
        // Loom-free smoke: many pool workers hammering heat + draws; the
        // drained total must equal the exact number of adds, and each
        // draw cell must hold one of the values its single writer wrote.
        const TENANTS: u32 = 97;
        const JOBS: usize = 8;
        const ADDS: u64 = 5_000;
        let map = ShardMap::new(TENANTS, JOBS);
        let pool = Pool::new(JOBS);
        pool.map(
            (0..JOBS)
                .map(|j| {
                    let map = &map;
                    move || {
                        for i in 0..ADDS {
                            map.record_heat(((j as u64 * 31 + i) % u64::from(TENANTS)) as u32, 1);
                            map.record_draw(j, i as f64);
                        }
                    }
                })
                .collect::<Vec<_>>(),
        );
        let mut out = Vec::new();
        assert_eq!(map.drain_heat_into(&mut out), JOBS as u64 * ADDS);
        for j in 0..JOBS {
            assert_eq!(map.draw(j), (ADDS - 1) as f64, "last write of lane {j}");
        }
    }

    #[test]
    fn moves_update_owners_with_from_checked() {
        let m = ShardMap::new(8, 2);
        m.seed_owners(&[0, 1, 0, 1, 0, 1, 0, 1]);
        m.apply_moves(&[
            TenantMove {
                epoch: 1,
                tenant: 2,
                from: 0,
                to: 1,
            },
            TenantMove {
                epoch: 1,
                tenant: 3,
                from: 1,
                to: 0,
            },
        ]);
        assert_eq!(m.owner(2), 1);
        assert_eq!(m.owner(3), 0);
        assert_eq!(m.owner(0), 0);
    }
}
