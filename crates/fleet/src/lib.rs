//! # fleet — N arrays under one datacenter power cap
//!
//! The Hibernator policy manages one array; this crate manages a *fleet*
//! of them serving a shared multi-tenant workload under a global power
//! budget — the datacenter-scale setting where per-array greedy energy
//! decisions stop being enough (ROADMAP item 1; cf. SleepScale's
//! joint power-state management argument).
//!
//! Three pieces compose the subsystem:
//!
//! * [`BudgetSchedule`] — the datacenter budget as a step function of
//!   time; `None` spans mean unlimited.
//! * The **placement map** ([`plan_placement`]) — routes each tenant's
//!   slice of the shared trace to an array, with deterministic hot-tenant
//!   rebalancing at fleet-epoch boundaries. Placement is planned ahead of
//!   simulation from trace heat alone, so routing never depends on
//!   execution order.
//! * The **arbiter** inside [`run_fleet`] — between stepping segments it
//!   reads each array's trailing power observation, grants proportional
//!   per-array caps never exceeding the budget ([`proportional_caps`]),
//!   and feeds them to each policy's planner via
//!   `PowerPolicy::set_power_cap`.
//! * The [`ShardMap`] — power-of-two-sharded, cache-line-padded fleet
//!   state (per-tenant heat, per-array draw, the live owner table) that
//!   the array workers update contention-free with commutative atomic
//!   writes and the arbiter drains in fixed shard order.
//!
//! Arrays advance in lockstep fleet epochs via `Simulation::step_until`
//! on a **persistent worker team** ([`parallel::lockstep`]): each worker
//! owns its block of arrays for the whole run, commands and responses
//! ride depth-1 mailboxes, and the steady path of an epoch allocates
//! nothing. Because every cross-worker write commutes and every read is
//! drained in fixed order, results are bit-identical at any worker
//! count. A fleet of one array with an unlimited budget is bit-identical
//! to the plain single-array run — telemetry bytes included — locked by
//! `tests/fleet_equivalence.rs`.
//!
//! The rollup is a [`FleetReport`]: fleet energy vs integrated budget,
//! cap-violation time, per-tenant latency percentiles, request
//! conservation across placement, and a dedicated fleet event stream
//! (`fleet_epoch` / `cap_grant` / `tenant_move` / `fleet_end`) replayable
//! through [`telemetry::audit::audit_fleet_bytes`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod budget;
mod driver;
mod placement;
mod shardmap;

pub use budget::{proportional_caps, BudgetSchedule};
pub use driver::{run_fleet, EpochRecord, FleetReport, FleetSpec};
pub use placement::{plan_placement, PlacementPlan, TenantMove};
pub use shardmap::ShardMap;

#[cfg(test)]
mod tests {
    use super::*;
    use array::{ArrayConfig, BasePolicy, RunOptions};
    use parallel::Pool;
    use workload::WorkloadSpec;

    fn trace(seed: u64) -> workload::Trace {
        let mut spec = WorkloadSpec::oltp(600.0, 20.0);
        spec.extents = 1024;
        spec.generate(seed)
    }

    fn config() -> ArrayConfig {
        let mut c = ArrayConfig::default_for_volume(2 << 30);
        c.disks = 6;
        c
    }

    fn spec(arrays: usize, budget: BudgetSchedule) -> FleetSpec {
        let mut s = FleetSpec::new(arrays, 8, config(), RunOptions::for_horizon(600.0), budget);
        s.fleet_epoch = simkit::SimDuration::from_secs(120.0);
        s
    }

    #[test]
    fn requests_are_conserved_across_placement() {
        let tr = trace(3);
        let report = run_fleet(
            &spec(3, BudgetSchedule::unlimited()),
            &tr,
            &Pool::new(2),
            |_| BasePolicy,
        );
        assert_eq!(report.total_requests, tr.len() as u64);
        assert_eq!(report.routed_requests, report.total_requests);
        assert!(report.completed + report.incomplete <= report.routed_requests);
        assert!(report.completed > 0);
    }

    #[test]
    fn fleet_report_passes_its_own_audit() {
        let tr = trace(4);
        let report = run_fleet(
            &spec(4, BudgetSchedule::constant(400.0)),
            &tr,
            &Pool::new(2),
            |_| BasePolicy,
        );
        let audit = report.audit().expect("fleet stream parses");
        for c in &audit.checks {
            assert!(c.passed, "{} failed: {}", c.name, c.detail);
        }
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let tr = trace(5);
        let s = spec(4, BudgetSchedule::constant(500.0));
        let a = run_fleet(&s, &tr, &Pool::new(1), |_| BasePolicy);
        let b = run_fleet(&s, &tr, &Pool::new(4), |_| BasePolicy);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.fleet_energy_j, b.fleet_energy_j);
        assert_eq!(a.cap_violation_s, b.cap_violation_s);
        assert_eq!(a.fleet_stream.bytes, b.fleet_stream.bytes);
    }

    #[test]
    fn unlimited_budget_grants_nothing() {
        let tr = trace(6);
        let report = run_fleet(
            &spec(2, BudgetSchedule::unlimited()),
            &tr,
            &Pool::new(2),
            |_| BasePolicy,
        );
        assert!(report.budget_j.is_none());
        assert_eq!(report.cap_violation_s, 0.0);
        assert!((0..report.epochs.len()).all(|k| report.epoch_caps(k).is_empty()));
    }

    #[test]
    fn tight_budget_is_detected_not_silent() {
        // Base policy ignores caps entirely: with an absurdly tight
        // budget the fleet must overspend AND report violation time.
        let tr = trace(7);
        let report = run_fleet(
            &spec(3, BudgetSchedule::constant(20.0)),
            &tr,
            &Pool::new(2),
            |_| BasePolicy,
        );
        let bj = report.budget_j.expect("finite budget integrates");
        assert!(report.fleet_energy_j > bj, "Base cannot fit 20 W");
        assert!(report.cap_violation_s > 0.0, "overspend must be reported");
        let audit = report.audit().expect("parses");
        assert!(audit.passed(), "honest overspend passes the audit");
    }

    #[test]
    fn tenant_latency_covers_active_tenants() {
        let tr = trace(8);
        let report = run_fleet(
            &spec(2, BudgetSchedule::unlimited()),
            &tr,
            &Pool::new(2),
            |_| BasePolicy,
        );
        let served: u64 = report.tenant_latency.iter().map(|h| h.count()).sum();
        assert_eq!(served, report.completed, "every completion has a tenant");
        assert!(report.tenant_quantile(0, 0.5).is_some());
    }
}
