//! The tenant placement map: which array serves which tenant, per epoch.
//!
//! Placement is planned *ahead* of simulation from the trace's per-epoch
//! tenant heat (requests issued), so routing is a pure function of the
//! input — deterministic, jobs-invariant, and auditable. Epoch 0 stripes
//! tenants round-robin; each later epoch starts from the previous
//! placement and, when rebalancing is on, greedily moves the hottest
//! tenant off the hottest array onto the coldest one until the hottest
//! array is within 25 % of the mean load (or the per-epoch move budget
//! runs out). All ties break toward the lowest index, and a move is only
//! taken when it strictly reduces the maximum load, so the plan is stable
//! and never ping-pongs within an epoch.

/// One planned tenant relocation, effective for epoch `epoch`'s requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantMove {
    /// The fleet epoch the move takes effect in.
    pub epoch: usize,
    /// The tenant moved.
    pub tenant: u32,
    /// Array the tenant leaves.
    pub from: u32,
    /// Array the tenant joins.
    pub to: u32,
}

/// A fully planned placement: one `tenant → array` row per fleet epoch,
/// plus the move list that produced it.
#[derive(Debug, Clone)]
pub struct PlacementPlan {
    /// `rows[epoch][tenant]` is the serving array.
    pub rows: Vec<Vec<u32>>,
    /// Every rebalancing move, ascending by epoch.
    pub moves: Vec<TenantMove>,
}

/// The load imbalance threshold: rebalance while the hottest array holds
/// more than this multiple of the mean per-array load.
const IMBALANCE: f64 = 1.25;

/// Plans tenant placement from the per-epoch heat matrix
/// (`heat[epoch][tenant]` = request count, see
/// `workload::tenants::tenant_heat`). Epoch `k`'s row is derived from
/// epoch `k-1`'s observed heat — the planner never peeks at the epoch it
/// is placing, mirroring what an online rebalancer could know.
///
/// # Panics
/// Panics if `heat` is empty, ragged, or `arrays` is zero.
pub fn plan_placement(
    heat: &[Vec<u64>],
    arrays: usize,
    rebalance: bool,
    max_moves_per_epoch: usize,
) -> PlacementPlan {
    assert!(!heat.is_empty(), "need at least one epoch of heat");
    assert!(arrays > 0, "need at least one array");
    let tenants = heat[0].len();
    assert!(tenants > 0, "need at least one tenant");
    for row in heat {
        assert_eq!(row.len(), tenants, "ragged heat matrix");
    }

    let mut rows = Vec::with_capacity(heat.len());
    rows.push(
        (0..tenants)
            .map(|t| (t % arrays) as u32)
            .collect::<Vec<u32>>(),
    );
    let mut moves = Vec::new();

    for k in 1..heat.len() {
        let mut row = rows[k - 1].clone();
        if rebalance && arrays > 1 {
            let h = &heat[k - 1];
            let mut load = vec![0u64; arrays];
            for (t, &a) in row.iter().enumerate() {
                load[a as usize] += h[t];
            }
            let total: u64 = load.iter().sum();
            let mean = total as f64 / arrays as f64;
            let mut budget = max_moves_per_epoch;
            while budget > 0 && total > 0 {
                let hot = arg_extreme(&load, |a, b| a > b);
                let cold = arg_extreme(&load, |a, b| a < b);
                if hot == cold || (load[hot] as f64) <= IMBALANCE * mean {
                    break;
                }
                // Heaviest tenant on the hot array whose move strictly
                // shrinks the hot side (otherwise the same tenant would
                // slosh back and forth). Considering only tenants that fit
                // matters: the hottest tenant alone may be too heavy to
                // move — a "whale" — while a lighter one still shrinks
                // the max, so the whale must not stall the whole epoch.
                let mut best: Option<(u64, usize)> = None;
                for (t, &a) in row.iter().enumerate() {
                    if a as usize == hot
                        && h[t] > 0
                        && load[cold] + h[t] < load[hot]
                        && best.is_none_or(|(bh, _)| h[t] > bh)
                    {
                        best = Some((h[t], t));
                    }
                }
                // No movable tenant can improve the max: settle the epoch.
                let Some((th, t)) = best else { break };
                row[t] = cold as u32;
                load[hot] -= th;
                load[cold] += th;
                moves.push(TenantMove {
                    epoch: k,
                    tenant: t as u32,
                    from: hot as u32,
                    to: cold as u32,
                });
                budget -= 1;
            }
        }
        rows.push(row);
    }
    PlacementPlan { rows, moves }
}

/// Index of the extreme element under `better` (strict), lowest index on
/// ties.
fn arg_extreme(xs: &[u64], better: impl Fn(u64, u64) -> bool) -> usize {
    let mut ix = 0;
    for (i, &x) in xs.iter().enumerate().skip(1) {
        if better(x, xs[ix]) {
            ix = i;
        }
    }
    ix
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_epoch_is_round_robin() {
        let heat = vec![vec![5, 5, 5, 5, 5, 5]];
        let plan = plan_placement(&heat, 3, true, 8);
        assert_eq!(plan.rows, vec![vec![0, 1, 2, 0, 1, 2]]);
        assert!(plan.moves.is_empty());
    }

    #[test]
    fn single_array_never_moves() {
        let heat = vec![vec![100, 0, 0], vec![0, 100, 0], vec![0, 0, 100]];
        let plan = plan_placement(&heat, 1, true, 8);
        assert!(plan.moves.is_empty());
        assert!(plan.rows.iter().all(|r| r.iter().all(|&a| a == 0)));
    }

    #[test]
    fn hot_tenant_is_shed_to_the_coldest_array() {
        // Tenants 0 and 2 land on array 0 and run hot; array 1 is idle.
        let heat = vec![vec![90, 1, 40], vec![90, 1, 40]];
        let plan = plan_placement(&heat, 2, true, 8);
        assert_eq!(plan.rows[0], vec![0, 1, 0]);
        // Epoch 1 moves tenant 0 (the hottest) off array 0 (130 vs 1),
        // then tenant 1 back the other way: 40/91 → 41/90 still strictly
        // shrinks the max, and only then does the greedy settle.
        assert_eq!(
            plan.moves,
            vec![
                TenantMove {
                    epoch: 1,
                    tenant: 0,
                    from: 0,
                    to: 1,
                },
                TenantMove {
                    epoch: 1,
                    tenant: 1,
                    from: 1,
                    to: 0,
                },
            ]
        );
        assert_eq!(plan.rows[1], vec![1, 0, 0]);
    }

    #[test]
    fn rebalance_off_keeps_the_initial_stripe() {
        let heat = vec![vec![90, 1, 40], vec![90, 1, 40], vec![90, 1, 40]];
        let plan = plan_placement(&heat, 2, false, 8);
        assert!(plan.moves.is_empty());
        assert!(plan.rows.iter().all(|r| r == &plan.rows[0]));
    }

    #[test]
    fn move_budget_is_respected() {
        // Every tenant on array 0 is hot; only one move allowed per epoch.
        let heat = vec![vec![50, 50, 50, 50], vec![50, 50, 50, 50]];
        let mut skew = plan_placement(&heat, 4, true, 1);
        // Round-robin spreads 4 tenants over 4 arrays evenly: no moves.
        assert!(skew.moves.is_empty());
        // Force imbalance: 2 arrays, tenants 0 and 2 (then 1 and 3) pair up;
        // make one pair much hotter.
        let heat = vec![vec![100, 1, 100, 1], vec![100, 1, 100, 1]];
        skew = plan_placement(&heat, 2, true, 1);
        assert!(skew.moves.len() <= 1, "one move per epoch at budget 1");
    }

    #[test]
    fn whale_does_not_stall_movable_minnows() {
        // Regression: round-robin over 2 arrays puts the evens (whale +
        // minnows, load 1180) on array 0 and the odds (load 400) on
        // array 1. The hottest tenant — the 1000-heat whale — cannot
        // move: 400 + 1000 ≥ 1180 would just swap the imbalance. But
        // each 60-heat minnow strictly shrinks the max. The old planner
        // broke out as soon as the whale failed the fit check and moved
        // nothing; the fix sheds the minnows instead.
        let heat = vec![
            vec![1000, 100, 60, 100, 60, 100, 60, 100],
            vec![1000, 100, 60, 100, 60, 100, 60, 100],
        ];
        let plan = plan_placement(&heat, 2, true, 8);
        assert_eq!(plan.rows[0], vec![0, 1, 0, 1, 0, 1, 0, 1]);
        assert!(
            !plan.moves.is_empty(),
            "minnows must move even though the whale cannot"
        );
        assert!(
            plan.moves.iter().all(|m| m.tenant != 0),
            "the whale itself must stay put: {:?}",
            plan.moves
        );
        // The minnows all leave the whale's array and the epoch-1 max
        // load drops strictly below the starting 1180.
        let h = &heat[0];
        let mut load = [0u64; 2];
        for (t, &a) in plan.rows[1].iter().enumerate() {
            load[a as usize] += h[t];
        }
        assert!(
            load[0].max(load[1]) < 1180,
            "rebalance must shrink the max: {load:?}"
        );
    }

    #[test]
    fn moves_never_ping_pong_within_an_epoch() {
        // One dominant tenant: after it moves once, moving it back can
        // never shrink the max, so the epoch must settle.
        let heat = vec![vec![1000, 1, 1], vec![1000, 1, 1]];
        let plan = plan_placement(&heat, 2, true, 100);
        assert!(plan.moves.len() <= 1, "got {:?}", plan.moves);
    }
}
