//! The datacenter power budget as a step function over simulated time.

/// A piecewise-constant power budget: each step is `(from_s, watts)` and
/// holds until the next step; `None` watts means unlimited. The arbiter
/// samples it at fleet-epoch boundaries, so a step taking effect mid-epoch
/// is seen at the next boundary.
#[derive(Debug, Clone)]
pub struct BudgetSchedule {
    /// `(from_s, watts)` steps, ascending by `from_s`, first at 0.
    steps: Vec<(f64, Option<f64>)>,
}

impl BudgetSchedule {
    /// No budget at all: the arbiter never grants caps and the fleet
    /// behaves exactly like independent arrays.
    pub fn unlimited() -> BudgetSchedule {
        BudgetSchedule {
            steps: vec![(0.0, None)],
        }
    }

    /// A constant budget of `watts` over the whole run.
    ///
    /// # Panics
    /// Panics if `watts` is not finite and positive.
    pub fn constant(watts: f64) -> BudgetSchedule {
        assert!(watts.is_finite() && watts > 0.0, "bad budget {watts}");
        BudgetSchedule {
            steps: vec![(0.0, Some(watts))],
        }
    }

    /// A budget from explicit `(from_s, watts)` steps (`None` = unlimited
    /// during that span). Steps must start at 0 and ascend strictly.
    ///
    /// # Panics
    /// Panics on an empty list, a first step not at 0, a non-finite step
    /// time, non-ascending times, or a non-positive finite wattage.
    pub fn steps(steps: Vec<(f64, Option<f64>)>) -> BudgetSchedule {
        assert!(!steps.is_empty(), "budget needs at least one step");
        assert_eq!(steps[0].0, 0.0, "first budget step must start at t=0");
        // Times first: a NaN would otherwise fail the ascend comparison
        // with a misleading "must ascend" message, and an infinity would
        // slip through it entirely (the step could then never take effect,
        // or `budget_at` would misreport the final span).
        for &(t, w) in &steps {
            assert!(t.is_finite(), "budget step time {t} must be finite");
            if let Some(w) = w {
                assert!(w.is_finite() && w > 0.0, "bad budget {w} at t={t}");
            }
        }
        for w in steps.windows(2) {
            assert!(w[0].0 < w[1].0, "budget steps must ascend in time");
        }
        BudgetSchedule { steps }
    }

    /// The budget in force at time `t_s` (`None` = unlimited).
    pub fn budget_at(&self, t_s: f64) -> Option<f64> {
        let mut cur = self.steps[0].1;
        for &(from, w) in &self.steps {
            if from > t_s {
                break;
            }
            cur = w;
        }
        cur
    }

    /// True when no step ever imposes a finite budget (the arbiter stays
    /// fully inactive and a fleet of one is bit-identical to a solo run).
    pub fn is_unlimited(&self) -> bool {
        self.steps.iter().all(|&(_, w)| w.is_none())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_holds_everywhere() {
        let b = BudgetSchedule::constant(250.0);
        assert_eq!(b.budget_at(0.0), Some(250.0));
        assert_eq!(b.budget_at(1e9), Some(250.0));
        assert!(!b.is_unlimited());
    }

    #[test]
    fn unlimited_never_caps() {
        let b = BudgetSchedule::unlimited();
        assert_eq!(b.budget_at(123.0), None);
        assert!(b.is_unlimited());
    }

    #[test]
    fn steps_switch_at_their_instant() {
        let b = BudgetSchedule::steps(vec![
            (0.0, None),
            (100.0, Some(300.0)),
            (200.0, Some(150.0)),
        ]);
        assert_eq!(b.budget_at(99.9), None);
        assert_eq!(b.budget_at(100.0), Some(300.0));
        assert_eq!(b.budget_at(250.0), Some(150.0));
        assert!(!b.is_unlimited());
    }

    #[test]
    #[should_panic(expected = "ascend")]
    fn out_of_order_steps_panic() {
        let _ = BudgetSchedule::steps(vec![(0.0, None), (50.0, Some(1.0)), (50.0, Some(2.0))]);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn nan_step_time_panics_with_the_right_message() {
        // Regression: NaN used to trip the "ascend" assert instead,
        // pointing the caller at ordering rather than the bad time.
        let _ = BudgetSchedule::steps(vec![(0.0, None), (f64::NAN, Some(100.0))]);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn infinite_step_time_panics() {
        // Regression: +inf used to be silently accepted (it ascends).
        let _ = BudgetSchedule::steps(vec![(0.0, None), (f64::INFINITY, Some(100.0))]);
    }
}
