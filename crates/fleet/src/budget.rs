//! The datacenter power budget as a step function over simulated time.

/// A piecewise-constant power budget: each step is `(from_s, watts)` and
/// holds until the next step; `None` watts means unlimited. The arbiter
/// samples it at fleet-epoch boundaries, so a step taking effect mid-epoch
/// is seen at the next boundary.
#[derive(Debug, Clone)]
pub struct BudgetSchedule {
    /// `(from_s, watts)` steps, ascending by `from_s`, first at 0.
    steps: Vec<(f64, Option<f64>)>,
}

impl BudgetSchedule {
    /// No budget at all: the arbiter never grants caps and the fleet
    /// behaves exactly like independent arrays.
    pub fn unlimited() -> BudgetSchedule {
        BudgetSchedule {
            steps: vec![(0.0, None)],
        }
    }

    /// A constant budget of `watts` over the whole run.
    ///
    /// # Panics
    /// Panics if `watts` is not finite and positive.
    pub fn constant(watts: f64) -> BudgetSchedule {
        assert!(watts.is_finite() && watts > 0.0, "bad budget {watts}");
        BudgetSchedule {
            steps: vec![(0.0, Some(watts))],
        }
    }

    /// A budget from explicit `(from_s, watts)` steps (`None` = unlimited
    /// during that span). Steps must start at 0 and ascend strictly.
    ///
    /// # Panics
    /// Panics on an empty list, a first step not at 0, a non-finite step
    /// time, non-ascending times, or a non-positive finite wattage.
    pub fn steps(steps: Vec<(f64, Option<f64>)>) -> BudgetSchedule {
        assert!(!steps.is_empty(), "budget needs at least one step");
        assert_eq!(steps[0].0, 0.0, "first budget step must start at t=0");
        // Times first: a NaN would otherwise fail the ascend comparison
        // with a misleading "must ascend" message, and an infinity would
        // slip through it entirely (the step could then never take effect,
        // or `budget_at` would misreport the final span).
        for &(t, w) in &steps {
            assert!(t.is_finite(), "budget step time {t} must be finite");
            if let Some(w) = w {
                assert!(w.is_finite() && w > 0.0, "bad budget {w} at t={t}");
            }
        }
        for w in steps.windows(2) {
            assert!(w[0].0 < w[1].0, "budget steps must ascend in time");
        }
        BudgetSchedule { steps }
    }

    /// The budget in force at time `t_s` (`None` = unlimited).
    pub fn budget_at(&self, t_s: f64) -> Option<f64> {
        let mut cur = self.steps[0].1;
        for &(from, w) in &self.steps {
            if from > t_s {
                break;
            }
            cur = w;
        }
        cur
    }

    /// True when no step ever imposes a finite budget (the arbiter stays
    /// fully inactive and a fleet of one is bit-identical to a solo run).
    pub fn is_unlimited(&self) -> bool {
        self.steps.iter().all(|&(_, w)| w.is_none())
    }
}

/// Splits a finite budget `b` into per-array caps proportional to each
/// array's observed draw plus 1 W of smoothing (so a sleeping array is
/// never granted exactly zero), writing them into `caps` (cleared first;
/// allocation-free once it has capacity).
///
/// The raw proportional shares are `b * (observed[i] + 1) / (Σobserved +
/// n)` — mathematically they sum to `b`, but each share rounds
/// independently, and at 256 arrays the accumulated rounding can push the
/// floating-point *sum* of grants above the budget (the fleet auditor's
/// grant-conservation check compares exactly that sum). So each grant is
/// clamped against the running remainder: `Σ caps`, evaluated as the
/// sequential f64 sum in array order, never exceeds `b`.
pub fn proportional_caps(b: f64, observed: &[f64], caps: &mut Vec<f64>) {
    debug_assert!(b.is_finite() && b > 0.0, "bad budget {b}");
    caps.clear();
    let demand: f64 = observed.iter().sum();
    let weight_total = demand + observed.len() as f64;
    let mut granted = 0.0f64;
    for &o in observed {
        let mut cap = (b * (o + 1.0) / weight_total).min(b - granted).max(0.0);
        // `granted + (b - granted)` can still round up past `b`; walk the
        // grant down by ulps until the sequential sum fits (each step is
        // one `next_down`, and `granted + 0 <= b` holds inductively, so
        // this terminates in a couple of iterations at most).
        while granted + cap > b {
            cap = cap.next_down().max(0.0);
        }
        caps.push(cap);
        granted += cap;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_holds_everywhere() {
        let b = BudgetSchedule::constant(250.0);
        assert_eq!(b.budget_at(0.0), Some(250.0));
        assert_eq!(b.budget_at(1e9), Some(250.0));
        assert!(!b.is_unlimited());
    }

    #[test]
    fn unlimited_never_caps() {
        let b = BudgetSchedule::unlimited();
        assert_eq!(b.budget_at(123.0), None);
        assert!(b.is_unlimited());
    }

    #[test]
    fn steps_switch_at_their_instant() {
        let b = BudgetSchedule::steps(vec![
            (0.0, None),
            (100.0, Some(300.0)),
            (200.0, Some(150.0)),
        ]);
        assert_eq!(b.budget_at(99.9), None);
        assert_eq!(b.budget_at(100.0), Some(300.0));
        assert_eq!(b.budget_at(250.0), Some(150.0));
        assert!(!b.is_unlimited());
    }

    #[test]
    #[should_panic(expected = "ascend")]
    fn out_of_order_steps_panic() {
        let _ = BudgetSchedule::steps(vec![(0.0, None), (50.0, Some(1.0)), (50.0, Some(2.0))]);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn nan_step_time_panics_with_the_right_message() {
        // Regression: NaN used to trip the "ascend" assert instead,
        // pointing the caller at ordering rather than the bad time.
        let _ = BudgetSchedule::steps(vec![(0.0, None), (f64::NAN, Some(100.0))]);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn infinite_step_time_panics() {
        // Regression: +inf used to be silently accepted (it ascends).
        let _ = BudgetSchedule::steps(vec![(0.0, None), (f64::INFINITY, Some(100.0))]);
    }

    /// Deterministic splitmix-style generator for the property sweep.
    fn mix(x: &mut u64) -> u64 {
        *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn proportional_caps_never_oversubscribe_the_budget() {
        // Property sweep over the fleet sizes the scaling bench runs:
        // whatever the draw profile, the *sequential f64 sum* of grants
        // (exactly what the auditor recomputes) must never exceed the
        // budget, and no grant may be negative. Adversarial draw values
        // — tiny, huge, mixed magnitudes — maximize rounding pressure.
        let mut rng = 0xF1EE7u64;
        for arrays in [1usize, 7, 64, 256] {
            for case in 0..200 {
                let b = match case % 4 {
                    0 => 1e-3,
                    1 => 250.0,
                    2 => 1e6,
                    _ => 100.0 + (mix(&mut rng) % 100_000) as f64 / 7.0,
                };
                let observed: Vec<f64> = (0..arrays)
                    .map(|_| {
                        let r = mix(&mut rng);
                        match r % 5 {
                            0 => 0.0,
                            1 => (r >> 40) as f64 * 1e-9,
                            2 => (r % 1000) as f64,
                            3 => (r % 7) as f64 * 1e7,
                            _ => (r % 313) as f64 + 0.3333333,
                        }
                    })
                    .collect();
                let mut caps = Vec::new();
                proportional_caps(b, &observed, &mut caps);
                assert_eq!(caps.len(), arrays);
                let mut sum = 0.0f64;
                for (i, &c) in caps.iter().enumerate() {
                    assert!(c >= 0.0, "negative cap {c} at array {i}");
                    assert!(c <= b, "cap {c} alone exceeds budget {b}");
                    sum += c;
                }
                assert!(
                    sum <= b,
                    "grants oversubscribe: {sum} > {b} at {arrays} arrays (case {case})"
                );
                // The clamp must not starve the fleet either: everything
                // the raw shares wanted (≈ b) is still granted up to
                // rounding — within a relative 1e-9 of the budget.
                assert!(
                    sum >= b * (1.0 - 1e-9),
                    "clamp starved the fleet: {sum} of {b}"
                );
            }
        }
    }

    #[test]
    fn proportional_caps_match_the_raw_formula_when_rounding_is_benign() {
        // The clamp is a last-ulp guard, not a reallocation: in a typical
        // case every grant equals the textbook share exactly.
        let observed = vec![50.0, 30.0, 0.0, 20.0];
        let mut caps = Vec::new();
        proportional_caps(104.0, &observed, &mut caps);
        let total = 100.0 + 4.0;
        for (i, &o) in observed.iter().enumerate() {
            let raw = 104.0 * (o + 1.0) / total;
            assert!(
                (caps[i] - raw).abs() <= raw * 1e-12 + 1e-12,
                "cap {} vs raw {raw}",
                caps[i]
            );
        }
    }

    #[test]
    fn single_array_cap_is_clamped_to_the_budget() {
        // arrays = 1: the raw share is b*(o+1)/(o+1), which can round one
        // ulp above b for adversarial observations; the clamp pins it.
        let mut rng = 7u64;
        for _ in 0..1000 {
            let o = (mix(&mut rng) % 10_000) as f64 / 3.0;
            let b = 100.0 + (mix(&mut rng) % 1000) as f64 / 7.0;
            let mut caps = Vec::new();
            proportional_caps(b, &[o], &mut caps);
            assert!(caps[0] <= b);
            assert!(caps[0] >= b * (1.0 - 1e-9));
        }
    }
}
