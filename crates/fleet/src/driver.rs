//! The fleet driver: shard, step, arbitrate, roll up.
//!
//! Arrays are stepped by **persistent workers** ([`parallel::lockstep`]):
//! each worker owns a contiguous block of array simulations for the whole
//! run and serves one segment command per fleet epoch, so the lockstep
//! barrier costs two mailbox hops per worker per epoch — no thread
//! spawn/join, no simulation teardown, no trace re-materialization. All
//! cross-thread fleet state (per-tenant heat, per-array draw, the live
//! owner table) lives in a [`ShardMap`], written contention-free by the
//! workers and drained deterministically by the controller at epoch
//! boundaries. The steady path of an epoch allocates nothing: command and
//! grant buffers ping-pong between controller and workers, and every
//! controller-side vector is preallocated from the epoch count.

use crate::budget::{proportional_caps, BudgetSchedule};
use crate::placement::{plan_placement, PlacementPlan};
use crate::shardmap::ShardMap;
use array::{ArrayConfig, PowerPolicy, RunOptions, RunReport, Simulation};
use parallel::Pool;
use simkit::{LatencyHistogram, SimDuration, SimTime};
use telemetry::audit::{audit_fleet_bytes, AuditError, RunAudit};
use telemetry::{Event, RunStream};
use workload::{tenants, Trace};

/// Decorrelates per-array seeds without touching array 0's (so a fleet of
/// one simulates the exact single-array run).
const SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Everything that defines a fleet run besides the trace and policies.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    /// Number of arrays under management.
    pub arrays: usize,
    /// Tenant universe: the shared volume is viewed as `tenants` shards of
    /// [`FleetSpec::tenant_sectors`] sectors each (plus a folded tail).
    pub tenants: u32,
    /// Volume sectors per tenant shard.
    pub tenant_sectors: u64,
    /// Per-array configuration; array `i` runs it with a decorrelated
    /// seed (array 0's seed is untouched).
    pub config: ArrayConfig,
    /// Per-array run options; the driver derives each array's label
    /// (`"{base}/a{i}"` when `arrays > 1`) and tenant sharding from it.
    pub opts: RunOptions,
    /// The datacenter power budget the arbiter enforces.
    pub budget: BudgetSchedule,
    /// Arbiter/placement cadence: caps are re-granted and tenants may
    /// move at every multiple of this.
    pub fleet_epoch: SimDuration,
    /// Whether the placement map rebalances hot tenants at epoch
    /// boundaries.
    pub rebalance: bool,
    /// Maximum tenant moves per epoch boundary.
    pub max_moves_per_epoch: usize,
}

impl FleetSpec {
    /// A spec with the common defaults: 10-minute fleet epochs,
    /// rebalancing on (up to 4 moves per boundary), tenants sized so the
    /// volume splits into `tenants` equal shards.
    pub fn new(
        arrays: usize,
        tenants: u32,
        config: ArrayConfig,
        opts: RunOptions,
        budget: BudgetSchedule,
    ) -> FleetSpec {
        assert!(arrays > 0, "need at least one array");
        assert!(tenants > 0, "need at least one tenant");
        let tenant_sectors = (config.volume_sectors() / u64::from(tenants)).max(1);
        FleetSpec {
            arrays,
            tenants,
            tenant_sectors,
            config,
            opts,
            budget,
            fleet_epoch: SimDuration::from_mins(10.0),
            rebalance: true,
            max_moves_per_epoch: 4,
        }
    }

    /// The tenant-id universe the sims can actually produce: the spec's
    /// `tenants` plus any folded-tail ids past the last full shard
    /// (`sector / tenant_sectors` is unclamped on the recording side).
    fn tenant_universe(&self) -> u32 {
        let top = (self.config.volume_sectors().saturating_sub(1)) / self.tenant_sectors;
        (top as u32 + 1).max(self.tenants)
    }
}

/// One fleet-epoch boundary's arbiter decision, for reporting. Caps are
/// held flat in the report ([`FleetReport::epoch_caps`]), so records stay
/// `Copy` and recording an epoch allocates nothing.
#[derive(Debug, Clone, Copy)]
pub struct EpochRecord {
    /// Zero-based fleet epoch.
    pub epoch: u32,
    /// Boundary instant, seconds.
    pub start_s: f64,
    /// Budget in force (`None` = unlimited).
    pub budget_w: Option<f64>,
    /// Sum of observed per-array power at the boundary, watts.
    pub demand_w: f64,
    /// Tenant moves taking effect this epoch.
    pub moves: u32,
    /// True when observed fleet power still exceeded the budget at the
    /// *end* of this epoch's segment (this is what accrues
    /// [`FleetReport::cap_violation_s`]).
    pub violated: bool,
    /// Volume requests the fleet completed during this epoch's segment
    /// (drained from the shard map's heat counters; epoch sums add up to
    /// [`FleetReport::completed`] exactly).
    pub completed: u64,
    /// Whether caps were granted at this boundary.
    granted: bool,
    /// Start of this epoch's grant slice in the report's flat cap store.
    caps_start: usize,
}

/// The fleet-level rollup of one run.
#[derive(Debug)]
pub struct FleetReport {
    /// Per-array run reports, in array order (each carries its own
    /// telemetry stream when capture was enabled).
    pub arrays: Vec<RunReport>,
    /// Total energy across every array, joules.
    pub fleet_energy_j: f64,
    /// Integrated budget over the horizon, joules (`None` = unlimited).
    pub budget_j: Option<f64>,
    /// Seconds of simulated time spent with observed fleet power above
    /// the budget (measured at segment ends).
    pub cap_violation_s: f64,
    /// Completed volume requests, fleet-wide.
    pub completed: u64,
    /// Requests still in flight at the horizon, fleet-wide.
    pub incomplete: u64,
    /// Requests in the shared input trace.
    pub total_requests: u64,
    /// Requests the placement map routed to arrays (conservation: must
    /// equal [`FleetReport::total_requests`]).
    pub routed_requests: u64,
    /// Tenant moves performed.
    pub tenant_moves: u64,
    /// Per-tenant response histograms merged across arrays.
    pub tenant_latency: Vec<LatencyHistogram>,
    /// The arbiter's decision log, one record per fleet epoch.
    pub epochs: Vec<EpochRecord>,
    /// The placement rows used (`rows[epoch][tenant]` = array).
    pub placement: PlacementPlan,
    /// The serialized fleet event stream (tags `fleet_epoch`, `cap_grant`,
    /// `tenant_move`, `fleet_end`) — separate from the per-array streams.
    pub fleet_stream: RunStream,
    /// Every granted cap, flat in (epoch, array) order; sliced per epoch
    /// by [`FleetReport::epoch_caps`].
    granted_caps: Vec<f64>,
}

impl FleetReport {
    /// Replays the fleet stream through the fleet auditor.
    pub fn audit(&self) -> Result<RunAudit, AuditError> {
        audit_fleet_bytes(&self.fleet_stream.bytes)
    }

    /// A response-time quantile for one tenant, seconds (`None` if the
    /// tenant completed nothing).
    pub fn tenant_quantile(&self, tenant: usize, q: f64) -> Option<f64> {
        self.tenant_latency.get(tenant)?.quantile(q)
    }

    /// The caps granted at epoch `epoch`'s boundary, one per array in
    /// array order — empty when the budget was unlimited there.
    pub fn epoch_caps(&self, epoch: usize) -> &[f64] {
        let e = &self.epochs[epoch];
        if e.granted {
            &self.granted_caps[e.caps_start..e.caps_start + self.arrays.len()]
        } else {
            &[]
        }
    }
}

/// What a segment command tells the workers to do about power caps.
#[derive(Clone, Copy)]
enum CapMode {
    /// Leave every policy's cap as it is (unlimited budget, nothing
    /// granted before — the solo-bit-identity path never touches caps).
    Keep,
    /// Clear a previously granted cap on every array.
    Lift,
    /// Apply the per-array caps carried by the command.
    Grant,
}

/// One lockstep command: step every owned array to `limit`, after
/// applying `mode` (with `caps` holding this worker's grant slice when
/// granting). The cap buffer rides back in the response, so the pair
/// ping-pongs between controller and worker without reallocation.
struct SegCmd {
    limit: SimTime,
    mode: CapMode,
    caps: Vec<f64>,
}

/// A worker's reply: the recycled cap buffer. Draw, heat, and completion
/// data travel through the [`ShardMap`] instead.
struct SegRsp {
    caps: Vec<f64>,
}

/// One worker's persistent state: a contiguous block of arrays plus the
/// snapshot scratch used to turn per-tenant completion counts into
/// per-epoch deltas.
struct Block<'a, P: PowerPolicy> {
    /// Global index of `sims[0]`.
    first: usize,
    sims: Vec<Simulation<'a, P>>,
    /// Per-sim previous tenant-completion snapshot.
    prev: Vec<Vec<u64>>,
    /// Snapshot scratch, reused across sims and epochs.
    cur: Vec<u64>,
}

/// Runs a fleet: shards the shared trace by the planned placement, steps
/// every array in lockstep fleet epochs on a persistent worker team
/// (`pool` only supplies the worker count), lets the arbiter observe and
/// re-grant power caps between segments, and rolls the per-array reports
/// up into a [`FleetReport`].
///
/// Workers publish draw and heat into a [`ShardMap`] with commutative
/// atomic writes and the controller drains it in fixed shard order, so
/// results are bit-identical at any worker count.
///
/// `make_policy(i)` builds array `i`'s policy; policies are constructed
/// serially in array order.
pub fn run_fleet<P, F>(spec: &FleetSpec, trace: &Trace, pool: &Pool, make_policy: F) -> FleetReport
where
    P: PowerPolicy + Send,
    F: Fn(usize) -> P,
{
    assert!(spec.arrays > 0, "need at least one array");
    assert!(spec.tenants > 0, "need at least one tenant");
    assert!(spec.tenant_sectors > 0, "tenant shards must be non-empty");
    let horizon_s = spec.opts.horizon.as_secs();
    let epoch_s = spec.fleet_epoch.as_secs();
    assert!(epoch_s > 0.0, "fleet epoch must be positive");
    let num_epochs = ((horizon_s / epoch_s).ceil() as usize).max(1);

    // Plan placement ahead of simulation from the trace's heat alone.
    let heat = tenants::tenant_heat(
        trace,
        spec.tenants,
        spec.tenant_sectors,
        epoch_s,
        num_epochs,
    );
    let placement = plan_placement(&heat, spec.arrays, spec.rebalance, spec.max_moves_per_epoch);
    // One routing pass for conservation accounting and allocation hints;
    // the arrays then *stream* their shards from the shared trace in
    // place (see [`tenants::ShardStream`]) — nothing is cloned per array.
    let counts = tenants::shard_counts(
        trace,
        &placement.rows,
        spec.tenant_sectors,
        epoch_s,
        spec.arrays,
    );
    let routed_requests: u64 = counts.iter().sum();

    // One simulation per array. Array 0 keeps the spec's seed and label
    // verbatim, so a fleet of one is the exact single-array run.
    let sims: Vec<Simulation<'_, P>> = (0..spec.arrays)
        .map(|i| {
            let mut config = spec.config.clone();
            config.seed = config
                .seed
                .wrapping_add((i as u64).wrapping_mul(SEED_STRIDE));
            let mut opts = spec.opts.clone();
            opts.tenant_sectors = Some(spec.tenant_sectors);
            if spec.arrays > 1 {
                if let Some(t) = opts.telemetry.as_mut() {
                    t.label = format!("{}/a{i}", t.label);
                }
            }
            let shard = tenants::ShardStream::new(
                trace,
                &placement.rows,
                i as u32,
                spec.tenant_sectors,
                epoch_s,
            )
            .with_len_hint(counts[i] as usize);
            Simulation::from_source(config, make_policy(i), shard, opts)
        })
        .collect();

    // The shared fleet state: per-tenant heat, per-array draw, the live
    // owner table. Workers write contention-free; the controller drains
    // in fixed shard order at epoch boundaries.
    let shard = ShardMap::new(spec.tenant_universe(), spec.arrays);
    shard.seed_owners(&placement.rows[0]);

    // Partition arrays into contiguous per-worker blocks.
    let workers = pool.workers().min(spec.arrays);
    let mut blocks: Vec<Block<'_, P>> = Vec::with_capacity(workers);
    let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(workers);
    {
        let base = spec.arrays / workers;
        let rem = spec.arrays % workers;
        let mut sims = sims.into_iter();
        let mut first = 0usize;
        for w in 0..workers {
            let len = base + usize::from(w < rem);
            blocks.push(Block {
                first,
                sims: sims.by_ref().take(len).collect(),
                prev: (0..len).map(|_| Vec::new()).collect(),
                cur: Vec::new(),
            });
            ranges.push((first, len));
            first += len;
        }
    }

    let fleet_label = match &spec.opts.telemetry {
        Some(t) => format!("{}/fleet", t.label),
        None => "fleet".to_string(),
    };
    // Preallocate the stream generously enough that steady-state epochs
    // never grow it (~160 bytes covers the widest event line).
    let grant_lines = if spec.budget.is_unlimited() {
        0
    } else {
        num_epochs * spec.arrays
    };
    let mut fleet_bytes: Vec<u8> =
        Vec::with_capacity(160 * (2 * num_epochs + grant_lines + placement.moves.len() + 2));
    let emit = |ev: Event, bytes: &mut Vec<u8>| {
        ev.write_jsonl(bytes).expect("write to Vec cannot fail");
    };

    // Controller-side per-run scratch, all preallocated: nothing in the
    // epoch loop allocates (locked by `tests/fleet_alloc.rs`).
    let mut budget_j: Option<f64> = Some(0.0);
    let mut cap_violation_s = 0.0;
    let mut caps_active = false;
    let mut epochs: Vec<EpochRecord> = Vec::with_capacity(num_epochs);
    let mut move_ix = 0usize;
    let mut observed: Vec<f64> = Vec::with_capacity(spec.arrays);
    let mut grant_buf: Vec<f64> = Vec::with_capacity(spec.arrays);
    let mut granted_caps: Vec<f64> = Vec::with_capacity(grant_lines);
    let mut heat_scratch: Vec<u64> = Vec::with_capacity(spec.tenant_universe() as usize);
    let mut lane_caps: Vec<Vec<f64>> = ranges
        .iter()
        .map(|&(_, len)| Vec::with_capacity(len))
        .collect();

    // Per-epoch worker body: apply the cap action, step to the limit,
    // then publish draw and per-tenant completion deltas into the map.
    let serve = |_w: usize, block: &mut Block<'_, P>, cmd: SegCmd| {
        let SegCmd { limit, mode, caps } = cmd;
        for (i, sim) in block.sims.iter_mut().enumerate() {
            match mode {
                CapMode::Grant => sim.set_power_cap(Some(caps[i])),
                CapMode::Lift => sim.set_power_cap(None),
                CapMode::Keep => {}
            }
            sim.step_until(limit);
            shard.record_draw(block.first + i, sim.observed_power_w());
            sim.tenant_completed_into(&mut block.cur);
            let prev = &mut block.prev[i];
            for (t, &c) in block.cur.iter().enumerate() {
                let p = prev.get(t).copied().unwrap_or(0);
                if c > p {
                    shard.record_heat(t as u32, c - p);
                }
            }
            prev.clear();
            prev.extend_from_slice(&block.cur);
        }
        SegRsp { caps }
    };
    // Hang-up finalizer: finish every owned sim on the worker's thread,
    // so report construction parallelizes like the stepping did.
    let finish = |_w: usize, block: Block<'_, P>| -> Vec<(RunReport, P)> {
        block.sims.into_iter().map(Simulation::finish).collect()
    };

    let ((), finished) = parallel::lockstep(blocks, serve, finish, |team| {
        for k in 0..num_epochs {
            let start_s = k as f64 * epoch_s;
            let end_s = ((k + 1) as f64 * epoch_s).min(horizon_s);
            let seg_len = end_s - start_s;
            let budget_w = spec.budget.budget_at(start_s);
            match budget_w {
                Some(b) => {
                    if let Some(acc) = budget_j.as_mut() {
                        *acc += b * seg_len;
                    }
                }
                None => budget_j = None,
            }

            // Observe trailing per-array power (each array's last sample,
            // published to its draw cell at the end of the previous
            // segment — zero before the first) in ascending array order,
            // so the demand sum is bit-identical at any worker count.
            observed.clear();
            for i in 0..spec.arrays {
                observed.push(shard.draw(i));
            }
            let demand_w: f64 = observed.iter().sum();
            emit(
                Event::FleetEpoch {
                    time_s: start_s,
                    epoch: k as u32,
                    arrays: spec.arrays as u32,
                    budget_w,
                    demand_w,
                },
                &mut fleet_bytes,
            );

            // Grant caps proportional to observed demand (1 W smoothing
            // keeps a sleeping array from being granted exactly zero; the
            // running clamp keeps the grant sum inside the budget).
            let granted = budget_w.is_some();
            let caps_start = granted_caps.len();
            let mode = match budget_w {
                Some(b) => {
                    proportional_caps(b, &observed, &mut grant_buf);
                    for (i, &cap) in grant_buf.iter().enumerate() {
                        emit(
                            Event::CapGrant {
                                time_s: start_s,
                                array: i as u32,
                                cap_w: cap,
                                observed_w: observed[i],
                            },
                            &mut fleet_bytes,
                        );
                    }
                    granted_caps.extend_from_slice(&grant_buf);
                    caps_active = true;
                    CapMode::Grant
                }
                None => {
                    // Lift stale caps — but never touch a fleet that was
                    // never capped (bit-identity with the solo run).
                    if caps_active {
                        caps_active = false;
                        CapMode::Lift
                    } else {
                        CapMode::Keep
                    }
                }
            };

            // Tenant moves taking effect this epoch.
            let move_start = move_ix;
            let mut moves = 0u32;
            while move_ix < placement.moves.len() && placement.moves[move_ix].epoch == k {
                let m = placement.moves[move_ix];
                emit(
                    Event::TenantMove {
                        time_s: start_s,
                        tenant: m.tenant,
                        from_array: m.from,
                        to_array: m.to,
                    },
                    &mut fleet_bytes,
                );
                moves += 1;
                move_ix += 1;
            }
            shard.apply_moves(&placement.moves[move_start..move_ix]);
            debug_assert!(
                {
                    let row = &placement.rows[k.min(placement.rows.len() - 1)];
                    row.iter()
                        .enumerate()
                        .all(|(t, &a)| shard.owner(t as u32) == a)
                },
                "owner table diverged from the placement plan at epoch {k}"
            );

            // Dispatch the segment to every worker, then collect. The
            // grant buffers ping-pong: sliced out of `grant_buf` here,
            // returned by the worker in its response.
            let limit = SimTime::from_secs(end_s);
            for (w, &(start, len)) in ranges.iter().enumerate() {
                let mut caps = std::mem::take(&mut lane_caps[w]);
                if matches!(mode, CapMode::Grant) {
                    caps.clear();
                    caps.extend_from_slice(&grant_buf[start..start + len]);
                }
                team.send(w, SegCmd { limit, mode, caps });
            }
            for (w, lane) in lane_caps.iter_mut().enumerate() {
                *lane = team.recv(w).caps;
            }

            // Retrospective violation accounting: the trailing observation
            // at the segment's end reflects power *during* it.
            let mut post_demand = 0.0f64;
            for i in 0..spec.arrays {
                post_demand += shard.draw(i);
            }
            let violated = budget_w.is_some_and(|b| post_demand > b * (1.0 + 1e-9));
            if violated {
                cap_violation_s += seg_len;
            }
            let completed = shard.drain_heat_into(&mut heat_scratch);
            epochs.push(EpochRecord {
                epoch: k as u32,
                start_s,
                budget_w,
                demand_w,
                moves,
                violated,
                completed,
                granted,
                caps_start,
            });
        }
    });
    let reports: Vec<RunReport> = finished
        .into_iter()
        .flatten()
        .map(|(report, _)| report)
        .collect();

    let fleet_energy_j: f64 = reports.iter().map(|r| r.energy.total_joules()).sum();
    let completed: u64 = reports.iter().map(|r| r.completed).sum();
    let incomplete: u64 = reports.iter().map(|r| r.incomplete).sum();
    let mut tenant_latency: Vec<LatencyHistogram> = Vec::new();
    for r in &reports {
        if tenant_latency.len() < r.tenant_latency.len() {
            tenant_latency.resize_with(r.tenant_latency.len(), LatencyHistogram::new_latency);
        }
        for (acc, h) in tenant_latency.iter_mut().zip(&r.tenant_latency) {
            acc.merge(h);
        }
    }

    let tenant_moves = placement.moves.len() as u64;
    emit(
        Event::FleetSummary {
            time_s: horizon_s,
            total_j: fleet_energy_j,
            budget_j,
            cap_violation_s,
            completed,
            incomplete,
            total_requests: trace.len() as u64,
            routed_requests,
            tenant_moves,
        },
        &mut fleet_bytes,
    );

    FleetReport {
        arrays: reports,
        fleet_energy_j,
        budget_j,
        cap_violation_s,
        completed,
        incomplete,
        total_requests: trace.len() as u64,
        routed_requests,
        tenant_moves,
        tenant_latency,
        epochs,
        placement,
        fleet_stream: RunStream {
            label: fleet_label,
            bytes: fleet_bytes,
        },
        granted_caps,
    }
}
