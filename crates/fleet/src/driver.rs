//! The fleet driver: shard, step, arbitrate, roll up.

use crate::budget::BudgetSchedule;
use crate::placement::{plan_placement, PlacementPlan};
use array::{ArrayConfig, PowerPolicy, RunOptions, RunReport, Simulation};
use parallel::Pool;
use simkit::{LatencyHistogram, SimDuration, SimTime};
use telemetry::audit::{audit_fleet_bytes, AuditError, RunAudit};
use telemetry::{Event, RunStream};
use workload::{tenants, Trace};

/// Decorrelates per-array seeds without touching array 0's (so a fleet of
/// one simulates the exact single-array run).
const SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Everything that defines a fleet run besides the trace and policies.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    /// Number of arrays under management.
    pub arrays: usize,
    /// Tenant universe: the shared volume is viewed as `tenants` shards of
    /// [`FleetSpec::tenant_sectors`] sectors each (plus a folded tail).
    pub tenants: u32,
    /// Volume sectors per tenant shard.
    pub tenant_sectors: u64,
    /// Per-array configuration; array `i` runs it with a decorrelated
    /// seed (array 0's seed is untouched).
    pub config: ArrayConfig,
    /// Per-array run options; the driver derives each array's label
    /// (`"{base}/a{i}"` when `arrays > 1`) and tenant sharding from it.
    pub opts: RunOptions,
    /// The datacenter power budget the arbiter enforces.
    pub budget: BudgetSchedule,
    /// Arbiter/placement cadence: caps are re-granted and tenants may
    /// move at every multiple of this.
    pub fleet_epoch: SimDuration,
    /// Whether the placement map rebalances hot tenants at epoch
    /// boundaries.
    pub rebalance: bool,
    /// Maximum tenant moves per epoch boundary.
    pub max_moves_per_epoch: usize,
}

impl FleetSpec {
    /// A spec with the common defaults: 10-minute fleet epochs,
    /// rebalancing on (up to 4 moves per boundary), tenants sized so the
    /// volume splits into `tenants` equal shards.
    pub fn new(
        arrays: usize,
        tenants: u32,
        config: ArrayConfig,
        opts: RunOptions,
        budget: BudgetSchedule,
    ) -> FleetSpec {
        assert!(arrays > 0, "need at least one array");
        assert!(tenants > 0, "need at least one tenant");
        let tenant_sectors = (config.volume_sectors() / u64::from(tenants)).max(1);
        FleetSpec {
            arrays,
            tenants,
            tenant_sectors,
            config,
            opts,
            budget,
            fleet_epoch: SimDuration::from_mins(10.0),
            rebalance: true,
            max_moves_per_epoch: 4,
        }
    }
}

/// One fleet-epoch boundary's arbiter decision, for reporting.
#[derive(Debug, Clone)]
pub struct EpochRecord {
    /// Zero-based fleet epoch.
    pub epoch: u32,
    /// Boundary instant, seconds.
    pub start_s: f64,
    /// Budget in force (`None` = unlimited).
    pub budget_w: Option<f64>,
    /// Sum of observed per-array power at the boundary, watts.
    pub demand_w: f64,
    /// Granted per-array caps (empty when the budget was unlimited).
    pub caps_w: Vec<f64>,
    /// Tenant moves taking effect this epoch.
    pub moves: u32,
    /// True when observed fleet power still exceeded the budget at the
    /// *end* of this epoch's segment (this is what accrues
    /// [`FleetReport::cap_violation_s`]).
    pub violated: bool,
}

/// The fleet-level rollup of one run.
#[derive(Debug)]
pub struct FleetReport {
    /// Per-array run reports, in array order (each carries its own
    /// telemetry stream when capture was enabled).
    pub arrays: Vec<RunReport>,
    /// Total energy across every array, joules.
    pub fleet_energy_j: f64,
    /// Integrated budget over the horizon, joules (`None` = unlimited).
    pub budget_j: Option<f64>,
    /// Seconds of simulated time spent with observed fleet power above
    /// the budget (measured at segment ends).
    pub cap_violation_s: f64,
    /// Completed volume requests, fleet-wide.
    pub completed: u64,
    /// Requests still in flight at the horizon, fleet-wide.
    pub incomplete: u64,
    /// Requests in the shared input trace.
    pub total_requests: u64,
    /// Requests the placement map routed to arrays (conservation: must
    /// equal [`FleetReport::total_requests`]).
    pub routed_requests: u64,
    /// Tenant moves performed.
    pub tenant_moves: u64,
    /// Per-tenant response histograms merged across arrays.
    pub tenant_latency: Vec<LatencyHistogram>,
    /// The arbiter's decision log, one record per fleet epoch.
    pub epochs: Vec<EpochRecord>,
    /// The placement rows used (`rows[epoch][tenant]` = array).
    pub placement: PlacementPlan,
    /// The serialized fleet event stream (tags `fleet_epoch`, `cap_grant`,
    /// `tenant_move`, `fleet_end`) — separate from the per-array streams.
    pub fleet_stream: RunStream,
}

impl FleetReport {
    /// Replays the fleet stream through the fleet auditor.
    pub fn audit(&self) -> Result<RunAudit, AuditError> {
        audit_fleet_bytes(&self.fleet_stream.bytes)
    }

    /// A response-time quantile for one tenant, seconds (`None` if the
    /// tenant completed nothing).
    pub fn tenant_quantile(&self, tenant: usize, q: f64) -> Option<f64> {
        self.tenant_latency.get(tenant)?.quantile(q)
    }
}

/// Runs a fleet: shards the shared trace by the planned placement, steps
/// every array in lockstep fleet epochs on `pool` (deterministic ordered
/// merges — results are bit-identical at any worker count), lets the
/// arbiter observe and re-grant power caps between segments, and rolls
/// the per-array reports up into a [`FleetReport`].
///
/// `make_policy(i)` builds array `i`'s policy; policies are constructed
/// serially in array order.
pub fn run_fleet<P, F>(spec: &FleetSpec, trace: &Trace, pool: &Pool, make_policy: F) -> FleetReport
where
    P: PowerPolicy + Send,
    F: Fn(usize) -> P,
{
    assert!(spec.arrays > 0, "need at least one array");
    assert!(spec.tenants > 0, "need at least one tenant");
    assert!(spec.tenant_sectors > 0, "tenant shards must be non-empty");
    let horizon_s = spec.opts.horizon.as_secs();
    let epoch_s = spec.fleet_epoch.as_secs();
    assert!(epoch_s > 0.0, "fleet epoch must be positive");
    let num_epochs = ((horizon_s / epoch_s).ceil() as usize).max(1);

    // Plan placement ahead of simulation from the trace's heat alone.
    let heat = tenants::tenant_heat(
        trace,
        spec.tenants,
        spec.tenant_sectors,
        epoch_s,
        num_epochs,
    );
    let placement = plan_placement(&heat, spec.arrays, spec.rebalance, spec.max_moves_per_epoch);
    // One routing pass for conservation accounting and allocation hints;
    // the arrays then *stream* their shards from the shared trace in
    // place (see [`tenants::ShardStream`]) — nothing is cloned per array.
    let counts = tenants::shard_counts(
        trace,
        &placement.rows,
        spec.tenant_sectors,
        epoch_s,
        spec.arrays,
    );
    let routed_requests: u64 = counts.iter().sum();

    // One simulation per array. Array 0 keeps the spec's seed and label
    // verbatim, so a fleet of one is the exact single-array run.
    let mut sims: Vec<Simulation<'_, P>> = (0..spec.arrays)
        .map(|i| {
            let mut config = spec.config.clone();
            config.seed = config
                .seed
                .wrapping_add((i as u64).wrapping_mul(SEED_STRIDE));
            let mut opts = spec.opts.clone();
            opts.tenant_sectors = Some(spec.tenant_sectors);
            if spec.arrays > 1 {
                if let Some(t) = opts.telemetry.as_mut() {
                    t.label = format!("{}/a{i}", t.label);
                }
            }
            let shard = tenants::ShardStream::new(
                trace,
                &placement.rows,
                i as u32,
                spec.tenant_sectors,
                epoch_s,
            )
            .with_len_hint(counts[i] as usize);
            Simulation::from_source(config, make_policy(i), shard, opts)
        })
        .collect();

    let fleet_label = match &spec.opts.telemetry {
        Some(t) => format!("{}/fleet", t.label),
        None => "fleet".to_string(),
    };
    let mut fleet_bytes: Vec<u8> = Vec::new();
    let emit = |ev: Event, bytes: &mut Vec<u8>| {
        ev.write_jsonl(bytes).expect("write to Vec cannot fail");
    };

    let mut budget_j: Option<f64> = Some(0.0);
    let mut cap_violation_s = 0.0;
    let mut caps_active = false;
    let mut epochs = Vec::with_capacity(num_epochs);
    let mut move_ix = 0usize;

    for k in 0..num_epochs {
        let start_s = k as f64 * epoch_s;
        let end_s = ((k + 1) as f64 * epoch_s).min(horizon_s);
        let seg_len = end_s - start_s;
        let budget_w = spec.budget.budget_at(start_s);
        match budget_w {
            Some(b) => {
                if let Some(acc) = budget_j.as_mut() {
                    *acc += b * seg_len;
                }
            }
            None => budget_j = None,
        }

        // Observe trailing per-array power (last sample before the
        // boundary) — never the energy integral, whose float accrual must
        // stay untouched by observers.
        let observed: Vec<f64> = sims.iter().map(Simulation::observed_power_w).collect();
        let demand_w: f64 = observed.iter().sum();
        emit(
            Event::FleetEpoch {
                time_s: start_s,
                epoch: k as u32,
                arrays: spec.arrays as u32,
                budget_w,
                demand_w,
            },
            &mut fleet_bytes,
        );

        // Grant caps proportional to observed demand (1 W smoothing keeps
        // a sleeping array from being granted exactly zero).
        let mut caps_w = Vec::new();
        match budget_w {
            Some(b) => {
                let weight_total: f64 = demand_w + spec.arrays as f64;
                for (i, sim) in sims.iter_mut().enumerate() {
                    let cap = b * (observed[i] + 1.0) / weight_total;
                    emit(
                        Event::CapGrant {
                            time_s: start_s,
                            array: i as u32,
                            cap_w: cap,
                            observed_w: observed[i],
                        },
                        &mut fleet_bytes,
                    );
                    sim.set_power_cap(Some(cap));
                    caps_w.push(cap);
                }
                caps_active = true;
            }
            None => {
                // Lift stale caps — but never touch a fleet that was
                // never capped (bit-identity with the solo run).
                if caps_active {
                    for sim in sims.iter_mut() {
                        sim.set_power_cap(None);
                    }
                    caps_active = false;
                }
            }
        }

        // Tenant moves taking effect this epoch.
        let mut moves = 0u32;
        while move_ix < placement.moves.len() && placement.moves[move_ix].epoch == k {
            let m = placement.moves[move_ix];
            emit(
                Event::TenantMove {
                    time_s: start_s,
                    tenant: m.tenant,
                    from_array: m.from,
                    to_array: m.to,
                },
                &mut fleet_bytes,
            );
            moves += 1;
            move_ix += 1;
        }

        // Step every array through the segment, fanned out on the pool.
        // `Pool::map` returns results in input order, so the merge (and
        // everything downstream) is identical at any worker count.
        let limit = SimTime::from_secs(end_s);
        sims = pool.map(
            sims.into_iter()
                .map(|mut s| {
                    move || {
                        s.step_until(limit);
                        s
                    }
                })
                .collect(),
        );

        // Retrospective violation accounting: the trailing observation at
        // the segment's end reflects power *during* it.
        let post_demand: f64 = sims.iter().map(Simulation::observed_power_w).sum();
        let violated = budget_w.is_some_and(|b| post_demand > b * (1.0 + 1e-9));
        if violated {
            cap_violation_s += seg_len;
        }
        epochs.push(EpochRecord {
            epoch: k as u32,
            start_s,
            budget_w,
            demand_w,
            caps_w,
            moves,
            violated,
        });
    }

    // Finish every array (accrue energy to the horizon, close streams) —
    // still ordered, still parallel.
    let finished: Vec<(RunReport, P)> =
        pool.map(sims.into_iter().map(|s| move || s.finish()).collect());
    let reports: Vec<RunReport> = finished.into_iter().map(|(r, _)| r).collect();

    let fleet_energy_j: f64 = reports.iter().map(|r| r.energy.total_joules()).sum();
    let completed: u64 = reports.iter().map(|r| r.completed).sum();
    let incomplete: u64 = reports.iter().map(|r| r.incomplete).sum();
    let mut tenant_latency: Vec<LatencyHistogram> = Vec::new();
    for r in &reports {
        if tenant_latency.len() < r.tenant_latency.len() {
            tenant_latency.resize_with(r.tenant_latency.len(), LatencyHistogram::new_latency);
        }
        for (acc, h) in tenant_latency.iter_mut().zip(&r.tenant_latency) {
            acc.merge(h);
        }
    }

    let tenant_moves = placement.moves.len() as u64;
    emit(
        Event::FleetSummary {
            time_s: horizon_s,
            total_j: fleet_energy_j,
            budget_j,
            cap_violation_s,
            completed,
            incomplete,
            total_requests: trace.len() as u64,
            routed_requests,
            tenant_moves,
        },
        &mut fleet_bytes,
    );

    FleetReport {
        arrays: reports,
        fleet_energy_j,
        budget_j,
        cap_violation_s,
        completed,
        incomplete,
        total_requests: trace.len() as u64,
        routed_requests,
        tenant_moves,
        tenant_latency,
        epochs,
        placement,
        fleet_stream: RunStream {
            label: fleet_label,
            bytes: fleet_bytes,
        },
    }
}
