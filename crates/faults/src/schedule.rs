//! Scripted fault storms and fault-model tunables.

use crate::ledger::ReliabilityLedger;
use simkit::{DetRng, SimTime};

/// What goes wrong.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The disk dies: queued and in-flight requests are dropped, the
    /// spindle stops drawing power, and the disk never serves again.
    DiskFailure,
    /// A window of elevated transient I/O errors: each completion on the
    /// disk fails with probability `error_prob` and must be retried (see
    /// [`FaultConfig::max_retries`]).
    TransientBurst {
        /// Per-completion error probability during the burst.
        error_prob: f64,
        /// Burst length in seconds.
        duration_s: f64,
    },
    /// Sticky spindle: every speed transition started inside the window
    /// takes `factor ×` its nominal time (and energy).
    SlowTransition {
        /// Transition-time multiplier (> 1 slows the ramp).
        factor: f64,
        /// Window length in seconds.
        duration_s: f64,
    },
}

impl FaultKind {
    /// Stable tag for telemetry streams — audit tooling matches on these
    /// strings, so they must never change.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::DiskFailure => "disk_failure",
            FaultKind::TransientBurst { .. } => "transient_burst",
            FaultKind::SlowTransition { .. } => "slow_transition",
        }
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When the fault strikes.
    pub time: SimTime,
    /// Which disk (array index).
    pub disk: usize,
    /// What happens.
    pub kind: FaultKind,
}

/// A time-sorted script of fault events.
///
/// A scripted schedule is the *identical-storm* mode: the same events at
/// the same instants are replayed against every policy, so the comparison
/// isolates how each policy copes rather than what luck it drew.
///
/// # Examples
/// ```
/// use faults::{FaultEvent, FaultKind, FaultSchedule};
/// use simkit::SimTime;
/// let s = FaultSchedule::new(vec![
///     FaultEvent { time: SimTime::from_secs(900.0), disk: 3, kind: FaultKind::DiskFailure },
///     FaultEvent { time: SimTime::from_secs(100.0), disk: 0,
///                  kind: FaultKind::SlowTransition { factor: 3.0, duration_s: 600.0 } },
/// ]);
/// assert_eq!(s.events()[0].time, SimTime::from_secs(100.0), "sorted on construction");
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// Builds a schedule, sorting events by time (stable, so same-instant
    /// events keep their given order).
    pub fn new(mut events: Vec<FaultEvent>) -> FaultSchedule {
        events.sort_by_key(|e| e.time);
        FaultSchedule { events }
    }

    /// The empty schedule (online models only).
    pub fn empty() -> FaultSchedule {
        FaultSchedule::default()
    }

    /// The scripted events, time-ascending.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scripted events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing is scripted.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Generates a random storm over `disks` disks and `horizon` seconds,
    /// deterministically from `seed`: per disk, failure instants are drawn
    /// from an exponential inter-arrival stream at `rate_per_hour`, each
    /// preceded (80% of the time) by a transient burst and (50%) by a slow
    /// transition — the degradation signature real drives show before
    /// dying. Each disk draws from its own labelled RNG stream, so the
    /// schedule for disk *i* does not depend on how many disks exist.
    pub fn generate(
        disks: usize,
        horizon: SimTime,
        rate_per_hour: f64,
        seed: u64,
    ) -> FaultSchedule {
        assert!(rate_per_hour >= 0.0, "negative hazard rate");
        let mut events = Vec::new();
        if rate_per_hour == 0.0 {
            return FaultSchedule::new(events);
        }
        let horizon_s = horizon.as_secs();
        let rate_per_s = rate_per_hour / 3600.0;
        for d in 0..disks {
            let mut rng = DetRng::new(seed, &format!("fault-schedule-{d}"));
            let at = rng.exponential(rate_per_s);
            if at >= horizon_s {
                continue;
            }
            let t = SimTime::from_secs(at);
            if rng.chance(0.8) {
                let lead = rng.uniform(60.0, 600.0).min(at);
                events.push(FaultEvent {
                    time: SimTime::from_secs(at - lead),
                    disk: d,
                    kind: FaultKind::TransientBurst {
                        error_prob: rng.uniform(0.05, 0.3),
                        duration_s: lead,
                    },
                });
            }
            if rng.chance(0.5) {
                let lead = rng.uniform(120.0, 1200.0).min(at);
                events.push(FaultEvent {
                    time: SimTime::from_secs(at - lead),
                    disk: d,
                    kind: FaultKind::SlowTransition {
                        factor: rng.uniform(2.0, 5.0),
                        duration_s: lead,
                    },
                });
            }
            events.push(FaultEvent {
                time: t,
                disk: d,
                kind: FaultKind::DiskFailure,
            });
        }
        FaultSchedule::new(events)
    }
}

/// Tunables for the online (non-scripted) fault models.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Baseline whole-disk failure hazard, failures per disk-hour, before
    /// wear scaling. Zero disables the online failure model (scripted
    /// failures still apply).
    pub base_failure_rate_per_hour: f64,
    /// How strongly accumulated wear (see [`ReliabilityLedger::wear`])
    /// scales the hazard: `rate = base × (1 + wear_hazard_weight × wear)`.
    /// With the default weight, a disk that has burned 1% of rated life
    /// fails ~3× as often as a fresh one — wear dominates quickly, which is
    /// the point: policies that thrash transitions pay in failures.
    pub wear_hazard_weight: f64,
    /// Always-on per-completion transient error probability (bursts from a
    /// schedule raise it per disk for their window).
    pub transient_error_prob: f64,
    /// Retries before a request is abandoned as lost.
    pub max_retries: u32,
    /// Base retry backoff, seconds; retry *n* waits `n × backoff`.
    pub retry_backoff_s: f64,
    /// Seed of the injector's labelled RNG streams.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig {
            base_failure_rate_per_hour: 0.0,
            wear_hazard_weight: 200.0,
            transient_error_prob: 0.0,
            max_retries: 3,
            retry_backoff_s: 0.010,
            seed: 0xFA17,
        }
    }
}

impl FaultConfig {
    /// The wear-scaled hazard rate (failures per hour) for one disk.
    pub fn hazard_per_hour(&self, ledger: &ReliabilityLedger) -> f64 {
        self.base_failure_rate_per_hour * (1.0 + self.wear_hazard_weight * ledger.wear())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_sorts_and_reports() {
        let s = FaultSchedule::new(vec![
            FaultEvent {
                time: SimTime::from_secs(50.0),
                disk: 1,
                kind: FaultKind::DiskFailure,
            },
            FaultEvent {
                time: SimTime::from_secs(10.0),
                disk: 0,
                kind: FaultKind::DiskFailure,
            },
        ]);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.events()[0].disk, 0);
        assert_eq!(s.events()[1].disk, 1);
    }

    /// Same seed ⇒ bit-identical generated storm (the crate's core
    /// determinism promise, also exercised end-to-end in the array tests).
    #[test]
    fn generated_schedule_is_deterministic() {
        let a = FaultSchedule::generate(16, SimTime::from_secs(86_400.0), 0.05, 7);
        let b = FaultSchedule::generate(16, SimTime::from_secs(86_400.0), 0.05, 7);
        assert_eq!(a, b);
        let c = FaultSchedule::generate(16, SimTime::from_secs(86_400.0), 0.05, 8);
        assert_ne!(a, c, "different seeds must differ");
    }

    /// Disk i's events don't depend on the total disk count (labelled
    /// per-disk streams).
    #[test]
    fn generated_schedule_is_prefix_stable() {
        let small = FaultSchedule::generate(4, SimTime::from_secs(86_400.0), 0.1, 3);
        let large = FaultSchedule::generate(8, SimTime::from_secs(86_400.0), 0.1, 3);
        let only_small: Vec<_> = large
            .events()
            .iter()
            .filter(|e| e.disk < 4)
            .copied()
            .collect();
        assert_eq!(small.events(), &only_small[..]);
    }

    #[test]
    fn hazard_scales_with_wear() {
        let cfg = FaultConfig {
            base_failure_rate_per_hour: 0.001,
            ..FaultConfig::default()
        };
        let fresh = ReliabilityLedger::default();
        let mut worn = ReliabilityLedger::default();
        for _ in 0..5000 {
            worn.note_transition();
        }
        assert!(cfg.hazard_per_hour(&worn) > 10.0 * cfg.hazard_per_hour(&fresh));
    }
}
