//! Counters a faulted run reports.

/// What a fault storm did to a run.
///
/// Populated by the simulation driver and carried in the run report next to
/// the energy and response summaries, so degraded-mode behaviour can be
/// compared across policies with the same precision as the headline
/// numbers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultOutcome {
    /// Whole-disk failures applied (scripted or hazard-drawn).
    pub disk_failures: u64,
    /// Completions that came back as transient errors.
    pub transient_errors: u64,
    /// Retry submissions issued for transient errors.
    pub retries: u64,
    /// Requests abandoned: retries exhausted, or no surviving replica to
    /// redirect to after a failure. `completed + incomplete + lost` equals
    /// the trace's request total.
    pub lost_requests: u64,
    /// Foreground requests redirected from a dead disk to a surviving
    /// redundancy partner.
    pub degraded_redirects: u64,
    /// Speed transitions that started inside a slow-transition window and
    /// were stretched.
    pub slow_transition_events: u64,
    /// Chunks queued for rebuild after disk failures.
    pub rebuild_chunks: u64,
    /// Time of the first whole-disk failure, seconds, if any.
    pub first_failure_s: Option<f64>,
    /// Time the last queued rebuild committed, seconds, if rebuilds both
    /// started and finished within the horizon.
    pub rebuild_completed_s: Option<f64>,
}

impl FaultOutcome {
    /// Seconds from first failure to rebuild completion, if both happened.
    pub fn rebuild_duration_s(&self) -> Option<f64> {
        match (self.first_failure_s, self.rebuild_completed_s) {
            (Some(f), Some(r)) => Some(r - f),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rebuild_duration_requires_both_ends() {
        let mut o = FaultOutcome::default();
        assert_eq!(o.rebuild_duration_s(), None);
        o.first_failure_s = Some(100.0);
        assert_eq!(o.rebuild_duration_s(), None);
        o.rebuild_completed_s = Some(340.0);
        assert_eq!(o.rebuild_duration_s(), Some(240.0));
    }
}
