//! Per-disk reliability accounting.
//!
//! The ledger tracks the two quantities drive-vendor reliability ratings
//! are written against: **start/stop (speed-transition) cycles** and
//! **power-on duty-cycle hours**. Multi-speed power management trades
//! energy for exactly these — every epoch reconfiguration spends
//! transitions, every spun-up hour spends duty cycle — so the ledger is
//! what lets the experiments put a reliability price tag next to the
//! energy savings.

/// Wear contributed by one spindle speed/standby transition, as a fraction
/// of rated life. Server-class drives are rated around 50 000 start/stop
/// cycles; a full speed change stresses the same spindle/actuator path, so
/// it is charged at the same rate.
pub const WEAR_PER_TRANSITION: f64 = 1.0 / 50_000.0;

/// Wear contributed by one hour of active (spinning or ramping) operation,
/// as a fraction of rated life. Corresponds to a nominal component life of
/// 60 000 power-on hours (~6.8 years continuous).
pub const WEAR_PER_ACTIVE_HOUR: f64 = 1.0 / 60_000.0;

/// Cumulative reliability state of one disk.
///
/// Accumulated continuously by the disk model (every energy-accrual step
/// also accrues duty-cycle time; every transition bumps the counter) and
/// snapshotted into the run report at the horizon — for *every* policy, so
/// baselines and Hibernator can be compared on wear as well as energy.
///
/// # Examples
/// ```
/// use faults::ReliabilityLedger;
/// let mut l = ReliabilityLedger::default();
/// l.accrue_active(3600.0);
/// l.note_transition();
/// assert_eq!(l.transitions, 1);
/// assert!((l.active_hours - 1.0).abs() < 1e-12);
/// assert!(l.wear() > 0.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReliabilityLedger {
    /// Spindle speed/standby transitions started.
    pub transitions: u64,
    /// Hours spent spinning or ramping (platters moving).
    pub active_hours: f64,
    /// Hours spent in standby (platters stopped).
    pub standby_hours: f64,
    /// True once the disk has suffered a whole-disk failure.
    pub failed: bool,
    /// Simulated time of the failure, seconds, if any.
    pub failed_at_s: Option<f64>,
}

impl ReliabilityLedger {
    /// Records one started spindle transition.
    pub fn note_transition(&mut self) {
        self.transitions += 1;
    }

    /// Accrues `dt_s` seconds of active (spinning/ramping) time.
    pub fn accrue_active(&mut self, dt_s: f64) {
        self.active_hours += dt_s / 3600.0;
    }

    /// Accrues `dt_s` seconds of standby time.
    pub fn accrue_standby(&mut self, dt_s: f64) {
        self.standby_hours += dt_s / 3600.0;
    }

    /// Marks the disk failed at `now_s` (idempotent; the first failure
    /// timestamp wins).
    pub fn note_failure(&mut self, now_s: f64) {
        if !self.failed {
            self.failed = true;
            self.failed_at_s = Some(now_s);
        }
    }

    /// Fraction of accounted time the platters were moving, in `[0, 1]`
    /// (1.0 when no time has been accounted yet — a disk is born spinning).
    pub fn duty_cycle(&self) -> f64 {
        let total = self.active_hours + self.standby_hours;
        if total <= 0.0 {
            1.0
        } else {
            self.active_hours / total
        }
    }

    /// Estimated wear as a fraction of rated life: transition cycles plus
    /// active duty-cycle hours, each against its vendor-style rating. The
    /// online failure hazard (see [`crate::FaultConfig`]) scales with this,
    /// so a policy that thrashes the spindle genuinely fails disks sooner.
    pub fn wear(&self) -> f64 {
        self.transitions as f64 * WEAR_PER_TRANSITION + self.active_hours * WEAR_PER_ACTIVE_HOUR
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wear_combines_transitions_and_hours() {
        let mut l = ReliabilityLedger::default();
        assert_eq!(l.wear(), 0.0);
        l.note_transition();
        l.note_transition();
        l.accrue_active(7200.0);
        let expect = 2.0 * WEAR_PER_TRANSITION + 2.0 * WEAR_PER_ACTIVE_HOUR;
        assert!((l.wear() - expect).abs() < 1e-15);
    }

    #[test]
    fn duty_cycle_tracks_split() {
        let mut l = ReliabilityLedger::default();
        assert_eq!(l.duty_cycle(), 1.0, "no history means spinning");
        l.accrue_active(3600.0);
        l.accrue_standby(3.0 * 3600.0);
        assert!((l.duty_cycle() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn failure_timestamp_is_sticky() {
        let mut l = ReliabilityLedger::default();
        l.note_failure(10.0);
        l.note_failure(99.0);
        assert!(l.failed);
        assert_eq!(l.failed_at_s, Some(10.0));
    }

    /// A transition recorded at exactly the horizon boundary — the driver
    /// accrues to the horizon first, then notes the transition with no
    /// time following it — must charge exactly one cycle of wear and
    /// leave the duty-cycle split untouched.
    #[test]
    fn transition_at_exact_horizon_boundary_charges_one_cycle() {
        let horizon_s = 7200.0;
        let mut l = ReliabilityLedger::default();
        l.accrue_active(horizon_s);
        let duty_before = l.duty_cycle();
        let wear_before = l.wear();

        l.note_transition(); // at t == horizon, zero seconds remain
        l.accrue_active(0.0); // the driver's final (empty) accrual step

        assert_eq!(l.transitions, 1);
        assert!((l.wear() - wear_before - WEAR_PER_TRANSITION).abs() < 1e-15);
        assert_eq!(l.duty_cycle(), duty_before, "zero-length accrual is free");
    }

    /// Zero-length accruals at a boundary must not perturb wear or the
    /// duty cycle — the driver accrues on every event, including back-to-
    /// back events at the same instant.
    #[test]
    fn zero_length_accruals_are_exact_noops() {
        let mut l = ReliabilityLedger::default();
        l.accrue_active(3600.0);
        l.accrue_standby(3600.0);
        let before = l.clone();
        for _ in 0..1000 {
            l.accrue_active(0.0);
            l.accrue_standby(0.0);
        }
        assert_eq!(l, before);
    }

    /// Wear is monotone in both inputs and additive across arbitrary
    /// interleavings: splitting one active interval across many accrual
    /// calls (as event-driven accounting does) changes nothing.
    #[test]
    fn split_accrual_matches_lump_accrual() {
        let mut lump = ReliabilityLedger::default();
        lump.accrue_active(3600.0);

        let mut split = ReliabilityLedger::default();
        for _ in 0..3600 {
            split.accrue_active(1.0);
        }
        assert!((split.active_hours - lump.active_hours).abs() < 1e-9);
        assert!((split.wear() - lump.wear()).abs() < 1e-12);
    }

    /// A disk that spent its whole life in standby has duty cycle 0 but
    /// still pays transition wear for the spin-down that got it there.
    #[test]
    fn standby_only_life_has_zero_duty_cycle_but_transition_wear() {
        let mut l = ReliabilityLedger::default();
        l.note_transition();
        l.accrue_standby(24.0 * 3600.0);
        assert_eq!(l.duty_cycle(), 0.0);
        assert!((l.wear() - WEAR_PER_TRANSITION).abs() < 1e-15);
    }

    /// Failure exactly at the horizon still records, and wear keeps
    /// accruing afterwards (the ledger is pure accounting; failure does
    /// not freeze it — the driver stops feeding it instead).
    #[test]
    fn failure_at_horizon_boundary_records_timestamp() {
        let horizon_s = 86400.0;
        let mut l = ReliabilityLedger::default();
        l.accrue_active(horizon_s);
        l.note_failure(horizon_s);
        assert_eq!(l.failed_at_s, Some(horizon_s));
        assert!((l.duty_cycle() - 1.0).abs() < 1e-12);
    }
}
