//! Per-disk reliability accounting.
//!
//! The ledger tracks the two quantities drive-vendor reliability ratings
//! are written against: **start/stop (speed-transition) cycles** and
//! **power-on duty-cycle hours**. Multi-speed power management trades
//! energy for exactly these — every epoch reconfiguration spends
//! transitions, every spun-up hour spends duty cycle — so the ledger is
//! what lets the experiments put a reliability price tag next to the
//! energy savings.

/// Wear contributed by one spindle speed/standby transition, as a fraction
/// of rated life. Server-class drives are rated around 50 000 start/stop
/// cycles; a full speed change stresses the same spindle/actuator path, so
/// it is charged at the same rate.
pub const WEAR_PER_TRANSITION: f64 = 1.0 / 50_000.0;

/// Wear contributed by one hour of active (spinning or ramping) operation,
/// as a fraction of rated life. Corresponds to a nominal component life of
/// 60 000 power-on hours (~6.8 years continuous).
pub const WEAR_PER_ACTIVE_HOUR: f64 = 1.0 / 60_000.0;

/// Cumulative reliability state of one disk.
///
/// Accumulated continuously by the disk model (every energy-accrual step
/// also accrues duty-cycle time; every transition bumps the counter) and
/// snapshotted into the run report at the horizon — for *every* policy, so
/// baselines and Hibernator can be compared on wear as well as energy.
///
/// # Examples
/// ```
/// use faults::ReliabilityLedger;
/// let mut l = ReliabilityLedger::default();
/// l.accrue_active(3600.0);
/// l.note_transition();
/// assert_eq!(l.transitions, 1);
/// assert!((l.active_hours - 1.0).abs() < 1e-12);
/// assert!(l.wear() > 0.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReliabilityLedger {
    /// Spindle speed/standby transitions started.
    pub transitions: u64,
    /// Hours spent spinning or ramping (platters moving).
    pub active_hours: f64,
    /// Hours spent in standby (platters stopped).
    pub standby_hours: f64,
    /// True once the disk has suffered a whole-disk failure.
    pub failed: bool,
    /// Simulated time of the failure, seconds, if any.
    pub failed_at_s: Option<f64>,
}

impl ReliabilityLedger {
    /// Records one started spindle transition.
    pub fn note_transition(&mut self) {
        self.transitions += 1;
    }

    /// Accrues `dt_s` seconds of active (spinning/ramping) time.
    pub fn accrue_active(&mut self, dt_s: f64) {
        self.active_hours += dt_s / 3600.0;
    }

    /// Accrues `dt_s` seconds of standby time.
    pub fn accrue_standby(&mut self, dt_s: f64) {
        self.standby_hours += dt_s / 3600.0;
    }

    /// Marks the disk failed at `now_s` (idempotent; the first failure
    /// timestamp wins).
    pub fn note_failure(&mut self, now_s: f64) {
        if !self.failed {
            self.failed = true;
            self.failed_at_s = Some(now_s);
        }
    }

    /// Fraction of accounted time the platters were moving, in `[0, 1]`
    /// (1.0 when no time has been accounted yet — a disk is born spinning).
    pub fn duty_cycle(&self) -> f64 {
        let total = self.active_hours + self.standby_hours;
        if total <= 0.0 {
            1.0
        } else {
            self.active_hours / total
        }
    }

    /// Estimated wear as a fraction of rated life: transition cycles plus
    /// active duty-cycle hours, each against its vendor-style rating. The
    /// online failure hazard (see [`crate::FaultConfig`]) scales with this,
    /// so a policy that thrashes the spindle genuinely fails disks sooner.
    pub fn wear(&self) -> f64 {
        self.transitions as f64 * WEAR_PER_TRANSITION + self.active_hours * WEAR_PER_ACTIVE_HOUR
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wear_combines_transitions_and_hours() {
        let mut l = ReliabilityLedger::default();
        assert_eq!(l.wear(), 0.0);
        l.note_transition();
        l.note_transition();
        l.accrue_active(7200.0);
        let expect = 2.0 * WEAR_PER_TRANSITION + 2.0 * WEAR_PER_ACTIVE_HOUR;
        assert!((l.wear() - expect).abs() < 1e-15);
    }

    #[test]
    fn duty_cycle_tracks_split() {
        let mut l = ReliabilityLedger::default();
        assert_eq!(l.duty_cycle(), 1.0, "no history means spinning");
        l.accrue_active(3600.0);
        l.accrue_standby(3.0 * 3600.0);
        assert!((l.duty_cycle() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn failure_timestamp_is_sticky() {
        let mut l = ReliabilityLedger::default();
        l.note_failure(10.0);
        l.note_failure(99.0);
        assert!(l.failed);
        assert_eq!(l.failed_at_s, Some(10.0));
    }
}
