//! The runtime fault source the simulation driver consults.

use std::collections::{HashMap, VecDeque};

use crate::ledger::ReliabilityLedger;
use crate::schedule::{FaultConfig, FaultEvent, FaultSchedule};
use simkit::{DetRng, SimTime};

/// A schedule plus config — everything a run needs to reproduce a storm.
///
/// This is the value callers put in the array's run options; the driver
/// turns it into a [`FaultInjector`] at start-of-run. The default plan is
/// inert (empty schedule, all online models off), so fault support costs
/// nothing unless asked for.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Scripted events replayed identically across policies.
    pub schedule: FaultSchedule,
    /// Online-model tunables and the injector RNG seed.
    pub config: FaultConfig,
}

/// Runtime fault state: the scripted queue, active transient-burst windows,
/// and the labelled RNG stream behind every online draw.
///
/// All randomness flows through one [`DetRng`] stream seeded from
/// [`FaultConfig::seed`], independent of the workload and policy streams —
/// so a fixed seed plus a fixed schedule yields a bit-identical fault
/// sequence regardless of which policy is running.
pub struct FaultInjector {
    queue: VecDeque<FaultEvent>,
    cfg: FaultConfig,
    rng: DetRng,
    /// disk → (error probability, window end) for active bursts.
    bursts: HashMap<usize, (f64, SimTime)>,
}

impl FaultInjector {
    /// Builds an injector for one run.
    pub fn new(plan: &FaultPlan) -> FaultInjector {
        FaultInjector {
            queue: plan.schedule.events().iter().copied().collect(),
            rng: DetRng::new(plan.config.seed, "fault-injector"),
            cfg: plan.config.clone(),
            bursts: HashMap::new(),
        }
    }

    /// The online-model tunables.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// When the next scripted event is due, if any remain.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue.front().map(|e| e.time)
    }

    /// Pops every scripted event due at or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Vec<FaultEvent> {
        let mut due = Vec::new();
        while self.queue.front().is_some_and(|e| e.time <= now) {
            due.push(self.queue.pop_front().unwrap());
        }
        due
    }

    /// Opens a transient-error burst window on `disk`.
    pub fn note_burst(&mut self, disk: usize, error_prob: f64, until: SimTime) {
        self.bursts.insert(disk, (error_prob, until));
    }

    /// Draws whether the completion finishing on `disk` at `now` fails
    /// transiently. The effective probability is the larger of the always-on
    /// config probability and any burst window covering `now`.
    pub fn transient_error(&mut self, now: SimTime, disk: usize) -> bool {
        let mut p = self.cfg.transient_error_prob;
        if let Some(&(burst_p, until)) = self.bursts.get(&disk) {
            if now <= until {
                p = p.max(burst_p);
            } else {
                self.bursts.remove(&disk);
            }
        }
        p > 0.0 && self.rng.chance(p)
    }

    /// Draws online wear-scaled failures over the interval `(from, to]`:
    /// each live ledger's hazard (see [`FaultConfig::hazard_per_hour`]) is
    /// applied over the elapsed hours as a Bernoulli trial. Returns the
    /// indices of disks that fail. Disks whose ledger is already marked
    /// failed never fail twice.
    pub fn hazard_failures(
        &mut self,
        from: SimTime,
        to: SimTime,
        ledgers: &[ReliabilityLedger],
    ) -> Vec<usize> {
        if self.cfg.base_failure_rate_per_hour <= 0.0 {
            return Vec::new();
        }
        let dt_h = (to.as_secs() - from.as_secs()).max(0.0) / 3600.0;
        if dt_h == 0.0 {
            return Vec::new();
        }
        let mut failed = Vec::new();
        for (i, ledger) in ledgers.iter().enumerate() {
            if ledger.failed {
                continue;
            }
            let p = (self.cfg.hazard_per_hour(ledger) * dt_h).min(1.0);
            if self.rng.chance(p) {
                failed.push(i);
            }
        }
        failed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::FaultKind;

    fn plan_with(events: Vec<FaultEvent>) -> FaultPlan {
        FaultPlan {
            schedule: FaultSchedule::new(events),
            config: FaultConfig::default(),
        }
    }

    #[test]
    fn pop_due_respects_time_order() {
        let mut inj = FaultInjector::new(&plan_with(vec![
            FaultEvent {
                time: SimTime::from_secs(10.0),
                disk: 0,
                kind: FaultKind::DiskFailure,
            },
            FaultEvent {
                time: SimTime::from_secs(20.0),
                disk: 1,
                kind: FaultKind::DiskFailure,
            },
        ]));
        assert_eq!(inj.next_event_time(), Some(SimTime::from_secs(10.0)));
        assert!(inj.pop_due(SimTime::from_secs(5.0)).is_empty());
        let due = inj.pop_due(SimTime::from_secs(15.0));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].disk, 0);
        assert_eq!(inj.next_event_time(), Some(SimTime::from_secs(20.0)));
    }

    #[test]
    fn bursts_raise_error_probability_then_expire() {
        let mut inj = FaultInjector::new(&plan_with(vec![]));
        // No always-on errors, no burst: never errors.
        for _ in 0..100 {
            assert!(!inj.transient_error(SimTime::from_secs(1.0), 0));
        }
        inj.note_burst(0, 1.0, SimTime::from_secs(10.0));
        assert!(inj.transient_error(SimTime::from_secs(5.0), 0));
        assert!(
            !inj.transient_error(SimTime::from_secs(11.0), 0),
            "window expired"
        );
        assert!(
            !inj.transient_error(SimTime::from_secs(5.0), 1),
            "bursts are per-disk"
        );
    }

    #[test]
    fn same_seed_gives_identical_draw_sequence() {
        let cfg = FaultConfig {
            transient_error_prob: 0.5,
            ..FaultConfig::default()
        };
        let plan = FaultPlan {
            schedule: FaultSchedule::empty(),
            config: cfg,
        };
        let mut a = FaultInjector::new(&plan);
        let mut b = FaultInjector::new(&plan);
        let t = SimTime::from_secs(1.0);
        for i in 0..256 {
            assert_eq!(
                a.transient_error(t, i % 4),
                b.transient_error(t, i % 4),
                "draw {i} diverged"
            );
        }
    }

    #[test]
    fn hazard_failures_scale_with_wear_and_skip_dead() {
        let cfg = FaultConfig {
            base_failure_rate_per_hour: 0.05,
            ..FaultConfig::default()
        };
        let plan = FaultPlan {
            schedule: FaultSchedule::empty(),
            config: cfg,
        };
        let fresh = ReliabilityLedger::default();
        let mut worn = ReliabilityLedger::default();
        for _ in 0..20_000 {
            worn.note_transition();
        }
        let mut dead = ReliabilityLedger::default();
        dead.note_failure(0.0);

        let mut fresh_hits = 0u32;
        let mut worn_hits = 0u32;
        let ledgers = vec![fresh, worn, dead];
        let mut inj = FaultInjector::new(&plan);
        for i in 0..400 {
            let from = SimTime::from_secs(i as f64 * 3600.0);
            let to = SimTime::from_secs((i + 1) as f64 * 3600.0);
            for d in inj.hazard_failures(from, to, &ledgers) {
                match d {
                    0 => fresh_hits += 1,
                    1 => worn_hits += 1,
                    _ => panic!("dead disk drew a failure"),
                }
            }
        }
        assert!(
            worn_hits > fresh_hits,
            "wear must raise hazard: worn {worn_hits} vs fresh {fresh_hits}"
        );
    }
}
