//! # faults — fault injection & reliability accounting
//!
//! The Hibernator paper's pitch is energy, but its mechanism — frequent
//! spindle speed transitions and long low-RPM stretches — interacts with
//! disk *reliability*: start/stop cycles and duty-cycle hours are exactly
//! what drive-vendor failure ratings are written against. This crate
//! provides the vocabulary the simulator uses to explore that interaction:
//!
//! * [`ReliabilityLedger`] — per-disk wear accounting (speed transitions,
//!   active and standby duty-cycle hours), accumulated by `diskmodel` and
//!   surfaced in every run report;
//! * [`FaultSchedule`] / [`FaultEvent`] / [`FaultKind`] — a scripted,
//!   time-sorted storm of whole-disk failures, transient-error bursts, and
//!   stuck/slow speed transitions, so *identical* fault sequences can be
//!   replayed against every policy;
//! * [`FaultConfig`] — tunables for the online models: a wear-scaled
//!   disk-failure hazard, a per-completion transient-error probability, and
//!   bounded retry/backoff;
//! * [`FaultInjector`] — the runtime object the simulation driver consults;
//!   all randomness flows through labelled [`simkit::DetRng`] streams, so a
//!   fixed seed yields a bit-identical fault sequence;
//! * [`FaultOutcome`] — counters a faulted run reports (failures, transient
//!   errors, retries, lost requests, rebuild completion time).
//!
//! The crate is deliberately free of disk/array types: faults are expressed
//! against disk *indices* and simulated time only, which keeps the
//! dependency arrow pointing from `diskmodel`/`array` to here and not back.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod injector;
mod ledger;
mod outcome;
mod schedule;

pub use injector::{FaultInjector, FaultPlan};
pub use ledger::ReliabilityLedger;
pub use outcome::FaultOutcome;
pub use schedule::{FaultConfig, FaultEvent, FaultKind, FaultSchedule};
