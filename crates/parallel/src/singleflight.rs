//! A keyed single-flight computation cache.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Condvar, Mutex};

/// What a slot holds while its value is (or was being) produced.
enum SlotState<V> {
    /// The owning thread is still computing.
    Pending,
    /// The value is available for everyone.
    Ready(Arc<V>),
    /// The owning computation panicked; waiters must not hang forever.
    Poisoned,
}

/// One key's rendezvous point: waiters block on the condvar until the
/// owner publishes `Ready` (or `Poisoned`).
struct Slot<V> {
    state: Mutex<SlotState<V>>,
    ready: Condvar,
}

/// A thread-safe map where each key's value is computed exactly once, no
/// matter how many threads ask for it concurrently ("single-flight").
///
/// The first thread to call [`OnceMap::get_or_compute`] for a key becomes
/// the *owner* and runs the closure **without holding the map lock**, so
/// computations for different keys proceed in parallel and a computation
/// may itself call back into the map for *other* keys (the harness's
/// goal-calibrated runs fetch the Base run this way). Concurrent callers
/// for the same key block until the owner publishes the value, then share
/// it as an [`Arc`].
///
/// # Examples
/// ```
/// use parallel::OnceMap;
///
/// let cache: OnceMap<&str, u32> = OnceMap::new();
/// let a = cache.get_or_compute("answer", || 42);
/// let b = cache.get_or_compute("answer", || unreachable!("cached"));
/// assert_eq!((*a, *b), (42, 42));
/// ```
pub struct OnceMap<K, V> {
    slots: Mutex<HashMap<K, Arc<Slot<V>>>>,
}

impl<K, V> Default for OnceMap<K, V> {
    fn default() -> Self {
        OnceMap::new()
    }
}

impl<K, V> OnceMap<K, V> {
    /// An empty cache.
    pub fn new() -> Self {
        OnceMap {
            slots: Mutex::new(HashMap::new()),
        }
    }

    /// Number of keys present (including in-flight ones).
    pub fn len(&self) -> usize {
        lock_ok(&self.slots).len()
    }

    /// True if no key was ever requested.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Eq + Hash, V> OnceMap<K, V> {
    /// The cached value for `key`, if it has already been computed.
    pub fn get(&self, key: &K) -> Option<Arc<V>> {
        let slot = lock_ok(&self.slots).get(key).cloned()?;
        let state = lock_ok(&slot.state);
        match &*state {
            SlotState::Ready(v) => Some(Arc::clone(v)),
            _ => None,
        }
    }

    /// Returns the value for `key`, computing it with `compute` if this is
    /// the first request. Concurrent requests for the same key run
    /// `compute` once: the rest block and share the result.
    ///
    /// # Panics
    /// If the owning `compute` panics, that panic propagates on the owner's
    /// thread, and every waiter (present and future) panics too rather than
    /// deadlocking on a value that will never arrive.
    pub fn get_or_compute(&self, key: K, compute: impl FnOnce() -> V) -> Arc<V> {
        let (slot, owner) = {
            let mut slots = lock_ok(&self.slots);
            match slots.get(&key) {
                Some(s) => (Arc::clone(s), false),
                None => {
                    let s = Arc::new(Slot {
                        state: Mutex::new(SlotState::Pending),
                        ready: Condvar::new(),
                    });
                    slots.insert(key, Arc::clone(&s));
                    (s, true)
                }
            }
        };

        if owner {
            // Publish `Poisoned` if `compute` unwinds, releasing waiters.
            struct PoisonOnDrop<'a, V> {
                slot: &'a Slot<V>,
                armed: bool,
            }
            impl<V> Drop for PoisonOnDrop<'_, V> {
                fn drop(&mut self) {
                    if self.armed {
                        *lock_ok(&self.slot.state) = SlotState::Poisoned;
                        self.slot.ready.notify_all();
                    }
                }
            }
            let mut guard = PoisonOnDrop {
                slot: &slot,
                armed: true,
            };
            let value = Arc::new(compute());
            guard.armed = false;
            *lock_ok(&slot.state) = SlotState::Ready(Arc::clone(&value));
            slot.ready.notify_all();
            return value;
        }

        let mut state = lock_ok(&slot.state);
        loop {
            match &*state {
                SlotState::Ready(v) => return Arc::clone(v),
                SlotState::Poisoned => {
                    panic!("OnceMap: the computation owning this key panicked")
                }
                SlotState::Pending => {
                    state = slot.ready.wait(state).unwrap_or_else(|e| e.into_inner());
                }
            }
        }
    }
}

/// Locks a mutex, ignoring poisoning (state transitions are single writes).
fn lock_ok<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn computes_once_and_caches() {
        let m: OnceMap<u32, u32> = OnceMap::new();
        let calls = AtomicUsize::new(0);
        let a = m.get_or_compute(1, || {
            calls.fetch_add(1, Ordering::SeqCst);
            10
        });
        let b = m.get_or_compute(1, || {
            calls.fetch_add(1, Ordering::SeqCst);
            99
        });
        assert_eq!((*a, *b), (10, 10));
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(&1).as_deref(), Some(&10));
        assert!(m.get(&2).is_none());
    }

    #[test]
    fn distinct_keys_compute_independently() {
        let m: OnceMap<&str, usize> = OnceMap::new();
        assert_eq!(*m.get_or_compute("a", || 1), 1);
        assert_eq!(*m.get_or_compute("b", || 2), 2);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn concurrent_requests_share_one_flight() {
        let m: OnceMap<u32, u64> = OnceMap::new();
        let calls = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    s.spawn(|| {
                        *m.get_or_compute(7, || {
                            calls.fetch_add(1, Ordering::SeqCst);
                            // Hold the flight open long enough that the
                            // other threads arrive while it is pending.
                            std::thread::sleep(std::time::Duration::from_millis(30));
                            777
                        })
                    })
                })
                .collect();
            for h in handles {
                assert_eq!(h.join().unwrap(), 777);
            }
        });
        assert_eq!(calls.load(Ordering::SeqCst), 1, "single flight violated");
    }

    #[test]
    fn nested_computation_may_use_other_keys() {
        let m: OnceMap<u32, u32> = OnceMap::new();
        let v = m.get_or_compute(2, || *m.get_or_compute(1, || 20) + 1);
        assert_eq!(*v, 21);
        assert_eq!(m.get(&1).as_deref(), Some(&20));
    }

    #[test]
    fn panicked_flight_poisons_waiters_not_deadlocks() {
        let m: OnceMap<u32, u32> = OnceMap::new();
        let owner = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.get_or_compute(5, || panic!("flight failed"));
        }));
        assert!(owner.is_err());
        // A later requester must observe the poison and panic promptly,
        // not block forever on a value that will never arrive.
        let waiter = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.get_or_compute(5, || 1);
        }));
        assert!(waiter.is_err());
    }
}
