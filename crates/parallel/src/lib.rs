//! Self-contained parallel run executor for the experiment harness.
//!
//! The evaluation is a grid of independent, seed-deterministic simulations
//! — embarrassingly parallel work — but the workspace builds with no
//! crates.io access, so this crate supplies the two primitives a parallel
//! harness needs on plain `std`:
//!
//! * [`Pool`] — a scoped-[`std::thread`] worker pool whose [`Pool::map`]
//!   runs a batch of closures across N workers and returns the results **in
//!   input order**, so callers that format output from the result vector
//!   are deterministic regardless of completion order. A panic in any job
//!   propagates to the caller (scoped threads re-raise on join).
//! * [`OnceMap`] — a keyed single-flight cache: the first thread to request
//!   a key computes it while concurrent requesters for the same key block
//!   and then share the same `Arc`'d value. Two experiments that need the
//!   same (policy, workload) run therefore trigger exactly one simulation.
//! * [`lockstep`] / [`Team`] — a persistent worker team for drivers that
//!   re-dispatch the same stateful work many times (the fleet driver steps
//!   every array once per fleet epoch): one long-lived scoped worker per
//!   state, commands and responses over depth-1 rendezvous mailboxes, no
//!   spawn/join or allocation on the steady path.
//!
//! Neither primitive imposes any scheduling-order semantics on the work
//! itself: jobs must be independent (or synchronise through their own
//! state, as `OnceMap` does), which the harness guarantees by giving every
//! simulation its own seeded RNG.

mod pool;
mod singleflight;
mod team;

pub use pool::{available_parallelism, Pool};
pub use singleflight::OnceMap;
pub use team::{lockstep, Team};
