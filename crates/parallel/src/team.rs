//! A persistent lockstep worker team.
//!
//! [`Pool::map`](crate::Pool::map) spawns and joins its workers on every
//! call, which is the right shape for a batch of independent jobs but the
//! wrong one for a driver that re-dispatches the *same* stateful work
//! many times (the fleet driver steps every array once per fleet epoch —
//! hundreds of dispatches per run). [`lockstep`] instead spawns one
//! long-lived worker per state for the whole exchange: each worker owns
//! its state, serves commands off a bounded rendezvous mailbox, and only
//! gives the state back (through `finish`) when the controller hangs up.
//!
//! The mailboxes are [`std::sync::mpsc::sync_channel`]s of depth 1 —
//! preallocated slots, so a steady-state command/response round trip
//! allocates nothing. The channel handoff is also the synchronization
//! edge: everything a worker wrote before replying (including `Relaxed`
//! atomics) is visible to the controller after [`Team::recv`], and vice
//! versa for [`Team::send`].
//!
//! With a single state no threads are spawned at all: commands are served
//! inline on the calling thread, so a one-worker exchange is exactly the
//! serial execution — the same guarantee `Pool::new(1)` gives `map`.

use std::sync::mpsc::{sync_channel, Receiver, SyncSender};

/// The controller's handle to the workers: one command/response lane per
/// state, indexed in the order the states were given to [`lockstep`].
///
/// Lanes are independent: the usual pattern is to `send` to every lane,
/// then `recv` from every lane — workers run their commands concurrently
/// in between. Dropping the `Team` (or leaving the `lockstep` body) hangs
/// up every lane, which is what tells workers to finalize.
pub struct Team<'a, S, Cmd, Rsp> {
    inner: Inner<'a, S, Cmd, Rsp>,
}

enum Inner<'a, S, Cmd, Rsp> {
    /// One spawned worker per lane.
    Threads(Vec<Lane<Cmd, Rsp>>),
    /// Single state: serve inline, buffer the response until `recv`.
    Inline {
        state: &'a mut S,
        serve: &'a dyn Fn(usize, &mut S, Cmd) -> Rsp,
        pending: Option<Rsp>,
    },
}

struct Lane<Cmd, Rsp> {
    tx: SyncSender<Cmd>,
    rx: Receiver<Rsp>,
}

impl<S, Cmd, Rsp> Team<'_, S, Cmd, Rsp> {
    /// Number of lanes (== number of states).
    pub fn lanes(&self) -> usize {
        match &self.inner {
            Inner::Threads(lanes) => lanes.len(),
            Inner::Inline { .. } => 1,
        }
    }

    /// Hands `cmd` to worker `w`. With spawned workers this blocks only
    /// if the worker has not yet picked up the previous command (the
    /// mailbox holds one); inline, the command is served immediately on
    /// the calling thread.
    ///
    /// # Panics
    /// Panics if the worker is gone (it panicked), or — inline — if the
    /// previous response was never collected.
    pub fn send(&mut self, w: usize, cmd: Cmd) {
        match &mut self.inner {
            Inner::Threads(lanes) => lanes[w]
                .tx
                .send(cmd)
                .expect("team worker hung up (it panicked)"),
            Inner::Inline {
                state,
                serve,
                pending,
            } => {
                assert!(w == 0, "inline team has exactly one lane");
                assert!(pending.is_none(), "inline send before recv");
                *pending = Some(serve(0, state, cmd));
            }
        }
    }

    /// Collects worker `w`'s response to the last [`Team::send`].
    ///
    /// # Panics
    /// Panics if the worker died without replying (it panicked; the
    /// original panic is re-raised when the team scope joins it).
    pub fn recv(&mut self, w: usize) -> Rsp {
        match &mut self.inner {
            Inner::Threads(lanes) => lanes[w]
                .rx
                .recv()
                .expect("team worker died mid-command (it panicked)"),
            Inner::Inline { pending, .. } => {
                assert!(w == 0, "inline team has exactly one lane");
                pending.take().expect("inline recv before send")
            }
        }
    }
}

/// Runs a lockstep exchange: spawns one persistent worker per entry of
/// `states` (scoped threads — workers may borrow from the caller), hands
/// the caller a [`Team`] to drive them with, and once the body returns,
/// hangs up, finalizes every state with `finish` *on its worker thread*,
/// and returns the body's output alongside the finish values in state
/// order.
///
/// `serve(w, state, cmd)` handles one command on worker `w`; it runs on
/// the worker's thread with exclusive access to that worker's state.
/// `finish(w, state)` consumes the state after hang-up (also on the
/// worker's thread, so expensive finalization parallelizes).
///
/// With one state everything runs inline on the calling thread; results
/// are identical because `serve` sees the same state/command sequence
/// either way.
///
/// # Panics
/// A panic in `serve` or `finish` propagates to the caller; a panic in
/// `body` unwinds through the scope after the workers drain out.
pub fn lockstep<S, Cmd, Rsp, Fin, Out>(
    states: Vec<S>,
    serve: impl Fn(usize, &mut S, Cmd) -> Rsp + Sync,
    finish: impl Fn(usize, S) -> Fin + Sync,
    body: impl FnOnce(&mut Team<'_, S, Cmd, Rsp>) -> Out,
) -> (Out, Vec<Fin>)
where
    S: Send,
    Cmd: Send,
    Rsp: Send,
    Fin: Send,
{
    assert!(!states.is_empty(), "lockstep needs at least one state");
    if states.len() == 1 {
        let mut states = states;
        let mut state = states.pop().expect("one state");
        let mut team = Team {
            inner: Inner::Inline {
                state: &mut state,
                serve: &serve,
                pending: None,
            },
        };
        let out = body(&mut team);
        drop(team);
        return (out, vec![finish(0, state)]);
    }

    std::thread::scope(|scope| {
        let serve = &serve;
        let finish = &finish;
        let mut lanes = Vec::with_capacity(states.len());
        let mut handles = Vec::with_capacity(states.len());
        for (w, mut state) in states.into_iter().enumerate() {
            let (ctx, crx) = sync_channel::<Cmd>(1);
            let (rtx, rrx) = sync_channel::<Rsp>(1);
            handles.push(scope.spawn(move || {
                while let Ok(cmd) = crx.recv() {
                    let rsp = serve(w, &mut state, cmd);
                    if rtx.send(rsp).is_err() {
                        break; // controller hung up mid-reply
                    }
                }
                finish(w, state)
            }));
            lanes.push(Lane { tx: ctx, rx: rrx });
        }
        let mut team = Team {
            inner: Inner::Threads(lanes),
        };
        let out = body(&mut team);
        drop(team); // hang up: workers fall out of their serve loops
        let fins = handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(fin) => fin,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect();
        (out, fins)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Drives `n` counter states through `rounds` increments each and
    /// checks both the responses and the finish values.
    fn drive(n: usize, rounds: u64) {
        let states: Vec<u64> = vec![0; n];
        let (echoes, finals) = lockstep(
            states,
            |w, st, add: u64| {
                *st += add;
                (w, *st)
            },
            |w, st| (w, st),
            |team| {
                assert_eq!(team.lanes(), n);
                let mut echoes = Vec::new();
                for round in 1..=rounds {
                    for w in 0..n {
                        team.send(w, round);
                    }
                    for w in 0..n {
                        echoes.push(team.recv(w));
                    }
                }
                echoes
            },
        );
        let expect_total: u64 = (1..=rounds).sum();
        for (w, fin) in finals.iter().enumerate() {
            assert_eq!(*fin, (w, expect_total));
        }
        // Per-round responses carry the running sum, in lane order.
        let mut ix = 0;
        let mut running = 0;
        for round in 1..=rounds {
            running += round;
            for w in 0..n {
                assert_eq!(echoes[ix], (w, running));
                ix += 1;
            }
        }
    }

    #[test]
    fn multi_worker_exchange_is_deterministic() {
        drive(4, 10);
    }

    #[test]
    fn single_state_runs_inline() {
        // Inline mode must produce the identical exchange.
        drive(1, 10);
    }

    #[test]
    fn workers_borrow_shared_state() {
        // The serve closure may capture shared references (the fleet
        // driver captures its shard map); relaxed adds + the channel
        // rendezvous make the total visible at finish.
        let total = AtomicU64::new(0);
        let (_, fins) = lockstep(
            vec![(); 3],
            |_, _, x: u64| {
                total.fetch_add(x, Ordering::Relaxed);
            },
            |_, _| (),
            |team| {
                for round in 0..5u64 {
                    for w in 0..3 {
                        team.send(w, round);
                    }
                    for w in 0..3 {
                        team.recv(w);
                    }
                }
            },
        );
        assert_eq!(fins.len(), 3);
        // 3 workers each summed rounds 0..5.
        assert_eq!(total.load(Ordering::Relaxed), 3 * 10);
    }

    #[test]
    fn finish_runs_without_any_commands() {
        let (out, fins) = lockstep(
            vec![10u32, 20, 30],
            |_, _, (): ()| (),
            |w, st| st + w as u32,
            |_| "done",
        );
        assert_eq!(out, "done");
        assert_eq!(fins, vec![10, 21, 32]);
    }

    #[test]
    fn serve_panic_propagates() {
        let res = std::panic::catch_unwind(|| {
            lockstep(
                vec![0u8, 0],
                |w, _, (): ()| {
                    if w == 1 {
                        panic!("worker 1 exploded");
                    }
                },
                |_, st| st,
                |team| {
                    team.send(0, ());
                    team.send(1, ());
                    team.recv(0);
                    team.recv(1); // worker 1 died: panics, then unwinds
                },
            )
        });
        assert!(res.is_err(), "a worker panic must reach the caller");
    }

    #[test]
    fn body_panic_does_not_deadlock() {
        let res = std::panic::catch_unwind(|| {
            lockstep(
                vec![0u8, 0, 0],
                |_, _, (): ()| (),
                |_, st| st,
                |team| {
                    team.send(0, ());
                    panic!("body bailed early");
                },
            )
        });
        assert!(res.is_err());
    }
}
