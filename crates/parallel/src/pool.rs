//! A scoped-thread worker pool with ordered results.

use std::collections::VecDeque;
use std::sync::Mutex;

/// The number of workers to use when the caller does not say: the host's
/// available parallelism, or 1 if the OS cannot report it.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A fixed-width worker pool.
///
/// The pool holds no threads between calls: each [`Pool::map`] spawns its
/// workers inside a [`std::thread::scope`], which lets jobs borrow from the
/// caller's stack (the harness's jobs borrow the experiment context) and
/// guarantees every worker has exited before `map` returns.
///
/// # Examples
/// ```
/// use parallel::Pool;
///
/// let pool = Pool::new(4);
/// let squares = pool.map((0..8).map(|i| move || i * i).collect::<Vec<_>>());
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
#[derive(Debug, Clone)]
pub struct Pool {
    workers: usize,
}

impl Pool {
    /// A pool that runs up to `workers` jobs concurrently (min 1).
    pub fn new(workers: usize) -> Pool {
        Pool {
            workers: workers.max(1),
        }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs every job, at most `workers` at a time, and returns the results
    /// in the order the jobs were given — independent of completion order.
    ///
    /// With one worker (or one job) the jobs run inline on the calling
    /// thread in order, so `Pool::new(1).map(jobs)` is exactly the serial
    /// execution the parallel paths must reproduce.
    ///
    /// # Panics
    /// If a job panics, the panic is propagated to the caller once the
    /// remaining in-flight jobs finish (queued jobs may be abandoned).
    pub fn map<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let n = jobs.len();
        let workers = self.workers.min(n);
        if workers <= 1 {
            return jobs.into_iter().map(|f| f()).collect();
        }

        let queue: Mutex<VecDeque<(usize, F)>> = Mutex::new(jobs.into_iter().enumerate().collect());
        let results: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());

        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    // A panicking job poisons nothing it holds: both locks
                    // are released before/after the call, so recover the
                    // guard and keep draining — the scope re-raises the
                    // original panic when it joins the panicked worker.
                    let job = lock_ok(&queue).pop_front();
                    match job {
                        Some((i, f)) => {
                            let r = f();
                            lock_ok(&results)[i] = Some(r);
                        }
                        None => break,
                    }
                });
            }
        });

        results
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
            .into_iter()
            .map(|r| r.expect("worker completed every dequeued job"))
            .collect()
    }
}

/// Locks a mutex, ignoring poisoning (no invariant spans the guard).
fn lock_ok<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_keep_input_order() {
        let pool = Pool::new(4);
        // Later jobs finish first (earlier ones sleep longer): order must
        // still follow the input.
        let jobs: Vec<_> = (0..16u64)
            .map(|i| {
                move || {
                    std::thread::sleep(std::time::Duration::from_millis(16 - i));
                    i * 10
                }
            })
            .collect();
        let out = pool.map(jobs);
        assert_eq!(out, (0..16u64).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_runs_inline_in_order() {
        let pool = Pool::new(1);
        let order = Mutex::new(Vec::new());
        let jobs: Vec<_> = (0..8usize)
            .map(|i| {
                let order = &order;
                move || {
                    order.lock().unwrap().push(i);
                    i
                }
            })
            .collect();
        let out = pool.map(jobs);
        assert_eq!(out, (0..8).collect::<Vec<_>>());
        assert_eq!(*order.lock().unwrap(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_tiny_batches() {
        let pool = Pool::new(8);
        let none: Vec<fn() -> u32> = Vec::new();
        assert!(pool.map(none).is_empty());
        assert_eq!(pool.map(vec![|| 7u32]), vec![7]);
    }

    #[test]
    fn worker_count_is_clamped() {
        assert_eq!(Pool::new(0).workers(), 1);
        assert_eq!(Pool::new(3).workers(), 3);
    }

    #[test]
    fn all_jobs_run_exactly_once() {
        let pool = Pool::new(5);
        let count = AtomicUsize::new(0);
        let jobs: Vec<_> = (0..97usize)
            .map(|i| {
                let count = &count;
                move || {
                    count.fetch_add(1, Ordering::Relaxed);
                    i
                }
            })
            .collect();
        let out = pool.map(jobs);
        assert_eq!(count.load(Ordering::Relaxed), 97);
        assert_eq!(out, (0..97).collect::<Vec<_>>());
    }

    #[test]
    fn job_panic_propagates() {
        let pool = Pool::new(3);
        let res = std::panic::catch_unwind(|| {
            pool.map(
                (0..6usize)
                    .map(|i| move || if i == 3 { panic!("job 3 exploded") } else { i })
                    .collect::<Vec<_>>(),
            )
        });
        assert!(res.is_err(), "panic in a job must reach the caller");
    }
}
