//! Micro-benchmarks of the simulator's hot data structures and algorithms.
//!
//! These pin down where the ~2 M events/second of the end-to-end simulator
//! goes: the event queue, per-request service computation, statistics
//! recording, popularity sampling, and the once-per-epoch allocator DP.

use array::{ChunkId, HeatMap};
use bench::{criterion_group, criterion_main, Criterion};
use diskmodel::{Disk, DiskRequest, DiskSpec, IoKind, RequestClass, ServiceModel, SpeedLevel};
use hibernator::{AllocationInput, ServiceEstimator, SpeedAllocator};
use simkit::{
    DetRng, EventQueue, IdMap, LatencyHistogram, Moments, SimDuration, SimTime, SlidingWindow,
};
use std::hint::black_box;
use workload::ZipfExtents;

fn event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        let mut rng = DetRng::new(1, "bench-eq");
        let times: Vec<f64> = (0..1000).map(|_| rng.uniform(0.0, 1e6)).collect();
        b.iter(|| {
            let mut q = EventQueue::with_capacity(1024);
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_secs(t), i);
            }
            let mut acc = 0usize;
            while let Some((_, p)) = q.pop() {
                acc = acc.wrapping_add(p);
            }
            black_box(acc)
        })
    });
}

fn event_queue_ties(c: &mut Criterion) {
    // All-same-time bursts stress the packed (time, seq) key's FIFO
    // tie-breaking — the common case after a tick wakes many disks at once.
    c.bench_function("event_queue_same_time_fifo_1k", |b| {
        let t = SimTime::from_secs(123.456);
        b.iter(|| {
            let mut q = EventQueue::with_capacity(1024);
            for i in 0..1000usize {
                q.push(t, i);
            }
            let mut acc = 0usize;
            while let Some((_, p)) = q.pop() {
                acc = acc.wrapping_add(p);
            }
            black_box(acc)
        })
    });
}

fn idmap_churn(c: &mut Criterion) {
    // The driver's pending/gather maps: sequential ids inserted and
    // removed in a sliding window, the in-flight-request lifecycle.
    let mut rng = DetRng::new(6, "bench-idmap");
    let values: Vec<u64> = (0..1024).map(|_| rng.below(1 << 20)).collect();
    c.bench_function("idmap_sliding_churn_1k", |b| {
        b.iter(|| {
            let mut m: IdMap<u64> = IdMap::with_capacity(256);
            for (i, &v) in values.iter().enumerate() {
                m.insert(i as u64, v);
                if i >= 64 {
                    black_box(m.remove(i as u64 - 64));
                }
            }
            black_box(m.len())
        })
    });
    c.bench_function("idmap_lookup_hit_1k", |b| {
        let mut m: IdMap<u64> = IdMap::with_capacity(1024);
        for (i, &v) in values.iter().enumerate() {
            m.insert(i as u64, v);
        }
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..1024u64 {
                acc = acc.wrapping_add(*m.get(i).unwrap());
            }
            black_box(acc)
        })
    });
}

fn service_model(c: &mut Criterion) {
    let spec = DiskSpec::ultrastar_multispeed(6);
    let model = ServiceModel::new(&spec);
    let mut rng = DetRng::new(2, "bench-svc");
    let cap = model.geometry().total_sectors();
    let reqs: Vec<DiskRequest> = (0..256)
        .map(|i| DiskRequest {
            id: i,
            sector: rng.below(cap - 64),
            sectors: 16,
            kind: IoKind::Read,
            class: RequestClass::Foreground,
            issue_time: SimTime::ZERO,
        })
        .collect();
    c.bench_function("service_time_256_random_reqs", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for (i, r) in reqs.iter().enumerate() {
                let phases = model.service(r, (i * 37 % 18000) as u32, SpeedLevel(5), 0.5);
                acc += phases.total_s();
            }
            black_box(acc)
        })
    });
}

fn disk_service_loop(c: &mut Criterion) {
    c.bench_function("disk_1k_requests_end_to_end", |b| {
        let spec = DiskSpec::ultrastar_multispeed(6);
        b.iter(|| {
            let mut disk = Disk::new(0, &spec, 9, SpeedLevel(5));
            let t0 = SimTime::ZERO;
            for i in 0..1000u64 {
                disk.submit(
                    t0,
                    DiskRequest {
                        id: i,
                        sector: (i * 104_729) % 40_000_000,
                        sectors: 16,
                        kind: IoKind::Read,
                        class: RequestClass::Foreground,
                        issue_time: t0,
                    },
                );
            }
            let mut done = 0;
            while let Some(t) = disk.next_event_time() {
                done += disk.on_event(t).len();
            }
            black_box(done)
        })
    });
}

fn statistics(c: &mut Criterion) {
    let mut rng = DetRng::new(3, "bench-stats");
    let samples: Vec<f64> = (0..10_000).map(|_| rng.uniform(1e-4, 0.5)).collect();
    c.bench_function("moments_record_10k", |b| {
        b.iter(|| {
            let mut m = Moments::new();
            for &s in &samples {
                m.record(s);
            }
            black_box(m.variance())
        })
    });
    c.bench_function("histogram_record_10k", |b| {
        b.iter(|| {
            let mut h = LatencyHistogram::new_latency();
            for &s in &samples {
                h.record(s);
            }
            black_box(h.quantile(0.99))
        })
    });
    c.bench_function("sliding_window_record_10k", |b| {
        b.iter(|| {
            let mut w = SlidingWindow::new(SimDuration::from_secs(10.0));
            for (i, &s) in samples.iter().enumerate() {
                w.record(SimTime::from_secs(i as f64 * 0.01), s);
            }
            black_box(w.mean(SimTime::from_secs(100.0)))
        })
    });
}

fn popularity(c: &mut Criterion) {
    let mut rng = DetRng::new(4, "bench-zipf");
    let zipf = ZipfExtents::new(&mut rng, 16_384, 2048, 0.95);
    c.bench_function("zipf_sample_10k", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..10_000 {
                acc = acc.wrapping_add(zipf.sample_sector(&mut rng, 16));
            }
            black_box(acc)
        })
    });
}

fn heat_ranking(c: &mut Criterion) {
    let mut heat = HeatMap::new(16_384, SimDuration::from_hours(2.0));
    let mut rng = DetRng::new(5, "bench-heat");
    for i in 0..200_000 {
        let chunk = ChunkId((rng.below(16_384)) as u32);
        heat.touch(SimTime::from_secs(i as f64 * 0.01), chunk, 1.0);
    }
    let now = SimTime::from_secs(2000.0);
    c.bench_function("heat_ranking_16k_chunks", |b| {
        b.iter(|| black_box(heat.ranking(now)))
    });
}

fn allocator_dp(c: &mut Criterion) {
    let spec = DiskSpec::ultrastar_multispeed(6);
    let alloc = SpeedAllocator::new(&diskmodel::PowerModel::new(&spec), 6);
    let est = ServiceEstimator::new(&ServiceModel::new(&spec), 6, 16);
    let rates: Vec<f64> = (0..16_384)
        .map(|i| 150.0 / (i as f64 + 1.0) / 10.0)
        .collect();
    c.bench_function("allocator_dp_16_disks", |b| {
        b.iter(|| {
            let input = AllocationInput {
                chunk_rates: &rates,
                disks: 16,
                goal_s: 0.004,
            };
            black_box(alloc.allocate(&input, &est))
        })
    });
    c.bench_function("allocator_dp_64_disks", |b| {
        b.iter(|| {
            let input = AllocationInput {
                chunk_rates: &rates,
                disks: 64,
                goal_s: 0.004,
            };
            black_box(alloc.allocate(&input, &est))
        })
    });
}

fn worker_pool(c: &mut Criterion) {
    // Dispatch overhead of the experiment harness's executor: many tiny
    // jobs (worst case for queue contention) and a batch of short
    // simulation-shaped jobs, at 1 worker (inline path) vs 4.
    let pool1 = parallel::Pool::new(1);
    let pool4 = parallel::Pool::new(4);
    c.bench_function("pool_1k_tiny_jobs_1_worker", |b| {
        b.iter(|| {
            let jobs: Vec<_> = (0..1000u64).map(|i| move || i.wrapping_mul(i)).collect();
            black_box(pool1.map(jobs))
        })
    });
    c.bench_function("pool_1k_tiny_jobs_4_workers", |b| {
        b.iter(|| {
            let jobs: Vec<_> = (0..1000u64).map(|i| move || i.wrapping_mul(i)).collect();
            black_box(pool4.map(jobs))
        })
    });
    c.bench_function("pool_16_cpu_jobs_4_workers", |b| {
        b.iter(|| {
            let jobs: Vec<_> = (0..16u64)
                .map(|i| {
                    move || {
                        let mut acc = i;
                        for k in 0..200_000u64 {
                            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                        }
                        acc
                    }
                })
                .collect();
            black_box(pool4.map(jobs))
        })
    });
}

criterion_group!(
    micro,
    event_queue,
    event_queue_ties,
    idmap_churn,
    service_model,
    disk_service_loop,
    statistics,
    popularity,
    heat_ranking,
    allocator_dp,
    worker_pool,
);
criterion_main!(micro);
