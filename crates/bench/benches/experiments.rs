//! One Criterion benchmark per reproduced table and figure.
//!
//! Each bench runs a scaled-down version of the corresponding experiment
//! (see DESIGN.md §6): same code paths, shorter horizons and smaller
//! arrays, so `cargo bench` doubles as a performance regression harness
//! for the whole pipeline. The authoritative, full-scale numbers come from
//! the `repro` binary; these benches measure *simulator* cost, not the
//! policies' energy results.

use array::{run_policy, ArrayConfig, BasePolicy, RunOptions};
use bench::{criterion_group, criterion_main, Criterion};
use diskmodel::{DiskSpec, PowerModel, ServiceModel};
use hibernator::{Hibernator, HibernatorConfig};
use policies::{maid_array_config, DrpmPolicy, MaidConfig, MaidPolicy, PdcPolicy, TpmPolicy};
use simkit::SimDuration;
use std::hint::black_box;
use workload::{TraceStats, WorkloadSpec};

const BENCH_HORIZON_S: f64 = 300.0;

fn bench_config() -> ArrayConfig {
    let mut c = ArrayConfig::default_for_volume(1 << 30);
    c.disks = 8;
    c
}

fn bench_trace() -> workload::Trace {
    let mut spec = WorkloadSpec::oltp(BENCH_HORIZON_S, 40.0);
    spec.extents = 1024;
    spec.generate(1)
}

fn cello_trace() -> workload::Trace {
    let mut spec = WorkloadSpec::cello_like(BENCH_HORIZON_S, 40.0);
    spec.extents = 1024;
    spec.generate(1)
}

fn hib(goal_s: f64) -> Hibernator {
    let mut cfg = HibernatorConfig::for_goal(goal_s);
    cfg.epoch = SimDuration::from_secs(60.0);
    cfg.heat_tau = SimDuration::from_secs(60.0);
    cfg.guard_window = SimDuration::from_secs(30.0);
    cfg.guard_hysteresis = SimDuration::from_secs(60.0);
    Hibernator::new(cfg)
}

/// T1 — evaluating the disk model tables (spec → power/service figures).
fn t1_disk_model(c: &mut Criterion) {
    c.bench_function("t1_disk_model_tables", |b| {
        b.iter(|| {
            let spec = DiskSpec::ultrastar_multispeed(black_box(6));
            let pm = PowerModel::new(&spec);
            let sm = ServiceModel::new(&spec);
            let mut acc = 0.0;
            for l in spec.levels() {
                acc += pm.idle_w(l) + sm.expected_random_service_s(l, 16);
            }
            acc += sm.seek_model().average_seek_time();
            black_box(acc)
        })
    });
}

/// T2 — workload generation + characterisation.
fn t2_workload_stats(c: &mut Criterion) {
    c.bench_function("t2_workload_generation_and_stats", |b| {
        b.iter(|| {
            let trace = WorkloadSpec::oltp(60.0, 50.0).generate(black_box(3));
            black_box(TraceStats::compute(&trace))
        })
    });
}

/// T3/T5 — the headline policy-comparison runs (energy + breakdown come
/// from the same simulations).
fn t3_policy_energy(c: &mut Criterion) {
    let trace = bench_trace();
    let mut g = c.benchmark_group("t3_policy_energy");
    g.sample_size(10);
    g.bench_function("base", |b| {
        b.iter(|| {
            run_policy(
                bench_config(),
                BasePolicy,
                &trace,
                RunOptions::for_horizon(BENCH_HORIZON_S),
            )
        })
    });
    g.bench_function("tpm", |b| {
        b.iter(|| {
            run_policy(
                bench_config(),
                TpmPolicy::competitive(),
                &trace,
                RunOptions::for_horizon(BENCH_HORIZON_S),
            )
        })
    });
    g.bench_function("drpm", |b| {
        b.iter(|| {
            run_policy(
                bench_config(),
                DrpmPolicy::default(),
                &trace,
                RunOptions::for_horizon(BENCH_HORIZON_S),
            )
        })
    });
    g.bench_function("pdc", |b| {
        b.iter(|| {
            run_policy(
                bench_config(),
                PdcPolicy::default(),
                &trace,
                RunOptions::for_horizon(BENCH_HORIZON_S),
            )
        })
    });
    g.bench_function("maid", |b| {
        b.iter(|| {
            let cfg = maid_array_config(bench_config(), 2);
            run_policy(
                cfg,
                MaidPolicy::new(MaidConfig {
                    cache_disks: 2,
                    cache_chunks_per_disk: 128,
                    tpm_threshold_s: None,
                }),
                &trace,
                RunOptions::for_horizon(BENCH_HORIZON_S),
            )
        })
    });
    g.bench_function("hibernator", |b| {
        b.iter(|| {
            run_policy(
                bench_config(),
                hib(0.010),
                &trace,
                RunOptions::for_horizon(BENCH_HORIZON_S),
            )
        })
    });
    g.finish();
}

/// T4 — response-time statistics extraction from a finished run.
fn t4_response_stats(c: &mut Criterion) {
    let trace = bench_trace();
    let report = run_policy(
        bench_config(),
        BasePolicy,
        &trace,
        RunOptions::for_horizon(BENCH_HORIZON_S),
    );
    c.bench_function("t4_response_percentiles", |b| {
        b.iter(|| {
            let p50 = report.response_hist.quantile(black_box(0.5));
            let p95 = report.response_hist.quantile(black_box(0.95));
            let p99 = report.response_hist.quantile(black_box(0.99));
            black_box((p50, p95, p99))
        })
    });
}

/// F1/F2/F10 — time-series recording cost (one managed run with series).
fn f1_series_run(c: &mut Criterion) {
    let trace = bench_trace();
    let mut g = c.benchmark_group("f1_f2_f10_series");
    g.sample_size(10);
    g.bench_function("hibernator_with_series", |b| {
        b.iter(|| {
            let mut opts = RunOptions::for_horizon(BENCH_HORIZON_S);
            opts.series_bucket = SimDuration::from_secs(10.0);
            opts.sample_interval = opts.series_bucket;
            run_policy(bench_config(), hib(0.010), &trace, opts)
        })
    });
    g.finish();
}

/// F3 — the goal sweep (three points at bench scale).
fn f3_goal_sweep(c: &mut Criterion) {
    let trace = bench_trace();
    let mut g = c.benchmark_group("f3_goal_sweep");
    g.sample_size(10);
    g.bench_function("three_goals", |b| {
        b.iter(|| {
            for goal in [0.006, 0.010, 0.020] {
                black_box(run_policy(
                    bench_config(),
                    hib(goal),
                    &trace,
                    RunOptions::for_horizon(BENCH_HORIZON_S),
                ));
            }
        })
    });
    g.finish();
}

/// F4 — epoch-length sensitivity (two epochs at bench scale).
fn f4_epoch_sweep(c: &mut Criterion) {
    let trace = bench_trace();
    let mut g = c.benchmark_group("f4_epoch_sweep");
    g.sample_size(10);
    g.bench_function("short_vs_long_epoch", |b| {
        b.iter(|| {
            for epoch_s in [30.0, 120.0] {
                let mut cfg = HibernatorConfig::for_goal(0.010);
                cfg.epoch = SimDuration::from_secs(epoch_s);
                cfg.heat_tau = cfg.epoch;
                black_box(run_policy(
                    bench_config(),
                    Hibernator::new(cfg),
                    &trace,
                    RunOptions::for_horizon(BENCH_HORIZON_S),
                ));
            }
        })
    });
    g.finish();
}

/// F5 — speed-level-count sensitivity (2 vs 6 levels).
fn f5_levels_sweep(c: &mut Criterion) {
    let trace = bench_trace();
    let mut g = c.benchmark_group("f5_levels_sweep");
    g.sample_size(10);
    g.bench_function("two_vs_six_levels", |b| {
        b.iter(|| {
            for levels in [2usize, 6] {
                let mut config = bench_config();
                config.spec = DiskSpec::ultrastar_multispeed(levels);
                black_box(run_policy(
                    config,
                    hib(0.010),
                    &trace,
                    RunOptions::for_horizon(BENCH_HORIZON_S),
                ));
            }
        })
    });
    g.finish();
}

/// F6 — load-scaling behaviour (0.5x vs 2x).
fn f6_load_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("f6_load_sweep");
    g.sample_size(10);
    for (label, rate) in [("half_load", 20.0), ("double_load", 80.0)] {
        let mut spec = WorkloadSpec::oltp(BENCH_HORIZON_S, rate);
        spec.extents = 1024;
        let trace = spec.generate(1);
        g.bench_function(label, |b| {
            b.iter(|| {
                black_box(run_policy(
                    bench_config(),
                    hib(0.010),
                    &trace,
                    RunOptions::for_horizon(BENCH_HORIZON_S),
                ))
            })
        });
    }
    g.finish();
}

/// F7 — migration-mode ablation.
fn f7_migration_ablation(c: &mut Criterion) {
    let trace = bench_trace();
    let mut g = c.benchmark_group("f7_migration_ablation");
    g.sample_size(10);
    g.bench_function("none_vs_temperature", |b| {
        b.iter(|| {
            let with = run_policy(
                bench_config(),
                hib(0.010),
                &trace,
                RunOptions::for_horizon(BENCH_HORIZON_S),
            );
            let without = run_policy(
                bench_config(),
                hib(0.010).without_migration(),
                &trace,
                RunOptions::for_horizon(BENCH_HORIZON_S),
            );
            black_box((with, without))
        })
    });
    g.finish();
}

/// F8 — guard ablation on the bursty workload.
fn f8_guard_ablation(c: &mut Criterion) {
    let trace = cello_trace();
    let mut g = c.benchmark_group("f8_guard_ablation");
    g.sample_size(10);
    g.bench_function("guard_on_vs_off", |b| {
        b.iter(|| {
            let on = run_policy(
                bench_config(),
                hib(0.010),
                &trace,
                RunOptions::for_horizon(BENCH_HORIZON_S),
            );
            let off = run_policy(
                bench_config(),
                hib(0.010).without_guard(),
                &trace,
                RunOptions::for_horizon(BENCH_HORIZON_S),
            );
            black_box((on, off))
        })
    });
    g.finish();
}

/// F9 — array-size scaling: simulator cost vs disk count.
fn f9_array_size(c: &mut Criterion) {
    let mut g = c.benchmark_group("f9_array_size");
    g.sample_size(10);
    for disks in [4usize, 16] {
        let mut spec = WorkloadSpec::oltp(BENCH_HORIZON_S, 5.0 * disks as f64);
        spec.extents = 1024;
        let trace = spec.generate(1);
        g.bench_function(format!("{disks}_disks"), |b| {
            b.iter(|| {
                let mut config = bench_config();
                config.disks = disks;
                black_box(run_policy(
                    config,
                    hib(0.010),
                    &trace,
                    RunOptions::for_horizon(BENCH_HORIZON_S),
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(
    experiments,
    t1_disk_model,
    t2_workload_stats,
    t3_policy_energy,
    t4_response_stats,
    f1_series_run,
    f3_goal_sweep,
    f4_epoch_sweep,
    f5_levels_sweep,
    f6_load_sweep,
    f7_migration_ablation,
    f8_guard_ablation,
    f9_array_size,
);
criterion_main!(experiments);
