//! Minimal benchmarking harness with a Criterion-compatible surface.
//!
//! The workspace builds in environments with no access to crates.io, so the
//! benches in `benches/` run on this self-contained shim instead of the
//! `criterion` crate. It reproduces the small slice of Criterion's API the
//! benches use — [`Criterion::bench_function`], benchmark groups,
//! [`Bencher::iter`], and the `criterion_group!`/`criterion_main!` macros —
//! and reports mean wall-clock time per iteration on stdout. It aims for
//! useful relative numbers, not Criterion's statistical rigour.

use std::time::Instant;

/// Number of timed iterations per benchmark (after one warm-up).
const DEFAULT_SAMPLES: usize = 10;

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    samples: usize,
    /// Under `cargo test` (cargo passes `--test` to harness-less bench
    /// binaries) every benchmark runs exactly once as a smoke test.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Self::new()
    }
}

impl Criterion {
    /// A driver with the default sample count; honours `--test` smoke mode.
    pub fn new() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            samples: if test_mode { 1 } else { DEFAULT_SAMPLES },
            test_mode,
        }
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.samples, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            prefix: name.to_string(),
            samples: self.samples,
            test_mode: self.test_mode,
            _parent: self,
        }
    }
}

/// A named group of related benchmarks, mirroring Criterion's group API.
pub struct BenchmarkGroup<'a> {
    prefix: String,
    samples: usize,
    test_mode: bool,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count (ignored in `--test` smoke mode).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if !self.test_mode {
            self.samples = n.max(2);
        }
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<S: AsRef<str>, F>(&mut self, name: S, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.prefix, name.as_ref());
        run_one(&full, self.samples, &mut f);
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the body.
pub struct Bencher {
    samples: usize,
    /// Mean seconds per iteration, filled in by [`Bencher::iter`].
    mean_s: f64,
}

impl Bencher {
    /// Times `f`: one warm-up call, then `samples` timed calls.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        std::hint::black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(f());
        }
        self.mean_s = start.elapsed().as_secs_f64() / self.samples as f64;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, f: &mut F) {
    let mut b = Bencher {
        samples,
        mean_s: 0.0,
    };
    f(&mut b);
    println!("{name:<44} {}", format_duration(b.mean_s));
}

fn format_duration(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:>10.3} s /iter")
    } else if s >= 1e-3 {
        format!("{:>10.3} ms/iter", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:>10.3} µs/iter", s * 1e6)
    } else {
        format!("{:>10.1} ns/iter", s * 1e9)
    }
}

/// Declares a function running a list of benchmarks, like Criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $( $bench(c); )+
        }
    };
}

/// Declares `main` for a bench binary, like Criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($group:ident) => {
        fn main() {
            let mut c = $crate::Criterion::new();
            $group(&mut c);
        }
    };
}
