//! Bench crate: all content lives in benches/.
