//! # array — the disk-array substrate
//!
//! Glues [`diskmodel`] spindles into a logical volume and drives the whole
//! thing through a deterministic discrete-event simulation:
//!
//! * [`ArrayConfig`] / [`DiskId`] / [`ChunkId`] — configuration and ids;
//! * [`RemapTable`] — the chunk → (disk, slot) placement bijection,
//!   initially striped, reshaped by migration;
//! * [`HeatMap`] — per-chunk decaying access temperatures (shared by every
//!   placement-aware policy);
//! * [`MigrationEngine`] / [`MigrationJob`] — background copies that yield
//!   to foreground I/O and commit (or abort, on concurrent writes) the
//!   remap update atomically;
//! * [`PowerPolicy`] / [`ArrayState`] — the interface every
//!   energy-management scheme implements, with [`BasePolicy`] as the
//!   no-management reference;
//! * [`Simulation`] / [`run_policy`] — the event-driven driver producing a
//!   [`RunReport`] (energy ledger, response-time statistics, time series).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod heat;
mod migration;
mod policy;
mod remap;
mod sim;
mod stats;
mod types;

pub use heat::{HeatMap, RankScratch};
pub use migration::{
    MigrationEngine, MigrationJob, MigrationRecord, MigrationRecordKind, MigrationStats,
};
pub use policy::{ArrayState, BasePolicy, PowerPolicy, WakeMarks};
pub use remap::{Placement, RemapTable};
pub use sim::{run_policy, run_policy_streamed, RunOptions, RunReport, Simulation};
pub use stats::ArrayStats;
pub use types::{ArrayConfig, ChunkId, DiskId, Redundancy};
