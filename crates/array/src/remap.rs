//! The chunk remap table: where every volume chunk physically lives.
//!
//! [`RemapTable`] maintains the bijection between volume chunks and
//! `(disk, slot)` placements. The initial layout stripes chunks round-robin
//! across disks (chunk *c* → disk *c mod N*, slot *c div N*), exactly the
//! balanced layout a conventional array would use. Power policies then
//! reshape it through [`RemapTable::relocate`] and [`RemapTable::swap`].
//!
//! Invariants enforced (and property-tested):
//! * every chunk has exactly one placement;
//! * no two chunks share a placement;
//! * per-disk occupancy never exceeds the slot capacity.

use crate::types::{ArrayConfig, ChunkId, DiskId};

/// Physical placement of one chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Which disk.
    pub disk: DiskId,
    /// Chunk slot on that disk; physical sector = `slot × chunk_sectors`.
    pub slot: u32,
}

/// The chunk → placement table with free-slot management.
#[derive(Debug, Clone)]
pub struct RemapTable {
    placements: Vec<Placement>,
    /// Recycled free slots per disk (from chunks that moved away).
    free: Vec<Vec<u32>>,
    /// Next never-used slot per disk.
    fresh: Vec<u32>,
    slots_per_disk: u32,
    chunk_sectors: u64,
    occupancy: Vec<u32>,
    /// Bumps on every committed relocation or swap; telemetry reconciles
    /// this against the count of remap-mutating migration commits.
    version: u64,
}

impl RemapTable {
    /// Builds the initial striped layout for `config`.
    ///
    /// # Panics
    /// Panics if the config does not validate.
    pub fn striped(config: &ArrayConfig) -> RemapTable {
        config.validate().expect("invalid array config");
        let n = config.effective_stripe_width();
        let mut placements = Vec::with_capacity(config.volume_chunks as usize);
        let mut fresh = vec![0u32; n];
        let mut occupancy = vec![0u32; n];
        for c in 0..config.volume_chunks {
            let disk = (c as usize) % n;
            let slot = fresh[disk];
            fresh[disk] += 1;
            occupancy[disk] += 1;
            placements.push(Placement {
                disk: DiskId(disk),
                slot,
            });
        }
        // Slot bookkeeping covers every disk, even those outside the
        // initial stripe (migration may move chunks onto them later).
        let total = config.disks;
        fresh.resize(total, 0);
        occupancy.resize(total, 0);
        RemapTable {
            placements,
            free: vec![Vec::new(); total],
            fresh,
            slots_per_disk: config.slots_per_disk(),
            chunk_sectors: config.chunk_sectors,
            occupancy,
            version: 0,
        }
    }

    /// Number of chunks.
    pub fn chunks(&self) -> u32 {
        self.placements.len() as u32
    }

    /// Number of disks.
    pub fn disks(&self) -> usize {
        self.fresh.len()
    }

    /// Sectors per chunk.
    pub fn chunk_sectors(&self) -> u64 {
        self.chunk_sectors
    }

    /// Where `chunk` lives.
    ///
    /// # Panics
    /// Panics if `chunk` is out of range.
    pub fn placement(&self, chunk: ChunkId) -> Placement {
        self.placements[chunk.index()]
    }

    /// The disk holding `chunk`.
    pub fn disk_of(&self, chunk: ChunkId) -> DiskId {
        self.placement(chunk).disk
    }

    /// The first physical sector of `chunk` on its disk.
    pub fn physical_sector(&self, chunk: ChunkId) -> u64 {
        u64::from(self.placement(chunk).slot) * self.chunk_sectors
    }

    /// Chunks currently resident on `disk` (O(chunks); for planners, which
    /// run once per epoch, not per request).
    pub fn chunks_on(&self, disk: DiskId) -> Vec<ChunkId> {
        self.placements
            .iter()
            .enumerate()
            .filter(|(_, p)| p.disk == disk)
            .map(|(c, _)| ChunkId(c as u32))
            .collect()
    }

    /// Reverse lookup: the chunk living at (`disk`, `slot`), if any.
    /// O(chunks); used on the failure path (redirecting requests already
    /// addressed to a dead disk), not per request in steady state.
    pub fn chunk_at(&self, disk: DiskId, slot: u32) -> Option<ChunkId> {
        self.placements
            .iter()
            .position(|p| p.disk == disk && p.slot == slot)
            .map(|c| ChunkId(c as u32))
    }

    /// Current number of chunks on `disk`.
    pub fn occupancy(&self, disk: DiskId) -> u32 {
        self.occupancy[disk.index()]
    }

    /// True if `disk` has at least one free slot.
    pub fn has_free_slot(&self, disk: DiskId) -> bool {
        self.occupancy[disk.index()] < self.slots_per_disk
    }

    /// Allocates a free slot on `disk` without assigning it (the migration
    /// engine reserves the destination before the copy starts). Returns
    /// `None` if the disk is full.
    pub fn reserve_slot(&mut self, disk: DiskId) -> Option<u32> {
        let d = disk.index();
        if self.occupancy[d] >= self.slots_per_disk {
            return None;
        }
        self.occupancy[d] += 1;
        if let Some(s) = self.free[d].pop() {
            Some(s)
        } else {
            let s = self.fresh[d];
            // occupancy < slots_per_disk guarantees fresh slots remain or
            // the free list was non-empty.
            debug_assert!(s < self.slots_per_disk);
            self.fresh[d] += 1;
            Some(s)
        }
    }

    /// Returns a previously reserved (but now unneeded) slot to the pool.
    pub fn release_slot(&mut self, disk: DiskId, slot: u32) {
        let d = disk.index();
        debug_assert!(self.occupancy[d] > 0);
        self.occupancy[d] -= 1;
        self.free[d].push(slot);
    }

    /// Commits a relocation: `chunk` now lives at (`dst`, `dst_slot`), and
    /// its old slot is freed. `dst_slot` must have been obtained from
    /// [`RemapTable::reserve_slot`].
    pub fn relocate(&mut self, chunk: ChunkId, dst: DiskId, dst_slot: u32) {
        let old = self.placements[chunk.index()];
        self.placements[chunk.index()] = Placement {
            disk: dst,
            slot: dst_slot,
        };
        let od = old.disk.index();
        debug_assert!(self.occupancy[od] > 0);
        self.occupancy[od] -= 1;
        self.free[od].push(old.slot);
        self.version += 1;
    }

    /// Commits a swap: the two chunks exchange placements. They must live
    /// on different disks (swapping within a disk is a no-op for power
    /// purposes and is rejected to catch planner bugs).
    ///
    /// # Panics
    /// Panics if the chunks share a disk.
    pub fn swap(&mut self, a: ChunkId, b: ChunkId) {
        let pa = self.placements[a.index()];
        let pb = self.placements[b.index()];
        assert_ne!(pa.disk, pb.disk, "swap within one disk");
        self.placements[a.index()] = pb;
        self.placements[b.index()] = pa;
        self.version += 1;
    }

    /// Layout version: the number of committed relocations and swaps
    /// since construction.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Checks the bijection invariant: every placement unique, occupancy
    /// counters consistent. O(chunks); used by tests and debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut seen = std::collections::HashSet::with_capacity(self.placements.len());
        let mut occ = vec![0u32; self.fresh.len()];
        for (c, p) in self.placements.iter().enumerate() {
            if p.slot >= self.slots_per_disk {
                return Err(format!("chunk {c} slot {} out of range", p.slot));
            }
            if !seen.insert((p.disk, p.slot)) {
                return Err(format!("duplicate placement for chunk {c}: {p:?}"));
            }
            occ[p.disk.index()] += 1;
        }
        for (d, (&have, &counted)) in self.occupancy.iter().zip(&occ).enumerate() {
            // `occupancy` includes reserved-but-uncommitted slots, so it may
            // exceed the placed count but never undercount it.
            if have < counted {
                return Err(format!(
                    "disk {d} occupancy {have} below placed count {counted}"
                ));
            }
            if have > self.slots_per_disk {
                return Err(format!("disk {d} over capacity: {have}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(disks: usize, chunks: u32) -> ArrayConfig {
        let mut c = ArrayConfig::default_for_volume(1 << 30);
        c.disks = disks;
        c.volume_chunks = chunks;
        c
    }

    #[test]
    fn striped_layout_round_robins() {
        let t = RemapTable::striped(&config(4, 10));
        for c in 0..10u32 {
            let p = t.placement(ChunkId(c));
            assert_eq!(p.disk.index(), (c as usize) % 4);
            assert_eq!(p.slot, c / 4);
        }
        t.check_invariants().unwrap();
        assert_eq!(t.occupancy(DiskId(0)), 3);
        assert_eq!(t.occupancy(DiskId(3)), 2);
    }

    #[test]
    fn physical_sector_uses_slot() {
        let t = RemapTable::striped(&config(4, 10));
        assert_eq!(t.physical_sector(ChunkId(0)), 0);
        assert_eq!(t.physical_sector(ChunkId(4)), t.chunk_sectors());
    }

    #[test]
    fn chunks_on_lists_residents() {
        let t = RemapTable::striped(&config(4, 10));
        let on0 = t.chunks_on(DiskId(0));
        assert_eq!(on0, vec![ChunkId(0), ChunkId(4), ChunkId(8)]);
    }

    #[test]
    fn chunk_at_inverts_placement() {
        let t = RemapTable::striped(&config(4, 10));
        for c in 0..10u32 {
            let p = t.placement(ChunkId(c));
            assert_eq!(t.chunk_at(p.disk, p.slot), Some(ChunkId(c)));
        }
        assert_eq!(t.chunk_at(DiskId(3), 99), None);
    }

    #[test]
    fn relocate_moves_and_frees() {
        let mut t = RemapTable::striped(&config(4, 8));
        let slot = t.reserve_slot(DiskId(3)).unwrap();
        t.relocate(ChunkId(0), DiskId(3), slot);
        assert_eq!(t.disk_of(ChunkId(0)), DiskId(3));
        assert_eq!(t.occupancy(DiskId(0)), 1);
        assert_eq!(t.occupancy(DiskId(3)), 3);
        t.check_invariants().unwrap();
        // The freed slot on disk 0 is reusable.
        let s = t.reserve_slot(DiskId(0)).unwrap();
        assert_eq!(s, 0, "recycled slot should be handed out");
    }

    #[test]
    fn swap_exchanges_placements() {
        let mut t = RemapTable::striped(&config(4, 8));
        let pa = t.placement(ChunkId(0));
        let pb = t.placement(ChunkId(1));
        t.swap(ChunkId(0), ChunkId(1));
        assert_eq!(t.placement(ChunkId(0)), pb);
        assert_eq!(t.placement(ChunkId(1)), pa);
        t.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "swap within one disk")]
    fn swap_same_disk_rejected() {
        let mut t = RemapTable::striped(&config(4, 8));
        t.swap(ChunkId(0), ChunkId(4)); // both on disk 0
    }

    #[test]
    fn reserve_exhausts_at_capacity() {
        let mut cfg = config(2, 4);
        cfg.volume_chunks = 4;
        let mut t = RemapTable::striped(&cfg);
        let cap = cfg.slots_per_disk();
        // Fill disk 0 to the brim.
        let mut got = 0;
        while t.reserve_slot(DiskId(0)).is_some() {
            got += 1;
        }
        assert_eq!(got, cap - 2, "2 slots were taken by initial striping");
        assert!(!t.has_free_slot(DiskId(0)));
    }

    #[test]
    fn release_returns_capacity() {
        let mut t = RemapTable::striped(&config(2, 4));
        let s = t.reserve_slot(DiskId(0)).unwrap();
        let occ = t.occupancy(DiskId(0));
        t.release_slot(DiskId(0), s);
        assert_eq!(t.occupancy(DiskId(0)), occ - 1);
    }

    /// Any interleaving of relocations and swaps preserves the bijection
    /// invariant. Deterministic randomised sweep over 64 op sequences.
    #[test]
    fn random_migrations_keep_bijection() {
        for case in 0..64u64 {
            let mut rng = simkit::DetRng::new(0xB17E ^ case, "remap-bijection");
            let mut t = RemapTable::striped(&config(8, 64));
            for _ in 0..rng.below(200) {
                let a = ChunkId(rng.below(64) as u32);
                let b = ChunkId(rng.below(64) as u32);
                let dst = DiskId(rng.below(8) as usize);
                if rng.chance(0.5) {
                    if let Some(slot) = t.reserve_slot(dst) {
                        t.relocate(a, dst, slot);
                    }
                } else if t.disk_of(a) != t.disk_of(b) {
                    t.swap(a, b);
                }
            }
            assert!(t.check_invariants().is_ok(), "case {case}");
        }
    }
}
