//! Per-chunk access-temperature tracking.
//!
//! Both Hibernator and PDC need "how hot is each chunk lately". [`HeatMap`]
//! keeps one exponentially decaying counter per chunk (time constant `tau`),
//! so temperature reflects recent traffic and forgets ancient history. The
//! decay is applied lazily, making `touch` O(1).

use crate::types::ChunkId;
use simkit::{SimDuration, SimTime};

/// One decaying counter per chunk.
#[derive(Debug, Clone)]
pub struct HeatMap {
    tau_s: f64,
    mass: Vec<f64>,
    last: Vec<SimTime>,
}

impl HeatMap {
    /// Creates a map over `chunks` chunks with decay time constant `tau`.
    ///
    /// # Panics
    /// Panics if `tau` is zero or `chunks == 0`.
    pub fn new(chunks: u32, tau: SimDuration) -> HeatMap {
        assert!(!tau.is_zero(), "HeatMap: zero tau");
        assert!(chunks > 0, "HeatMap: no chunks");
        HeatMap {
            tau_s: tau.as_secs(),
            mass: vec![0.0; chunks as usize],
            last: vec![SimTime::ZERO; chunks as usize],
        }
    }

    /// Number of chunks tracked.
    pub fn chunks(&self) -> u32 {
        self.mass.len() as u32
    }

    /// Registers `weight` accesses to `chunk` at `now` (weight 1.0 = one
    /// request; callers may weight by sectors).
    pub fn touch(&mut self, now: SimTime, chunk: ChunkId, weight: f64) {
        let i = chunk.index();
        let dt = now.saturating_since(self.last[i]).as_secs();
        if dt > 0.0 {
            self.mass[i] *= (-dt / self.tau_s).exp();
            self.last[i] = now;
        }
        self.mass[i] += weight;
    }

    /// The decayed temperature of `chunk` as of `now`.
    pub fn temperature(&self, now: SimTime, chunk: ChunkId) -> f64 {
        let i = chunk.index();
        let dt = now.saturating_since(self.last[i]).as_secs();
        self.mass[i] * (-dt / self.tau_s).exp()
    }

    /// Estimated recent access rate of `chunk` (accesses/sec).
    pub fn rate(&self, now: SimTime, chunk: ChunkId) -> f64 {
        self.temperature(now, chunk) / self.tau_s
    }

    /// All chunk ids ordered hottest → coldest as of `now`. Ties broken by
    /// chunk id for determinism.
    ///
    /// Allocates fresh buffers; epoch planners that rank repeatedly should
    /// hold a [`RankScratch`] and call [`HeatMap::ranking_into`] instead.
    pub fn ranking(&self, now: SimTime) -> Vec<ChunkId> {
        let mut scratch = RankScratch::new();
        self.ranking_into(now, &mut scratch);
        scratch.order
    }

    /// Ranks all chunks hottest → coldest into `scratch`, reusing its
    /// buffers. Same order as [`HeatMap::ranking`] (the comparator is a
    /// total order — temperature descending, id ascending on ties — so the
    /// result is a unique permutation regardless of sort algorithm).
    pub fn ranking_into(&self, now: SimTime, scratch: &mut RankScratch) {
        let n = self.chunks();
        scratch.temps.clear();
        scratch
            .temps
            .extend((0..n).map(|c| self.temperature(now, ChunkId(c))));
        scratch.order.clear();
        scratch.order.extend((0..n).map(ChunkId));
        let temps = &scratch.temps;
        scratch.order.sort_unstable_by(|a, b| {
            temps[b.index()]
                .partial_cmp(&temps[a.index()])
                .expect("temperatures are finite")
                .then(a.0.cmp(&b.0))
        });
    }

    /// Sum of all temperatures as of `now` (total recent traffic mass).
    pub fn total(&self, now: SimTime) -> f64 {
        (0..self.chunks())
            .map(|c| self.temperature(now, ChunkId(c)))
            .sum()
    }

    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        self.mass.iter_mut().for_each(|m| *m = 0.0);
    }
}

/// Reusable buffers for [`HeatMap::ranking_into`].
///
/// Epoch planners rank every chunk each planning round; holding one of
/// these across rounds avoids rebuilding (and re-allocating) the index and
/// temperature vectors every call.
#[derive(Debug, Clone, Default)]
pub struct RankScratch {
    order: Vec<ChunkId>,
    temps: Vec<f64>,
}

impl RankScratch {
    /// Empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// The ranking produced by the most recent [`HeatMap::ranking_into`]
    /// call, hottest first.
    pub fn ranked(&self) -> &[ChunkId] {
        &self.order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn untouched_chunks_are_cold() {
        let h = HeatMap::new(8, SimDuration::from_secs(100.0));
        for c in 0..8 {
            assert_eq!(h.temperature(t(50.0), ChunkId(c)), 0.0);
        }
        assert_eq!(h.total(t(0.0)), 0.0);
    }

    #[test]
    fn touches_accumulate_and_decay() {
        let mut h = HeatMap::new(4, SimDuration::from_secs(10.0));
        h.touch(t(0.0), ChunkId(1), 1.0);
        h.touch(t(0.0), ChunkId(1), 1.0);
        assert!((h.temperature(t(0.0), ChunkId(1)) - 2.0).abs() < 1e-12);
        // One time constant later: e^{-1} of the mass remains.
        let later = h.temperature(t(10.0), ChunkId(1));
        assert!((later - 2.0 * (-1.0f64).exp()).abs() < 1e-9);
        // Ten time constants later: effectively cold.
        assert!(h.temperature(t(100.0), ChunkId(1)) < 1e-3);
    }

    #[test]
    fn ranking_orders_by_recent_traffic() {
        let mut h = HeatMap::new(4, SimDuration::from_secs(100.0));
        for _ in 0..10 {
            h.touch(t(1.0), ChunkId(2), 1.0);
        }
        for _ in 0..5 {
            h.touch(t(1.0), ChunkId(0), 1.0);
        }
        h.touch(t(1.0), ChunkId(3), 1.0);
        let r = h.ranking(t(1.0));
        assert_eq!(r[0], ChunkId(2));
        assert_eq!(r[1], ChunkId(0));
        assert_eq!(r[2], ChunkId(3));
        assert_eq!(r[3], ChunkId(1));
    }

    #[test]
    fn ranking_ties_break_by_id() {
        let h = HeatMap::new(3, SimDuration::from_secs(10.0));
        assert_eq!(h.ranking(t(0.0)), vec![ChunkId(0), ChunkId(1), ChunkId(2)]);
    }

    #[test]
    fn recency_beats_stale_volume() {
        let mut h = HeatMap::new(2, SimDuration::from_secs(60.0));
        // Chunk 0: heavy traffic long ago. Chunk 1: light traffic now.
        for _ in 0..100 {
            h.touch(t(0.0), ChunkId(0), 1.0);
        }
        for _ in 0..5 {
            h.touch(t(600.0), ChunkId(1), 1.0);
        }
        let r = h.ranking(t(600.0));
        assert_eq!(r[0], ChunkId(1), "recent traffic should dominate");
    }

    #[test]
    fn rate_estimates_frequency() {
        let mut h = HeatMap::new(1, SimDuration::from_secs(50.0));
        for i in 0..2500 {
            h.touch(t(i as f64 * 0.2), ChunkId(0), 1.0); // 5/sec
        }
        let r = h.rate(t(500.0), ChunkId(0));
        assert!((r - 5.0).abs() < 0.5, "rate {r}");
    }

    #[test]
    fn ranking_into_matches_ranking_and_reuses_buffers() {
        let mut h = HeatMap::new(16, SimDuration::from_secs(50.0));
        for i in 0..200u32 {
            h.touch(t(i as f64 * 0.3), ChunkId(i * 7 % 16), 1.0 + (i % 3) as f64);
        }
        let mut scratch = RankScratch::new();
        for probe in [10.0, 30.0, 60.0] {
            h.ranking_into(t(probe), &mut scratch);
            assert_eq!(scratch.ranked(), h.ranking(t(probe)).as_slice());
        }
        // Buffers sized to the chunk count after first use; later calls
        // must not grow them.
        let cap = scratch.order.capacity();
        h.ranking_into(t(90.0), &mut scratch);
        assert_eq!(scratch.order.capacity(), cap);
    }

    #[test]
    fn reset_clears() {
        let mut h = HeatMap::new(2, SimDuration::from_secs(10.0));
        h.touch(t(0.0), ChunkId(0), 3.0);
        h.reset();
        assert_eq!(h.temperature(t(0.0), ChunkId(0)), 0.0);
    }
}
