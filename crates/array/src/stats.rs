//! Array-level measurement.
//!
//! [`ArrayStats`] aggregates what every experiment reports: foreground
//! response times (moments, percentile histogram, and a windowed time
//! series), throughput counters, and — sampled on a fixed cadence by the
//! driver — the array power draw and the number of disks at each spindle
//! state (the inputs to the "energy over time" and "tier adaptation"
//! figures).

use simkit::{LatencyHistogram, Moments, SimDuration, SimTime, TimeSeries};

/// Live measurement state, owned by the simulation driver.
#[derive(Debug)]
pub struct ArrayStats {
    /// Foreground response-time moments (seconds).
    pub response: Moments,
    /// Foreground disk-level service-time moments (seconds) — the inputs
    /// queueing-model validation compares against.
    pub service: Moments,
    /// Foreground response-time percentile histogram.
    pub response_hist: LatencyHistogram,
    /// Mean response time per time bucket (the F2 series).
    pub response_series: TimeSeries,
    /// Total array power (W) per time bucket, sampled by the driver
    /// (the F1 series: multiply by the bucket width for joules).
    pub power_series: TimeSeries,
    /// One series per spindle level, counting disks at that level; index
    /// `num_levels` counts disks in standby, `num_levels + 1` disks in
    /// transition, `num_levels + 2` failed disks (the F10 series).
    pub level_series: Vec<TimeSeries>,
    /// Foreground requests completed.
    pub fg_completed: u64,
    /// Foreground sectors transferred.
    pub fg_sectors: u64,
}

impl ArrayStats {
    /// Creates stats for an array with `num_levels` spindle levels,
    /// recording series at `bucket` granularity.
    pub fn new(num_levels: usize, bucket: SimDuration) -> ArrayStats {
        ArrayStats {
            response: Moments::new(),
            service: Moments::new(),
            response_hist: LatencyHistogram::new_latency(),
            response_series: TimeSeries::new(bucket),
            power_series: TimeSeries::new(bucket),
            level_series: (0..num_levels + 3)
                .map(|_| TimeSeries::new(bucket))
                .collect(),
            fg_completed: 0,
            fg_sectors: 0,
        }
    }

    /// Records one completed foreground volume request.
    pub fn record_response(&mut self, now: SimTime, response_s: f64, sectors: u64) {
        self.response.record(response_s);
        self.response_hist.record(response_s);
        self.response_series.record(now, response_s);
        self.fg_completed += 1;
        self.fg_sectors += sectors;
    }

    /// Records one power/level sample taken by the driver.
    ///
    /// `level_counts` must have `num_levels + 3` entries (levels, standby,
    /// transitioning, failed).
    ///
    /// # Panics
    /// Panics if the slice length does not match.
    pub fn record_power_sample(&mut self, now: SimTime, watts: f64, level_counts: &[u32]) {
        assert_eq!(
            level_counts.len(),
            self.level_series.len(),
            "level count arity mismatch"
        );
        self.power_series.record(now, watts);
        for (series, &c) in self.level_series.iter_mut().zip(level_counts) {
            series.record(now, f64::from(c));
        }
    }

    /// Mean foreground response time (s), 0 when nothing completed.
    pub fn mean_response_s(&self) -> f64 {
        self.response.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reports() {
        let mut s = ArrayStats::new(6, SimDuration::from_secs(60.0));
        s.record_response(SimTime::from_secs(1.0), 0.010, 16);
        s.record_response(SimTime::from_secs(2.0), 0.030, 16);
        assert_eq!(s.fg_completed, 2);
        assert_eq!(s.fg_sectors, 32);
        assert!((s.mean_response_s() - 0.020).abs() < 1e-12);
        assert_eq!(s.response_hist.count(), 2);
        assert_eq!(s.response_series.mean_points().len(), 1);
    }

    #[test]
    fn power_samples_feed_all_series() {
        let mut s = ArrayStats::new(2, SimDuration::from_secs(10.0));
        s.record_power_sample(SimTime::from_secs(5.0), 100.0, &[1, 2, 3, 0, 0]);
        assert_eq!(s.power_series.mean_points(), vec![(5.0, 100.0)]);
        assert_eq!(s.level_series[2].mean_points(), vec![(5.0, 3.0)]);
        assert_eq!(s.level_series[3].mean_points(), vec![(5.0, 0.0)]);
        assert_eq!(s.level_series[4].mean_points(), vec![(5.0, 0.0)]);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn wrong_level_arity_panics() {
        let mut s = ArrayStats::new(2, SimDuration::from_secs(10.0));
        s.record_power_sample(SimTime::ZERO, 1.0, &[1, 2]);
    }
}
