//! The power-policy interface.
//!
//! Every energy-management scheme in the suite — the Hibernator core and
//! all five baselines — implements [`PowerPolicy`]. The simulation driver
//! calls the hooks with the current time and mutable access to the shared
//! [`ArrayState`]; policies act by calling
//! [`diskmodel::Disk::request_speed`] on disks and enqueueing
//! [`crate::MigrationJob`]s on the migration engine.
//!
//! The driver guarantees:
//! * `init` runs once at t = 0 before any request;
//! * `on_tick` fires every `tick_interval` of simulated time (if `Some`);
//! * `on_volume_arrival` fires before the request's sub-I/Os are submitted;
//! * `on_completion` fires for every *foreground* disk-level completion
//!   (migration completions are routed to the engine instead);
//! * after every hook the driver re-synchronises disk event schedules, so
//!   hooks may freely change disk states. The driver conservatively marks
//!   *all* disks dirty after `init`, `on_tick`, and `on_disk_failure` (the
//!   infrequent hooks), so those hooks may mutate `state.disks` directly.
//!   The per-event hooks (`route`, `on_volume_arrival`, `on_completion`)
//!   must change spindle speeds through [`ArrayState::request_speed`] so
//!   the dirty-disk wake resync sees the change; a debug-build cross-check
//!   in the driver catches violations.

use crate::migration::MigrationEngine;
use crate::remap::RemapTable;
use crate::stats::ArrayStats;
use crate::types::{ArrayConfig, ChunkId};
use diskmodel::{Completion, Disk, IoKind, SpinTarget};
use simkit::{SimDuration, SimTime};
use workload::VolumeRequest;

/// The dirty-disk set for incremental wake resynchronisation.
///
/// Event handlers (and [`ArrayState::request_speed`]) mark each disk whose
/// wake schedule may have changed; the driver's resync then visits only the
/// marked disks instead of scanning the whole array. Marks drain in
/// ascending disk-index order — the same order the full scan visits disks —
/// so the sequence of event-queue pushes (and therefore FIFO tie-breaking)
/// is bit-identical to the full scan.
#[derive(Debug, Clone)]
pub struct WakeMarks {
    /// Marked disk indices, unordered until drained.
    stack: Vec<u32>,
    /// Dedup bitmap, one slot per disk.
    marked: Vec<bool>,
}

impl Default for WakeMarks {
    /// An empty, zero-disk mark set — the placeholder `std::mem::take`
    /// leaves behind while the driver drains the real set.
    fn default() -> Self {
        WakeMarks {
            stack: Vec::new(),
            marked: Vec::new(),
        }
    }
}

impl WakeMarks {
    /// An empty mark set for `disks` spindles.
    pub fn new(disks: usize) -> Self {
        WakeMarks {
            stack: Vec::with_capacity(disks),
            marked: vec![false; disks],
        }
    }

    /// Marks one disk dirty.
    #[inline]
    pub fn mark(&mut self, disk: usize) {
        if !self.marked[disk] {
            self.marked[disk] = true;
            self.stack.push(disk as u32);
        }
    }

    /// Marks every disk dirty (used after the infrequent policy hooks,
    /// which may mutate any spindle directly).
    pub fn mark_all(&mut self) {
        for d in 0..self.marked.len() {
            self.mark(d);
        }
    }

    /// True if no disk is marked.
    pub fn is_empty(&self) -> bool {
        self.stack.is_empty()
    }

    /// Drains the marks in ascending disk-index order, calling `f` for each.
    pub fn drain_sorted(&mut self, mut f: impl FnMut(usize)) {
        self.stack.sort_unstable();
        for &d in &self.stack {
            self.marked[d as usize] = false;
            f(d as usize);
        }
        self.stack.clear();
    }
}

/// Everything a policy may observe and mutate.
pub struct ArrayState {
    /// Static configuration.
    pub config: ArrayConfig,
    /// The spindles.
    pub disks: Vec<Disk>,
    /// Chunk placement.
    pub remap: RemapTable,
    /// Background copier.
    pub migrator: MigrationEngine,
    /// Measurements.
    pub stats: ArrayStats,
    /// Structured event recorder (disabled by default — a disabled
    /// recorder is a single `Option` check, so policies may emit
    /// unconditionally).
    pub telemetry: telemetry::Recorder,
    /// Dirty-disk set consumed by the driver's incremental wake resync.
    pub wake_marks: WakeMarks,
}

impl ArrayState {
    /// Counts disks per spindle state: one slot per level, then standby,
    /// then transitioning, then failed — the layout
    /// [`ArrayStats::record_power_sample`] expects.
    pub fn level_counts(&self) -> Vec<u32> {
        let n = self.config.spec.num_levels();
        let mut counts = vec![0u32; n + 3];
        for d in &self.disks {
            if d.has_failed() {
                // Failure check first: a dead disk parks in standby-like
                // state but must not count as sleeping.
                counts[n + 2] += 1;
            } else if d.is_standby() {
                counts[n] += 1;
            } else if d.is_transitioning() {
                counts[n + 1] += 1;
            } else if let Some(l) = d.current_level() {
                counts[l.index()] += 1;
            }
        }
        counts
    }

    /// Number of disks that have not failed.
    pub fn alive_disks(&self) -> usize {
        self.disks.iter().filter(|d| !d.has_failed()).count()
    }

    /// Requests a spindle speed change and marks the disk dirty for the
    /// driver's incremental wake resync. Policies must use this (rather
    /// than calling [`Disk::request_speed`] directly) from the per-event
    /// hooks; see the module docs for the contract.
    #[inline]
    pub fn request_speed(&mut self, now: SimTime, disk: usize, target: SpinTarget) {
        self.wake_marks.mark(disk);
        self.disks[disk].request_speed(now, target);
    }

    /// Total energy across all disks accrued to `now`, in joules.
    pub fn total_energy(&mut self, now: SimTime) -> simkit::EnergyLedger {
        let mut total = simkit::EnergyLedger::new();
        for d in &mut self.disks {
            total.merge(&d.energy(now));
        }
        total
    }
}

/// A disk-array energy-management policy.
pub trait PowerPolicy {
    /// Short name for tables ("Base", "TPM", "Hibernator", …).
    fn name(&self) -> &str;

    /// Runs once before the first event; set initial speeds here.
    fn init(&mut self, now: SimTime, state: &mut ArrayState) {
        let _ = (now, state);
    }

    /// Cadence of [`PowerPolicy::on_tick`], or `None` for no ticks.
    fn tick_interval(&self) -> Option<SimDuration> {
        None
    }

    /// Periodic hook.
    fn on_tick(&mut self, now: SimTime, state: &mut ArrayState) {
        let _ = (now, state);
    }

    /// Optional routing override for one piece of a foreground request:
    /// return `Some((disk, physical_sector))` to serve the piece from an
    /// alternative location (MAID serves cached chunks from its cache
    /// disks). `offset` is the sector offset of the piece within the chunk.
    /// The default routes through the remap table (`None`).
    fn route(
        &mut self,
        now: SimTime,
        chunk: ChunkId,
        offset: u64,
        kind: IoKind,
        state: &mut ArrayState,
    ) -> Option<(crate::types::DiskId, u64)> {
        let _ = (now, chunk, offset, kind, state);
        None
    }

    /// A volume request has arrived; `chunks` are the chunks it touches.
    fn on_volume_arrival(
        &mut self,
        now: SimTime,
        req: &VolumeRequest,
        chunks: &[ChunkId],
        state: &mut ArrayState,
    ) {
        let _ = (now, req, chunks, state);
    }

    /// A foreground disk-level completion. `volume_response_s` is `Some`
    /// with the end-to-end response time when this completion finished an
    /// entire volume request.
    fn on_completion(
        &mut self,
        now: SimTime,
        comp: &Completion,
        volume_response_s: Option<f64>,
        state: &mut ArrayState,
    ) {
        let _ = (now, comp, volume_response_s, state);
    }

    /// Disk `disk` just suffered a whole-disk failure. The driver has
    /// already drained the disk, torn down affected migrations, and queued
    /// rebuild traffic; the policy's job here is to adapt its plan to the
    /// shrunken disk set (Hibernator boosts and re-plans). Default: nothing.
    fn on_disk_failure(&mut self, now: SimTime, disk: usize, state: &mut ArrayState) {
        let _ = (now, disk, state);
    }

    /// An externally imposed array power cap in watts (`None` lifts it),
    /// granted by a coordination layer above the array — the fleet
    /// power-budget arbiter. The cap is advisory-soft: a planner should
    /// pick the best plan whose predicted power fits under it, but
    /// reactive safety mechanisms (guard boosts, demand wakes) may still
    /// exceed it transiently. Policies without a planner ignore it.
    fn set_power_cap(&mut self, cap_w: Option<f64>) {
        let _ = cap_w;
    }
}

/// The trivial policy: all disks at full speed, forever. Both the
/// no-energy-management baseline and the reference for savings percentages.
#[derive(Debug, Default)]
pub struct BasePolicy;

impl PowerPolicy for BasePolicy {
    fn name(&self) -> &str {
        "Base"
    }
    // Disks start at top speed; nothing to do.
}

#[cfg(test)]
mod tests {
    use super::*;
    use diskmodel::SpeedLevel;

    fn mk_state() -> ArrayState {
        let mut config = ArrayConfig::default_for_volume(1 << 30);
        config.disks = 4;
        let remap = RemapTable::striped(&config);
        let disks = (0..config.disks)
            .map(|i| Disk::new(i, &config.spec, config.seed, config.spec.top_level()))
            .collect();
        let stats = ArrayStats::new(config.spec.num_levels(), SimDuration::from_secs(60.0));
        let wake_marks = WakeMarks::new(config.disks);
        ArrayState {
            config,
            disks,
            remap,
            migrator: MigrationEngine::new(2),
            stats,
            telemetry: telemetry::Recorder::disabled(),
            wake_marks,
        }
    }

    #[test]
    fn level_counts_reflect_disk_states() {
        let mut s = mk_state();
        let n = s.config.spec.num_levels();
        assert_eq!(s.level_counts()[n - 1], 4);
        s.disks[0].request_speed(SimTime::ZERO, diskmodel::SpinTarget::Standby);
        let counts = s.level_counts();
        assert_eq!(counts[n - 1], 3);
        assert_eq!(counts[n + 1], 1, "one disk is now transitioning");
    }

    #[test]
    fn total_energy_sums_disks() {
        let mut s = mk_state();
        let t = SimTime::from_secs(10.0);
        let total = s.total_energy(t).total_joules();
        let single = Disk::new(0, &s.config.spec, s.config.seed, SpeedLevel(5))
            .energy(t)
            .total_joules();
        assert!((total - 4.0 * single).abs() < 1e-6);
    }

    #[test]
    fn base_policy_defaults() {
        let p = BasePolicy;
        assert_eq!(p.name(), "Base");
        assert!(p.tick_interval().is_none());
    }
}
