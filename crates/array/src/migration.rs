//! Background data migration.
//!
//! Power policies reshape the data layout by enqueueing [`MigrationJob`]s;
//! the engine turns each job into migration-class disk I/O (which yields to
//! all foreground traffic at the disks) and commits the remap-table update
//! only when every copy has finished. Consistency rule: a foreground *write*
//! to a chunk while its copy is in flight marks the job dirty, and a dirty
//! job **aborts** instead of committing — the stale copy is discarded and
//! the planner simply re-plans next epoch. Reads are always served from the
//! current (pre-commit) placement, so they need no special handling.
//!
//! Copies are issued in small *pieces* (default 128 KiB) rather than one
//! chunk-sized I/O, so a foreground request never waits behind more than
//! one piece of migration service — the mechanism that keeps background
//! reorganisation unobtrusive.
//!
//! The engine is deliberately passive: it never touches disks itself.
//! Methods return the disk requests to submit, and the simulation driver
//! performs the submission — keeping all disk mutation in one place.

use crate::remap::RemapTable;
use crate::types::{ChunkId, DiskId};
use diskmodel::{Completion, DiskRequest, IoKind, RequestClass};
use simkit::SimTime;
use std::collections::{HashMap, VecDeque};

/// A requested layout change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationJob {
    /// Move `chunk` to a free slot on `dst`.
    Relocate {
        /// Chunk to move.
        chunk: ChunkId,
        /// Destination disk.
        dst: DiskId,
    },
    /// Exchange the placements of two chunks on different disks (used when
    /// the destination tier is full).
    Swap {
        /// First chunk.
        a: ChunkId,
        /// Second chunk.
        b: ChunkId,
    },
    /// A bare background write with no remap effect — used by policies that
    /// maintain redundant copies (MAID cache promotion/refresh). The data is
    /// assumed to be in controller RAM already (it was just read by the
    /// foreground request), so no read I/O is issued.
    RawWrite {
        /// Target disk.
        disk: DiskId,
        /// First physical sector.
        sector: u64,
        /// Length in sectors.
        sectors: u32,
    },
}

/// Counters describing migration activity so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MigrationStats {
    /// Jobs committed successfully.
    pub committed: u64,
    /// Jobs aborted because a foreground write dirtied a chunk mid-copy.
    pub aborted: u64,
    /// Jobs dropped before starting (queue cleared, or destination full).
    pub dropped: u64,
    /// Raw background writes completed (no remap effect).
    pub raw_writes: u64,
    /// Total sectors read + written by migration I/O.
    pub sectors_moved: u64,
}

/// Phase of an active job.
#[derive(Debug)]
enum Phase {
    /// Waiting for `remaining` read-piece completions.
    Reading { remaining: u32 },
    /// Waiting for `remaining` write-piece completions.
    Writing { remaining: u32 },
}

#[derive(Debug)]
struct ActiveJob {
    job: MigrationJob,
    phase: Phase,
    dirty: bool,
    /// For `Relocate`: the reserved destination slot.
    reserved_slot: Option<u32>,
}

/// The migration engine.
pub struct MigrationEngine {
    pending: VecDeque<MigrationJob>,
    active: HashMap<u64, ActiveJob>,
    /// disk-request id → job id, for routing completions.
    request_to_job: HashMap<u64, u64>,
    next_job_id: u64,
    next_req_id: u64,
    max_inflight: usize,
    piece_sectors: u32,
    paused: bool,
    stats: MigrationStats,
}

/// Migration-request ids live in their own namespace (top bit set) so they
/// can never collide with foreground ids handed out by the driver.
const MIG_ID_BASE: u64 = 1 << 63;

impl MigrationEngine {
    /// Creates an engine allowing `max_inflight` concurrent jobs.
    ///
    /// # Panics
    /// Panics if `max_inflight == 0`.
    pub fn new(max_inflight: usize) -> Self {
        assert!(max_inflight > 0, "need at least one inflight slot");
        MigrationEngine {
            pending: VecDeque::new(),
            active: HashMap::new(),
            request_to_job: HashMap::new(),
            next_job_id: 0,
            next_req_id: MIG_ID_BASE,
            max_inflight,
            piece_sectors: 256, // 128 KiB pieces keep foreground stalls short
            paused: false,
            stats: MigrationStats::default(),
        }
    }

    /// Overrides the copy piece size (sectors). Smaller pieces reduce the
    /// worst-case foreground stall behind migration service at the cost of
    /// more per-piece overhead.
    ///
    /// # Panics
    /// Panics if `sectors == 0`.
    pub fn set_piece_sectors(&mut self, sectors: u32) {
        assert!(sectors > 0, "piece size must be positive");
        self.piece_sectors = sectors;
    }

    /// Emits piece requests covering `[sector, sector + sectors)`.
    #[allow(clippy::too_many_arguments)]
    fn make_pieces(
        &mut self,
        now: SimTime,
        disk: DiskId,
        sector: u64,
        sectors: u32,
        kind: IoKind,
        job_id: u64,
        out: &mut Vec<(DiskId, DiskRequest)>,
    ) -> u32 {
        let mut off = 0;
        let mut pieces = 0;
        while off < sectors {
            let take = (sectors - off).min(self.piece_sectors);
            let req = self.make_req(now, sector + u64::from(off), take, kind, job_id);
            out.push((disk, req));
            off += take;
            pieces += 1;
        }
        pieces
    }

    /// Adds jobs to the pending queue (executed FIFO).
    pub fn enqueue(&mut self, jobs: impl IntoIterator<Item = MigrationJob>) {
        self.pending.extend(jobs);
    }

    /// Drops all not-yet-started jobs. In-flight jobs run to completion
    /// (their I/O is already queued at the disks).
    pub fn clear_pending(&mut self) {
        self.stats.dropped += self.pending.len() as u64;
        self.pending.clear();
    }

    /// Pauses starting new jobs (used during performance boosts). In-flight
    /// jobs finish normally.
    pub fn set_paused(&mut self, paused: bool) {
        self.paused = paused;
    }

    /// The concurrency limit this engine was built with.
    pub fn max_inflight(&self) -> usize {
        self.max_inflight
    }

    /// Jobs waiting to start.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Jobs currently copying.
    pub fn active_len(&self) -> usize {
        self.active.len()
    }

    /// True if no work is queued or in flight.
    pub fn is_quiescent(&self) -> bool {
        self.pending.is_empty() && self.active.is_empty()
    }

    /// Activity counters.
    pub fn stats(&self) -> MigrationStats {
        self.stats
    }

    /// Marks any in-flight job touching `chunk` dirty (called by the driver
    /// for every foreground **write**).
    pub fn note_foreground_write(&mut self, chunk: ChunkId) {
        for job in self.active.values_mut() {
            let touches = match job.job {
                MigrationJob::Relocate { chunk: c, .. } => c == chunk,
                MigrationJob::Swap { a, b } => a == chunk || b == chunk,
                MigrationJob::RawWrite { .. } => false,
            };
            if touches {
                job.dirty = true;
            }
        }
    }

    /// Starts queued jobs while below the concurrency limit. Returns the
    /// read requests to submit, as `(disk, request)` pairs.
    pub fn pump(&mut self, now: SimTime, remap: &mut RemapTable) -> Vec<(DiskId, DiskRequest)> {
        let mut out = Vec::new();
        if self.paused {
            return out;
        }
        while self.active.len() < self.max_inflight {
            let Some(job) = self.pending.pop_front() else {
                break;
            };
            match self.try_start(now, remap, job) {
                Some(reqs) => out.extend(reqs),
                None => self.stats.dropped += 1,
            }
        }
        out
    }

    /// True if `chunk` participates in any in-flight job. Two concurrent
    /// jobs over one chunk would race on its placement, so overlapping jobs
    /// are dropped at start (the planner re-plans next epoch anyway).
    fn chunk_busy(&self, chunk: ChunkId) -> bool {
        self.active.values().any(|j| match j.job {
            MigrationJob::Relocate { chunk: c, .. } => c == chunk,
            MigrationJob::Swap { a, b } => a == chunk || b == chunk,
            MigrationJob::RawWrite { .. } => false,
        })
    }

    fn try_start(
        &mut self,
        now: SimTime,
        remap: &mut RemapTable,
        job: MigrationJob,
    ) -> Option<Vec<(DiskId, DiskRequest)>> {
        match job {
            MigrationJob::Relocate { chunk, .. } if self.chunk_busy(chunk) => return None,
            MigrationJob::Swap { a, b } if self.chunk_busy(a) || self.chunk_busy(b) => {
                return None
            }
            _ => {}
        }
        let chunk_sectors = remap.chunk_sectors() as u32;
        let job_id = self.next_job_id;
        match job {
            MigrationJob::Relocate { chunk, dst } => {
                let src = remap.placement(chunk);
                if src.disk == dst {
                    return None; // already there — planner noise
                }
                let slot = remap.reserve_slot(dst)?;
                let mut reads = Vec::new();
                let pieces = self.make_pieces(
                    now,
                    src.disk,
                    remap.physical_sector(chunk),
                    chunk_sectors,
                    IoKind::Read,
                    job_id,
                    &mut reads,
                );
                self.active.insert(
                    job_id,
                    ActiveJob {
                        job,
                        phase: Phase::Reading { remaining: pieces },
                        dirty: false,
                        reserved_slot: Some(slot),
                    },
                );
                self.next_job_id += 1;
                Some(reads)
            }
            MigrationJob::RawWrite {
                disk,
                sector,
                sectors,
            } => {
                let mut writes = Vec::new();
                let pieces =
                    self.make_pieces(now, disk, sector, sectors, IoKind::Write, job_id, &mut writes);
                self.active.insert(
                    job_id,
                    ActiveJob {
                        job,
                        phase: Phase::Writing { remaining: pieces },
                        dirty: false,
                        reserved_slot: None,
                    },
                );
                self.next_job_id += 1;
                Some(writes)
            }
            MigrationJob::Swap { a, b } => {
                let pa = remap.placement(a);
                let pb = remap.placement(b);
                if pa.disk == pb.disk {
                    return None;
                }
                let mut reads = Vec::new();
                let p1 = self.make_pieces(
                    now,
                    pa.disk,
                    remap.physical_sector(a),
                    chunk_sectors,
                    IoKind::Read,
                    job_id,
                    &mut reads,
                );
                let p2 = self.make_pieces(
                    now,
                    pb.disk,
                    remap.physical_sector(b),
                    chunk_sectors,
                    IoKind::Read,
                    job_id,
                    &mut reads,
                );
                self.active.insert(
                    job_id,
                    ActiveJob {
                        job,
                        phase: Phase::Reading {
                            remaining: p1 + p2,
                        },
                        dirty: false,
                        reserved_slot: None,
                    },
                );
                self.next_job_id += 1;
                Some(reads)
            }
        }
    }

    fn make_req(
        &mut self,
        now: SimTime,
        sector: u64,
        sectors: u32,
        kind: IoKind,
        job_id: u64,
    ) -> DiskRequest {
        let id = self.next_req_id;
        self.next_req_id += 1;
        self.request_to_job.insert(id, job_id);
        DiskRequest {
            id,
            sector,
            sectors,
            kind,
            class: RequestClass::Migration,
            issue_time: now,
        }
    }

    /// Routes a migration-class completion. Returns follow-on write requests
    /// to submit; commits or aborts the job when its last write lands.
    ///
    /// # Panics
    /// Panics if the completion does not belong to this engine (driver bug).
    pub fn on_completion(
        &mut self,
        now: SimTime,
        comp: &Completion,
        remap: &mut RemapTable,
    ) -> Vec<(DiskId, DiskRequest)> {
        let req_id = comp.request.id;
        let job_id = *self
            .request_to_job
            .get(&req_id)
            .expect("unknown migration completion");
        self.request_to_job.remove(&req_id);
        self.stats.sectors_moved += u64::from(comp.request.sectors);

        let job = self.active.get_mut(&job_id).expect("job state missing");
        match &mut job.phase {
            Phase::Reading { remaining } => {
                *remaining -= 1;
                if *remaining > 0 {
                    return Vec::new();
                }
                // All reads done → issue writes.
                let chunk_sectors = remap.chunk_sectors() as u32;
                let targets: Vec<(DiskId, u64)> = match job.job {
                    MigrationJob::RawWrite { .. } => {
                        unreachable!("raw writes never enter the read phase")
                    }
                    MigrationJob::Relocate { dst, .. } => {
                        let slot = job.reserved_slot.expect("relocate reserved a slot");
                        vec![(dst, u64::from(slot) * remap.chunk_sectors())]
                    }
                    MigrationJob::Swap { a, b } => {
                        // Each chunk is written into the other's current slot.
                        let pa = remap.placement(a);
                        let pb = remap.placement(b);
                        vec![
                            (pb.disk, u64::from(pb.slot) * remap.chunk_sectors()),
                            (pa.disk, u64::from(pa.slot) * remap.chunk_sectors()),
                        ]
                    }
                };
                let mut out = Vec::new();
                let mut count = 0;
                for (disk, sector) in targets {
                    count += self.make_pieces(
                        now,
                        disk,
                        sector,
                        chunk_sectors,
                        IoKind::Write,
                        job_id,
                        &mut out,
                    );
                }
                // Reborrow the job (make_pieces needed &mut self).
                let job = self.active.get_mut(&job_id).expect("job still active");
                job.phase = Phase::Writing { remaining: count };
                out
            }
            Phase::Writing { remaining } => {
                *remaining -= 1;
                if *remaining > 0 {
                    return Vec::new();
                }
                // Job complete: commit unless dirtied.
                let job = self.active.remove(&job_id).expect("job vanished");
                if job.dirty {
                    self.stats.aborted += 1;
                    if let (MigrationJob::Relocate { dst, .. }, Some(slot)) =
                        (job.job, job.reserved_slot)
                    {
                        remap.release_slot(dst, slot);
                    }
                } else {
                    match job.job {
                        MigrationJob::Relocate { chunk, dst } => {
                            let slot = job.reserved_slot.expect("slot reserved");
                            remap.relocate(chunk, dst, slot);
                            self.stats.committed += 1;
                        }
                        MigrationJob::Swap { a, b } => {
                            // Placements may have degenerated (e.g. a
                            // foreground-triggered abort path elsewhere);
                            // a same-disk pair is a no-op, not a panic.
                            if remap.disk_of(a) != remap.disk_of(b) {
                                remap.swap(a, b);
                                self.stats.committed += 1;
                            } else {
                                self.stats.aborted += 1;
                            }
                        }
                        MigrationJob::RawWrite { .. } => {
                            self.stats.raw_writes += 1;
                        }
                    }
                }
                Vec::new()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ArrayConfig;
    use diskmodel::Completion;

    fn remap(disks: usize, chunks: u32) -> RemapTable {
        let mut c = ArrayConfig::default_for_volume(1 << 30);
        c.disks = disks;
        c.volume_chunks = chunks;
        RemapTable::striped(&c)
    }

    fn complete(req: DiskRequest, at: f64) -> Completion {
        Completion {
            request: req,
            disk: 0,
            finish_time: SimTime::from_secs(at),
            queue_delay_s: 0.0,
            service_s: 0.005,
        }
    }

    /// Runs a single job to completion, feeding completions back manually.
    fn run_job(engine: &mut MigrationEngine, remap: &mut RemapTable, dirty_after_read: bool) {
        let reads = engine.pump(SimTime::ZERO, remap);
        assert!(!reads.is_empty());
        let mut writes = Vec::new();
        for (i, (_, r)) in reads.iter().enumerate() {
            writes.extend(engine.on_completion(
                SimTime::from_secs(0.1 * (i + 1) as f64),
                &complete(*r, 0.1),
                remap,
            ));
        }
        if dirty_after_read {
            match engine.active.values().next().unwrap().job {
                MigrationJob::Relocate { chunk, .. } => engine.note_foreground_write(chunk),
                MigrationJob::Swap { a, .. } => engine.note_foreground_write(a),
                MigrationJob::RawWrite { .. } => {}
            }
        }
        assert!(!writes.is_empty(), "reads must trigger writes");
        for (i, (_, w)) in writes.iter().enumerate() {
            let _ = engine.on_completion(
                SimTime::from_secs(1.0 + i as f64),
                &complete(*w, 1.0),
                remap,
            );
        }
    }

    #[test]
    fn relocate_commits_and_updates_remap() {
        let mut t = remap(4, 16);
        let mut e = MigrationEngine::new(2);
        assert_eq!(t.disk_of(ChunkId(0)), DiskId(0));
        e.enqueue([MigrationJob::Relocate {
            chunk: ChunkId(0),
            dst: DiskId(3),
        }]);
        run_job(&mut e, &mut t, false);
        assert_eq!(t.disk_of(ChunkId(0)), DiskId(3));
        assert_eq!(e.stats().committed, 1);
        assert!(e.is_quiescent());
        t.check_invariants().unwrap();
    }

    #[test]
    fn swap_commits_both_sides() {
        let mut t = remap(4, 16);
        let mut e = MigrationEngine::new(2);
        let a = ChunkId(0); // disk 0
        let b = ChunkId(1); // disk 1
        e.enqueue([MigrationJob::Swap { a, b }]);
        run_job(&mut e, &mut t, false);
        assert_eq!(t.disk_of(a), DiskId(1));
        assert_eq!(t.disk_of(b), DiskId(0));
        assert_eq!(e.stats().committed, 1);
        t.check_invariants().unwrap();
    }

    #[test]
    fn dirty_job_aborts_without_commit() {
        let mut t = remap(4, 16);
        let mut e = MigrationEngine::new(2);
        e.enqueue([MigrationJob::Relocate {
            chunk: ChunkId(0),
            dst: DiskId(2),
        }]);
        run_job(&mut e, &mut t, true);
        assert_eq!(t.disk_of(ChunkId(0)), DiskId(0), "abort must not move data");
        assert_eq!(e.stats().aborted, 1);
        assert_eq!(e.stats().committed, 0);
        t.check_invariants().unwrap();
        // The reserved slot was released.
        assert_eq!(t.occupancy(DiskId(2)), 4);
    }

    #[test]
    fn relocate_to_same_disk_is_dropped() {
        let mut t = remap(4, 16);
        let mut e = MigrationEngine::new(2);
        e.enqueue([MigrationJob::Relocate {
            chunk: ChunkId(0),
            dst: DiskId(0),
        }]);
        let reads = e.pump(SimTime::ZERO, &mut t);
        assert!(reads.is_empty());
        assert_eq!(e.stats().dropped, 1);
        assert!(e.is_quiescent());
    }

    #[test]
    fn inflight_limit_respected() {
        let mut t = remap(8, 64);
        let mut e = MigrationEngine::new(2);
        e.enqueue((0..8).map(|i| MigrationJob::Relocate {
            chunk: ChunkId(i),
            dst: DiskId((i as usize + 1) % 8),
        }));
        let reads = e.pump(SimTime::ZERO, &mut t);
        assert_eq!(e.active_len(), 2);
        // Each chunk copy is split into 128 KiB pieces (2048/256 = 8 per
        // chunk), so two active jobs issue 16 read pieces.
        assert_eq!(reads.len(), 16);
        assert_eq!(e.pending_len(), 6);
    }

    #[test]
    fn paused_engine_starts_nothing() {
        let mut t = remap(4, 16);
        let mut e = MigrationEngine::new(2);
        e.enqueue([MigrationJob::Relocate {
            chunk: ChunkId(0),
            dst: DiskId(1),
        }]);
        e.set_paused(true);
        assert!(e.pump(SimTime::ZERO, &mut t).is_empty());
        e.set_paused(false);
        assert_eq!(e.pump(SimTime::ZERO, &mut t).len(), 8); // 8 read pieces

    }

    #[test]
    fn clear_pending_counts_drops() {
        let mut e = MigrationEngine::new(1);
        e.enqueue([
            MigrationJob::Swap {
                a: ChunkId(0),
                b: ChunkId(1),
            },
            MigrationJob::Swap {
                a: ChunkId(2),
                b: ChunkId(3),
            },
        ]);
        e.clear_pending();
        assert_eq!(e.stats().dropped, 2);
        assert!(e.is_quiescent());
    }

    #[test]
    fn migration_requests_use_reserved_id_space() {
        let mut t = remap(4, 16);
        let mut e = MigrationEngine::new(2);
        e.enqueue([MigrationJob::Relocate {
            chunk: ChunkId(0),
            dst: DiskId(1),
        }]);
        let reads = e.pump(SimTime::ZERO, &mut t);
        assert!(reads[0].1.id >= MIG_ID_BASE);
        assert_eq!(reads[0].1.class, RequestClass::Migration);
    }

    #[test]
    fn sectors_moved_accumulates() {
        let mut t = remap(4, 16);
        let mut e = MigrationEngine::new(2);
        e.enqueue([MigrationJob::Relocate {
            chunk: ChunkId(0),
            dst: DiskId(1),
        }]);
        run_job(&mut e, &mut t, false);
        // One read + one write of a whole chunk each.
        assert_eq!(e.stats().sectors_moved, 2 * t.chunk_sectors());
    }
}
