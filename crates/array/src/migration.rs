//! Background data migration.
//!
//! Power policies reshape the data layout by enqueueing [`MigrationJob`]s;
//! the engine turns each job into migration-class disk I/O (which yields to
//! all foreground traffic at the disks) and commits the remap-table update
//! only when every copy has finished. Consistency rule: a foreground *write*
//! to a chunk while its copy is in flight marks the job dirty, and a dirty
//! job **aborts** instead of committing — the stale copy is discarded and
//! the planner simply re-plans next epoch. Reads are always served from the
//! current (pre-commit) placement, so they need no special handling.
//!
//! Copies are issued in small *pieces* (default 128 KiB) rather than one
//! chunk-sized I/O, so a foreground request never waits behind more than
//! one piece of migration service — the mechanism that keeps background
//! reorganisation unobtrusive.
//!
//! The engine is deliberately passive: it never touches disks itself.
//! Methods return the disk requests to submit, and the simulation driver
//! performs the submission — keeping all disk mutation in one place.

use crate::remap::RemapTable;
use crate::types::{ChunkId, DiskId};
use diskmodel::{Completion, DiskRequest, IoKind, RequestClass};
use simkit::{IdMap, SimTime};
use std::collections::{HashSet, VecDeque};
use telemetry::MoveKind;

/// A requested layout change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationJob {
    /// Move `chunk` to a free slot on `dst`.
    Relocate {
        /// Chunk to move.
        chunk: ChunkId,
        /// Destination disk.
        dst: DiskId,
    },
    /// Exchange the placements of two chunks on different disks (used when
    /// the destination tier is full).
    Swap {
        /// First chunk.
        a: ChunkId,
        /// Second chunk.
        b: ChunkId,
    },
    /// A bare background write with no remap effect — used by policies that
    /// maintain redundant copies (MAID cache promotion/refresh). The data is
    /// assumed to be in controller RAM already (it was just read by the
    /// foreground request), so no read I/O is issued.
    RawWrite {
        /// Target disk.
        disk: DiskId,
        /// First physical sector.
        sector: u64,
        /// Length in sectors.
        sectors: u32,
    },
    /// Reconstruct `chunk` (whose home disk died) from the surviving copy on
    /// `src` into a free slot on `dst`. Unlike `Relocate`, a rebuild runs
    /// through pause windows and never dirty-aborts: aborting would leave
    /// the chunk with no live home.
    Rebuild {
        /// Chunk to reconstruct.
        chunk: ChunkId,
        /// Surviving redundancy partner to read from.
        src: DiskId,
        /// Disk to rebuild onto.
        dst: DiskId,
    },
}

/// Counters describing migration activity so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MigrationStats {
    /// Jobs committed successfully.
    pub committed: u64,
    /// Jobs aborted because a foreground write dirtied a chunk mid-copy.
    pub aborted: u64,
    /// Jobs dropped before starting (queue cleared, or destination full).
    pub dropped: u64,
    /// Raw background writes completed (no remap effect).
    pub raw_writes: u64,
    /// Chunks reconstructed onto a surviving disk after a failure.
    pub rebuilt: u64,
    /// Total sectors read + written by migration I/O.
    pub sectors_moved: u64,
}

/// One recorded migration lifecycle event, produced only while recording
/// is enabled (see [`MigrationEngine::set_recording`]). The driver drains
/// these with [`MigrationEngine::drain_records`] and forwards them to the
/// telemetry stream; field types deliberately match the `telemetry` event
/// variants so forwarding is a plain copy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationRecord {
    /// Simulated time of the event, seconds.
    pub time_s: f64,
    /// Engine-assigned job id (unique within a run).
    pub job: u64,
    /// Which lifecycle stage happened.
    pub kind: MigrationRecordKind,
}

/// Lifecycle stage captured by a [`MigrationRecord`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MigrationRecordKind {
    /// Copy I/O was issued for the job.
    Started {
        /// Chunk being moved (0 for raw writes, which have none).
        chunk: u64,
        /// Disk read from (for swaps: the first chunk's home).
        src: u32,
        /// Disk written to (for swaps: the second chunk's home).
        dst: u32,
    },
    /// The job committed and the remap table was updated (raw writes
    /// commit without a remap change).
    Moved {
        /// Chunk moved (0 for raw writes).
        chunk: u64,
        /// Disk the payload left.
        src: u32,
        /// Disk the payload landed on.
        dst: u32,
        /// Payload bytes written (both directions for a swap).
        bytes: u64,
        /// What kind of job committed.
        kind: MoveKind,
    },
    /// The job finished its I/O but aborted instead of committing
    /// (dirtied by a foreground write, or degenerated to a no-op).
    Aborted {
        /// Chunk the job was moving (0 for raw writes).
        chunk: u64,
    },
    /// The job was torn down mid-copy by a disk failure.
    Dropped {
        /// Chunk the job was moving (0 for raw writes).
        chunk: u64,
    },
}

/// Phase of an active job.
#[derive(Debug)]
enum Phase {
    /// Waiting for `remaining` read-piece completions.
    Reading { remaining: u32 },
    /// Waiting for `remaining` write-piece completions.
    Writing { remaining: u32 },
}

#[derive(Debug)]
struct ActiveJob {
    job: MigrationJob,
    phase: Phase,
    dirty: bool,
    /// For `Relocate`: the reserved destination slot.
    reserved_slot: Option<u32>,
}

/// The migration engine.
pub struct MigrationEngine {
    pending: VecDeque<MigrationJob>,
    /// Rebuild jobs queue separately: they start even while `paused` (a
    /// boost must not stall redundancy restoration) and survive
    /// [`MigrationEngine::clear_pending`].
    rebuild_pending: VecDeque<MigrationJob>,
    /// Engine-assigned job ids are sequential, so the one-multiply `IdMap`
    /// replaces SipHash on the per-piece completion path.
    active: IdMap<ActiveJob>,
    /// disk-request id → job id, for routing completions.
    request_to_job: IdMap<u64>,
    /// Requests whose job was torn down by a disk failure; their completions
    /// (from surviving disks) are swallowed instead of panicking.
    orphaned: HashSet<u64>,
    /// Disks that have failed; jobs touching them are refused.
    dead: HashSet<usize>,
    active_rebuilds: usize,
    next_job_id: u64,
    next_req_id: u64,
    max_inflight: usize,
    piece_sectors: u32,
    paused: bool,
    stats: MigrationStats,
    /// When true, every job lifecycle edge is appended to `records`.
    recording: bool,
    records: Vec<MigrationRecord>,
}

/// Migration-request ids live in their own namespace (top bit set) so they
/// can never collide with foreground ids handed out by the driver.
const MIG_ID_BASE: u64 = 1 << 63;

impl MigrationEngine {
    /// Creates an engine allowing `max_inflight` concurrent jobs.
    ///
    /// # Panics
    /// Panics if `max_inflight == 0`.
    pub fn new(max_inflight: usize) -> Self {
        assert!(max_inflight > 0, "need at least one inflight slot");
        MigrationEngine {
            pending: VecDeque::new(),
            rebuild_pending: VecDeque::new(),
            active: IdMap::with_capacity(max_inflight),
            request_to_job: IdMap::new(),
            orphaned: HashSet::new(),
            dead: HashSet::new(),
            active_rebuilds: 0,
            next_job_id: 0,
            next_req_id: MIG_ID_BASE,
            max_inflight,
            piece_sectors: 256, // 128 KiB pieces keep foreground stalls short
            paused: false,
            stats: MigrationStats::default(),
            recording: false,
            records: Vec::new(),
        }
    }

    /// Enables or disables lifecycle recording. Off by default, so the
    /// engine allocates nothing for telemetry unless a recorder is
    /// attached.
    pub fn set_recording(&mut self, on: bool) {
        self.recording = on;
    }

    /// Takes all records accumulated since the last drain, oldest first.
    pub fn drain_records(&mut self) -> Vec<MigrationRecord> {
        std::mem::take(&mut self.records)
    }

    fn record(&mut self, now: SimTime, job: u64, kind: MigrationRecordKind) {
        if self.recording {
            self.records.push(MigrationRecord {
                time_s: now.as_secs(),
                job,
                kind,
            });
        }
    }

    /// The chunk a job is about, for record-keeping (0 for raw writes).
    fn record_chunk(job: &MigrationJob) -> u64 {
        match *job {
            MigrationJob::Relocate { chunk, .. } | MigrationJob::Rebuild { chunk, .. } => {
                u64::from(chunk.0)
            }
            MigrationJob::Swap { a, .. } => u64::from(a.0),
            MigrationJob::RawWrite { .. } => 0,
        }
    }

    /// Overrides the copy piece size (sectors). Smaller pieces reduce the
    /// worst-case foreground stall behind migration service at the cost of
    /// more per-piece overhead.
    ///
    /// # Panics
    /// Panics if `sectors == 0`.
    pub fn set_piece_sectors(&mut self, sectors: u32) {
        assert!(sectors > 0, "piece size must be positive");
        self.piece_sectors = sectors;
    }

    /// Emits piece requests covering `[sector, sector + sectors)`.
    #[allow(clippy::too_many_arguments)]
    fn make_pieces(
        &mut self,
        now: SimTime,
        disk: DiskId,
        sector: u64,
        sectors: u32,
        kind: IoKind,
        job_id: u64,
        out: &mut Vec<(DiskId, DiskRequest)>,
    ) -> u32 {
        let mut off = 0;
        let mut pieces = 0;
        while off < sectors {
            let take = (sectors - off).min(self.piece_sectors);
            let req = self.make_req(now, sector + u64::from(off), take, kind, job_id);
            out.push((disk, req));
            off += take;
            pieces += 1;
        }
        pieces
    }

    /// Adds jobs to the pending queue (executed FIFO).
    pub fn enqueue(&mut self, jobs: impl IntoIterator<Item = MigrationJob>) {
        self.pending.extend(jobs);
    }

    /// Queues rebuild jobs. Rebuilds outrank ordinary migrations: they
    /// start even while the engine is paused and are not dropped by
    /// [`MigrationEngine::clear_pending`].
    pub fn enqueue_rebuild(&mut self, jobs: impl IntoIterator<Item = MigrationJob>) {
        for job in jobs {
            debug_assert!(
                matches!(job, MigrationJob::Rebuild { .. }),
                "rebuild queue accepts only Rebuild jobs"
            );
            self.rebuild_pending.push_back(job);
        }
    }

    /// Rebuild jobs not yet committed (queued + copying). Zero means every
    /// chunk that lost its home has a live one again.
    pub fn rebuild_outstanding(&self) -> usize {
        self.rebuild_pending.len() + self.active_rebuilds
    }

    /// Drops all not-yet-started jobs. In-flight jobs run to completion
    /// (their I/O is already queued at the disks).
    pub fn clear_pending(&mut self) {
        self.stats.dropped += self.pending.len() as u64;
        self.pending.clear();
    }

    /// Pauses starting new jobs (used during performance boosts). In-flight
    /// jobs finish normally.
    pub fn set_paused(&mut self, paused: bool) {
        self.paused = paused;
    }

    /// The concurrency limit this engine was built with.
    pub fn max_inflight(&self) -> usize {
        self.max_inflight
    }

    /// Jobs waiting to start.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Jobs currently copying.
    pub fn active_len(&self) -> usize {
        self.active.len()
    }

    /// True if no work is queued or in flight.
    pub fn is_quiescent(&self) -> bool {
        self.pending.is_empty() && self.rebuild_pending.is_empty() && self.active.is_empty()
    }

    /// Activity counters.
    pub fn stats(&self) -> MigrationStats {
        self.stats
    }

    /// Marks any in-flight job touching `chunk` dirty (called by the driver
    /// for every foreground **write**).
    pub fn note_foreground_write(&mut self, chunk: ChunkId) {
        for job in self.active.values_mut() {
            let touches = match job.job {
                MigrationJob::Relocate { chunk: c, .. } => c == chunk,
                MigrationJob::Swap { a, b } => a == chunk || b == chunk,
                MigrationJob::RawWrite { .. } => false,
                // A rebuild never aborts — the reconstructed data is the
                // redundancy copy, which absorbs the write too.
                MigrationJob::Rebuild { .. } => false,
            };
            if touches {
                job.dirty = true;
            }
        }
    }

    /// Starts queued jobs while below the concurrency limit. Returns the
    /// read requests to submit, as `(disk, request)` pairs. Rebuild jobs go
    /// first and ignore the pause flag; ordinary migrations only start when
    /// unpaused and no rebuild is waiting for a slot.
    pub fn pump(&mut self, now: SimTime, remap: &mut RemapTable) -> Vec<(DiskId, DiskRequest)> {
        let mut out = Vec::new();
        let mut deferred = VecDeque::new();
        while self.active.len() < self.max_inflight {
            let Some(job) = self.rebuild_pending.pop_front() else {
                break;
            };
            match self.try_start(now, remap, job) {
                Some(reqs) => out.extend(reqs),
                // A rebuild that can't start yet (its chunk is mid-copy) is
                // deferred, not dropped — the chunk still needs a home.
                None => deferred.push_back(job),
            }
        }
        self.rebuild_pending.extend(deferred);
        if self.paused {
            return out;
        }
        while self.active.len() < self.max_inflight {
            let Some(job) = self.pending.pop_front() else {
                break;
            };
            match self.try_start(now, remap, job) {
                Some(reqs) => out.extend(reqs),
                None => self.stats.dropped += 1,
            }
        }
        out
    }

    /// True if `chunk` participates in any in-flight job. Migration
    /// policies use this to avoid re-planning a chunk whose previous move
    /// has started but not yet committed (an epoch shorter than the
    /// migration latency would otherwise re-propose the chunk every round,
    /// and each duplicate would be dropped at start — see
    /// [`MigrationEngine::pump`]).
    pub fn chunk_in_flight(&self, chunk: ChunkId) -> bool {
        self.chunk_busy(chunk)
    }

    /// True if `chunk` participates in any in-flight job. Two concurrent
    /// jobs over one chunk would race on its placement, so overlapping jobs
    /// are dropped at start (the planner re-plans next epoch anyway).
    fn chunk_busy(&self, chunk: ChunkId) -> bool {
        self.active.values().any(|j| match j.job {
            MigrationJob::Relocate { chunk: c, .. } => c == chunk,
            MigrationJob::Swap { a, b } => a == chunk || b == chunk,
            MigrationJob::RawWrite { .. } => false,
            MigrationJob::Rebuild { chunk: c, .. } => c == chunk,
        })
    }

    fn try_start(
        &mut self,
        now: SimTime,
        remap: &mut RemapTable,
        job: MigrationJob,
    ) -> Option<Vec<(DiskId, DiskRequest)>> {
        match job {
            MigrationJob::Relocate { chunk, .. } if self.chunk_busy(chunk) => return None,
            MigrationJob::Swap { a, b } if self.chunk_busy(a) || self.chunk_busy(b) => return None,
            MigrationJob::Rebuild { chunk, .. } if self.chunk_busy(chunk) => return None,
            _ => {}
        }
        // Jobs touching a dead disk cannot run (its data is gone and its
        // queue will never drain).
        let touches_dead = match job {
            MigrationJob::Relocate { chunk, dst } => {
                self.dead.contains(&remap.disk_of(chunk).index())
                    || self.dead.contains(&dst.index())
            }
            MigrationJob::Swap { a, b } => {
                self.dead.contains(&remap.disk_of(a).index())
                    || self.dead.contains(&remap.disk_of(b).index())
            }
            MigrationJob::RawWrite { disk, .. } => self.dead.contains(&disk.index()),
            MigrationJob::Rebuild { src, dst, .. } => {
                self.dead.contains(&src.index()) || self.dead.contains(&dst.index())
            }
        };
        if touches_dead {
            return None;
        }
        let chunk_sectors = remap.chunk_sectors() as u32;
        let job_id = self.next_job_id;
        match job {
            MigrationJob::Rebuild { chunk, src, dst } => {
                // The reserved destination may have filled up since the
                // driver chose it; fall back to any live disk with space.
                let (dst, slot) = match remap.reserve_slot(dst) {
                    Some(slot) => (dst, slot),
                    None => {
                        let fallback = (0..remap.disks())
                            .map(DiskId)
                            .find(|d| !self.dead.contains(&d.index()) && remap.has_free_slot(*d))?;
                        (fallback, remap.reserve_slot(fallback)?)
                    }
                };
                let mut reads = Vec::new();
                let pieces = self.make_pieces(
                    now,
                    src,
                    remap.physical_sector(chunk),
                    chunk_sectors,
                    IoKind::Read,
                    job_id,
                    &mut reads,
                );
                self.active.insert(
                    job_id,
                    ActiveJob {
                        job: MigrationJob::Rebuild { chunk, src, dst },
                        phase: Phase::Reading { remaining: pieces },
                        dirty: false,
                        reserved_slot: Some(slot),
                    },
                );
                self.active_rebuilds += 1;
                self.next_job_id += 1;
                self.record(
                    now,
                    job_id,
                    MigrationRecordKind::Started {
                        chunk: u64::from(chunk.0),
                        src: src.index() as u32,
                        dst: dst.index() as u32,
                    },
                );
                Some(reads)
            }
            MigrationJob::Relocate { chunk, dst } => {
                let src = remap.placement(chunk);
                if src.disk == dst {
                    return None; // already there — planner noise
                }
                let slot = remap.reserve_slot(dst)?;
                let mut reads = Vec::new();
                let pieces = self.make_pieces(
                    now,
                    src.disk,
                    remap.physical_sector(chunk),
                    chunk_sectors,
                    IoKind::Read,
                    job_id,
                    &mut reads,
                );
                self.active.insert(
                    job_id,
                    ActiveJob {
                        job,
                        phase: Phase::Reading { remaining: pieces },
                        dirty: false,
                        reserved_slot: Some(slot),
                    },
                );
                self.next_job_id += 1;
                self.record(
                    now,
                    job_id,
                    MigrationRecordKind::Started {
                        chunk: u64::from(chunk.0),
                        src: src.disk.index() as u32,
                        dst: dst.index() as u32,
                    },
                );
                Some(reads)
            }
            MigrationJob::RawWrite {
                disk,
                sector,
                sectors,
            } => {
                let mut writes = Vec::new();
                let pieces = self.make_pieces(
                    now,
                    disk,
                    sector,
                    sectors,
                    IoKind::Write,
                    job_id,
                    &mut writes,
                );
                self.active.insert(
                    job_id,
                    ActiveJob {
                        job,
                        phase: Phase::Writing { remaining: pieces },
                        dirty: false,
                        reserved_slot: None,
                    },
                );
                self.next_job_id += 1;
                self.record(
                    now,
                    job_id,
                    MigrationRecordKind::Started {
                        chunk: 0,
                        src: disk.index() as u32,
                        dst: disk.index() as u32,
                    },
                );
                Some(writes)
            }
            MigrationJob::Swap { a, b } => {
                let pa = remap.placement(a);
                let pb = remap.placement(b);
                if pa.disk == pb.disk {
                    return None;
                }
                let mut reads = Vec::new();
                let p1 = self.make_pieces(
                    now,
                    pa.disk,
                    remap.physical_sector(a),
                    chunk_sectors,
                    IoKind::Read,
                    job_id,
                    &mut reads,
                );
                let p2 = self.make_pieces(
                    now,
                    pb.disk,
                    remap.physical_sector(b),
                    chunk_sectors,
                    IoKind::Read,
                    job_id,
                    &mut reads,
                );
                self.active.insert(
                    job_id,
                    ActiveJob {
                        job,
                        phase: Phase::Reading { remaining: p1 + p2 },
                        dirty: false,
                        reserved_slot: None,
                    },
                );
                self.next_job_id += 1;
                self.record(
                    now,
                    job_id,
                    MigrationRecordKind::Started {
                        chunk: u64::from(a.0),
                        src: pa.disk.index() as u32,
                        dst: pb.disk.index() as u32,
                    },
                );
                Some(reads)
            }
        }
    }

    fn make_req(
        &mut self,
        now: SimTime,
        sector: u64,
        sectors: u32,
        kind: IoKind,
        job_id: u64,
    ) -> DiskRequest {
        let id = self.next_req_id;
        self.next_req_id += 1;
        self.request_to_job.insert(id, job_id);
        DiskRequest {
            id,
            sector,
            sectors,
            kind,
            class: RequestClass::Migration,
            issue_time: now,
        }
    }

    /// Routes a migration-class completion. Returns follow-on write requests
    /// to submit; commits or aborts the job when its last write lands.
    ///
    /// # Panics
    /// Panics if the completion does not belong to this engine (driver bug).
    pub fn on_completion(
        &mut self,
        now: SimTime,
        comp: &Completion,
        remap: &mut RemapTable,
    ) -> Vec<(DiskId, DiskRequest)> {
        let req_id = comp.request.id;
        if self.orphaned.remove(&req_id) {
            // The job this piece belonged to was torn down by a disk
            // failure; the I/O happened, but there is nothing to advance.
            self.stats.sectors_moved += u64::from(comp.request.sectors);
            return Vec::new();
        }
        let job_id = *self
            .request_to_job
            .get(req_id)
            .expect("unknown migration completion");
        self.request_to_job.remove(req_id);
        self.stats.sectors_moved += u64::from(comp.request.sectors);

        let job = self.active.get_mut(job_id).expect("job state missing");
        match &mut job.phase {
            Phase::Reading { remaining } => {
                *remaining -= 1;
                if *remaining > 0 {
                    return Vec::new();
                }
                // All reads done → issue writes.
                let chunk_sectors = remap.chunk_sectors() as u32;
                let targets: Vec<(DiskId, u64)> = match job.job {
                    MigrationJob::RawWrite { .. } => {
                        unreachable!("raw writes never enter the read phase")
                    }
                    MigrationJob::Relocate { dst, .. } | MigrationJob::Rebuild { dst, .. } => {
                        let slot = job.reserved_slot.expect("job reserved a slot");
                        vec![(dst, u64::from(slot) * remap.chunk_sectors())]
                    }
                    MigrationJob::Swap { a, b } => {
                        // Each chunk is written into the other's current slot.
                        let pa = remap.placement(a);
                        let pb = remap.placement(b);
                        vec![
                            (pb.disk, u64::from(pb.slot) * remap.chunk_sectors()),
                            (pa.disk, u64::from(pa.slot) * remap.chunk_sectors()),
                        ]
                    }
                };
                let mut out = Vec::new();
                let mut count = 0;
                for (disk, sector) in targets {
                    count += self.make_pieces(
                        now,
                        disk,
                        sector,
                        chunk_sectors,
                        IoKind::Write,
                        job_id,
                        &mut out,
                    );
                }
                // Reborrow the job (make_pieces needed &mut self).
                let job = self.active.get_mut(job_id).expect("job still active");
                job.phase = Phase::Writing { remaining: count };
                out
            }
            Phase::Writing { remaining } => {
                *remaining -= 1;
                if *remaining > 0 {
                    return Vec::new();
                }
                // Job complete: commit unless dirtied.
                let job = self.active.remove(job_id).expect("job vanished");
                let chunk_bytes = remap.chunk_sectors() * 512;
                if job.dirty {
                    self.stats.aborted += 1;
                    if let (MigrationJob::Relocate { dst, .. }, Some(slot)) =
                        (job.job, job.reserved_slot)
                    {
                        remap.release_slot(dst, slot);
                    }
                    let chunk = Self::record_chunk(&job.job);
                    self.record(now, job_id, MigrationRecordKind::Aborted { chunk });
                } else {
                    match job.job {
                        MigrationJob::Rebuild { chunk, src, dst } => {
                            let slot = job.reserved_slot.expect("slot reserved");
                            remap.relocate(chunk, dst, slot);
                            self.stats.rebuilt += 1;
                            self.active_rebuilds -= 1;
                            self.record(
                                now,
                                job_id,
                                MigrationRecordKind::Moved {
                                    chunk: u64::from(chunk.0),
                                    src: src.index() as u32,
                                    dst: dst.index() as u32,
                                    bytes: chunk_bytes,
                                    kind: MoveKind::Rebuild,
                                },
                            );
                        }
                        MigrationJob::Relocate { chunk, dst } => {
                            let src = remap.disk_of(chunk);
                            let slot = job.reserved_slot.expect("slot reserved");
                            remap.relocate(chunk, dst, slot);
                            self.stats.committed += 1;
                            self.record(
                                now,
                                job_id,
                                MigrationRecordKind::Moved {
                                    chunk: u64::from(chunk.0),
                                    src: src.index() as u32,
                                    dst: dst.index() as u32,
                                    bytes: chunk_bytes,
                                    kind: MoveKind::Relocate,
                                },
                            );
                        }
                        MigrationJob::Swap { a, b } => {
                            // Placements may have degenerated (e.g. a
                            // foreground-triggered abort path elsewhere);
                            // a same-disk pair is a no-op, not a panic.
                            let (da, db) = (remap.disk_of(a), remap.disk_of(b));
                            if da != db {
                                remap.swap(a, b);
                                self.stats.committed += 1;
                                self.record(
                                    now,
                                    job_id,
                                    MigrationRecordKind::Moved {
                                        chunk: u64::from(a.0),
                                        src: da.index() as u32,
                                        dst: db.index() as u32,
                                        bytes: 2 * chunk_bytes,
                                        kind: MoveKind::Swap,
                                    },
                                );
                            } else {
                                self.stats.aborted += 1;
                                self.record(
                                    now,
                                    job_id,
                                    MigrationRecordKind::Aborted {
                                        chunk: u64::from(a.0),
                                    },
                                );
                            }
                        }
                        MigrationJob::RawWrite { disk, sectors, .. } => {
                            self.stats.raw_writes += 1;
                            self.record(
                                now,
                                job_id,
                                MigrationRecordKind::Moved {
                                    chunk: 0,
                                    src: disk.index() as u32,
                                    dst: disk.index() as u32,
                                    bytes: u64::from(sectors) * 512,
                                    kind: MoveKind::Raw,
                                },
                            );
                        }
                    }
                }
                Vec::new()
            }
        }
    }

    /// Tears down migration state after `disk` fails. Pending jobs touching
    /// the disk are dropped; active jobs touching it are aborted (their
    /// surviving in-flight pieces become orphans, swallowed on completion).
    /// Returns the rebuild jobs that lost their `src` or `dst` and must be
    /// re-targeted by the driver — a failed disk cancels copies, never the
    /// obligation to re-protect a chunk.
    pub fn note_disk_failed(
        &mut self,
        now: SimTime,
        disk: DiskId,
        remap: &mut RemapTable,
    ) -> Vec<MigrationJob> {
        self.dead.insert(disk.index());
        let touches = |job: &MigrationJob, remap: &RemapTable| match *job {
            MigrationJob::Relocate { chunk, dst } => remap.disk_of(chunk) == disk || dst == disk,
            MigrationJob::Swap { a, b } => remap.disk_of(a) == disk || remap.disk_of(b) == disk,
            MigrationJob::RawWrite { disk: d, .. } => d == disk,
            MigrationJob::Rebuild { src, dst, .. } => src == disk || dst == disk,
        };

        // Pending ordinary jobs touching the disk: dropped.
        let before = self.pending.len();
        self.pending.retain(|j| !touches(j, remap));
        self.stats.dropped += (before - self.pending.len()) as u64;

        // Pending rebuilds touching the disk: pulled out for re-targeting.
        let mut retarget = Vec::new();
        let mut keep = VecDeque::new();
        for job in self.rebuild_pending.drain(..) {
            if touches(&job, remap) {
                retarget.push(job);
            } else {
                keep.push_back(job);
            }
        }
        self.rebuild_pending = keep;

        // Active jobs touching the disk: aborted mid-copy. Map iteration is
        // slot-ordered, not id-ordered — sort so the Dropped records and
        // stats fold in a canonical order regardless of table history.
        let mut doomed: Vec<u64> = self
            .active
            .iter()
            .filter(|(_, a)| touches(&a.job, remap))
            .map(|(id, _)| id)
            .collect();
        doomed.sort_unstable();
        for job_id in doomed {
            let job = self.active.remove(job_id).expect("doomed job present");
            let chunk = Self::record_chunk(&job.job);
            self.record(now, job_id, MigrationRecordKind::Dropped { chunk });
            // Outstanding pieces on surviving disks will still complete;
            // mark them orphans so those completions are swallowed.
            let mut outstanding: Vec<u64> = self
                .request_to_job
                .iter()
                .filter(|(_, j)| **j == job_id)
                .map(|(r, _)| r)
                .collect();
            outstanding.sort_unstable();
            for req_id in outstanding {
                self.request_to_job.remove(req_id);
                self.orphaned.insert(req_id);
            }
            match job.job {
                MigrationJob::Relocate { dst, .. } => {
                    if let Some(slot) = job.reserved_slot {
                        if dst != disk {
                            remap.release_slot(dst, slot);
                        }
                    }
                    self.stats.aborted += 1;
                }
                MigrationJob::Swap { .. } | MigrationJob::RawWrite { .. } => {
                    self.stats.aborted += 1;
                }
                MigrationJob::Rebuild { dst, .. } => {
                    if let Some(slot) = job.reserved_slot {
                        if dst != disk {
                            remap.release_slot(dst, slot);
                        }
                    }
                    self.active_rebuilds -= 1;
                    self.stats.aborted += 1;
                    retarget.push(job.job);
                }
            }
        }
        retarget
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ArrayConfig;
    use diskmodel::Completion;

    fn remap(disks: usize, chunks: u32) -> RemapTable {
        let mut c = ArrayConfig::default_for_volume(1 << 30);
        c.disks = disks;
        c.volume_chunks = chunks;
        RemapTable::striped(&c)
    }

    fn complete(req: DiskRequest, at: f64) -> Completion {
        Completion {
            request: req,
            disk: 0,
            finish_time: SimTime::from_secs(at),
            queue_delay_s: 0.0,
            service_s: 0.005,
        }
    }

    /// Runs a single job to completion, feeding completions back manually.
    fn run_job(engine: &mut MigrationEngine, remap: &mut RemapTable, dirty_after_read: bool) {
        let reads = engine.pump(SimTime::ZERO, remap);
        assert!(!reads.is_empty());
        let mut writes = Vec::new();
        for (i, (_, r)) in reads.iter().enumerate() {
            writes.extend(engine.on_completion(
                SimTime::from_secs(0.1 * (i + 1) as f64),
                &complete(*r, 0.1),
                remap,
            ));
        }
        if dirty_after_read {
            let job = engine.active.values().next().unwrap().job;
            match job {
                MigrationJob::Relocate { chunk, .. } => engine.note_foreground_write(chunk),
                MigrationJob::Swap { a, .. } => engine.note_foreground_write(a),
                MigrationJob::RawWrite { .. } => {}
                MigrationJob::Rebuild { chunk, .. } => engine.note_foreground_write(chunk),
            }
        }
        assert!(!writes.is_empty(), "reads must trigger writes");
        for (i, (_, w)) in writes.iter().enumerate() {
            let _ = engine.on_completion(
                SimTime::from_secs(1.0 + i as f64),
                &complete(*w, 1.0),
                remap,
            );
        }
    }

    #[test]
    fn relocate_commits_and_updates_remap() {
        let mut t = remap(4, 16);
        let mut e = MigrationEngine::new(2);
        assert_eq!(t.disk_of(ChunkId(0)), DiskId(0));
        e.enqueue([MigrationJob::Relocate {
            chunk: ChunkId(0),
            dst: DiskId(3),
        }]);
        run_job(&mut e, &mut t, false);
        assert_eq!(t.disk_of(ChunkId(0)), DiskId(3));
        assert_eq!(e.stats().committed, 1);
        assert!(e.is_quiescent());
        t.check_invariants().unwrap();
    }

    #[test]
    fn swap_commits_both_sides() {
        let mut t = remap(4, 16);
        let mut e = MigrationEngine::new(2);
        let a = ChunkId(0); // disk 0
        let b = ChunkId(1); // disk 1
        e.enqueue([MigrationJob::Swap { a, b }]);
        run_job(&mut e, &mut t, false);
        assert_eq!(t.disk_of(a), DiskId(1));
        assert_eq!(t.disk_of(b), DiskId(0));
        assert_eq!(e.stats().committed, 1);
        t.check_invariants().unwrap();
    }

    #[test]
    fn dirty_job_aborts_without_commit() {
        let mut t = remap(4, 16);
        let mut e = MigrationEngine::new(2);
        e.enqueue([MigrationJob::Relocate {
            chunk: ChunkId(0),
            dst: DiskId(2),
        }]);
        run_job(&mut e, &mut t, true);
        assert_eq!(t.disk_of(ChunkId(0)), DiskId(0), "abort must not move data");
        assert_eq!(e.stats().aborted, 1);
        assert_eq!(e.stats().committed, 0);
        t.check_invariants().unwrap();
        // The reserved slot was released.
        assert_eq!(t.occupancy(DiskId(2)), 4);
    }

    /// Recording captures the full lifecycle of a committed relocate —
    /// one Started and one Moved record sharing a job id — and nothing is
    /// retained while recording is off.
    #[test]
    fn recording_captures_relocate_lifecycle() {
        let mut t = remap(4, 16);
        let mut e = MigrationEngine::new(2);
        e.set_recording(true);
        e.enqueue([MigrationJob::Relocate {
            chunk: ChunkId(0),
            dst: DiskId(2),
        }]);
        run_job(&mut e, &mut t, false);
        let recs = e.drain_records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].job, recs[1].job);
        assert_eq!(
            recs[0].kind,
            MigrationRecordKind::Started {
                chunk: 0,
                src: 0,
                dst: 2,
            }
        );
        match recs[1].kind {
            MigrationRecordKind::Moved {
                chunk,
                src,
                dst,
                bytes,
                kind,
            } => {
                assert_eq!((chunk, src, dst), (0, 0, 2));
                assert_eq!(bytes, t.chunk_sectors() * 512);
                assert_eq!(kind, MoveKind::Relocate);
            }
            other => panic!("expected Moved, got {other:?}"),
        }
        assert!(e.drain_records().is_empty(), "drain consumes the log");

        // Recording off: a second job leaves no records behind.
        e.set_recording(false);
        e.enqueue([MigrationJob::Relocate {
            chunk: ChunkId(4),
            dst: DiskId(3),
        }]);
        run_job(&mut e, &mut t, false);
        assert!(e.drain_records().is_empty());
    }

    /// A dirty abort and a failure teardown both record their terminal
    /// edge, so an audit can balance every Started against an outcome.
    #[test]
    fn recording_captures_abort_and_drop() {
        let mut t = remap(4, 16);
        let mut e = MigrationEngine::new(2);
        e.set_recording(true);
        e.enqueue([MigrationJob::Relocate {
            chunk: ChunkId(0),
            dst: DiskId(2),
        }]);
        run_job(&mut e, &mut t, true); // dirtied mid-copy
        let recs = e.drain_records();
        assert_eq!(recs.len(), 2);
        assert!(matches!(
            recs[1].kind,
            MigrationRecordKind::Aborted { chunk: 0 }
        ));

        e.enqueue([MigrationJob::Relocate {
            chunk: ChunkId(4), // on disk 0
            dst: DiskId(3),
        }]);
        e.pump(SimTime::ZERO, &mut t);
        e.note_disk_failed(SimTime::from_secs(5.0), DiskId(0), &mut t);
        let recs = e.drain_records();
        assert_eq!(recs.len(), 2);
        assert!(matches!(
            recs[1].kind,
            MigrationRecordKind::Dropped { chunk: 4 }
        ));
        assert_eq!(recs[1].time_s, 5.0);
    }

    #[test]
    fn relocate_to_same_disk_is_dropped() {
        let mut t = remap(4, 16);
        let mut e = MigrationEngine::new(2);
        e.enqueue([MigrationJob::Relocate {
            chunk: ChunkId(0),
            dst: DiskId(0),
        }]);
        let reads = e.pump(SimTime::ZERO, &mut t);
        assert!(reads.is_empty());
        assert_eq!(e.stats().dropped, 1);
        assert!(e.is_quiescent());
    }

    #[test]
    fn inflight_limit_respected() {
        let mut t = remap(8, 64);
        let mut e = MigrationEngine::new(2);
        e.enqueue((0..8).map(|i| MigrationJob::Relocate {
            chunk: ChunkId(i),
            dst: DiskId((i as usize + 1) % 8),
        }));
        let reads = e.pump(SimTime::ZERO, &mut t);
        assert_eq!(e.active_len(), 2);
        // Each chunk copy is split into 128 KiB pieces (2048/256 = 8 per
        // chunk), so two active jobs issue 16 read pieces.
        assert_eq!(reads.len(), 16);
        assert_eq!(e.pending_len(), 6);
    }

    #[test]
    fn paused_engine_starts_nothing() {
        let mut t = remap(4, 16);
        let mut e = MigrationEngine::new(2);
        e.enqueue([MigrationJob::Relocate {
            chunk: ChunkId(0),
            dst: DiskId(1),
        }]);
        e.set_paused(true);
        assert!(e.pump(SimTime::ZERO, &mut t).is_empty());
        e.set_paused(false);
        assert_eq!(e.pump(SimTime::ZERO, &mut t).len(), 8); // 8 read pieces
    }

    #[test]
    fn clear_pending_counts_drops() {
        let mut e = MigrationEngine::new(1);
        e.enqueue([
            MigrationJob::Swap {
                a: ChunkId(0),
                b: ChunkId(1),
            },
            MigrationJob::Swap {
                a: ChunkId(2),
                b: ChunkId(3),
            },
        ]);
        e.clear_pending();
        assert_eq!(e.stats().dropped, 2);
        assert!(e.is_quiescent());
    }

    #[test]
    fn migration_requests_use_reserved_id_space() {
        let mut t = remap(4, 16);
        let mut e = MigrationEngine::new(2);
        e.enqueue([MigrationJob::Relocate {
            chunk: ChunkId(0),
            dst: DiskId(1),
        }]);
        let reads = e.pump(SimTime::ZERO, &mut t);
        assert!(reads[0].1.id >= MIG_ID_BASE);
        assert_eq!(reads[0].1.class, RequestClass::Migration);
    }

    #[test]
    fn rebuild_commits_even_when_dirtied_and_paused() {
        let mut t = remap(4, 16);
        let mut e = MigrationEngine::new(2);
        e.set_paused(true); // boost in progress — rebuilds must still run
        e.enqueue_rebuild([MigrationJob::Rebuild {
            chunk: ChunkId(0), // lives on disk 0
            src: DiskId(1),
            dst: DiskId(3),
        }]);
        assert_eq!(e.rebuild_outstanding(), 1);
        // Dirty it mid-copy: a rebuild must commit anyway.
        run_job(&mut e, &mut t, true);
        assert_eq!(t.disk_of(ChunkId(0)), DiskId(3));
        assert_eq!(e.stats().rebuilt, 1);
        assert_eq!(e.stats().aborted, 0);
        assert_eq!(e.rebuild_outstanding(), 0);
        t.check_invariants().unwrap();
    }

    #[test]
    fn rebuild_falls_back_when_destination_is_full() {
        let mut t = remap(4, 16);
        let mut e = MigrationEngine::new(2);
        // Fill disk 3 completely (4 slots per disk at 16 chunks / 4 disks).
        while t.reserve_slot(DiskId(3)).is_some() {}
        e.enqueue_rebuild([MigrationJob::Rebuild {
            chunk: ChunkId(0),
            src: DiskId(1),
            dst: DiskId(3),
        }]);
        run_job(&mut e, &mut t, false);
        let landed = t.disk_of(ChunkId(0));
        assert_ne!(landed, DiskId(3), "full destination must be bypassed");
        assert_eq!(e.stats().rebuilt, 1);
        t.check_invariants().unwrap();
    }

    #[test]
    fn disk_failure_aborts_jobs_and_retargets_rebuilds() {
        let mut t = remap(4, 16);
        let mut e = MigrationEngine::new(4);
        // An ordinary relocate reading from disk 0, plus a queued one.
        e.enqueue([
            MigrationJob::Relocate {
                chunk: ChunkId(0), // on disk 0
                dst: DiskId(2),
            },
            MigrationJob::Relocate {
                chunk: ChunkId(4), // on disk 0
                dst: DiskId(3),
            },
        ]);
        let reads = e.pump(SimTime::ZERO, &mut t);
        assert_eq!(e.active_len(), 2);
        let occupancy_before = t.occupancy(DiskId(2));

        // Disk 0 dies: both active jobs read from it.
        let retarget = e.note_disk_failed(SimTime::ZERO, DiskId(0), &mut t);
        assert!(retarget.is_empty(), "no rebuilds were queued");
        assert_eq!(e.active_len(), 0);
        assert_eq!(e.stats().aborted, 2);
        // Reserved slots were released on the surviving destinations.
        assert_eq!(t.occupancy(DiskId(2)), occupancy_before - 1);

        // Completions for the already-issued reads are swallowed, not a panic.
        for (_, r) in &reads {
            assert!(e
                .on_completion(SimTime::from_secs(1.0), &complete(*r, 1.0), &mut t)
                .is_empty());
        }

        // A rebuild whose src dies comes back for re-targeting.
        e.enqueue_rebuild([MigrationJob::Rebuild {
            chunk: ChunkId(1),
            src: DiskId(1),
            dst: DiskId(2),
        }]);
        let retarget = e.note_disk_failed(SimTime::ZERO, DiskId(1), &mut t);
        assert_eq!(retarget.len(), 1);
        assert!(matches!(retarget[0], MigrationJob::Rebuild { .. }));
        assert_eq!(e.rebuild_outstanding(), 0);

        // New jobs touching dead disks are refused.
        e.enqueue([MigrationJob::Relocate {
            chunk: ChunkId(2), // on disk 2 (alive)
            dst: DiskId(0),    // dead
        }]);
        assert!(e.pump(SimTime::ZERO, &mut t).is_empty());
        assert!(e.is_quiescent());
        t.check_invariants().unwrap();
    }

    #[test]
    fn sectors_moved_accumulates() {
        let mut t = remap(4, 16);
        let mut e = MigrationEngine::new(2);
        e.enqueue([MigrationJob::Relocate {
            chunk: ChunkId(0),
            dst: DiskId(1),
        }]);
        run_job(&mut e, &mut t, false);
        // One read + one write of a whole chunk each.
        assert_eq!(e.stats().sectors_moved, 2 * t.chunk_sectors());
    }
}
