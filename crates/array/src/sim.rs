//! The discrete-event simulation driver.
//!
//! [`Simulation`] owns the [`ArrayState`] and a [`PowerPolicy`], replays a
//! [`workload::Trace`] against the array, and produces a [`RunReport`].
//!
//! # Event flow
//!
//! * **Arrival** — the next trace request is split at chunk boundaries,
//!   routed through the remap table into per-disk sub-requests (plus a
//!   parity write under [`Redundancy::Raid5Like`]), shown to the policy,
//!   and submitted. Arrivals are scheduled one ahead, keeping the event
//!   heap small.
//! * **DiskWake(disk, gen)** — a disk's next internal event (service
//!   completion or ramp end) is due. Generation counters invalidate stale
//!   wakes: whenever a disk's `next_event_time` changes, the old scheduled
//!   wake is superseded rather than removed.
//! * **Tick** — the policy's periodic hook.
//! * **Sample** — the driver records array power (energy delta over the
//!   sampling interval) and per-level disk counts.
//!
//! After every mutation source (arrival, completion batch, policy hook,
//! migration pump) the driver re-synchronises disk wake schedules — the one
//! invariant that keeps the event queue honest. The resync is *incremental*:
//! handlers mark the disks they touched in [`ArrayState::wake_marks`] and
//! only those are visited, in ascending disk-index order so the sequence of
//! event-queue pushes (and therefore FIFO tie-breaking) is bit-identical to
//! a full scan. The infrequent policy hooks (`init`, `on_tick`,
//! `on_disk_failure`) conservatively mark every disk, so policies may
//! mutate spindles directly there; per-event hooks must go through
//! [`ArrayState::request_speed`]. Debug builds cross-check the dirty set
//! against a full scan after every resync, and
//! [`RunOptions::reference_full_resync`] retains the full-scan path for
//! equivalence testing.
//!
//! # Hot-path structure
//!
//! Three optimisations shape the inner loop, each locked to a reference
//! implementation by differential tests:
//!
//! * The event queue runs on a radix-rung *ladder* backend
//!   ([`simkit::QueueBackend::Ladder`]) instead of a binary heap.
//! * Arrival admission is *batched*: when the next trace request would be
//!   the very next pop anyway, [`Self::handle_arrival`] processes it
//!   inline, reserving its `(time, seq)` queue key so ordering and event
//!   counts match the queued path exactly.
//! * In-flight request state (piece→volume gather, pending volumes) lives
//!   in [`simkit::Slab`] arenas whose slot indices *are* the request ids,
//!   so the per-request maps never hash and never grow past peak
//!   concurrency.
//!
//! [`RunOptions::reference_heap_queue`] retains the heap backend and the
//! unbatched admission path; `tests/queue_equivalence.rs` pins the two
//! configurations to bit-identical output across every headline policy.

use crate::migration::{MigrationJob, MigrationStats};
use crate::policy::{ArrayState, PowerPolicy, WakeMarks};
use crate::remap::RemapTable;
use crate::stats::ArrayStats;
use crate::types::{ArrayConfig, ChunkId, DiskId, Redundancy};
use crate::MigrationEngine;
use diskmodel::{Disk, DiskRequest, IoKind, RequestClass};
use faults::{FaultInjector, FaultKind, FaultOutcome, FaultPlan, ReliabilityLedger};
use simkit::{
    EnergyLedger, EventQueue, IdMap, LatencyHistogram, Moments, QueueBackend, SimDuration, SimTime,
    Slab, TimeSeries,
};
use workload::{Trace, TraceSource, VolumeIoKind, VolumeRequest};

/// Tunables of a single simulation run.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Simulated duration; events beyond it are not processed and energy is
    /// accrued exactly to this instant.
    pub horizon: SimTime,
    /// Bucket width of all recorded time series.
    pub series_bucket: SimDuration,
    /// Cadence of power/level sampling.
    pub sample_interval: SimDuration,
    /// Maximum concurrently executing migration jobs.
    pub migration_inflight: usize,
    /// Fault injection: a scripted storm plus online-model tunables.
    /// `None` runs fault-free (identical to the pre-fault simulator).
    pub faults: Option<FaultPlan>,
    /// Structured-telemetry capture. `None` (the default) records nothing
    /// and costs one `Option` check per emission site.
    pub telemetry: Option<telemetry::TelemetryConfig>,
    /// Controller DRAM cache in front of the spindles. `None` (the
    /// default) — and a config with `capacity_chunks == 0` — run the
    /// request path untouched, bit-identically to the pre-cache
    /// simulator.
    pub cache: Option<cache::CacheConfig>,
    /// Use the pre-optimisation full-scan wake resync instead of
    /// dirty-disk tracking. The two paths must produce bit-identical
    /// results; this flag exists as the reference for equivalence tests
    /// and for measuring the optimisation's effect.
    pub reference_full_resync: bool,
    /// Use the reference `BinaryHeap` event-queue backend and per-event
    /// request admission instead of the ladder queue with batched
    /// admission. The two configurations must produce bit-identical
    /// results; this flag exists as the reference for equivalence tests
    /// and for measuring the optimisation's effect.
    pub reference_heap_queue: bool,
    /// Volume sectors per tenant: when `Some(n)`, the volume is viewed as
    /// consecutive `n`-sector tenant shards (tenant = sector / n) and the
    /// driver keeps one response histogram per tenant in
    /// [`RunReport::tenant_latency`]. `None` (the default) records
    /// nothing per-tenant and leaves the run bit-identical to a driver
    /// without tenant accounting — the histograms never influence event
    /// order or timing either way.
    pub tenant_sectors: Option<u64>,
}

impl RunOptions {
    /// Sensible defaults for a run of `horizon_s` simulated seconds:
    /// 60 s series buckets and sampling, 2 concurrent migrations, no
    /// faults.
    pub fn for_horizon(horizon_s: f64) -> RunOptions {
        RunOptions {
            horizon: SimTime::from_secs(horizon_s),
            series_bucket: SimDuration::from_secs(60.0),
            sample_interval: SimDuration::from_secs(60.0),
            migration_inflight: 2,
            faults: None,
            telemetry: None,
            cache: None,
            reference_full_resync: false,
            reference_heap_queue: false,
            tenant_sectors: None,
        }
    }

    /// Same defaults, with fault injection from `plan`.
    pub fn with_faults(horizon_s: f64, plan: FaultPlan) -> RunOptions {
        RunOptions {
            faults: Some(plan),
            ..RunOptions::for_horizon(horizon_s)
        }
    }
}

/// Everything a run produces.
#[derive(Debug)]
pub struct RunReport {
    /// Policy name.
    pub policy: String,
    /// Aggregate energy across all disks, accrued to the horizon.
    pub energy: EnergyLedger,
    /// Per-disk energy ledgers.
    pub per_disk_energy: Vec<EnergyLedger>,
    /// Foreground volume-request response-time moments (seconds).
    pub response: Moments,
    /// Foreground disk-level service-time moments (seconds).
    pub service: Moments,
    /// Foreground response-time histogram.
    pub response_hist: LatencyHistogram,
    /// Mean response per bucket over time.
    pub response_series: TimeSeries,
    /// Array power (W) per bucket over time.
    pub power_series: TimeSeries,
    /// Disks per level (then standby, then transitioning) over time.
    pub level_series: Vec<TimeSeries>,
    /// Volume requests completed.
    pub completed: u64,
    /// Volume requests still incomplete at the horizon.
    pub incomplete: u64,
    /// Foreground sectors transferred.
    pub fg_sectors: u64,
    /// Migration activity counters.
    pub migration: MigrationStats,
    /// Total spindle transitions across all disks.
    pub transitions: u64,
    /// Per-disk reliability ledgers (transitions, duty-cycle hours, wear),
    /// accrued to the horizon — populated for every run, faulted or not.
    pub reliability: Vec<ReliabilityLedger>,
    /// What the fault storm did (all-zero when faults were off).
    pub faults: FaultOutcome,
    /// The simulated horizon.
    pub horizon: SimTime,
    /// Events the driver processed (arrivals, wakes, ticks, samples,
    /// faults, retries) — the denominator for events/sec throughput.
    pub events_processed: u64,
    /// What the controller DRAM cache did (`None` when it was disabled).
    pub cache: Option<cache::CacheStats>,
    /// The serialized telemetry stream, when capture was enabled.
    pub telemetry: Option<telemetry::RunStream>,
    /// Per-tenant response histograms, indexed by tenant id — empty
    /// unless [`RunOptions::tenant_sectors`] sharded the volume.
    pub tenant_latency: Vec<LatencyHistogram>,
}

impl RunReport {
    /// Mean response time in milliseconds.
    pub fn mean_response_ms(&self) -> f64 {
        self.response.mean() * 1e3
    }

    /// Total energy in kilojoules.
    pub fn energy_kj(&self) -> f64 {
        self.energy.total_kilojoules()
    }

    /// Energy savings vs a baseline report (fraction of baseline energy).
    pub fn savings_vs(&self, base: &RunReport) -> f64 {
        self.energy.savings_vs(&base.energy)
    }
}

#[derive(Debug, Clone)]
enum Event {
    /// The request the feed holds ready is due. The payload lives in
    /// [`Feed`], not the event: the queue never needs to know whether
    /// requests come from a materialised slice or a streaming source.
    Arrival,
    DiskWake(usize, u64),
    Tick,
    Sample,
    /// Periodic write-back destage of the controller DRAM cache (only
    /// scheduled when the cache is enabled).
    Flush,
    /// The next scripted fault is due.
    Fault,
    /// Re-submit a foreground request that failed transiently. Boxed:
    /// retries only exist in fault runs, and the embedded `DiskRequest`
    /// would otherwise dominate the size of every queue entry on the
    /// hot path.
    Retry(Box<RetryPayload>),
}

#[derive(Debug, Clone, Copy)]
struct RetryPayload {
    disk: usize,
    req: DiskRequest,
}

/// `gather` value for pieces that gate no volume response (parity and
/// deferred cache writes): they hold a request-id slot while in flight
/// but point at no pending volume.
const NO_PARENT: u32 = u32::MAX;

struct PendingVolume {
    /// Pieces of this volume not yet dead or completed — the slot's
    /// reference count: only the last piece to die may free the slot.
    remaining: u32,
    arrival: SimTime,
    sectors: u64,
    /// Owning tenant (0 unless `RunOptions::tenant_sectors` is set).
    tenant: u32,
    /// The volume was lost (a piece died with no surviving replica); its
    /// response is never recorded, but the slot lives until the in-flight
    /// sibling pieces drain so their completions never observe a recycled
    /// slot.
    lost: bool,
}

/// Where arrivals come from: a borrowed materialised trace (the
/// reference path — random access, validated up front) or a pulled
/// [`TraceSource`] holding exactly one request ready (validated pull by
/// pull). Both deliver the identical request sequence to
/// [`Simulation::handle_arrival`]; `tests/stream_equivalence.rs` pins
/// the two paths to bit-identical output.
enum Feed<'a> {
    Slice {
        trace: &'a Trace,
        pos: usize,
    },
    Stream {
        source: Box<dyn TraceSource + 'a>,
        /// The next undelivered request — the *only* buffered state, so
        /// trace memory stays O(1) however long the horizon.
        ready: Option<VolumeRequest>,
        /// Time of the last delivered request, for the monotonicity check
        /// the slice path gets for free from `Trace::from_requests`.
        last: SimTime,
        /// Volume bound, enforced per pull (the slice path asserts the
        /// whole trace once in [`Simulation::new`]).
        volume_sectors: u64,
    },
}

/// Pulls one request from a source, enforcing the [`TraceSource`]
/// contract (nondecreasing times) and the volume bound.
fn pull_validated(
    source: &mut dyn TraceSource,
    last: &mut SimTime,
    volume_sectors: u64,
) -> Option<VolumeRequest> {
    source.next_request().inspect(|r| {
        assert!(
            r.time >= *last,
            "trace source emitted non-monotone time {:?} after {:?}",
            r.time,
            *last
        );
        assert!(
            r.sector + u64::from(r.sectors) <= volume_sectors,
            "trace source touches sector {} beyond volume of {} sectors",
            r.sector + u64::from(r.sectors),
            volume_sectors
        );
        *last = r.time;
    })
}

impl<'a> Feed<'a> {
    /// A streaming feed with its first request pulled and validated.
    fn stream(mut source: Box<dyn TraceSource + 'a>, volume_sectors: u64) -> Feed<'a> {
        let mut last = SimTime::ZERO;
        let ready = pull_validated(&mut *source, &mut last, volume_sectors);
        Feed::Stream {
            source,
            ready,
            last,
            volume_sectors,
        }
    }

    /// Time of the next undelivered request, if any.
    fn peek_time(&self) -> Option<SimTime> {
        match self {
            Feed::Slice { trace, pos } => trace.requests.get(*pos).map(|r| r.time),
            Feed::Stream { ready, .. } => ready.as_ref().map(|r| r.time),
        }
    }

    /// Delivers the next request and readies the one after it.
    fn next_request(&mut self) -> Option<VolumeRequest> {
        match self {
            Feed::Slice { trace, pos } => {
                let r = trace.requests.get(*pos).copied();
                if r.is_some() {
                    *pos += 1;
                }
                r
            }
            Feed::Stream {
                source,
                ready,
                last,
                volume_sectors,
            } => {
                let out = ready.take();
                if out.is_some() {
                    *ready = pull_validated(&mut **source, last, *volume_sectors);
                }
                out
            }
        }
    }

    /// Requests currently buffered inside the simulation (the streamed
    /// path's bounded-memory guarantee: at most one). The slice path
    /// reports the not-yet-delivered remainder of the borrowed trace.
    fn resident(&self) -> usize {
        match self {
            Feed::Slice { trace, pos } => trace.len() - pos,
            Feed::Stream { ready, .. } => usize::from(ready.is_some()),
        }
    }
}

/// The simulation driver. Construct with [`Simulation::new`] (borrowed
/// materialised trace) or [`Simulation::from_source`] (streaming), then
/// call [`Simulation::run`].
pub struct Simulation<'a, P: PowerPolicy> {
    state: ArrayState,
    policy: P,
    feed: Feed<'a>,
    opts: RunOptions,
    events: EventQueue<Event>,
    scheduled: Vec<Option<SimTime>>,
    gens: Vec<u64>,
    /// Piece → pending-volume slot, keyed by the piece's request id —
    /// which *is* its slab slot, so the map never hashes. `NO_PARENT`
    /// marks parity/deferred pieces that gate nothing.
    gather: Slab<u32>,
    /// In-flight volumes, keyed by slab slot (the `gather` values).
    pending: Slab<PendingVolume>,
    /// Pending volumes neither completed nor lost — the report's
    /// `incomplete` count. (`pending` itself also holds lost volumes
    /// whose in-flight sibling pieces are still draining.)
    live_parents: u64,
    last_sample_energy: f64,
    chunk_scratch: Vec<ChunkId>,
    /// Reusable split buffer for [`Self::route_volume_request`]; cleared
    /// per request, so routing allocates nothing once warm.
    piece_scratch: Vec<(ChunkId, u64, u32)>,
    /// Controller DRAM cache; `None` when disabled (including capacity 0),
    /// so the request path stays exactly the pre-cache code.
    dram: Option<cache::DramCache>,
    cache_stats: cache::CacheStats,
    /// Reusable buffer for the dirty set drained by a flush batch.
    flush_scratch: Vec<u32>,
    /// Reusable buffer for dirty chunks evicted by cache insertions.
    victim_scratch: Vec<u32>,
    injector: Option<FaultInjector>,
    outcome: FaultOutcome,
    /// Transient-retry attempts per foreground request id.
    retries: IdMap<u32>,
    last_hazard_check: SimTime,
    events_processed: u64,
    /// `outcome.rebuild_chunks` value at the last recorded backlog drain,
    /// so a later failure's rebuild wave updates the completion time.
    rebuilds_drained: u64,
    /// Whether [`Self::start`] has run (header, policy init, event seeds).
    started: bool,
    /// Mean array power over the most recent sampling interval, watts —
    /// the observation a fleet arbiter reads between stepping segments.
    /// Reading this instead of re-integrating energy keeps the energy
    /// accrual schedule (and its float rounding) untouched by observers.
    last_power_w: f64,
    /// Per-tenant response histograms (empty without `tenant_sectors`).
    tenant_lat: Vec<LatencyHistogram>,
}

impl<'a, P: PowerPolicy> Simulation<'a, P> {
    /// Builds a simulation of `trace` against an array described by
    /// `config`, managed by `policy`.
    ///
    /// # Panics
    /// Panics if the config is invalid or the trace touches sectors beyond
    /// the configured volume.
    pub fn new(config: ArrayConfig, policy: P, trace: &'a Trace, opts: RunOptions) -> Self {
        config.validate().expect("invalid array config");
        assert!(
            trace.max_sector() <= config.volume_sectors(),
            "trace touches sector {} beyond volume of {} sectors",
            trace.max_sector(),
            config.volume_sectors()
        );
        let hint = trace.len();
        Self::build(config, policy, Feed::Slice { trace, pos: 0 }, opts, hint)
    }

    /// Builds a simulation fed by a streaming [`TraceSource`] instead of a
    /// borrowed materialised trace: at most one request is buffered at a
    /// time, so trace memory is O(1) regardless of horizon. Each pulled
    /// request is validated against the volume bound and for monotone
    /// time as it arrives (the slice path checks the whole trace up
    /// front). Given a source yielding the same requests, the run is
    /// bit-identical to [`Simulation::new`] — `tests/stream_equivalence.rs`
    /// pins this.
    ///
    /// # Panics
    /// Panics if the config is invalid; later, pulling panics if the
    /// source emits a request beyond the volume or out of time order.
    pub fn from_source(
        config: ArrayConfig,
        policy: P,
        source: impl TraceSource + 'a,
        opts: RunOptions,
    ) -> Self {
        config.validate().expect("invalid array config");
        let hint = source.len_hint().unwrap_or(0);
        let feed = Feed::stream(Box::new(source), config.volume_sectors());
        Self::build(config, policy, feed, opts, hint)
    }

    /// Shared constructor body. `trace_hint` is the expected request
    /// count, used only to pre-size allocations (capacity never affects
    /// behaviour — the event queue and slabs key on insertion order).
    fn build(
        config: ArrayConfig,
        policy: P,
        feed: Feed<'a>,
        opts: RunOptions,
        trace_hint: usize,
    ) -> Self {
        let mut disks: Vec<Disk> = (0..config.disks)
            .map(|i| {
                Disk::new(
                    i,
                    &config.spec,
                    config.seed.wrapping_add(i as u64),
                    config.spec.top_level(),
                )
            })
            .collect();
        let remap = RemapTable::striped(&config);
        let stats = ArrayStats::new(config.spec.num_levels(), opts.series_bucket);
        let n = config.disks;
        let injector = opts.faults.as_ref().map(FaultInjector::new);
        let recorder = match opts.telemetry.clone() {
            Some(cfg) => telemetry::Recorder::new(cfg),
            None => telemetry::Recorder::disabled(),
        };
        let mut migrator = MigrationEngine::new(opts.migration_inflight);
        if recorder.is_enabled() {
            for d in &mut disks {
                d.set_transition_recording(true);
            }
            migrator.set_recording(true);
        }
        // Pre-size from the trace: the heap holds one arrival ahead plus
        // per-disk wakes (including superseded ones awaiting their pop),
        // and the in-flight maps hold only queued work — capped so a huge
        // trace does not balloon the warm-up allocation.
        let inflight_hint = (trace_hint / 8).clamp(64, 4096);
        let backend = if opts.reference_heap_queue {
            QueueBackend::ReferenceHeap
        } else {
            QueueBackend::Ladder
        };
        let dram = opts
            .cache
            .clone()
            .filter(cache::CacheConfig::is_enabled)
            .map(cache::DramCache::new);
        Simulation {
            state: ArrayState {
                config,
                disks,
                remap,
                migrator,
                stats,
                telemetry: recorder,
                wake_marks: WakeMarks::new(n),
            },
            policy,
            feed,
            opts,
            events: EventQueue::with_backend(backend, trace_hint.clamp(1024, 1 << 16)),
            scheduled: vec![None; n],
            gens: vec![0; n],
            gather: Slab::with_capacity(inflight_hint),
            pending: Slab::with_capacity(inflight_hint),
            live_parents: 0,
            last_sample_energy: 0.0,
            chunk_scratch: Vec::new(),
            piece_scratch: Vec::new(),
            dram,
            cache_stats: cache::CacheStats::default(),
            flush_scratch: Vec::new(),
            victim_scratch: Vec::new(),
            injector,
            outcome: FaultOutcome::default(),
            retries: IdMap::new(),
            last_hazard_check: SimTime::ZERO,
            events_processed: 0,
            rebuilds_drained: 0,
            started: false,
            last_power_w: 0.0,
            tenant_lat: Vec::new(),
        }
    }

    /// Runs the simulation to the horizon and returns the report.
    pub fn run(self) -> RunReport {
        self.run_returning_policy().0
    }

    /// Like [`Simulation::run`], but also hands the policy back so callers
    /// can inspect policy-internal state (hit ratios, boost counters, …).
    pub fn run_returning_policy(mut self) -> (RunReport, P) {
        let horizon = self.opts.horizon;
        self.start();
        self.step_until(horizon);
        self.finish()
    }

    /// Emits the stream header, runs the policy's `init`, and seeds the
    /// event queue. Idempotent: [`Simulation::step_until`] calls it before
    /// the first event, so explicit calls are only useful to drivers that
    /// want setup separated from stepping.
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        let t0 = SimTime::ZERO;
        let header = self
            .state
            .telemetry
            .config()
            .map(|cfg| telemetry::Event::RunStart {
                time_s: 0.0,
                label: cfg.label.clone(),
                disks: self.state.config.disks as u32,
                levels: self.state.config.spec.num_levels() as u32,
                horizon_s: self.opts.horizon.as_secs(),
                migration_inflight: self.opts.migration_inflight as u32,
                sample_interval_s: self.opts.sample_interval.as_secs(),
                series_bucket_s: self.opts.series_bucket.as_secs(),
                goal_s: cfg.goal_s,
                warmup_s: cfg.warmup_s,
                seed: self.state.config.seed,
            });
        if let Some(ev) = header {
            self.state.telemetry.emit(ev);
        }
        self.policy.init(t0, &mut self.state);
        self.state.wake_marks.mark_all();
        self.resync(t0);

        if let Some(t) = self.feed.peek_time() {
            self.events.push(t, Event::Arrival);
        }
        if let Some(int) = self.policy.tick_interval() {
            self.events.push(t0 + int, Event::Tick);
        }
        self.events
            .push(t0 + self.opts.sample_interval, Event::Sample);
        if let Some(dram) = &self.dram {
            let int = SimDuration::from_secs(dram.config().flush_interval_s);
            self.events.push(t0 + int, Event::Flush);
        }
        if let Some(t) = self.injector.as_ref().and_then(|i| i.next_event_time()) {
            self.events.push(t.max(t0), Event::Fault);
        }
    }

    /// Processes every event due at or before `limit` (never beyond the
    /// run horizon) and returns `true` while the run has more to do.
    /// Beyond-`limit` events stay queued rather than being popped and
    /// re-inserted, so stepping a run in segments — the fleet driver
    /// pauses every array at each arbiter epoch — processes the exact
    /// event sequence, with the exact FIFO tie-breaking, of an unpaused
    /// [`Simulation::run`]. Call [`Simulation::finish`] once stepping is
    /// done.
    pub fn step_until(&mut self, limit: SimTime) -> bool {
        self.start();
        while let Some(t) = self.events.peek_time() {
            if t > limit {
                return true;
            }
            let (now, ev) = self.events.pop().expect("peeked event present");
            if now > self.opts.horizon {
                return false;
            }
            self.events_processed += 1;
            self.dispatch(now, ev, limit);
        }
        false
    }

    /// Handles one popped event — the body of the main loop. `limit` is
    /// the stepping bound, forwarded so batched arrival admission never
    /// runs past the segment the caller asked for.
    fn dispatch(&mut self, now: SimTime, ev: Event, limit: SimTime) {
        match ev {
            Event::Arrival => self.handle_arrival(now, limit),
            Event::DiskWake(d, gen) => self.handle_disk_wake(now, d, gen),
            Event::Tick => {
                self.policy.on_tick(now, &mut self.state);
                // The tick hook may mutate any spindle directly.
                self.state.wake_marks.mark_all();
                self.pump_migration(now);
                if let Some(int) = self.policy.tick_interval() {
                    self.events.push(now + int, Event::Tick);
                }
                self.resync(now);
            }
            Event::Sample => {
                self.take_sample(now);
                self.events
                    .push(now + self.opts.sample_interval, Event::Sample);
            }
            Event::Flush => {
                self.flush_writeback(now, false);
                if let Some(dram) = &self.dram {
                    let int = SimDuration::from_secs(dram.config().flush_interval_s);
                    self.events.push(now + int, Event::Flush);
                }
                self.pump_migration(now);
                self.resync(now);
            }
            Event::Fault => self.handle_fault_due(now),
            Event::Retry(r) => self.handle_retry(now, r.disk, r.req),
        }
    }

    /// Forwards an external power cap to the policy (see
    /// [`PowerPolicy::set_power_cap`]). Callers stepping the run should
    /// invoke this between segments, never mid-event.
    pub fn set_power_cap(&mut self, cap_w: Option<f64>) {
        self.policy.set_power_cap(cap_w);
    }

    /// Mean array power over the most recent completed sampling interval,
    /// watts (0 before the first sample). This is the pre-computed
    /// observation from [`Self::take_sample`] — reading it accrues no
    /// energy, so observers cannot perturb the run's float stream.
    pub fn observed_power_w(&self) -> f64 {
        self.last_power_w
    }

    /// Volume requests completed so far.
    pub fn completed(&self) -> u64 {
        self.state.stats.fg_completed
    }

    /// Trace requests currently resident inside the simulation: the
    /// not-yet-delivered remainder of a borrowed trace
    /// ([`Simulation::new`]), or at most **one** buffered request for a
    /// streaming feed ([`Simulation::from_source`]) — the bounded-memory
    /// guarantee `tests/stream_equivalence.rs` asserts on a week-long run.
    pub fn feed_resident(&self) -> usize {
        self.feed.resident()
    }

    /// Mean foreground response so far, seconds.
    pub fn mean_response_s(&self) -> f64 {
        self.state.stats.response.mean()
    }

    /// Copies the per-tenant completed-request counts so far into `out`
    /// (cleared first; indexed by tenant id, length = one past the
    /// highest tenant seen). Only populated when
    /// [`RunOptions::tenant_sectors`] is set. Epoch-stepping drivers diff
    /// successive snapshots to attribute completions to fleet epochs; the
    /// call is allocation-free once `out` has reached capacity.
    pub fn tenant_completed_into(&self, out: &mut Vec<u64>) {
        out.clear();
        out.extend(self.tenant_lat.iter().map(LatencyHistogram::count));
    }

    // ------------------------------------------------------------------

    fn handle_arrival(&mut self, now: SimTime, limit: SimTime) {
        let mut now = now;
        loop {
            let req = self
                .feed
                .next_request()
                .expect("Arrival event with no request ready");
            // Reserve the next arrival's queue position before routing —
            // the exact point the unbatched path pushes it — so its packed
            // (time, seq) key, and with it FIFO tie-breaking against the
            // wakes resync schedules below, is bit-identical either way.
            let mut next = None;
            if let Some(t) = self.feed.peek_time() {
                if t <= self.opts.horizon {
                    next = Some((t, self.events.reserve_key(t)));
                }
            }
            self.route_volume_request(now, &req);
            self.pump_migration(now);
            self.resync(now);
            let Some((t, key)) = next else { return };
            // Batched admission: when the reserved key would be the very
            // next pop anyway — smaller than everything queued and due
            // within the stepping limit — handle the arrival inline and
            // skip the queue round-trip. `events_processed` counts it
            // exactly as a pop would, so reports stay identical.
            let pops_next = self.events.peek_key().is_none_or(|k| key < k);
            if pops_next && t <= limit && !self.opts.reference_heap_queue {
                self.events_processed += 1;
                now = t;
            } else {
                self.events.push_reserved(key, Event::Arrival);
                return;
            }
        }
    }

    /// Splits `req` at chunk boundaries and submits the per-disk pieces.
    fn route_volume_request(&mut self, now: SimTime, req: &VolumeRequest) {
        let cs = self.state.config.chunk_sectors;
        self.piece_scratch.clear();
        let mut sector = req.sector;
        let mut left = u64::from(req.sectors);
        while left > 0 {
            let chunk = ChunkId((sector / cs) as u32);
            let off = sector % cs;
            let take = left.min(cs - off);
            self.piece_scratch.push((chunk, off, take as u32));
            sector += take;
            left -= take;
        }

        // Controller DRAM layer: full read hits and writes are served
        // here without touching a spindle; a partial read hit filters
        // `piece_scratch` down to the missing pieces before routing.
        if self.dram.is_some() && self.try_dram_absorb(now, req) {
            return;
        }

        self.chunk_scratch.clear();
        self.chunk_scratch
            .extend(self.piece_scratch.iter().map(|p| p.0));
        let chunks = std::mem::take(&mut self.chunk_scratch);
        self.policy
            .on_volume_arrival(now, req, &chunks, &mut self.state);
        self.chunk_scratch = chunks;

        let parent = self.pending.insert(PendingVolume {
            remaining: self.piece_scratch.len() as u32,
            arrival: req.time,
            sectors: u64::from(req.sectors),
            tenant: self.tenant_of(req.sector),
            lost: false,
        });
        self.live_parents += 1;

        let kind = match req.kind {
            VolumeIoKind::Read => IoKind::Read,
            VolumeIoKind::Write => IoKind::Write,
        };
        // Index loop: the policy's route hook below needs `&mut self`, so
        // the scratch cannot stay borrowed across iterations.
        for i in 0..self.piece_scratch.len() {
            let (chunk, off, sectors) = self.piece_scratch[i];
            let place = self.state.remap.placement(chunk);
            let (target_disk, phys) =
                match self.policy.route(now, chunk, off, kind, &mut self.state) {
                    Some((disk, base)) => (disk, base + off),
                    None => (place.disk, u64::from(place.slot) * cs + off),
                };
            // Degraded mode: the chunk's home may be dead (its rebuild has
            // not committed yet). Serve from the surviving redundancy
            // partner, or count the volume lost if nothing survives.
            let target = if self.state.disks[target_disk.index()].has_failed() {
                match self.alive_partner(target_disk.index(), chunk) {
                    Some(p) => {
                        self.outcome.degraded_redirects += 1;
                        p
                    }
                    None => {
                        self.lose_parent(parent);
                        // This piece was never submitted: release its claim
                        // on the slot so the drain count stays honest.
                        self.release_piece(parent);
                        continue;
                    }
                }
            } else {
                target_disk.index()
            };
            let id = u64::from(self.gather.insert(parent));
            let sub = DiskRequest {
                id,
                sector: phys,
                sectors,
                kind,
                class: RequestClass::Foreground,
                issue_time: now,
            };
            self.state.disks[target].submit(now, sub);
            self.state.wake_marks.mark(target);

            if kind == IoKind::Write {
                self.state.migrator.note_foreground_write(chunk);
                if self.state.config.redundancy == Redundancy::Raid5Like {
                    // Parity partner: deterministic, never the data disk,
                    // skipping over dead disks.
                    if let Some(p) = self.alive_partner(place.disk.index(), chunk) {
                        // Gathered under NO_PARENT: parity does not gate
                        // response (write-back parity), but it does consume
                        // disk time and energy.
                        let pid = u64::from(self.gather.insert(NO_PARENT));
                        let parity = DiskRequest {
                            id: pid,
                            sector: phys,
                            sectors,
                            kind: IoKind::Write,
                            class: RequestClass::Foreground,
                            issue_time: now,
                        };
                        self.state.disks[p].submit(now, parity);
                        self.state.wake_marks.mark(p);
                    }
                }
            }
        }
    }

    /// Serves what the DRAM cache can of `req`. Returns `true` when the
    /// request is fully absorbed (read hit on every piece, or any write —
    /// the write-back buffer absorbs all writes and destages them later).
    /// On a partial read hit, `piece_scratch` is truncated to the missing
    /// pieces and the caller continues on the spindle path.
    fn try_dram_absorb(&mut self, now: SimTime, req: &VolumeRequest) -> bool {
        let Some(dram) = self.dram.as_mut() else {
            return false;
        };
        let hit_latency = dram.config().hit_latency_s;
        self.victim_scratch.clear();
        let absorbed = match req.kind {
            VolumeIoKind::Write => {
                for i in 0..self.piece_scratch.len() {
                    let chunk = self.piece_scratch[i].0;
                    // The chunk's on-disk copy is stale until the destage:
                    // abort any in-flight migration of it, exactly as a
                    // foreground write would.
                    self.state.migrator.note_foreground_write(chunk);
                    if let Some(victim) = dram.write(chunk.index() as u32) {
                        self.victim_scratch.push(victim);
                    }
                }
                self.cache_stats.write_absorbs += 1;
                true
            }
            VolumeIoKind::Read => {
                let mut kept = 0;
                for i in 0..self.piece_scratch.len() {
                    if !dram.lookup(self.piece_scratch[i].0.index() as u32) {
                        self.piece_scratch[kept] = self.piece_scratch[i];
                        kept += 1;
                    }
                }
                if kept == 0 {
                    self.cache_stats.read_hits += 1;
                    true
                } else {
                    self.piece_scratch.truncate(kept);
                    self.cache_stats.read_misses += 1;
                    self.state
                        .telemetry
                        .emit_with(|| telemetry::Event::CacheMiss {
                            time_s: now.as_secs(),
                            chunks: kept as u32,
                        });
                    // Promote the missed pieces so re-references hit.
                    for i in 0..kept {
                        let chunk = self.piece_scratch[i].0;
                        if let Some(victim) = dram.insert_clean(chunk.index() as u32) {
                            self.victim_scratch.push(victim);
                        }
                    }
                    false
                }
            }
        };
        if absorbed {
            // A DRAM-served request completes in-line at hit latency: it
            // counts as a completion in every response statistic, and the
            // CacheHit event stands in for RequestServed in the stream.
            self.state
                .stats
                .record_response(now, hit_latency, u64::from(req.sectors));
            let tenant = self.tenant_of(req.sector);
            self.record_tenant(tenant, hit_latency);
            self.state
                .telemetry
                .emit_with(|| telemetry::Event::CacheHit {
                    time_s: now.as_secs(),
                    latency_us: hit_latency * 1e6,
                    op: match req.kind {
                        VolumeIoKind::Read => telemetry::CacheOp::Read,
                        VolumeIoKind::Write => telemetry::CacheOp::Write,
                    },
                });
        }
        // Destage the dirty chunks that insertions squeezed out of their
        // sets — these reach the disks now, outside any flush batch.
        if !self.victim_scratch.is_empty() {
            let victims = std::mem::take(&mut self.victim_scratch);
            self.cache_stats.writebacks += victims.len() as u64;
            for &v in &victims {
                self.submit_deferred_write(now, ChunkId(v));
            }
            self.victim_scratch = victims;
            self.victim_scratch.clear();
        }
        // Absorbing writes without bound would defer unbounded disk work
        // past the horizon; a dirty cap forces an early flush.
        let over_cap = self
            .dram
            .as_ref()
            .is_some_and(|d| d.dirty_count() > d.config().max_dirty_chunks as usize);
        if over_cap {
            self.flush_writeback(now, true);
        }
        absorbed
    }

    /// Destages every dirty chunk in one batch: the periodic [`Event::Flush`]
    /// path, plus forced flushes when the dirty cap is exceeded. The batch
    /// is submitted in ascending chunk order so the event sequence is a
    /// pure function of the dirty set.
    fn flush_writeback(&mut self, now: SimTime, forced: bool) {
        let Some(dram) = self.dram.as_mut() else {
            return;
        };
        dram.drain_dirty(&mut self.flush_scratch);
        if self.flush_scratch.is_empty() {
            return;
        }
        self.cache_stats.flushes += 1;
        if forced {
            self.cache_stats.forced_flushes += 1;
        }
        self.cache_stats.flushed_chunks += self.flush_scratch.len() as u64;
        let chunks = std::mem::take(&mut self.flush_scratch);
        if self.state.telemetry.is_enabled() {
            let mut touched = vec![false; self.state.config.disks];
            for &c in &chunks {
                touched[self.state.remap.placement(ChunkId(c)).disk.index()] = true;
            }
            self.state.telemetry.emit(telemetry::Event::FlushBatch {
                time_s: now.as_secs(),
                chunks: chunks.len() as u32,
                disks: touched.iter().filter(|&&b| b).count() as u32,
                forced,
            });
        }
        for &c in &chunks {
            self.submit_deferred_write(now, ChunkId(c));
        }
        self.flush_scratch = chunks;
        self.flush_scratch.clear();
    }

    /// Submits one deferred chunk-sized write (flush destage or dirty
    /// eviction) to the spindle layer. Deferred writes take the same
    /// policy-visible path as foreground writes — the policy sees the
    /// arrival and may reroute it, per-disk arrival statistics feed the
    /// predictors, and a standby disk is woken — but, like parity writes,
    /// they gate no volume response and skip the gather map.
    fn submit_deferred_write(&mut self, now: SimTime, chunk: ChunkId) {
        let cs = self.state.config.chunk_sectors;
        let req = VolumeRequest {
            time: now,
            sector: chunk.index() as u64 * cs,
            sectors: cs as u32,
            kind: VolumeIoKind::Write,
        };
        self.chunk_scratch.clear();
        self.chunk_scratch.push(chunk);
        let chunks = std::mem::take(&mut self.chunk_scratch);
        self.policy
            .on_volume_arrival(now, &req, &chunks, &mut self.state);
        self.chunk_scratch = chunks;

        let place = self.state.remap.placement(chunk);
        let (target_disk, phys) =
            match self
                .policy
                .route(now, chunk, 0, IoKind::Write, &mut self.state)
            {
                Some((disk, base)) => (disk, base),
                None => (place.disk, u64::from(place.slot) * cs),
            };
        let target = if self.state.disks[target_disk.index()].has_failed() {
            match self.alive_partner(target_disk.index(), chunk) {
                Some(p) => {
                    self.outcome.degraded_redirects += 1;
                    p
                }
                // Nowhere alive to destage to: the write is dropped, like
                // any other foreground work stranded on a dead stripe.
                None => return,
            }
        } else {
            target_disk.index()
        };
        let id = u64::from(self.gather.insert(NO_PARENT));
        let sub = DiskRequest {
            id,
            sector: phys,
            sectors: cs as u32,
            kind: IoKind::Write,
            class: RequestClass::Foreground,
            issue_time: now,
        };
        self.state.disks[target].submit(now, sub);
        self.state.wake_marks.mark(target);
        self.state.migrator.note_foreground_write(chunk);
        if self.state.config.redundancy == Redundancy::Raid5Like {
            if let Some(p) = self.alive_partner(place.disk.index(), chunk) {
                let pid = u64::from(self.gather.insert(NO_PARENT));
                let parity = DiskRequest {
                    id: pid,
                    sector: phys,
                    sectors: cs as u32,
                    kind: IoKind::Write,
                    class: RequestClass::Foreground,
                    issue_time: now,
                };
                self.state.disks[p].submit(now, parity);
                self.state.wake_marks.mark(p);
            }
        }
    }

    /// The first live disk on `chunk`'s redundancy walk, starting at its
    /// deterministic parity partner and skipping dead disks and `d` itself.
    /// `None` without RAID-5-like redundancy or when nothing survives.
    fn alive_partner(&self, d: usize, chunk: ChunkId) -> Option<usize> {
        let n = self.state.config.disks;
        if self.state.config.redundancy != Redundancy::Raid5Like || n < 2 {
            return None;
        }
        let base = (d + 1 + chunk.index() % (n - 1)) % n;
        (0..n)
            .map(|k| (base + k) % n)
            .find(|&p| p != d && !self.state.disks[p].has_failed())
    }

    /// Abandons volume `parent`: its response can never be recorded.
    /// Counted once per volume. The slot itself is freed only when the
    /// last in-flight sibling piece dies (see [`Self::release_piece`] and
    /// the drain in [`Self::complete_foreground`]), so a completion racing
    /// the loss can never observe a recycled slot.
    fn lose_parent(&mut self, parent: u32) {
        if let Some(p) = self.pending.get_mut(parent) {
            if !p.lost {
                p.lost = true;
                self.live_parents -= 1;
                self.outcome.lost_requests += 1;
            }
        }
    }

    /// Releases one piece's claim on `parent` without completing it — the
    /// piece died (dropped on a dead stripe, exhausted its retries, or was
    /// never submitted at all). The last claim frees the slot.
    fn release_piece(&mut self, parent: u32) {
        if let Some(p) = self.pending.get_mut(parent) {
            p.remaining -= 1;
            if p.remaining == 0 {
                self.pending.remove(parent);
            }
        }
    }

    fn handle_disk_wake(&mut self, now: SimTime, d: usize, gen: u64) {
        if self.gens[d] != gen {
            return; // superseded
        }
        let completion = self.state.disks[d].poll_event(now);
        self.state.wake_marks.mark(d);
        if let Some(comp) = completion {
            match comp.request.class {
                RequestClass::Migration => {
                    let follow =
                        self.state
                            .migrator
                            .on_completion(now, &comp, &mut self.state.remap);
                    for (disk, req) in follow {
                        self.state.disks[disk.index()].submit(now, req);
                        self.state.wake_marks.mark(disk.index());
                    }
                }
                RequestClass::Foreground => {
                    // Transient-error model: the completion may come back
                    // bad and need a retry (bounded, with linear backoff).
                    let mut retried = false;
                    if let Some(inj) = self.injector.as_mut() {
                        if inj.transient_error(now, comp.disk) {
                            self.outcome.transient_errors += 1;
                            let attempts = self.retries.get_or_insert_with(comp.request.id, || 0);
                            let cfg = inj.config();
                            if *attempts < cfg.max_retries {
                                *attempts += 1;
                                let delay = f64::from(*attempts) * cfg.retry_backoff_s;
                                self.outcome.retries += 1;
                                self.events.push(
                                    now + SimDuration::from_secs(delay),
                                    Event::Retry(Box::new(RetryPayload {
                                        disk: comp.disk,
                                        req: comp.request,
                                    })),
                                );
                            } else {
                                // Retries exhausted: the piece is lost.
                                self.retries.remove(comp.request.id);
                                if let Some(parent) = self.gather.remove(comp.request.id as u32) {
                                    if parent != NO_PARENT {
                                        self.lose_parent(parent);
                                        self.release_piece(parent);
                                    }
                                }
                            }
                            retried = true;
                        } else {
                            self.retries.remove(comp.request.id);
                        }
                    }
                    if !retried {
                        self.complete_foreground(now, &comp);
                    }
                }
            }
        }
        self.pump_migration(now);
        self.note_rebuild_progress(now);
        self.resync(now);
    }

    /// Books a good foreground completion: service stats, volume gather,
    /// telemetry, and the policy's completion hook.
    fn complete_foreground(&mut self, now: SimTime, comp: &diskmodel::Completion) {
        self.state.stats.service.record(comp.service_s);
        let volume_response = self
            .gather
            .remove(comp.request.id as u32)
            .and_then(|parent| {
                // Parity and deferred cache writes consume disk time but
                // gate no volume response.
                if parent == NO_PARENT {
                    return None;
                }
                let done = {
                    let p = self
                        .pending
                        .get_mut(parent)
                        .expect("parent slot lives until its last piece dies");
                    p.remaining -= 1;
                    p.remaining == 0
                };
                if !done {
                    return None;
                }
                let p = self.pending.remove(parent).expect("checked live above");
                // A lost volume (disk failure with no surviving replica, or
                // an exhausted retry on a sibling piece) still drains its
                // in-flight pieces; only the drain frees the slot, and no
                // response is ever recorded for it.
                if p.lost {
                    return None;
                }
                self.live_parents -= 1;
                let resp = now.saturating_since(p.arrival).as_secs();
                self.state.stats.record_response(now, resp, p.sectors);
                self.record_tenant(p.tenant, resp);
                Some(resp)
            });
        if let Some(resp) = volume_response {
            if self.state.telemetry.is_enabled() {
                let disk = &self.state.disks[comp.disk];
                let tier = if disk.is_standby() {
                    telemetry::STANDBY
                } else {
                    disk.effective_level().index() as telemetry::Tier
                };
                self.state.telemetry.emit(telemetry::Event::RequestServed {
                    time_s: now.as_secs(),
                    latency_us: resp * 1e6,
                    disk: comp.disk as u32,
                    tier,
                });
            }
        }
        self.policy
            .on_completion(now, comp, volume_response, &mut self.state);
    }

    fn pump_migration(&mut self, now: SimTime) {
        let reqs = self.state.migrator.pump(now, &mut self.state.remap);
        for (disk, req) in reqs {
            self.state.disks[disk.index()].submit(now, req);
            self.state.wake_marks.mark(disk.index());
        }
    }

    /// Applies every scripted fault due at `now`, then schedules the next.
    fn handle_fault_due(&mut self, now: SimTime) {
        let Some(inj) = self.injector.as_mut() else {
            return;
        };
        let due = inj.pop_due(now);
        for ev in due {
            // Disk failures are tagged inside `fail_disk` (which also
            // covers hazard-model failures); tag the window faults here.
            if !matches!(ev.kind, FaultKind::DiskFailure) {
                self.state
                    .telemetry
                    .emit_with(|| telemetry::Event::FaultInjected {
                        time_s: now.as_secs(),
                        disk: ev.disk as u32,
                        kind: ev.kind.label(),
                    });
            }
            match ev.kind {
                FaultKind::TransientBurst {
                    error_prob,
                    duration_s,
                } => {
                    let until = ev.time + SimDuration::from_secs(duration_s);
                    self.injector
                        .as_mut()
                        .expect("injector present")
                        .note_burst(ev.disk, error_prob, until);
                }
                FaultKind::SlowTransition { factor, duration_s } => {
                    let until = ev.time + SimDuration::from_secs(duration_s);
                    self.state.disks[ev.disk].set_slow_transitions(factor, until);
                    self.state.wake_marks.mark(ev.disk);
                }
                FaultKind::DiskFailure => self.fail_disk(now, ev.disk),
            }
        }
        if let Some(t) = self.injector.as_ref().and_then(|i| i.next_event_time()) {
            self.events.push(t.max(now), Event::Fault);
        }
        self.pump_migration(now);
        self.note_rebuild_progress(now);
        self.resync(now);
    }

    /// Whole-disk failure: drain the disk, tear down and re-target
    /// migrations, redirect or lose stranded foreground work, queue rebuild
    /// traffic for every chunk that lived there, then let the policy adapt.
    fn fail_disk(&mut self, now: SimTime, d: usize) {
        if self.state.disks[d].has_failed() {
            return;
        }
        self.outcome.disk_failures += 1;
        if self.outcome.first_failure_s.is_none() {
            self.outcome.first_failure_s = Some(now.as_secs());
        }
        self.state
            .telemetry
            .emit_with(|| telemetry::Event::FaultInjected {
                time_s: now.as_secs(),
                disk: d as u32,
                kind: "disk_failure",
            });

        let dropped = self.state.disks[d].fail(now);
        let retarget = self
            .state
            .migrator
            .note_disk_failed(now, DiskId(d), &mut self.state.remap);

        // Stranded foreground requests: re-aim at the surviving redundancy
        // partner (the request id survives, so the volume gather still
        // works), or count the volume lost.
        let cs = self.state.remap.chunk_sectors();
        for req in dropped {
            if req.class != RequestClass::Foreground {
                continue; // migration pieces were handled by the engine
            }
            let Some(&parent) = self.gather.get(req.id as u32) else {
                continue;
            };
            if parent == NO_PARENT {
                // Parity or deferred write: consumed load only, nothing
                // gates on it — free its slot and drop it. (Stale retry
                // attempts die with the id: slots recycle.)
                self.gather.remove(req.id as u32);
                self.retries.remove(req.id);
                continue;
            }
            let slot = (req.sector / cs) as u32;
            let partner = self
                .state
                .remap
                .chunk_at(DiskId(d), slot)
                .and_then(|chunk| self.alive_partner(d, chunk));
            match partner {
                Some(p) => {
                    self.outcome.degraded_redirects += 1;
                    self.state.disks[p].submit(now, req);
                }
                None => {
                    self.gather.remove(req.id as u32);
                    self.retries.remove(req.id);
                    self.lose_parent(parent);
                    self.release_piece(parent);
                }
            }
        }

        // Every chunk whose home just died needs a new one, rebuilt from
        // its surviving partner. Re-targeted jobs from the engine join the
        // same queue with fresh src/dst choices.
        let mut rebuilds = Vec::new();
        for chunk in self.state.remap.chunks_on(DiskId(d)) {
            if let Some(job) = self.plan_rebuild(chunk, d) {
                rebuilds.push(job);
            }
        }
        for job in retarget {
            if let MigrationJob::Rebuild { chunk, .. } = job {
                let home = self.state.remap.disk_of(chunk).index();
                if let Some(j) = self.plan_rebuild(chunk, home) {
                    rebuilds.push(j);
                }
            }
        }
        self.outcome.rebuild_chunks += rebuilds.len() as u64;
        self.state.migrator.enqueue_rebuild(rebuilds);

        self.policy.on_disk_failure(now, d, &mut self.state);
        // A failure touches the dead disk, redirect targets, and whatever
        // the policy just re-planned; failures are rare, so mark everything.
        self.state.wake_marks.mark_all();
    }

    /// Chooses src (surviving redundancy partner) and dst (least-occupied
    /// live disk) for rebuilding `chunk`, whose home `home` is dead.
    fn plan_rebuild(&self, chunk: ChunkId, home: usize) -> Option<MigrationJob> {
        let src = self.alive_partner(home, chunk)?;
        let dst = (0..self.state.disks.len())
            .filter(|&p| p != home && !self.state.disks[p].has_failed())
            .filter(|&p| self.state.remap.has_free_slot(DiskId(p)))
            .min_by_key(|&p| self.state.remap.occupancy(DiskId(p)))?;
        Some(MigrationJob::Rebuild {
            chunk,
            src: DiskId(src),
            dst: DiskId(dst),
        })
    }

    /// Marks the instant the rebuild backlog drains. Re-arms whenever a
    /// later failure queues more rebuilds, so the recorded time is always
    /// the commit of the *last* queued rebuild.
    fn note_rebuild_progress(&mut self, now: SimTime) {
        if self.outcome.rebuild_chunks > self.rebuilds_drained
            && self.state.migrator.rebuild_outstanding() == 0
        {
            self.outcome.rebuild_completed_s = Some(now.as_secs());
            self.rebuilds_drained = self.outcome.rebuild_chunks;
        }
    }

    /// Re-submits a transiently failed request, re-aiming it if its disk
    /// died while the retry was waiting.
    fn handle_retry(&mut self, now: SimTime, disk: usize, req: DiskRequest) {
        if self.state.disks[disk].has_failed() {
            let cs = self.state.remap.chunk_sectors();
            let slot = (req.sector / cs) as u32;
            let partner = self
                .state
                .remap
                .chunk_at(DiskId(disk), slot)
                .and_then(|chunk| self.alive_partner(disk, chunk));
            match partner {
                Some(p) => {
                    self.outcome.degraded_redirects += 1;
                    self.state.disks[p].submit(now, req);
                    self.state.wake_marks.mark(p);
                }
                None => {
                    self.retries.remove(req.id);
                    if let Some(parent) = self.gather.remove(req.id as u32) {
                        if parent != NO_PARENT {
                            self.lose_parent(parent);
                            self.release_piece(parent);
                        }
                    }
                }
            }
        } else {
            self.state.disks[disk].submit(now, req);
            self.state.wake_marks.mark(disk);
        }
        self.resync(now);
    }

    fn take_sample(&mut self, now: SimTime) {
        let total = self.state.total_energy(now).total_joules();
        let dt = self.opts.sample_interval.as_secs();
        let watts = (total - self.last_sample_energy) / dt;
        self.last_sample_energy = total;
        self.last_power_w = watts;
        let counts = self.state.level_counts();
        self.state.stats.record_power_sample(now, watts, &counts);
        if self.state.telemetry.is_enabled() {
            self.state.telemetry.emit(telemetry::Event::PowerSample {
                time_s: now.as_secs(),
                watts,
            });
            for i in 0..self.state.disks.len() {
                let depth = self.state.disks[i].queue_len() as f64;
                self.state.telemetry.record_queue_depth(depth);
            }
        }

        // Online wear-scaled failure hazard, evaluated at sampling cadence
        // over each disk's up-to-date ledger.
        let failures = match self.injector.as_mut() {
            Some(inj) if inj.config().base_failure_rate_per_hour > 0.0 => {
                let ledgers: Vec<ReliabilityLedger> = self
                    .state
                    .disks
                    .iter_mut()
                    .map(|d| d.reliability(now))
                    .collect();
                inj.hazard_failures(self.last_hazard_check, now, &ledgers)
            }
            _ => Vec::new(),
        };
        self.last_hazard_check = now;
        if !failures.is_empty() {
            for d in failures {
                self.fail_disk(now, d);
            }
            self.pump_migration(now);
            self.resync(now);
        }
    }

    /// The tenant owning `sector` under the run's tenant sharding (0 when
    /// tenant accounting is off).
    #[inline]
    fn tenant_of(&self, sector: u64) -> u32 {
        match self.opts.tenant_sectors {
            Some(ts) if ts > 0 => (sector / ts) as u32,
            _ => 0,
        }
    }

    /// Books one completed response into its tenant's histogram. No-op
    /// without tenant sharding; histograms grow on first touch so sparse
    /// tenant ids cost only the slots up to the hottest one seen.
    #[inline]
    fn record_tenant(&mut self, tenant: u32, resp_s: f64) {
        if self.opts.tenant_sectors.is_none() {
            return;
        }
        let ix = tenant as usize;
        if self.tenant_lat.len() <= ix {
            self.tenant_lat
                .resize_with(ix + 1, LatencyHistogram::new_latency);
        }
        self.tenant_lat[ix].record(resp_s);
    }

    /// Re-synchronises scheduled disk wakes.
    ///
    /// Incremental by default: only disks marked dirty since the last
    /// resync are visited, in ascending index order. A disk whose wake
    /// actually changed is always a subset of the marked disks (handlers
    /// mark every disk they touch; unchanged marked disks are no-ops), and
    /// index order matches the full scan — so the push sequence into the
    /// event queue, and with it FIFO tie-breaking among same-time wakes,
    /// is bit-identical to [`RunOptions::reference_full_resync`]. Debug
    /// builds verify the subset property after every drain.
    fn resync(&mut self, now: SimTime) {
        if self.opts.reference_full_resync {
            for d in 0..self.state.disks.len() {
                self.resync_disk(d, now);
            }
            // Stale marks must not leak into later resyncs if the flag
            // were ever toggled mid-run; draining keeps the set empty.
            let mut marks = std::mem::take(&mut self.state.wake_marks);
            marks.drain_sorted(|_| {});
            self.state.wake_marks = marks;
        } else {
            let mut marks = std::mem::take(&mut self.state.wake_marks);
            marks.drain_sorted(|d| self.resync_disk(d, now));
            self.state.wake_marks = marks;
            #[cfg(debug_assertions)]
            self.assert_wakes_synced();
        }
        self.drain_instrument_logs();
    }

    /// Refreshes one disk's scheduled wake if its next event time moved.
    #[inline]
    fn resync_disk(&mut self, d: usize, now: SimTime) {
        let t = self.state.disks[d].next_event_time();
        if t != self.scheduled[d] {
            self.scheduled[d] = t;
            self.gens[d] += 1;
            if let Some(t) = t {
                self.events
                    .push(t.max(now), Event::DiskWake(d, self.gens[d]));
            }
        }
    }

    /// Debug cross-check: after an incremental resync, no disk may have a
    /// wake time differing from its scheduled one — that would mean a
    /// handler mutated a disk without marking it.
    #[cfg(debug_assertions)]
    fn assert_wakes_synced(&self) {
        for d in 0..self.state.disks.len() {
            assert_eq!(
                self.state.disks[d].next_event_time(),
                self.scheduled[d],
                "dirty-disk tracking missed disk {d}: a handler changed its state without \
                 marking it (per-event policy hooks must use ArrayState::request_speed)"
            );
        }
    }

    /// Forwards instrument-local logs (per-disk transition records, then
    /// migration lifecycle records, in disk-index/engine order) into the
    /// telemetry stream. Every driver handler ends in [`Self::resync`],
    /// which calls this, so the logs only ever hold records stamped with
    /// the current event time — the stream stays time-ordered. No-op (one
    /// branch) when telemetry is disabled.
    fn drain_instrument_logs(&mut self) {
        if !self.state.telemetry.is_enabled() {
            return;
        }
        use crate::migration::MigrationRecordKind as MK;
        use diskmodel::TransitionCause;
        for d in 0..self.state.disks.len() {
            for r in self.state.disks[d].drain_transitions() {
                self.state
                    .telemetry
                    .emit(telemetry::Event::SpeedTransition {
                        time_s: r.time_s,
                        disk: d as u32,
                        from: r.from,
                        to: r.to,
                        reason: match r.cause {
                            TransitionCause::Policy => telemetry::TransitionReason::Policy,
                            TransitionCause::DemandWake => telemetry::TransitionReason::DemandWake,
                            TransitionCause::Latched => telemetry::TransitionReason::Latched,
                        },
                        stretched: r.stretched,
                    });
            }
        }
        for r in self.state.migrator.drain_records() {
            let ev = match r.kind {
                MK::Started { chunk, src, dst } => telemetry::Event::MigrationStarted {
                    time_s: r.time_s,
                    job: r.job,
                    chunk,
                    src,
                    dst,
                },
                MK::Moved {
                    chunk,
                    src,
                    dst,
                    bytes,
                    kind,
                } => telemetry::Event::MigrationMoved {
                    time_s: r.time_s,
                    job: r.job,
                    chunk,
                    src,
                    dst,
                    bytes,
                    kind,
                },
                MK::Aborted { chunk } => telemetry::Event::MigrationAborted {
                    time_s: r.time_s,
                    job: r.job,
                    chunk,
                },
                MK::Dropped { chunk } => telemetry::Event::MigrationDropped {
                    time_s: r.time_s,
                    job: r.job,
                    chunk,
                },
            };
            self.state.telemetry.emit(ev);
        }
    }

    /// Accrues energy to the horizon, closes the telemetry stream, and
    /// produces the report. The terminal half of
    /// [`Simulation::run_returning_policy`]; drivers using
    /// [`Simulation::step_until`] call it once stepping is done.
    pub fn finish(mut self) -> (RunReport, P) {
        let horizon = self.opts.horizon;
        self.drain_instrument_logs();
        let per_disk_energy: Vec<EnergyLedger> = self
            .state
            .disks
            .iter_mut()
            .map(|d| d.energy(horizon))
            .collect();
        let mut energy = EnergyLedger::new();
        for e in &per_disk_energy {
            energy.merge(e);
        }
        let transitions = self.state.disks.iter().map(|d| d.stats().transitions).sum();
        let reliability: Vec<ReliabilityLedger> = self
            .state
            .disks
            .iter_mut()
            .map(|d| d.reliability(horizon))
            .collect();
        self.outcome.slow_transition_events = self
            .state
            .disks
            .iter()
            .map(|d| d.stats().slow_transitions)
            .sum();

        // Close out the telemetry stream: per-disk summaries, then the
        // whole-run trailer the auditor reconciles everything against.
        let mut recorder = std::mem::take(&mut self.state.telemetry);
        if recorder.is_enabled() {
            let t = horizon.as_secs();
            let components = |e: &EnergyLedger| {
                let mut out = [0.0f64; 6];
                for (k, c) in simkit::EnergyComponent::ALL.iter().enumerate() {
                    out[k] = e.joules(*c);
                }
                out
            };
            if self.dram.is_some() {
                let cs = self.cache_stats;
                recorder.emit(telemetry::Event::CacheSummary {
                    time_s: t,
                    read_hits: cs.read_hits,
                    read_misses: cs.read_misses,
                    write_absorbs: cs.write_absorbs,
                    writebacks: cs.writebacks,
                    flushes: cs.flushes,
                    flushed_chunks: cs.flushed_chunks,
                });
            }
            for (i, e) in per_disk_energy.iter().enumerate() {
                recorder.emit(telemetry::Event::DiskSummary {
                    time_s: t,
                    disk: i as u32,
                    energy_j: components(e),
                    transitions: self.state.disks[i].stats().transitions,
                    failed_at_s: reliability[i].failed_at_s,
                });
            }
            let (goal_s, warmup_s) = recorder
                .config()
                .map(|c| (c.goal_s, c.warmup_s))
                .expect("enabled recorder has a config");
            // Recompute the goal-violation fraction exactly as the
            // experiment harness does (see repro's `violation_fraction`):
            // a bucket counts only if it lies entirely past the warm-up.
            let series = &self.state.stats.response_series;
            let half_width = series.bucket_width().as_secs() / 2.0;
            let (mut kept, mut over) = (0u64, 0u64);
            for (mid, mean) in series.mean_points() {
                if mid - half_width < warmup_s {
                    continue;
                }
                kept += 1;
                if mean > goal_s {
                    over += 1;
                }
            }
            let violation = if kept == 0 {
                0.0
            } else {
                over as f64 / kept as f64
            };
            let (latency_hist, latency_overflow) = recorder
                .latency_hist()
                .map(|h| (h.counts().to_vec(), h.overflow()))
                .unwrap_or_default();
            let (queue_hist, queue_overflow) = recorder
                .queue_hist()
                .map(|h| (h.counts().to_vec(), h.overflow()))
                .unwrap_or_default();
            let mig = self.state.migrator.stats();
            recorder.emit(telemetry::Event::RunSummary {
                time_s: t,
                total_j: energy.total_joules(),
                energy_j: components(&energy),
                completed: self.state.stats.fg_completed,
                incomplete: self.live_parents,
                transitions,
                mean_response_s: self.state.stats.response.mean(),
                violation,
                latency_hist,
                latency_overflow,
                queue_hist,
                queue_overflow,
                moved: mig.committed + mig.rebuilt + mig.raw_writes,
                remap_version: self.state.remap.version(),
                dropped: recorder.dropped(),
            });
        }

        let stats = self.state.stats;
        let policy = self.policy;
        let report = RunReport {
            policy: policy.name().to_string(),
            energy,
            per_disk_energy,
            response: stats.response,
            service: stats.service,
            response_hist: stats.response_hist,
            response_series: stats.response_series,
            power_series: stats.power_series,
            level_series: stats.level_series,
            completed: stats.fg_completed,
            incomplete: self.live_parents,
            fg_sectors: stats.fg_sectors,
            migration: self.state.migrator.stats(),
            transitions,
            reliability,
            faults: self.outcome,
            horizon,
            events_processed: self.events_processed,
            cache: self.dram.is_some().then_some(self.cache_stats),
            telemetry: recorder.into_stream(),
            tenant_latency: self.tenant_lat,
        };
        (report, policy)
    }
}

/// Convenience wrapper: build and run in one call.
///
/// # Examples
/// ```
/// use array::{run_policy, ArrayConfig, BasePolicy, RunOptions};
/// use workload::WorkloadSpec;
///
/// let trace = WorkloadSpec::oltp(30.0, 10.0).generate(1);
/// let config = ArrayConfig::default_for_volume(16 << 30);
/// let report = run_policy(config, BasePolicy, &trace, RunOptions::for_horizon(60.0));
/// assert_eq!(report.completed as usize, trace.len());
/// assert!(report.energy.total_joules() > 0.0);
/// ```
pub fn run_policy<P: PowerPolicy + Send>(
    config: ArrayConfig,
    policy: P,
    trace: &Trace,
    opts: RunOptions,
) -> RunReport {
    Simulation::new(config, policy, trace, opts).run()
}

/// Like [`run_policy`], but fed by a streaming [`TraceSource`]: trace
/// memory stays O(1) however long the horizon. Bit-identical to
/// [`run_policy`] over a source yielding the same requests.
///
/// # Examples
/// ```
/// use array::{run_policy, run_policy_streamed, ArrayConfig, BasePolicy, RunOptions};
/// use workload::WorkloadSpec;
///
/// let spec = WorkloadSpec::oltp(30.0, 10.0);
/// let config = ArrayConfig::default_for_volume(16 << 30);
/// let streamed = run_policy_streamed(
///     config.clone(),
///     BasePolicy,
///     spec.stream(1),
///     RunOptions::for_horizon(60.0),
/// );
/// let trace = spec.generate(1);
/// let batch = run_policy(config, BasePolicy, &trace, RunOptions::for_horizon(60.0));
/// assert_eq!(streamed.completed, batch.completed);
/// ```
pub fn run_policy_streamed<P: PowerPolicy + Send>(
    config: ArrayConfig,
    policy: P,
    source: impl TraceSource,
    opts: RunOptions,
) -> RunReport {
    Simulation::from_source(config, policy, source, opts).run()
}

// The parallel experiment harness farms runs out to worker threads and
// shares the inputs/outputs across them: `run_policy` is the entry point
// it calls from workers (hence `P: Send` above), traces are shared
// read-only, and reports are published behind `Arc`. Keep these
// compile-time proofs next to the entry point so a field that silently
// loses thread-safety fails here, not in the harness.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<RunReport>();
    assert_send_sync::<Trace>();
    assert_send_sync::<RunOptions>();
    assert_send_sync::<ArrayConfig>();
    // The fleet driver moves whole paused simulations into Pool workers
    // (one segment per arbiter epoch), so the driver itself must be Send.
    const fn assert_send<T: Send>() {}
    assert_send::<Simulation<'static, crate::policy::BasePolicy>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::BasePolicy;
    use crate::MigrationJob;
    use diskmodel::{PowerModel, SpeedLevel, SpinTarget};
    use workload::WorkloadSpec;

    fn small_config() -> ArrayConfig {
        let mut c = ArrayConfig::default_for_volume(1 << 30); // 1 GiB volume
        c.disks = 4;
        c
    }

    fn small_trace(duration: f64, rate: f64) -> Trace {
        let mut spec = WorkloadSpec::oltp(duration, rate);
        spec.extents = 1000;
        spec.extent_sectors = 2048; // ~1 GiB footprint
        spec.generate(1)
    }

    #[test]
    fn base_policy_completes_everything() {
        let trace = small_trace(60.0, 20.0);
        let n = trace.len() as u64;
        let report = run_policy(
            small_config(),
            BasePolicy,
            &trace,
            RunOptions::for_horizon(120.0),
        );
        assert_eq!(report.completed, n);
        assert_eq!(report.incomplete, 0);
        assert!(report.response.mean() > 0.0);
        assert!(
            report.response.mean() < 0.1,
            "mean {} s",
            report.response.mean()
        );
    }

    #[test]
    fn energy_close_to_idle_analytic_at_light_load() {
        let trace = small_trace(60.0, 1.0);
        let report = run_policy(
            small_config(),
            BasePolicy,
            &trace,
            RunOptions::for_horizon(600.0),
        );
        let pm = PowerModel::new(&small_config().spec);
        let idle = pm.idle_w(SpeedLevel(5)) * 600.0 * 4.0;
        let total = report.energy.total_joules();
        assert!(total >= idle, "must include service energy");
        assert!(total < idle * 1.05, "total {total} idle {idle}");
    }

    #[test]
    fn deterministic_runs() {
        let trace = small_trace(30.0, 50.0);
        let run = || {
            let r = run_policy(
                small_config(),
                BasePolicy,
                &trace,
                RunOptions::for_horizon(60.0),
            );
            (
                r.completed,
                r.energy.total_joules(),
                r.response.mean(),
                r.response.raw_second_moment(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn chunk_spanning_requests_touch_two_disks() {
        let mut config = small_config();
        config.volume_chunks = 8;
        // One request straddling the chunk 0 / chunk 1 boundary.
        let trace = Trace::from_requests(vec![workload::VolumeRequest {
            time: SimTime::from_secs(1.0),
            sector: config.chunk_sectors - 8,
            sectors: 16,
            kind: VolumeIoKind::Read,
        }]);
        let report = run_policy(config, BasePolicy, &trace, RunOptions::for_horizon(10.0));
        assert_eq!(report.completed, 1);
        assert_eq!(report.fg_sectors, 16);
    }

    #[test]
    fn raid5_writes_add_parity_load() {
        let mk_trace = || {
            Trace::from_requests(
                (0..100)
                    .map(|i| workload::VolumeRequest {
                        time: SimTime::from_secs(0.1 * i as f64),
                        sector: (i * 4096) % 2_000_000,
                        sectors: 16,
                        kind: VolumeIoKind::Write,
                    })
                    .collect(),
            )
        };
        let mut plain_cfg = small_config();
        plain_cfg.redundancy = Redundancy::None;
        let plain = run_policy(
            plain_cfg,
            BasePolicy,
            &mk_trace(),
            RunOptions::for_horizon(30.0),
        );
        let mut raid_cfg = small_config();
        raid_cfg.redundancy = Redundancy::Raid5Like;
        let raid = run_policy(
            raid_cfg,
            BasePolicy,
            &mk_trace(),
            RunOptions::for_horizon(30.0),
        );
        // Parity doubles the write traffic's energy footprint at the disks.
        let seek_xfer = |r: &RunReport| {
            r.energy.joules(simkit::EnergyComponent::Seek)
                + r.energy.joules(simkit::EnergyComponent::Transfer)
        };
        assert!(
            seek_xfer(&raid) > seek_xfer(&plain) * 1.6,
            "raid {} plain {}",
            seek_xfer(&raid),
            seek_xfer(&plain)
        );
        // But response time (write-back parity) is not doubled.
        assert!(raid.response.mean() < plain.response.mean() * 2.0);
    }

    #[test]
    fn sample_series_cover_horizon() {
        let trace = small_trace(120.0, 10.0);
        let report = run_policy(
            small_config(),
            BasePolicy,
            &trace,
            RunOptions::for_horizon(300.0),
        );
        let pts = report.power_series.mean_points();
        assert!(pts.len() >= 4, "power series too sparse: {}", pts.len());
        // All disks at top level throughout.
        let top = &report.level_series[5];
        for (_, v) in top.mean_points() {
            assert_eq!(v, 4.0);
        }
    }

    /// A throwaway policy that spins half the array down at init and
    /// requests one migration.
    struct HalfDown;
    impl PowerPolicy for HalfDown {
        fn name(&self) -> &str {
            "HalfDown"
        }
        fn init(&mut self, now: SimTime, state: &mut ArrayState) {
            let n = state.disks.len();
            for d in 0..n / 2 {
                state.disks[d].request_speed(now, SpinTarget::Level(SpeedLevel(0)));
            }
            state.migrator.enqueue([MigrationJob::Relocate {
                chunk: ChunkId(0),
                dst: DiskId(n - 1),
            }]);
        }
        fn tick_interval(&self) -> Option<SimDuration> {
            Some(SimDuration::from_secs(10.0))
        }
    }

    #[test]
    fn policy_speed_changes_and_migration_execute() {
        let trace = small_trace(60.0, 5.0);
        let config = small_config();
        let mut sim = Simulation::new(config, HalfDown, &trace, RunOptions::for_horizon(120.0));
        sim.policy.init(SimTime::ZERO, &mut sim.state); // warm check only
        let report = run_policy(
            small_config(),
            HalfDown,
            &trace,
            RunOptions::for_horizon(120.0),
        );
        assert!(report.migration.committed >= 1, "migration must commit");
        assert!(
            report.energy.joules(simkit::EnergyComponent::Migration) > 0.0,
            "migration energy must be attributed"
        );
        assert!(report.transitions >= 2);
        // Energy lower than all-full-speed baseline.
        let base = run_policy(
            small_config(),
            BasePolicy,
            &trace,
            RunOptions::for_horizon(120.0),
        );
        assert!(report.energy.total_joules() < base.energy.total_joules());
        assert_eq!(report.completed, base.completed);
    }

    #[test]
    fn response_degrades_at_lower_speed() {
        struct AllSlow;
        impl PowerPolicy for AllSlow {
            fn name(&self) -> &str {
                "AllSlow"
            }
            fn init(&mut self, now: SimTime, state: &mut ArrayState) {
                for d in &mut state.disks {
                    d.request_speed(now, SpinTarget::Level(SpeedLevel(0)));
                }
            }
        }
        let trace = small_trace(120.0, 20.0);
        let slow = run_policy(
            small_config(),
            AllSlow,
            &trace,
            RunOptions::for_horizon(240.0),
        );
        let fast = run_policy(
            small_config(),
            BasePolicy,
            &trace,
            RunOptions::for_horizon(240.0),
        );
        assert!(
            slow.response.mean() > fast.response.mean() * 1.3,
            "slow {} fast {}",
            slow.response.mean(),
            fast.response.mean()
        );
        assert!(slow.energy.total_joules() < fast.energy.total_joules());
    }

    #[test]
    fn horizon_truncates_cleanly() {
        let trace = small_trace(600.0, 20.0);
        let report = run_policy(
            small_config(),
            BasePolicy,
            &trace,
            RunOptions::for_horizon(60.0),
        );
        let expected: u64 = trace
            .requests
            .iter()
            .filter(|r| r.time.as_secs() < 59.0)
            .count() as u64;
        assert!(report.completed >= expected.saturating_sub(5));
        assert!(report.horizon == SimTime::from_secs(60.0));
    }

    #[test]
    fn dram_cache_serves_repeat_reads_and_destages_writes() {
        // Ten reads of one chunk, then a write to it: the first read
        // misses and promotes, the rest hit; the write is absorbed and a
        // later flush destages it.
        let mut reqs: Vec<workload::VolumeRequest> = (0..10)
            .map(|i| workload::VolumeRequest {
                time: SimTime::from_secs(1.0 + i as f64),
                sector: 0,
                sectors: 8,
                kind: VolumeIoKind::Read,
            })
            .collect();
        reqs.push(workload::VolumeRequest {
            time: SimTime::from_secs(12.0),
            sector: 0,
            sectors: 8,
            kind: VolumeIoKind::Write,
        });
        let trace = Trace::from_requests(reqs);
        let mut opts = RunOptions::for_horizon(100.0);
        opts.cache = Some(cache::CacheConfig::with_capacity(64));
        let report = run_policy(small_config(), BasePolicy, &trace, opts);
        let stats = report.cache.expect("cache enabled");
        assert_eq!(report.completed, 11);
        assert_eq!(report.incomplete, 0);
        assert_eq!(stats.read_misses, 1, "only the cold read misses");
        assert_eq!(stats.read_hits, 9);
        assert_eq!(stats.write_absorbs, 1);
        assert_eq!(stats.flushes, 1, "one periodic flush destages the write");
        assert_eq!(stats.flushed_chunks, 1);
        // Hits complete at DRAM latency, far under a disk access.
        assert!(
            report.response.mean() < 0.005,
            "mean {} s",
            report.response.mean()
        );
    }

    #[test]
    fn zero_capacity_cache_is_fully_disabled() {
        let trace = small_trace(60.0, 20.0);
        let plain = run_policy(
            small_config(),
            BasePolicy,
            &trace,
            RunOptions::for_horizon(120.0),
        );
        let mut opts = RunOptions::for_horizon(120.0);
        opts.cache = Some(cache::CacheConfig::with_capacity(0));
        let zero = run_policy(small_config(), BasePolicy, &trace, opts);
        assert!(zero.cache.is_none(), "capacity 0 must report no cache");
        assert_eq!(plain.completed, zero.completed);
        assert_eq!(plain.energy.total_joules(), zero.energy.total_joules());
        assert_eq!(plain.response.mean(), zero.response.mean());
        assert_eq!(plain.events_processed, zero.events_processed);
    }

    #[test]
    fn dirty_cap_forces_early_flush() {
        // Writes to distinct chunks at a rate that crosses the dirty cap
        // long before the (huge) periodic interval.
        let reqs: Vec<workload::VolumeRequest> = (0..200)
            .map(|i| workload::VolumeRequest {
                time: SimTime::from_secs(0.1 * i as f64),
                sector: (i % 500) * 2048,
                sectors: 8,
                kind: VolumeIoKind::Write,
            })
            .collect();
        let trace = Trace::from_requests(reqs);
        let mut cfg = cache::CacheConfig::with_capacity(1024);
        cfg.flush_interval_s = 1e6;
        cfg.max_dirty_chunks = 32;
        let mut opts = RunOptions::for_horizon(120.0);
        opts.cache = Some(cfg);
        let report = run_policy(small_config(), BasePolicy, &trace, opts);
        let stats = report.cache.expect("cache enabled");
        assert!(
            stats.forced_flushes >= 1,
            "dirty cap must force a flush: {stats:?}"
        );
        assert!(stats.flushed_chunks > 0);
        assert_eq!(report.completed, 200);
    }

    #[test]
    #[should_panic(expected = "beyond volume")]
    fn oversized_trace_rejected() {
        let mut config = small_config();
        config.volume_chunks = 4;
        let trace = Trace::from_requests(vec![workload::VolumeRequest {
            time: SimTime::ZERO,
            sector: config.volume_sectors() + 10,
            sectors: 8,
            kind: VolumeIoKind::Read,
        }]);
        let _ = Simulation::new(config, BasePolicy, &trace, RunOptions::for_horizon(1.0));
    }
}
