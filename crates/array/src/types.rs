//! Core identifiers and array configuration.

use diskmodel::DiskSpec;

/// Index of a disk within the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DiskId(pub usize);

impl DiskId {
    /// The numeric index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Index of a logical-volume chunk (the unit of placement and migration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChunkId(pub u32);

impl ChunkId {
    /// The numeric index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Redundancy scheme of the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Redundancy {
    /// Pure striping (RAID-0-like): reads and writes touch only the data
    /// disk. The energy experiments default to this, isolating the policy
    /// comparison from parity effects.
    #[default]
    None,
    /// RAID-5-like write penalty: every foreground write also writes a
    /// parity block of equal size to a neighbouring disk (the disk holding
    /// the chunk's parity partner). Reads are unaffected (parity is only
    /// read on reconstruction, which this suite does not simulate).
    Raid5Like,
}

/// Static configuration of a simulated array.
#[derive(Debug, Clone)]
pub struct ArrayConfig {
    /// Number of disks.
    pub disks: usize,
    /// Disk model shared by all spindles.
    pub spec: DiskSpec,
    /// Sectors per chunk (placement/migration granularity).
    pub chunk_sectors: u64,
    /// Number of volume chunks (the exported volume size is
    /// `volume_chunks × chunk_sectors` sectors).
    pub volume_chunks: u32,
    /// Redundancy scheme.
    pub redundancy: Redundancy,
    /// Seed for all stochastic elements (rotational latencies etc.).
    pub seed: u64,
    /// If set, the initial striped layout uses only disks `0..stripe_width`
    /// (MAID keeps its cache disks data-free this way). `None` stripes over
    /// every disk.
    pub stripe_width: Option<usize>,
}

impl ArrayConfig {
    /// A 16-disk array with 1 MiB chunks sized to hold `volume_bytes`,
    /// using the 6-level multi-speed preset.
    pub fn default_for_volume(volume_bytes: u64) -> ArrayConfig {
        let spec = DiskSpec::ultrastar_multispeed(6);
        let chunk_sectors = 2048; // 1 MiB
        let chunk_bytes = chunk_sectors * 512;
        let volume_chunks = volume_bytes.div_ceil(chunk_bytes) as u32;
        ArrayConfig {
            disks: 16,
            spec,
            chunk_sectors,
            volume_chunks,
            redundancy: Redundancy::None,
            seed: 0xD15C,
            stripe_width: None,
        }
    }

    /// The number of disks the initial layout stripes over.
    pub fn effective_stripe_width(&self) -> usize {
        self.stripe_width.unwrap_or(self.disks).min(self.disks)
    }

    /// Volume size in sectors.
    pub fn volume_sectors(&self) -> u64 {
        u64::from(self.volume_chunks) * self.chunk_sectors
    }

    /// Chunk slots available on each disk.
    pub fn slots_per_disk(&self) -> u32 {
        (self.spec.capacity_sectors() / self.chunk_sectors) as u32
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        self.spec.validate()?;
        if self.disks == 0 {
            return Err("array needs at least one disk".into());
        }
        if self.chunk_sectors == 0 {
            return Err("chunk_sectors must be positive".into());
        }
        if self.volume_chunks == 0 {
            return Err("volume must be non-empty".into());
        }
        if let Some(w) = self.stripe_width {
            if w == 0 || w > self.disks {
                return Err(format!("stripe_width {w} outside 1..={}", self.disks));
            }
        }
        let capacity = u64::from(self.slots_per_disk()) * self.effective_stripe_width() as u64;
        if u64::from(self.volume_chunks) > capacity {
            return Err(format!(
                "volume of {} chunks exceeds stripe capacity of {capacity} chunk slots",
                self.volume_chunks
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        let c = ArrayConfig::default_for_volume(16 << 30);
        c.validate().unwrap();
        assert_eq!(c.disks, 16);
        assert!(c.volume_sectors() >= (16u64 << 30) / 512);
    }

    #[test]
    fn slots_cover_volume_easily() {
        let c = ArrayConfig::default_for_volume(16 << 30);
        let slots = u64::from(c.slots_per_disk()) * c.disks as u64;
        assert!(slots > u64::from(c.volume_chunks) * 4);
    }

    #[test]
    fn validate_rejects_oversized_volume() {
        let mut c = ArrayConfig::default_for_volume(16 << 30);
        c.volume_chunks = u32::MAX;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_rejects_zero_disks() {
        let mut c = ArrayConfig::default_for_volume(1 << 30);
        c.disks = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn ids_order_and_index() {
        assert!(ChunkId(1) < ChunkId(2));
        assert_eq!(ChunkId(7).index(), 7);
        assert_eq!(DiskId(3).index(), 3);
    }
}
