//! Property tests on the array driver: arbitrary traces against arbitrary
//! (small) array shapes must conserve requests, conserve energy attribution,
//! and replay deterministically — with and without background migration
//! churn injected by a pathological policy.
//!
//! Randomisation is driven by labelled [`DetRng`] streams, so every "random"
//! case is fully reproducible from the case index alone.

use array::{
    run_policy, ArrayConfig, ArrayState, BasePolicy, ChunkId, DiskId, MigrationJob, PowerPolicy,
    Redundancy, RunOptions,
};
use simkit::{DetRng, SimDuration, SimTime};
use workload::{Trace, VolumeIoKind, VolumeRequest};

fn config(disks: usize, chunks: u32) -> ArrayConfig {
    let mut c = ArrayConfig::default_for_volume(1 << 30);
    c.disks = disks;
    c.volume_chunks = chunks;
    c
}

/// A deterministic pseudo-random trace against a `chunks`-chunk volume.
fn random_trace(case: u64, chunks: u32) -> Trace {
    let mut rng = DetRng::new(0xD21A ^ case, "driver-trace");
    let max_sector = u64::from(chunks) * 2048 - 600;
    let n = 1 + rng.below(79) as usize;
    Trace::from_requests(
        (0..n)
            .map(|_| VolumeRequest {
                time: SimTime::from_secs(rng.uniform(0.0, 120.0)),
                sector: rng.below(max_sector),
                sectors: 1 + rng.below(511) as u32,
                kind: if rng.chance(0.5) {
                    VolumeIoKind::Write
                } else {
                    VolumeIoKind::Read
                },
            })
            .collect(),
    )
}

/// A policy that stirs the pot: random-ish relocations and speed flips on
/// every tick, exercising migration/ramp/foreground interleavings.
struct ChurnPolicy {
    step: usize,
}

impl PowerPolicy for ChurnPolicy {
    fn name(&self) -> &str {
        "Churn"
    }
    fn tick_interval(&self) -> Option<SimDuration> {
        Some(SimDuration::from_secs(7.0))
    }
    fn on_tick(&mut self, now: SimTime, state: &mut ArrayState) {
        self.step += 1;
        let n = state.disks.len();
        let chunks = state.remap.chunks();
        // Flip one disk's speed.
        let d = self.step % n;
        let level = diskmodel::SpeedLevel(self.step % state.config.spec.num_levels());
        state.disks[d].request_speed(now, diskmodel::SpinTarget::Level(level));
        // Relocate one chunk and swap two others.
        let c1 = ChunkId((self.step as u32 * 7) % chunks);
        state.migrator.enqueue([MigrationJob::Relocate {
            chunk: c1,
            dst: DiskId((self.step * 3) % n),
        }]);
        let a = ChunkId((self.step as u32 * 13) % chunks);
        let b = ChunkId((self.step as u32 * 29 + 1) % chunks);
        if state.remap.disk_of(a) != state.remap.disk_of(b) {
            state.migrator.enqueue([MigrationJob::Swap { a, b }]);
        }
    }
}

#[test]
fn base_conserves_requests_and_energy() {
    for case in 0..24 {
        let trace = random_trace(case, 64);
        let n = trace.len() as u64;
        let r = run_policy(
            config(4, 64),
            BasePolicy,
            &trace,
            RunOptions::for_horizon(400.0),
        );
        assert_eq!(r.completed, n, "case {case}");
        assert_eq!(r.incomplete, 0, "case {case}");
        let parts: f64 = r.energy.breakdown().map(|(_, j)| j).sum();
        assert!(
            (parts - r.energy.total_joules()).abs() < 1e-6,
            "case {case}"
        );
        let per_disk: f64 = r.per_disk_energy.iter().map(|e| e.total_joules()).sum();
        assert!(
            (per_disk - r.energy.total_joules()).abs() < 1e-6,
            "case {case}"
        );
    }
}

#[test]
fn churn_policy_never_loses_requests() {
    for case in 0..24 {
        let trace = random_trace(100 + case, 64);
        let n = trace.len() as u64;
        let r = run_policy(
            config(4, 64),
            ChurnPolicy { step: 0 },
            &trace,
            RunOptions::for_horizon(600.0),
        );
        assert_eq!(r.completed + r.incomplete, n, "case {case}");
        assert!(
            r.incomplete <= 2,
            "case {case}: churn stranded {} requests",
            r.incomplete
        );
    }
}

#[test]
fn raid5_conserves_requests() {
    for case in 0..24 {
        let trace = random_trace(200 + case, 64);
        let mut cfg = config(4, 64);
        cfg.redundancy = Redundancy::Raid5Like;
        let n = trace.len() as u64;
        let r = run_policy(cfg, BasePolicy, &trace, RunOptions::for_horizon(400.0));
        assert_eq!(r.completed, n, "case {case}");
    }
}

#[test]
fn replay_is_bit_identical() {
    for case in 0..8 {
        let trace = random_trace(300 + case, 32);
        let run = || {
            let r = run_policy(
                config(3, 32),
                ChurnPolicy { step: 0 },
                &trace,
                RunOptions::for_horizon(300.0),
            );
            (
                r.completed,
                r.energy.total_joules().to_bits(),
                r.response.mean().to_bits(),
                r.migration.committed,
                r.migration.aborted,
            )
        };
        assert_eq!(run(), run(), "case {case}");
    }
}

#[test]
fn churn_remap_stays_bijective() {
    // Drive the churn policy and verify the remap invariant at the end via
    // a policy that checks on its final tick.
    struct Checker {
        inner: ChurnPolicy,
    }
    impl PowerPolicy for Checker {
        fn name(&self) -> &str {
            "Checker"
        }
        fn tick_interval(&self) -> Option<SimDuration> {
            self.inner.tick_interval()
        }
        fn on_tick(&mut self, now: SimTime, state: &mut ArrayState) {
            self.inner.on_tick(now, state);
            state
                .remap
                .check_invariants()
                .expect("remap bijection violated");
        }
    }
    let trace = Trace::from_requests(
        (0..200)
            .map(|i| VolumeRequest {
                time: SimTime::from_secs(i as f64 * 2.0),
                sector: (i * 37_117) % (64 * 2048 - 64),
                sectors: 16,
                kind: if i % 3 == 0 {
                    VolumeIoKind::Write
                } else {
                    VolumeIoKind::Read
                },
            })
            .collect(),
    );
    let r = run_policy(
        config(4, 64),
        Checker {
            inner: ChurnPolicy { step: 0 },
        },
        &trace,
        RunOptions::for_horizon(500.0),
    );
    assert_eq!(r.completed + r.incomplete, 200);
}
