//! The adaptation race (see DESIGN.md §17).
//!
//! At the midpoint of an OLTP run the workload's popularity ordering
//! flips ([`Scenario::PopularityFlip`]): every hot extent goes cold and
//! vice versa, invalidating whatever data placement the policy has
//! learned. The four Hibernator-hosted migration policies
//! ([`PolicyKind::ADAPTIVE`]) then race to re-learn the layout. Two
//! numbers summarise each contender:
//!
//! * **readapt(s)** — how long after the flip the windowed mean response
//!   stays above the goal: the end of the *last* post-flip bucket in
//!   violation, minus the flip time. Zero means the flip never pushed
//!   the policy over its goal.
//! * **energy(kJ)** — total energy over the whole run, pricing the
//!   migration traffic the re-adaptation itself costs.
//!
//! Like every experiment the race is streamed (O(1) trace memory) and
//! seed-deterministic, so `adapt_race.csv` is byte-identical at any
//! `--jobs` count (locked down by `tests/adapt_invariance.rs`).

use crate::common::{row, violation_fraction, Ctx, PolicyKind, Workload};
use array::RunReport;
use simkit::TimeSeries;
use workload::Scenario;

/// Deterministic run label for one contender.
pub(crate) fn label(policy: PolicyKind) -> String {
    format!("adapt/pop_flip/{}", policy.label())
}

/// Seconds from `flip_s` to the end of the last response bucket whose
/// mean violates `goal_s`, considering only buckets that start at or
/// after the flip. Zero when no post-flip bucket violates.
pub(crate) fn readapt_seconds(series: &TimeSeries, goal_s: f64, flip_s: f64) -> f64 {
    let w = series.bucket_width().as_secs();
    let mut last_end = None;
    for i in 0..series.len() {
        let start = i as f64 * w;
        if start < flip_s {
            continue;
        }
        if let Some(b) = series.bucket(i) {
            if b.mean().is_some_and(|m| m > goal_s) {
                last_end = Some(start + w);
            }
        }
    }
    last_end.map_or(0.0, |end| end - flip_s)
}

/// The adaptation-race experiment.
pub fn adapt(ctx: &Ctx) {
    println!("\n== ADAPT: mid-run popularity flip x adaptive migration policies (OLTP base) ==");
    let spec = ctx.workload_spec(Workload::Oltp, 1.0);
    let config = ctx.array_config(Workload::Oltp);
    let flip_s = ctx.duration_s() * 0.5;
    let sc = Scenario::PopularityFlip { at_s: flip_s };

    // Stage 1: one unmanaged Base run over the flipped trace calibrates
    // the response-time goal the contenders must re-attain.
    let base = ctx.timed(&label(PolicyKind::Base), || {
        let name = label(PolicyKind::Base);
        let mut opts = ctx.run_options();
        opts.telemetry = ctx.telemetry_config(&name, f64::MAX, ctx.warmup_s());
        let mut r = ctx.run_kind_streamed(
            PolicyKind::Base,
            config.clone(),
            sc.apply(&spec, ctx.seed),
            opts,
            f64::MAX,
        );
        ctx.collect_stream(r.telemetry.take());
        r
    });
    let goal = base.response.mean() * ctx.goal_factor();

    // Stage 2: the four adaptive contenders race over the same trace.
    let runs: Vec<RunReport> = ctx.pool().map(
        PolicyKind::ADAPTIVE
            .iter()
            .map(|&p| {
                let (spec, config, sc) = (&spec, &config, &sc);
                move || {
                    let name = label(p);
                    ctx.timed(&name, || {
                        let mut opts = ctx.run_options();
                        opts.telemetry = ctx.telemetry_config(&name, goal, ctx.warmup_s());
                        let mut r = ctx.run_kind_streamed(
                            p,
                            config.clone(),
                            sc.apply(spec, ctx.seed),
                            opts,
                            goal,
                        );
                        ctx.collect_stream(r.telemetry.take());
                        r
                    })
                }
            })
            .collect::<Vec<_>>(),
    );

    // Rank by time-to-readapt, then by energy — the race's finish order.
    let mut order: Vec<usize> = (0..runs.len()).collect();
    let score = |r: &RunReport| {
        (
            readapt_seconds(&r.response_series, goal, flip_s),
            r.energy.total_joules(),
        )
    };
    order.sort_by(|&a, &b| {
        let (ra, ea) = score(&runs[a]);
        let (rb, eb) = score(&runs[b]);
        ra.total_cmp(&rb).then(ea.total_cmp(&eb)).then(a.cmp(&b))
    });

    let widths = [12, 8, 11, 9, 10, 9, 9];
    println!(
        "{}",
        row(
            &[
                "policy",
                "goal(ms)",
                "energy(kJ)",
                "mean(ms)",
                "readapt(s)",
                "pf-viol%",
                "completed"
            ]
            .map(String::from),
            &widths
        )
    );
    let mut rows = Vec::new();
    for &i in &order {
        let p = PolicyKind::ADAPTIVE[i];
        let r = &runs[i];
        let (readapt, _) = score(r);
        let cells = [
            p.label().to_string(),
            format!("{:.2}", goal * 1e3),
            format!("{:.0}", r.energy.total_joules() / 1e3),
            format!("{:.2}", r.response.mean() * 1e3),
            format!("{readapt:.0}"),
            format!(
                "{:.1}",
                violation_fraction(&r.response_series, goal, flip_s) * 100.0
            ),
            format!("{}", r.completed),
        ];
        println!("{}", row(&cells, &widths));
        rows.push(format!(
            "{},{},{},{},{},{},{},{}",
            p.label(),
            cells[1],
            cells[2],
            cells[3],
            cells[4],
            cells[5],
            r.completed,
            r.incomplete,
        ));
    }
    ctx.write_csv(
        "adapt_race.csv",
        "policy,goal_ms,energy_kj,mean_ms,readapt_s,postflip_viol_pct,completed,incomplete",
        &rows,
    );
    println!(
        "flip at {:.0} s; winner: {}",
        flip_s,
        PolicyKind::ADAPTIVE[order[0]].label()
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::{SimDuration, SimTime};

    fn series(bucket_s: f64, means: &[f64]) -> TimeSeries {
        let mut s = TimeSeries::new(SimDuration::from_secs(bucket_s));
        for (i, &m) in means.iter().enumerate() {
            s.record(SimTime::from_secs((i as f64 + 0.5) * bucket_s), m);
        }
        s
    }

    #[test]
    fn readapt_measures_to_last_violating_bucket_end() {
        // flip at 200 s; buckets of 100 s; violations at buckets 2 and 3.
        let s = series(100.0, &[9.0, 9.0, 9.0, 9.0, 1.0, 1.0]);
        assert_eq!(readapt_seconds(&s, 5.0, 200.0), 200.0);
    }

    #[test]
    fn clean_recovery_reads_zero() {
        let s = series(100.0, &[9.0, 9.0, 1.0, 1.0]);
        assert_eq!(readapt_seconds(&s, 5.0, 200.0), 0.0);
        // Pre-flip violations never count.
        assert_eq!(readapt_seconds(&s, 0.5, 400.0), 0.0);
    }

    #[test]
    fn empty_buckets_are_ignored() {
        let mut s = TimeSeries::new(SimDuration::from_secs(100.0));
        s.record(SimTime::from_secs(50.0), 9.0);
        s.record(SimTime::from_secs(450.0), 9.0);
        assert_eq!(readapt_seconds(&s, 5.0, 100.0), 400.0);
    }
}
