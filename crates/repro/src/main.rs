//! `repro` — regenerates every table and figure of the Hibernator
//! evaluation (see DESIGN.md §6 for the experiment index and
//! EXPERIMENTS.md for recorded results).
//!
//! ```text
//! repro [--quick] [--seed N] [--out DIR] <experiment...>
//!   experiments: t1 t2 t3 t4 t5 f1..f10 | tables | figures | all
//! ```
//!
//! `--quick` runs 2-hour traces instead of 24-hour ones (for smoke tests);
//! results land as CSV in `--out` (default `results/`).

mod common;
mod faults;
mod figures;
mod tables;

use common::Ctx;

fn usage() -> ! {
    eprintln!(
        "usage: repro [--quick] [--seed N] [--out DIR] <t1..t6|f1..f12|faults|tables|figures|all>..."
    );
    std::process::exit(2);
}

fn main() {
    let mut quick = false;
    let mut seed = 42u64;
    let mut out = String::from("results");
    let mut experiments: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--out" => out = args.next().unwrap_or_else(|| usage()),
            "--help" | "-h" => usage(),
            e if !e.starts_with('-') => experiments.push(e.to_string()),
            _ => usage(),
        }
    }
    if experiments.is_empty() {
        usage();
    }

    let ctx = Ctx::new(quick, seed, &out);
    println!(
        "# Hibernator reproduction — {} scale, seed {seed}, {} disks, {:.0} h horizon",
        if quick { "quick" } else { "full" },
        ctx.disks(),
        ctx.duration_s() / 3600.0
    );

    let started = std::time::Instant::now();
    for e in &experiments {
        run_one(&ctx, e);
    }
    println!("\ndone in {:.1?} (wall clock)", started.elapsed());
}

fn run_one(ctx: &Ctx, name: &str) {
    match name {
        "t1" => tables::t1(ctx),
        "t2" => tables::t2(ctx),
        "t3" => tables::t3(ctx),
        "t4" => tables::t4(ctx),
        "t5" => tables::t5(ctx),
        "t6" => tables::t6(ctx),
        "f1" => figures::f1(ctx),
        "f2" => figures::f2(ctx),
        "f3" => figures::f3(ctx),
        "f4" => figures::f4(ctx),
        "f5" => figures::f5(ctx),
        "f6" => figures::f6(ctx),
        "f7" => figures::f7(ctx),
        "f8" => figures::f8(ctx),
        "f9" => figures::f9(ctx),
        "f10" => figures::f10(ctx),
        "f11" => figures::f11(ctx),
        "f12" => figures::f12(ctx),
        "faults" => faults::faults(ctx),
        "tables" => {
            for t in ["t1", "t2", "t3", "t4", "t5", "t6"] {
                run_one(ctx, t);
            }
        }
        "figures" => figures::all(ctx),
        "all" => {
            run_one(ctx, "tables");
            run_one(ctx, "figures");
        }
        other => {
            eprintln!("unknown experiment {other:?}");
            std::process::exit(2);
        }
    }
}
