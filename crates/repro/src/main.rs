//! `repro` — regenerates every table and figure of the Hibernator
//! evaluation (see DESIGN.md §6 for the experiment index and
//! EXPERIMENTS.md for recorded results).
//!
//! ```text
//! repro [--quick] [--seed N] [--out DIR] [--jobs N] <experiment...>
//!   experiments: t1..t6 f1..f12 faults cache scenarios adapt | tables | figures | all
//! repro fleet [--arrays N] [--tenants N] [--budget-frac F]
//! repro audit <stream.jsonl>
//! repro ingest <msr_trace.csv>
//! ```
//!
//! `--quick` runs 2-hour traces instead of 24-hour ones (for smoke tests);
//! results land as CSV in `--out` (default `results/`). `--jobs N` caps
//! the number of simulations in flight at once (default: the machine's
//! available parallelism); every run is seed-deterministic, so the CSVs
//! are byte-identical at any jobs count. `--horizon-h H` overrides the
//! simulated horizon (hours) for sub-quick smoke runs.
//!
//! `--telemetry-out PATH` records a structured event stream for every
//! standard and fault-storm run and writes them (sorted by run label, so
//! byte-identical at any `--jobs`) to PATH as JSON lines. `repro audit
//! PATH` then replays such a stream through the cross-cutting invariant
//! checks (energy conservation, dead-disk serving, migration concurrency,
//! goal-violation refit, …) and exits non-zero on any failure.
//!
//! `repro fleet` simulates N Hibernator arrays under one datacenter power
//! budget (see `fleetcmd`); its `fleet_stream.jsonl` output audits through
//! the same `repro audit` command, which detects fleet streams by their
//! first event tag.
//!
//! `repro scenarios` sweeps the adversarial workload suite (flash crowd,
//! popularity flip, write flood, scan poison) across the headline
//! policies, streaming every trace (see `scenarios`). `repro adapt` races
//! the four adaptive migration policies through a mid-run popularity flip
//! and ranks them by time-to-readapt and energy (see `adapt`). `repro
//! ingest PATH` parses an MSR-Cambridge block-trace CSV and prints its
//! vitals, exiting non-zero (with the offending line number) on malformed
//! input.

mod adapt;
mod bench;
mod cachesweep;
mod common;
mod faults;
mod figures;
mod fleetcmd;
mod scenarios;
mod tables;

use common::Ctx;

fn usage() -> ! {
    eprintln!(
        "usage: repro [--quick] [--seed N] [--out DIR] [--jobs N] [--horizon-h H] \
         [--telemetry-out PATH] <t1..t6|f1..f12|faults|cache|scenarios|adapt|tables|figures|all>...\n\
         \x20      repro fleet [--arrays N] [--tenants N] [--budget-frac F] [common flags]\n\
         \x20      repro audit <stream.jsonl>\n\
         \x20      repro ingest <msr_trace.csv>\n\
         \x20      repro bench [--seed N] [--out DIR] [--iters N] [--reference] \
         [--check-floor]"
    );
    std::process::exit(2);
}

/// Audits a telemetry stream file and exits: 0 if every invariant of every
/// run held, 1 otherwise. Fleet streams (first line tagged `fleet_*`, as
/// written by `repro fleet`) route to the fleet auditor automatically.
fn audit_stream(path: &str) -> ! {
    let bytes = std::fs::read(path).unwrap_or_else(|e| {
        eprintln!("audit: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let first = bytes.split(|&b| b == b'\n').next().unwrap_or(&[]);
    let is_fleet = std::str::from_utf8(first).is_ok_and(|line| line.contains("\"ev\":\"fleet_"));
    let outcome = if is_fleet {
        let run = telemetry::audit::audit_fleet_bytes(&bytes).unwrap_or_else(|e| {
            eprintln!("audit: malformed fleet stream: {e}");
            std::process::exit(1);
        });
        telemetry::audit::AuditOutcome { runs: vec![run] }
    } else {
        telemetry::audit::audit_bytes(&bytes).unwrap_or_else(|e| {
            eprintln!("audit: malformed stream: {e}");
            std::process::exit(1);
        })
    };
    if outcome.runs.is_empty() {
        eprintln!("audit: {path} holds no run streams");
        std::process::exit(1);
    }
    for run in &outcome.runs {
        println!("run {} ({} events)", run.label, run.events);
        for c in &run.checks {
            let verdict = if c.passed { "PASS" } else { "FAIL" };
            if c.detail.is_empty() {
                println!("  [{verdict}] {}", c.name);
            } else {
                println!("  [{verdict}] {} — {}", c.name, c.detail);
            }
        }
    }
    if outcome.passed() {
        println!("audit: all {} run(s) passed", outcome.runs.len());
        std::process::exit(0);
    }
    eprintln!("audit: invariant violations found");
    std::process::exit(1);
}

/// Streams an MSR-Cambridge block-trace CSV once, printing its vitals,
/// and exits: 0 on a clean parse, 1 (naming the offending line) on a
/// malformed one. Runs in O(1) memory regardless of trace size.
fn ingest_msr(path: &str) -> ! {
    let file = std::fs::File::open(path).unwrap_or_else(|e| {
        eprintln!("ingest: cannot open {path}: {e}");
        std::process::exit(2);
    });
    let (mut records, mut reads, mut sectors, mut last_s, mut max_end) =
        (0u64, 0u64, 0u64, 0.0f64, 0u64);
    for r in workload::trace_io::MsrReader::new(file) {
        let r = r.unwrap_or_else(|e| {
            eprintln!("ingest: {path}: {e}");
            std::process::exit(1);
        });
        records += 1;
        if r.kind == workload::VolumeIoKind::Read {
            reads += 1;
        }
        sectors += u64::from(r.sectors);
        last_s = last_s.max(r.time.as_secs());
        max_end = max_end.max(r.sector + u64::from(r.sectors));
    }
    if records == 0 {
        eprintln!("ingest: {path} holds no records");
        std::process::exit(1);
    }
    println!("ingest: {path}");
    println!(
        "  records   {records} ({reads} reads, {} writes)",
        records - reads
    );
    println!("  span      {last_s:.3} s");
    println!("  volume    {max_end} sectors touched-end, {sectors} sectors transferred");
    std::process::exit(0);
}

fn main() {
    let mut quick = false;
    let mut seed = 42u64;
    let mut out = String::from("results");
    let mut jobs = parallel::available_parallelism();
    let mut horizon_h: Option<f64> = None;
    let mut telemetry_out: Option<String> = None;
    let mut iters = 3usize;
    let mut reference = false;
    let mut check_floor = false;
    let mut arrays = 4usize;
    let mut tenants = 8u32;
    let mut budget_frac = 0.6f64;
    let mut experiments: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--out" => out = args.next().unwrap_or_else(|| usage()),
            "--jobs" => {
                jobs = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--horizon-h" => {
                horizon_h = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&h: &f64| h > 0.0 && h.is_finite())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--telemetry-out" => telemetry_out = Some(args.next().unwrap_or_else(|| usage())),
            "--iters" => {
                iters = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--reference" => reference = true,
            "--check-floor" => check_floor = true,
            "--arrays" => {
                arrays = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--tenants" => {
                tenants = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--budget-frac" => {
                budget_frac = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&f: &f64| f.is_finite())
                    .unwrap_or_else(|| usage())
            }
            "--help" | "-h" => usage(),
            e if !e.starts_with('-') => experiments.push(e.to_string()),
            _ => usage(),
        }
    }
    if experiments.first().map(String::as_str) == Some("audit") {
        match experiments.as_slice() {
            [_, path] => audit_stream(path),
            _ => usage(),
        }
    }
    if experiments.first().map(String::as_str) == Some("ingest") {
        match experiments.as_slice() {
            [_, path] => ingest_msr(path),
            _ => usage(),
        }
    }
    if experiments.first().map(String::as_str) == Some("bench") {
        if experiments.len() != 1 {
            usage();
        }
        bench::bench(seed, &out, iters, reference, check_floor);
        return;
    }
    if experiments.first().map(String::as_str) == Some("fleet") {
        if experiments.len() != 1 {
            usage();
        }
        let mut ctx = Ctx::new(quick, seed, &out, jobs);
        if let Some(h) = horizon_h {
            ctx.set_horizon_hours(h);
        }
        if telemetry_out.is_some() {
            ctx.set_telemetry(true);
        }
        println!(
            "# Hibernator fleet — {arrays} array(s), seed {seed}, {:.1} h horizon, {jobs} job(s)",
            ctx.duration_s() / 3600.0
        );
        let started = std::time::Instant::now();
        fleetcmd::fleet(&ctx, arrays, tenants, budget_frac);
        if let Some(path) = &telemetry_out {
            ctx.write_telemetry(std::path::Path::new(path));
        }
        ctx.print_timings();
        println!("\ndone in {:.1?} (wall clock)", started.elapsed());
        return;
    }
    if experiments.is_empty() {
        usage();
    }

    let mut ctx = Ctx::new(quick, seed, &out, jobs);
    if let Some(h) = horizon_h {
        ctx.set_horizon_hours(h);
    }
    if telemetry_out.is_some() {
        ctx.set_telemetry(true);
    }
    println!(
        "# Hibernator reproduction — {} scale, seed {seed}, {} disks, {:.1} h horizon, {jobs} job(s)",
        if quick { "quick" } else { "full" },
        ctx.disks(),
        ctx.duration_s() / 3600.0
    );

    let started = std::time::Instant::now();
    for e in &experiments {
        run_one(&ctx, e);
    }
    if let Some(path) = &telemetry_out {
        ctx.write_telemetry(std::path::Path::new(path));
    }
    ctx.print_timings();
    println!("\ndone in {:.1?} (wall clock)", started.elapsed());
}

fn run_one(ctx: &Ctx, name: &str) {
    match name {
        "t1" => tables::t1(ctx),
        "t2" => tables::t2(ctx),
        "t3" => tables::t3(ctx),
        "t4" => tables::t4(ctx),
        "t5" => tables::t5(ctx),
        "t6" => tables::t6(ctx),
        "f1" => figures::f1(ctx),
        "f2" => figures::f2(ctx),
        "f3" => figures::f3(ctx),
        "f4" => figures::f4(ctx),
        "f5" => figures::f5(ctx),
        "f6" => figures::f6(ctx),
        "f7" => figures::f7(ctx),
        "f8" => figures::f8(ctx),
        "f9" => figures::f9(ctx),
        "f10" => figures::f10(ctx),
        "f11" => figures::f11(ctx),
        "f12" => figures::f12(ctx),
        "faults" => faults::faults(ctx),
        "cache" => cachesweep::cachesweep(ctx),
        "scenarios" => scenarios::scenarios(ctx),
        "adapt" => adapt::adapt(ctx),
        "tables" => {
            // One prefetch covers every standard-scenario run the tables
            // need, so the whole grid fans out across the pool at once.
            let mut pairs: Vec<(common::PolicyKind, common::Workload)> = Vec::new();
            for w in [common::Workload::Oltp, common::Workload::Cello] {
                for p in common::PolicyKind::HEADLINE {
                    pairs.push((p, w));
                }
                pairs.push((common::PolicyKind::FixedSlow, w));
            }
            ctx.prefetch(&pairs);
            for t in ["t1", "t2", "t3", "t4", "t5", "t6"] {
                run_one(ctx, t);
            }
        }
        "figures" => figures::all(ctx),
        "all" => {
            run_one(ctx, "tables");
            run_one(ctx, "figures");
        }
        other => {
            eprintln!("unknown experiment {other:?}");
            std::process::exit(2);
        }
    }
}
