//! Shared infrastructure for the experiment harness: scenario definitions,
//! policy dispatch, goal calibration, run caching, and output formatting.
//!
//! All experiments draw from two calibrated scenarios (see DESIGN.md §6):
//!
//! * **OLTP** — 16 disks, 16 GiB hot volume, steady 150 req/s, Zipf 0.95;
//! * **Cello** — 16 disks, 24 GiB volume, diurnal bursty file-server load.
//!
//! The response-time goal of every managed run is `goal_factor ×` the mean
//! response of the unmanaged Base run on the same trace (the paper's
//! "performance goal relative to no power management" formulation).

use array::{run_policy, ArrayConfig, Redundancy, RunOptions, RunReport};
use diskmodel::{DiskSpec, SpeedLevel};
use hibernator::{Hibernator, HibernatorConfig, MigrationMode};
use policies::{maid_array_config, DrpmPolicy, FixedSpeed, MaidConfig, MaidPolicy, PdcPolicy, TpmPolicy};
use simkit::SimDuration;
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::rc::Rc;
use workload::{Trace, WorkloadSpec};

/// Which workload a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Steady, skewed, read-mostly transaction processing.
    Oltp,
    /// Diurnal, bursty file-server traffic.
    Cello,
}

impl Workload {
    /// Short label for tables and CSV.
    pub fn label(self) -> &'static str {
        match self {
            Workload::Oltp => "OLTP",
            Workload::Cello => "Cello",
        }
    }
}

/// Every policy the comparison tables include.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// No power management (all disks full speed).
    Base,
    /// Threshold spin-down.
    Tpm,
    /// Fine-grained per-disk RPM control.
    Drpm,
    /// Popular data concentration + TPM.
    Pdc,
    /// Cache disks + TPM.
    Maid,
    /// The paper's system.
    Hibernator,
    /// Hibernator without data migration (ablation).
    HibernatorNoMig,
    /// Hibernator with random placement (ablation).
    HibernatorRandMig,
    /// Hibernator without the performance guard (ablation).
    HibernatorNoGuard,
    /// Everything pinned at the slowest level (bound).
    FixedSlow,
}

impl PolicyKind {
    /// The six policies of the headline comparison.
    pub const HEADLINE: [PolicyKind; 6] = [
        PolicyKind::Base,
        PolicyKind::Tpm,
        PolicyKind::Drpm,
        PolicyKind::Pdc,
        PolicyKind::Maid,
        PolicyKind::Hibernator,
    ];

    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Base => "Base",
            PolicyKind::Tpm => "TPM",
            PolicyKind::Drpm => "DRPM",
            PolicyKind::Pdc => "PDC",
            PolicyKind::Maid => "MAID",
            PolicyKind::Hibernator => "Hibernator",
            PolicyKind::HibernatorNoMig => "Hib(no-mig)",
            PolicyKind::HibernatorRandMig => "Hib(rand-mig)",
            PolicyKind::HibernatorNoGuard => "Hib(no-guard)",
            PolicyKind::FixedSlow => "Fixed(slow)",
        }
    }
}

/// Experiment-wide context: scale, seed, output directory, and a run cache
/// so `all` never simulates the same (policy, workload) pair twice.
pub struct Ctx {
    /// Reduced scale for smoke runs (`--quick`).
    pub quick: bool,
    /// Master seed.
    pub seed: u64,
    /// Where CSV outputs land.
    pub out_dir: std::path::PathBuf,
    cache: RefCell<HashMap<String, Rc<RunReport>>>,
    traces: RefCell<HashMap<(Workload, u64), Rc<Trace>>>,
    goals: RefCell<HashMap<Workload, f64>>,
}

impl Ctx {
    /// Creates the context, ensuring the output directory exists.
    pub fn new(quick: bool, seed: u64, out_dir: impl Into<std::path::PathBuf>) -> Ctx {
        let out_dir = out_dir.into();
        std::fs::create_dir_all(&out_dir).expect("create results dir");
        Ctx {
            quick,
            seed,
            out_dir,
            cache: RefCell::new(HashMap::new()),
            traces: RefCell::new(HashMap::new()),
            goals: RefCell::new(HashMap::new()),
        }
    }

    /// Simulated duration of the standard runs.
    pub fn duration_s(&self) -> f64 {
        if self.quick {
            2.0 * 3600.0
        } else {
            24.0 * 3600.0
        }
    }

    /// Disks in the standard array.
    pub fn disks(&self) -> usize {
        16
    }

    /// The standard goal factor (goal = factor × Base mean response).
    pub fn goal_factor(&self) -> f64 {
        1.3
    }

    /// The standard array config for a workload (6-level multi-speed).
    pub fn array_config(&self, w: Workload) -> ArrayConfig {
        self.array_config_with(w, self.disks(), 6)
    }

    /// Array config with explicit disk count and speed-level count.
    pub fn array_config_with(&self, w: Workload, disks: usize, levels: usize) -> ArrayConfig {
        let spec = self.workload_spec(w, 1.0);
        ArrayConfig {
            disks,
            spec: DiskSpec::ultrastar_multispeed(levels),
            chunk_sectors: 2048,
            volume_chunks: (spec.footprint_sectors() / 2048) as u32,
            redundancy: Redundancy::None,
            seed: self.seed,
            stripe_width: None,
        }
    }

    /// The workload spec at a load multiplier.
    pub fn workload_spec(&self, w: Workload, load: f64) -> WorkloadSpec {
        match w {
            Workload::Oltp => WorkloadSpec::oltp(self.duration_s(), 150.0 * load),
            Workload::Cello => WorkloadSpec::cello_like(self.duration_s(), 80.0 * load),
        }
    }

    /// The standard trace for a workload (cached).
    pub fn trace(&self, w: Workload) -> Rc<Trace> {
        self.trace_with_load(w, 1.0)
    }

    /// Trace at a load multiplier (cached by permille).
    pub fn trace_with_load(&self, w: Workload, load: f64) -> Rc<Trace> {
        let key = (w, (load * 1000.0).round() as u64);
        if let Some(t) = self.traces.borrow().get(&key) {
            return Rc::clone(t);
        }
        let t = Rc::new(self.workload_spec(w, load).generate(self.seed));
        self.traces.borrow_mut().insert(key, Rc::clone(&t));
        t
    }

    /// Default run options for the standard duration.
    pub fn run_options(&self) -> RunOptions {
        let mut o = RunOptions::for_horizon(self.duration_s());
        o.series_bucket = SimDuration::from_secs(if self.quick { 120.0 } else { 600.0 });
        o.sample_interval = o.series_bucket;
        o
    }

    /// The calibrated response-time goal for a workload:
    /// `goal_factor × Base mean response` (Base run cached).
    pub fn goal_s(&self, w: Workload) -> f64 {
        if let Some(&g) = self.goals.borrow().get(&w) {
            return g;
        }
        let base = self.report(PolicyKind::Base, w);
        let g = base.response.mean() * self.goal_factor();
        self.goals.borrow_mut().insert(w, g);
        g
    }

    /// Hibernator config for a goal at standard scale.
    pub fn hibernator_config(&self, goal_s: f64) -> HibernatorConfig {
        let mut cfg = HibernatorConfig::for_goal(goal_s);
        if self.quick {
            cfg.epoch = SimDuration::from_mins(20.0);
            cfg.heat_tau = SimDuration::from_mins(20.0);
        }
        cfg
    }

    /// Runs (or fetches from cache) a standard-scenario policy run.
    pub fn report(&self, p: PolicyKind, w: Workload) -> Rc<RunReport> {
        let key = format!("{:?}-{:?}", p, w);
        if let Some(r) = self.cache.borrow().get(&key) {
            return Rc::clone(r);
        }
        let trace = self.trace(w);
        let config = self.array_config(w);
        let opts = self.run_options();
        // The goal needs Base; avoid infinite recursion for Base itself.
        let report = if p == PolicyKind::Base {
            run_policy(config, array::BasePolicy, &trace, opts)
        } else {
            let goal = self.goal_s(w);
            self.run_kind(p, config, &trace, opts, goal)
        };
        let report = Rc::new(report);
        self.cache.borrow_mut().insert(key, Rc::clone(&report));
        report
    }

    /// Writes a CSV file into the results directory.
    pub fn write_csv(&self, name: &str, header: &str, rows: &[String]) {
        let path = self.out_dir.join(name);
        let mut body = String::with_capacity(rows.len() * 32 + header.len() + 1);
        let _ = writeln!(body, "{header}");
        for r in rows {
            let _ = writeln!(body, "{r}");
        }
        std::fs::write(&path, body).expect("write csv");
        println!("  -> {}", path.display());
    }
}

impl Ctx {
    /// Runs an arbitrary policy kind against a given config/trace. `goal_s`
    /// is used by goal-aware policies and ignored by the rest. Hibernator
    /// variants pick up the context's scale-appropriate epoch settings.
    pub fn run_kind(
        &self,
        p: PolicyKind,
        config: ArrayConfig,
        trace: &Trace,
        opts: RunOptions,
        goal_s: f64,
    ) -> RunReport {
        match p {
            PolicyKind::Base => run_policy(config, array::BasePolicy, trace, opts),
            PolicyKind::Tpm => run_policy(config, TpmPolicy::competitive(), trace, opts),
            PolicyKind::Drpm => run_policy(config, DrpmPolicy::default(), trace, opts),
            PolicyKind::Pdc => run_policy(config, PdcPolicy::default(), trace, opts),
            PolicyKind::Maid => {
                let cache_disks = (config.disks / 8).max(1) + 1; // 16 disks -> 3
                let cfg = maid_array_config(config, cache_disks);
                run_policy(
                    cfg,
                    MaidPolicy::new(MaidConfig {
                        cache_disks,
                        cache_chunks_per_disk: 2048,
                        tpm_threshold_s: None,
                    }),
                    trace,
                    opts,
                )
            }
            PolicyKind::Hibernator => {
                let cfg = self.hibernator_config(goal_s);
                run_policy(config, Hibernator::new(cfg), trace, opts)
            }
            PolicyKind::HibernatorNoMig => {
                let cfg = self.hibernator_config(goal_s);
                run_policy(config, Hibernator::new(cfg).without_migration(), trace, opts)
            }
            PolicyKind::HibernatorRandMig => {
                let mut cfg = self.hibernator_config(goal_s);
                cfg.migration_mode = MigrationMode::Random;
                run_policy(config, Hibernator::new(cfg), trace, opts)
            }
            PolicyKind::HibernatorNoGuard => {
                let cfg = self.hibernator_config(goal_s);
                run_policy(config, Hibernator::new(cfg).without_guard(), trace, opts)
            }
            PolicyKind::FixedSlow => {
                run_policy(config, FixedSpeed::new(SpeedLevel(0)), trace, opts)
            }
        }
    }
}

/// Fraction of post-warmup series buckets whose mean response exceeded the
/// goal — the "goal violation" metric of the T4 table.
pub fn violation_fraction(report: &RunReport, goal_s: f64, warmup_s: f64) -> f64 {
    let pts: Vec<(f64, f64)> = report
        .response_series
        .mean_points()
        .into_iter()
        .filter(|(t, _)| *t > warmup_s)
        .collect();
    if pts.is_empty() {
        return 0.0;
    }
    pts.iter().filter(|(_, v)| *v > goal_s).count() as f64 / pts.len() as f64
}

/// Prints a fixed-width table row.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    let mut s = String::new();
    for (c, w) in cells.iter().zip(widths) {
        let _ = write!(s, "{c:>w$}  ", w = w);
    }
    s
}
