//! Shared infrastructure for the experiment harness: scenario definitions,
//! policy dispatch, goal calibration, run caching, parallel scheduling,
//! and output formatting.
//!
//! All experiments draw from two calibrated scenarios (see DESIGN.md §6):
//!
//! * **OLTP** — 16 disks, 16 GiB hot volume, steady 150 req/s, Zipf 0.95;
//! * **Cello** — 16 disks, 24 GiB volume, diurnal bursty file-server load.
//!
//! The response-time goal of every managed run is `goal_factor ×` the mean
//! response of the unmanaged Base run on the same trace (the paper's
//! "performance goal relative to no power management" formulation).
//!
//! # Parallel execution
//!
//! Every run is an independent, seed-deterministic simulation, so the
//! harness farms the grid out to a [`parallel::Pool`] (`--jobs N`). The
//! run and trace caches are single-flight ([`parallel::OnceMap`]): when
//! two experiments request the same (policy, workload) pair concurrently,
//! exactly one simulation runs and both share the report. The Base-run
//! dependency of every goal-calibrated run is scheduled explicitly:
//! [`Ctx::prefetch`] runs all required Base runs (stage 1) before fanning
//! out the managed runs (stage 2). Because each run owns its seeded RNG
//! and all output formatting happens serially from ordered results,
//! reports — and therefore CSVs — are bit-identical at any `--jobs` value.

use array::{run_policy, run_policy_streamed, ArrayConfig, Redundancy, RunOptions, RunReport};
use diskmodel::{DiskSpec, SpeedLevel};
use hibernator::{Hibernator, HibernatorConfig, MigrationMode};
use parallel::{OnceMap, Pool};
use policies::{
    maid_array_config, BanditPolicy, DrpmPolicy, FixedSpeed, LfuPolicy, MaidConfig, MaidPolicy,
    PdcPolicy, SleepScalePolicy, TpmPolicy,
};
use simkit::{SimDuration, TimeSeries};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use workload::{Trace, TraceSource, WorkloadSpec};

/// Which workload a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Steady, skewed, read-mostly transaction processing.
    Oltp,
    /// Diurnal, bursty file-server traffic.
    Cello,
}

impl Workload {
    /// Short label for tables and CSV.
    pub fn label(self) -> &'static str {
        match self {
            Workload::Oltp => "OLTP",
            Workload::Cello => "Cello",
        }
    }
}

/// Every policy the comparison tables include.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// No power management (all disks full speed).
    Base,
    /// Threshold spin-down.
    Tpm,
    /// Fine-grained per-disk RPM control.
    Drpm,
    /// Popular data concentration + TPM.
    Pdc,
    /// Cache disks + TPM.
    Maid,
    /// The paper's system.
    Hibernator,
    /// Hibernator without data migration (ablation).
    HibernatorNoMig,
    /// Hibernator with random placement (ablation).
    HibernatorRandMig,
    /// Hibernator without the performance guard (ablation).
    HibernatorNoGuard,
    /// Hibernator with the LFU promote/demote migration policy.
    HibernatorLfu,
    /// Hibernator with the ε-greedy/UCB bandit tier classifier.
    HibernatorBandit,
    /// Hibernator with the SleepScale-style joint speed+sleep optimizer.
    SleepScale,
    /// Everything pinned at the slowest level (bound).
    FixedSlow,
}

impl PolicyKind {
    /// The seven policies of the headline comparison.
    pub const HEADLINE: [PolicyKind; 7] = [
        PolicyKind::Base,
        PolicyKind::Tpm,
        PolicyKind::Drpm,
        PolicyKind::Pdc,
        PolicyKind::Maid,
        PolicyKind::Hibernator,
        PolicyKind::SleepScale,
    ];

    /// The four Hibernator-hosted migration policies the adaptation-race
    /// experiment (`repro adapt`) ranks against each other.
    pub const ADAPTIVE: [PolicyKind; 4] = [
        PolicyKind::Hibernator,
        PolicyKind::HibernatorLfu,
        PolicyKind::HibernatorBandit,
        PolicyKind::SleepScale,
    ];

    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Base => "Base",
            PolicyKind::Tpm => "TPM",
            PolicyKind::Drpm => "DRPM",
            PolicyKind::Pdc => "PDC",
            PolicyKind::Maid => "MAID",
            PolicyKind::Hibernator => "Hibernator",
            PolicyKind::HibernatorNoMig => "Hib(no-mig)",
            PolicyKind::HibernatorRandMig => "Hib(rand-mig)",
            PolicyKind::HibernatorNoGuard => "Hib(no-guard)",
            PolicyKind::HibernatorLfu => "Hib-LFU",
            PolicyKind::HibernatorBandit => "Hib-Bandit",
            PolicyKind::SleepScale => "SleepScale",
            PolicyKind::FixedSlow => "Fixed(slow)",
        }
    }
}

/// Cache key of a standard-scenario run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RunKey {
    /// The policy that managed the run.
    pub policy: PolicyKind,
    /// The workload it ran against.
    pub workload: Workload,
}

/// Cache key of a generated trace: workload plus the exact bit pattern of
/// the load multiplier. Keying by bits (not a rounded value) means loads
/// that differ at all — however close — get distinct traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct TraceKey {
    workload: Workload,
    load_bits: u64,
}

/// Experiment-wide context: scale, seed, output directory, the worker
/// pool, and single-flight run/trace caches so `all` never simulates the
/// same (policy, workload) pair twice — even when experiments request it
/// concurrently.
pub struct Ctx {
    /// Reduced scale for smoke runs (`--quick`).
    pub quick: bool,
    /// Master seed.
    pub seed: u64,
    /// Where CSV outputs land.
    pub out_dir: std::path::PathBuf,
    /// Optional horizon override in hours (`--horizon-h`), for cheap
    /// smoke/determinism runs below even `--quick` scale.
    horizon_h: Option<f64>,
    pool: Pool,
    cache: OnceMap<RunKey, RunReport>,
    traces: OnceMap<TraceKey, Trace>,
    goals: OnceMap<Workload, f64>,
    timings: Mutex<Vec<(String, f64)>>,
    /// When true, every run records a telemetry stream (collected in
    /// `streams`, flushed by [`Ctx::write_telemetry`]).
    telemetry: bool,
    streams: Mutex<Vec<telemetry::RunStream>>,
}

impl Ctx {
    /// Creates the context, ensuring the output directory exists. `jobs`
    /// is the maximum number of simulations in flight at once.
    pub fn new(quick: bool, seed: u64, out_dir: impl Into<std::path::PathBuf>, jobs: usize) -> Ctx {
        let out_dir = out_dir.into();
        std::fs::create_dir_all(&out_dir).expect("create results dir");
        Ctx {
            quick,
            seed,
            out_dir,
            horizon_h: None,
            pool: Pool::new(jobs),
            cache: OnceMap::new(),
            traces: OnceMap::new(),
            goals: OnceMap::new(),
            timings: Mutex::new(Vec::new()),
            telemetry: false,
            streams: Mutex::new(Vec::new()),
        }
    }

    /// Enables telemetry capture for every subsequent run.
    pub fn set_telemetry(&mut self, on: bool) {
        self.telemetry = on;
    }

    /// The warm-up cutoff the experiments use for goal-violation
    /// accounting (a tenth of the horizon).
    pub fn warmup_s(&self) -> f64 {
        self.duration_s() * 0.1
    }

    /// Telemetry configuration for a run labelled `label` with goal
    /// `goal_s`, or `None` when capture is off.
    pub fn telemetry_config(
        &self,
        label: &str,
        goal_s: f64,
        warmup_s: f64,
    ) -> Option<telemetry::TelemetryConfig> {
        if !self.telemetry {
            return None;
        }
        Some(telemetry::TelemetryConfig::new(label).with_goal(goal_s, warmup_s))
    }

    /// Banks a finished run's telemetry stream for the final flush.
    pub fn collect_stream(&self, stream: Option<telemetry::RunStream>) {
        if let Some(s) = stream {
            self.streams
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(s);
        }
    }

    /// Writes every collected telemetry stream to `path` as one JSON-lines
    /// file, ordered by run label — the completion order of parallel runs
    /// never leaks into the output, so the file is byte-identical at any
    /// `--jobs` value.
    pub fn write_telemetry(&self, path: &std::path::Path) {
        let mut streams = self
            .streams
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        streams.sort_by(|a, b| a.label.cmp(&b.label));
        let mut body: Vec<u8> = Vec::new();
        for s in &streams {
            body.extend_from_slice(&s.bytes);
        }
        std::fs::write(path, body).expect("write telemetry stream");
        println!("  -> {} ({} run stream(s))", path.display(), streams.len());
    }

    /// Overrides the simulated horizon (hours). Used by tests and smoke
    /// runs that need sub-`--quick` durations.
    pub fn set_horizon_hours(&mut self, hours: f64) {
        assert!(hours > 0.0 && hours.is_finite(), "bad horizon {hours}");
        self.horizon_h = Some(hours);
    }

    /// The worker pool experiments schedule ad-hoc run batches on.
    pub fn pool(&self) -> &Pool {
        &self.pool
    }

    /// Simulated duration of the standard runs.
    pub fn duration_s(&self) -> f64 {
        if let Some(h) = self.horizon_h {
            h * 3600.0
        } else if self.quick {
            2.0 * 3600.0
        } else {
            24.0 * 3600.0
        }
    }

    /// Disks in the standard array.
    pub fn disks(&self) -> usize {
        16
    }

    /// The standard goal factor (goal = factor × Base mean response).
    pub fn goal_factor(&self) -> f64 {
        1.3
    }

    /// The standard array config for a workload (6-level multi-speed).
    pub fn array_config(&self, w: Workload) -> ArrayConfig {
        self.array_config_with(w, self.disks(), 6)
    }

    /// Array config with explicit disk count and speed-level count.
    pub fn array_config_with(&self, w: Workload, disks: usize, levels: usize) -> ArrayConfig {
        let spec = self.workload_spec(w, 1.0);
        ArrayConfig {
            disks,
            spec: DiskSpec::ultrastar_multispeed(levels),
            chunk_sectors: 2048,
            volume_chunks: (spec.footprint_sectors() / 2048) as u32,
            redundancy: Redundancy::None,
            seed: self.seed,
            stripe_width: None,
        }
    }

    /// The workload spec at a load multiplier.
    pub fn workload_spec(&self, w: Workload, load: f64) -> WorkloadSpec {
        match w {
            Workload::Oltp => WorkloadSpec::oltp(self.duration_s(), 150.0 * load),
            Workload::Cello => WorkloadSpec::cello_like(self.duration_s(), 80.0 * load),
        }
    }

    /// The standard trace for a workload (cached).
    pub fn trace(&self, w: Workload) -> Arc<Trace> {
        self.trace_with_load(w, 1.0)
    }

    /// Trace at a load multiplier (cached, single-flight, keyed by the
    /// multiplier's exact bits).
    pub fn trace_with_load(&self, w: Workload, load: f64) -> Arc<Trace> {
        let key = TraceKey {
            workload: w,
            load_bits: load.to_bits(),
        };
        self.traces
            .get_or_compute(key, || self.workload_spec(w, load).generate(self.seed))
    }

    /// Default run options for the standard duration.
    pub fn run_options(&self) -> RunOptions {
        let mut o = RunOptions::for_horizon(self.duration_s());
        o.series_bucket = SimDuration::from_secs(if self.quick { 120.0 } else { 600.0 });
        o.sample_interval = o.series_bucket;
        o
    }

    /// The calibrated response-time goal for a workload:
    /// `goal_factor × Base mean response` (Base run cached).
    pub fn goal_s(&self, w: Workload) -> f64 {
        *self.goals.get_or_compute(w, || {
            let base = self.report(PolicyKind::Base, w);
            base.response.mean() * self.goal_factor()
        })
    }

    /// Hibernator config for a goal at standard scale.
    pub fn hibernator_config(&self, goal_s: f64) -> HibernatorConfig {
        let mut cfg = HibernatorConfig::for_goal(goal_s);
        if self.quick || self.horizon_h.is_some() {
            cfg.epoch = SimDuration::from_mins(20.0);
            cfg.heat_tau = SimDuration::from_mins(20.0);
        }
        cfg
    }

    /// Runs (or fetches from the single-flight cache) a standard-scenario
    /// policy run. Safe to call from any worker; the goal's Base-run
    /// dependency resolves through the cache (use [`Ctx::prefetch`] to
    /// schedule it explicitly instead of discovering it mid-run).
    pub fn report(&self, p: PolicyKind, w: Workload) -> Arc<RunReport> {
        let key = RunKey {
            policy: p,
            workload: w,
        };
        self.cache.get_or_compute(key, || {
            let trace = self.trace(w);
            let config = self.array_config(w);
            let mut opts = self.run_options();
            // Resolve the goal *before* the timed section so a managed
            // run's timing never includes waiting on the Base run.
            let goal = if p == PolicyKind::Base {
                f64::MAX
            } else {
                self.goal_s(w)
            };
            let label = format!("{}/{}", p.label(), w.label());
            opts.telemetry = self.telemetry_config(&label, goal, self.warmup_s());
            let mut report = self.timed(&label, || self.run_kind(p, config, &trace, opts, goal));
            self.collect_stream(report.telemetry.take());
            report
        })
    }

    /// Schedules a batch of standard-scenario runs on the pool as an
    /// explicit two-stage plan: stage 1 runs the Base run (and goal
    /// calibration) of every workload mentioned, stage 2 runs everything
    /// else. After this, [`Ctx::report`] for any listed pair is a cache
    /// hit, so experiment bodies can format output serially.
    pub fn prefetch(&self, pairs: &[(PolicyKind, Workload)]) {
        let mut workloads: Vec<Workload> = Vec::new();
        for &(_, w) in pairs {
            if !workloads.contains(&w) {
                workloads.push(w);
            }
        }
        self.pool.map(
            workloads
                .iter()
                .map(|&w| {
                    move || {
                        self.goal_s(w); // runs Base, then derives the goal
                    }
                })
                .collect::<Vec<_>>(),
        );

        let mut rest: Vec<(PolicyKind, Workload)> = Vec::new();
        for &(p, w) in pairs {
            if p != PolicyKind::Base && !rest.contains(&(p, w)) {
                rest.push((p, w));
            }
        }
        self.pool.map(
            rest.into_iter()
                .map(|(p, w)| {
                    move || {
                        self.report(p, w);
                    }
                })
                .collect::<Vec<_>>(),
        );
    }

    /// Runs `f`, records its wall-clock under `label`, and prints a
    /// per-run completion line. Worker threads may interleave these lines;
    /// the CSV outputs are unaffected (they are formatted serially).
    pub fn timed<T>(&self, label: &str, f: impl FnOnce() -> T) -> T {
        let started = std::time::Instant::now();
        let out = f();
        let secs = started.elapsed().as_secs_f64();
        println!("  [run] {label}: {secs:.2} s");
        self.timings
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push((label.to_string(), secs));
        out
    }

    /// Prints the per-run wall-clock summary (slowest first) and the total
    /// simulation time across all workers.
    pub fn print_timings(&self) {
        let mut t = self
            .timings
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        if t.is_empty() {
            return;
        }
        t.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let total: f64 = t.iter().map(|x| x.1).sum();
        println!(
            "\n# run timings — {} runs, {total:.1} s of simulation across {} worker(s)",
            t.len(),
            self.pool.workers()
        );
        for (label, secs) in &t {
            println!("  {secs:>8.2} s  {label}");
        }
    }

    /// Writes a CSV file into the results directory.
    pub fn write_csv(&self, name: &str, header: &str, rows: &[String]) {
        let path = self.out_dir.join(name);
        let mut body = String::with_capacity(rows.len() * 32 + header.len() + 1);
        let _ = writeln!(body, "{header}");
        for r in rows {
            let _ = writeln!(body, "{r}");
        }
        std::fs::write(&path, body).expect("write csv");
        println!("  -> {}", path.display());
    }
}

impl Ctx {
    /// Runs an arbitrary policy kind against a given config/trace. `goal_s`
    /// is used by goal-aware policies and ignored by the rest. Hibernator
    /// variants pick up the context's scale-appropriate epoch settings.
    pub fn run_kind(
        &self,
        p: PolicyKind,
        config: ArrayConfig,
        trace: &Trace,
        opts: RunOptions,
        goal_s: f64,
    ) -> RunReport {
        match p {
            PolicyKind::Base => run_policy(config, array::BasePolicy, trace, opts),
            PolicyKind::Tpm => run_policy(config, TpmPolicy::competitive(), trace, opts),
            PolicyKind::Drpm => run_policy(config, DrpmPolicy::default(), trace, opts),
            PolicyKind::Pdc => run_policy(config, PdcPolicy::default(), trace, opts),
            PolicyKind::Maid => {
                let cache_disks = (config.disks / 8).max(1) + 1; // 16 disks -> 3
                let cfg = maid_array_config(config, cache_disks);
                run_policy(
                    cfg,
                    MaidPolicy::new(MaidConfig {
                        cache_disks,
                        cache_chunks_per_disk: 2048,
                        tpm_threshold_s: None,
                    }),
                    trace,
                    opts,
                )
            }
            PolicyKind::Hibernator => {
                let cfg = self.hibernator_config(goal_s);
                run_policy(config, Hibernator::new(cfg), trace, opts)
            }
            PolicyKind::HibernatorNoMig => {
                let cfg = self.hibernator_config(goal_s);
                run_policy(
                    config,
                    Hibernator::new(cfg).without_migration(),
                    trace,
                    opts,
                )
            }
            PolicyKind::HibernatorRandMig => {
                let mut cfg = self.hibernator_config(goal_s);
                cfg.migration_mode = MigrationMode::Random;
                run_policy(config, Hibernator::new(cfg), trace, opts)
            }
            PolicyKind::HibernatorNoGuard => {
                let cfg = self.hibernator_config(goal_s);
                run_policy(config, Hibernator::new(cfg).without_guard(), trace, opts)
            }
            PolicyKind::HibernatorLfu => {
                let cfg = self.hibernator_config(goal_s);
                run_policy(
                    config,
                    Hibernator::with_policy(cfg, Box::new(LfuPolicy::new())),
                    trace,
                    opts,
                )
            }
            PolicyKind::HibernatorBandit => {
                let cfg = self.hibernator_config(goal_s);
                run_policy(
                    config,
                    Hibernator::with_policy(cfg, Box::new(BanditPolicy::new())),
                    trace,
                    opts,
                )
            }
            PolicyKind::SleepScale => {
                let cfg = self.hibernator_config(goal_s);
                run_policy(
                    config,
                    Hibernator::with_policy(cfg, Box::new(SleepScalePolicy::new())),
                    trace,
                    opts,
                )
            }
            PolicyKind::FixedSlow => {
                run_policy(config, FixedSpeed::new(SpeedLevel(0)), trace, opts)
            }
        }
    }

    /// Streaming twin of [`Ctx::run_kind`]: the same policy dispatch fed
    /// from a [`TraceSource`] instead of a materialised trace. The two
    /// paths are bit-identical for equal request sequences (locked down
    /// by `tests/stream_equivalence.rs`); this one never allocates the
    /// trace, so the scenario sweep's superposed/rewritten streams run at
    /// O(1) trace memory.
    pub fn run_kind_streamed(
        &self,
        p: PolicyKind,
        config: ArrayConfig,
        source: impl TraceSource,
        opts: RunOptions,
        goal_s: f64,
    ) -> RunReport {
        match p {
            PolicyKind::Base => run_policy_streamed(config, array::BasePolicy, source, opts),
            PolicyKind::Tpm => run_policy_streamed(config, TpmPolicy::competitive(), source, opts),
            PolicyKind::Drpm => run_policy_streamed(config, DrpmPolicy::default(), source, opts),
            PolicyKind::Pdc => run_policy_streamed(config, PdcPolicy::default(), source, opts),
            PolicyKind::Maid => {
                let cache_disks = (config.disks / 8).max(1) + 1; // 16 disks -> 3
                let cfg = maid_array_config(config, cache_disks);
                run_policy_streamed(
                    cfg,
                    MaidPolicy::new(MaidConfig {
                        cache_disks,
                        cache_chunks_per_disk: 2048,
                        tpm_threshold_s: None,
                    }),
                    source,
                    opts,
                )
            }
            PolicyKind::Hibernator => {
                let cfg = self.hibernator_config(goal_s);
                run_policy_streamed(config, Hibernator::new(cfg), source, opts)
            }
            PolicyKind::HibernatorNoMig => {
                let cfg = self.hibernator_config(goal_s);
                run_policy_streamed(
                    config,
                    Hibernator::new(cfg).without_migration(),
                    source,
                    opts,
                )
            }
            PolicyKind::HibernatorRandMig => {
                let mut cfg = self.hibernator_config(goal_s);
                cfg.migration_mode = MigrationMode::Random;
                run_policy_streamed(config, Hibernator::new(cfg), source, opts)
            }
            PolicyKind::HibernatorNoGuard => {
                let cfg = self.hibernator_config(goal_s);
                run_policy_streamed(config, Hibernator::new(cfg).without_guard(), source, opts)
            }
            PolicyKind::HibernatorLfu => {
                let cfg = self.hibernator_config(goal_s);
                run_policy_streamed(
                    config,
                    Hibernator::with_policy(cfg, Box::new(LfuPolicy::new())),
                    source,
                    opts,
                )
            }
            PolicyKind::HibernatorBandit => {
                let cfg = self.hibernator_config(goal_s);
                run_policy_streamed(
                    config,
                    Hibernator::with_policy(cfg, Box::new(BanditPolicy::new())),
                    source,
                    opts,
                )
            }
            PolicyKind::SleepScale => {
                let cfg = self.hibernator_config(goal_s);
                run_policy_streamed(
                    config,
                    Hibernator::with_policy(cfg, Box::new(SleepScalePolicy::new())),
                    source,
                    opts,
                )
            }
            PolicyKind::FixedSlow => {
                run_policy_streamed(config, FixedSpeed::new(SpeedLevel(0)), source, opts)
            }
        }
    }
}

/// Fraction of post-warmup series buckets whose mean response exceeded the
/// goal — the "goal violation" metric of the T4 table. A bucket counts
/// only if it starts at or after `warmup_s`: a bucket straddling the
/// warmup boundary mixes warm-up samples into its mean, so it is excluded
/// rather than classified by its midpoint.
pub fn violation_fraction(series: &TimeSeries, goal_s: f64, warmup_s: f64) -> f64 {
    let half_width = series.bucket_width().as_secs() / 2.0;
    let (mut kept, mut over) = (0u64, 0u64);
    for (mid, mean) in series.mean_points() {
        if mid - half_width < warmup_s {
            continue;
        }
        kept += 1;
        if mean > goal_s {
            over += 1;
        }
    }
    if kept == 0 {
        0.0
    } else {
        over as f64 / kept as f64
    }
}

/// Prints a fixed-width table row.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    let mut s = String::new();
    for (c, w) in cells.iter().zip(widths) {
        let _ = write!(s, "{c:>w$}  ", w = w);
    }
    s
}

/// Compile-time proof that the shared context can cross worker threads:
/// every field is `Send + Sync`, which is what lets `prefetch` borrow it
/// from scoped workers.
const _: () = {
    const fn assert_sync<T: Sync>() {}
    assert_sync::<Ctx>();
    assert_sync::<HashMap<RunKey, Arc<RunReport>>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::SimTime;

    #[test]
    fn trace_keys_distinguish_close_loads() {
        // 1.0 and 1.0004 used to collide under permille rounding; bit keys
        // must keep them apart.
        let a = 1.0f64;
        let b = 1.0004f64;
        assert_ne!(a.to_bits(), b.to_bits());
        let ka = TraceKey {
            workload: Workload::Oltp,
            load_bits: a.to_bits(),
        };
        let kb = TraceKey {
            workload: Workload::Oltp,
            load_bits: b.to_bits(),
        };
        assert_ne!(ka, kb);
    }

    #[test]
    fn violation_excludes_straddling_bucket() {
        // 100 s buckets; warmup ends at 150 s, inside bucket [100, 200).
        let mut s = TimeSeries::new(SimDuration::from_secs(100.0));
        s.record(SimTime::from_secs(150.0), 10.0); // straddles: excluded
        s.record(SimTime::from_secs(250.0), 10.0); // over goal
        s.record(SimTime::from_secs(350.0), 1.0); // under goal
        let f = violation_fraction(&s, 5.0, 150.0);
        assert_eq!(f, 0.5, "straddling bucket must not count");
    }

    #[test]
    fn violation_counts_bucket_starting_exactly_at_warmup() {
        let mut s = TimeSeries::new(SimDuration::from_secs(100.0));
        s.record(SimTime::from_secs(150.0), 10.0); // bucket starts at 100 < 100? no: warmup 100
        s.record(SimTime::from_secs(50.0), 10.0); // bucket [0,100): before warmup
        let f = violation_fraction(&s, 5.0, 100.0);
        // The [100,200) bucket starts exactly at the warmup edge: counted.
        assert_eq!(f, 1.0);
    }

    #[test]
    fn violation_empty_after_warmup_is_zero() {
        let mut s = TimeSeries::new(SimDuration::from_secs(100.0));
        s.record(SimTime::from_secs(10.0), 10.0);
        assert_eq!(violation_fraction(&s, 5.0, 1000.0), 0.0);
    }
}
