//! `tracegen` — generate synthetic workload traces as CSV or JSON lines.
//!
//! ```text
//! tracegen <oltp|cello> [--duration SECS] [--rate REQ_PER_S] [--seed N]
//!          [--format csv|jsonl] [--out PATH] [--stats]
//! ```
//!
//! Writes the trace to `--out` (default stdout), optionally printing the
//! workload-characteristics summary to stderr. The output feeds straight
//! back into the simulator via `workload::trace_io`, so users can inspect,
//! filter, or splice traces with ordinary text tools.

use workload::trace_io::{write_csv, write_jsonl};
use workload::{TraceStats, WorkloadSpec};

fn usage() -> ! {
    eprintln!(
        "usage: tracegen <oltp|cello> [--duration SECS] [--rate REQ_PER_S] \
         [--seed N] [--format csv|jsonl] [--out PATH] [--stats]"
    );
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(kind) = args.next() else { usage() };
    let mut duration = 3600.0f64;
    let mut rate = 100.0f64;
    let mut seed = 42u64;
    let mut format = String::from("csv");
    let mut out: Option<String> = None;
    let mut stats = false;

    while let Some(a) = args.next() {
        match a.as_str() {
            "--duration" => {
                duration = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--rate" => {
                rate = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--format" => format = args.next().unwrap_or_else(|| usage()),
            "--out" => out = Some(args.next().unwrap_or_else(|| usage())),
            "--stats" => stats = true,
            _ => usage(),
        }
    }

    let spec = match kind.as_str() {
        "oltp" => WorkloadSpec::oltp(duration, rate),
        "cello" => WorkloadSpec::cello_like(duration, rate),
        _ => usage(),
    };
    let trace = spec.generate(seed);

    if stats {
        match TraceStats::compute(&trace) {
            Some(s) => eprintln!(
                "# {} requests, {:.1} req/s, {:.0}% reads, {:.1} KiB mean, \
                 footprint {} MiB, top-10% share {:.2}, peak/mean {:.2}",
                s.requests,
                s.mean_rate,
                s.read_fraction * 100.0,
                s.mean_size_kib,
                s.footprint_mib,
                s.top_decile_share,
                s.peak_to_mean
            ),
            None => eprintln!("# empty trace"),
        }
    }

    let result = match out {
        Some(path) => {
            let f = std::fs::File::create(&path).unwrap_or_else(|e| {
                eprintln!("tracegen: cannot create {path}: {e}");
                std::process::exit(1);
            });
            match format.as_str() {
                "csv" => write_csv(&trace, f),
                "jsonl" => write_jsonl(&trace, f),
                _ => usage(),
            }
        }
        None => {
            let stdout = std::io::stdout();
            match format.as_str() {
                "csv" => write_csv(&trace, stdout.lock()),
                "jsonl" => write_jsonl(&trace, stdout.lock()),
                _ => usage(),
            }
        }
    };
    if let Err(e) = result {
        eprintln!("tracegen: write failed: {e}");
        std::process::exit(1);
    }
}
