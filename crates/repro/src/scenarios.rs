//! The adversarial scenario sweep (see DESIGN.md §15).
//!
//! Each scenario of [`Scenario::standard_suite`] — flash crowd, mid-run
//! popularity flip, write flood, scan poison — plus the unmodified
//! baseline is streamed into every headline policy. The sweep never
//! materialises a trace: every grid point regenerates its request
//! sequence lazily through [`Scenario::apply`] / [`WorkloadSpec::stream`],
//! so the grid costs O(1) trace memory per in-flight run.
//!
//! Goals are calibrated *per scenario* (1.3 × that scenario's Base mean
//! response): an adversarial load makes even the unmanaged array slower,
//! and holding policies to the clean-trace goal would conflate "energy
//! policy degraded under attack" with "the attack itself is slow".
//!
//! The baseline/Base grid point doubles as the harness-level streaming
//! anchor: it must match the standard materialised OLTP Base run bit for
//! bit.

use crate::common::{row, violation_fraction, Ctx, PolicyKind, Workload};
use array::RunReport;
use workload::{Scenario, TraceSource, WorkloadSpec};

/// The scenario axis: the unmodified baseline plus the standard
/// adversarial suite. Slugs are index-prefixed so sorted run labels (and
/// therefore the telemetry stream) keep sweep order.
pub(crate) fn scenario_axis(duration_s: f64) -> Vec<(String, Option<Scenario>)> {
    let mut axis = vec![("0_baseline".to_string(), None)];
    for (i, sc) in Scenario::standard_suite(duration_s).into_iter().enumerate() {
        axis.push((format!("{}_{}", i + 1, sc.name()), Some(sc)));
    }
    axis
}

/// Deterministic run label for one (scenario, policy) grid point.
pub(crate) fn label(slug: &str, policy: PolicyKind) -> String {
    format!("scenario/{slug}/{}", policy.label())
}

/// The streaming source of one scenario over the base spec.
fn source_for(spec: &WorkloadSpec, sc: &Option<Scenario>, seed: u64) -> Box<dyn TraceSource> {
    match sc {
        None => Box::new(spec.stream(seed)),
        Some(sc) => sc.apply(spec, seed),
    }
}

/// The scenario sweep experiment.
pub fn scenarios(ctx: &Ctx) {
    println!("\n== SCENARIOS: adversarial workload suite x headline policies (OLTP base) ==");
    let spec = ctx.workload_spec(Workload::Oltp, 1.0);
    let config = ctx.array_config(Workload::Oltp);
    let axis = scenario_axis(ctx.duration_s());

    // Stage 1: one unmanaged Base run per scenario calibrates that
    // scenario's response-time goal.
    let bases: Vec<RunReport> = ctx.pool().map(
        axis.iter()
            .map(|(slug, sc)| {
                let (spec, config) = (&spec, &config);
                move || {
                    let name = label(slug, PolicyKind::Base);
                    ctx.timed(&name, || {
                        let mut opts = ctx.run_options();
                        opts.telemetry = ctx.telemetry_config(&name, f64::MAX, ctx.warmup_s());
                        let mut r = ctx.run_kind_streamed(
                            PolicyKind::Base,
                            config.clone(),
                            source_for(spec, sc, ctx.seed),
                            opts,
                            f64::MAX,
                        );
                        ctx.collect_stream(r.telemetry.take());
                        r
                    })
                }
            })
            .collect::<Vec<_>>(),
    );
    let goals: Vec<f64> = bases
        .iter()
        .map(|b| b.response.mean() * ctx.goal_factor())
        .collect();

    // Stage 2: the managed headline policies fan out over the grid.
    let managed: Vec<(usize, PolicyKind)> = (0..axis.len())
        .flat_map(|i| PolicyKind::HEADLINE[1..].iter().map(move |&p| (i, p)))
        .collect();
    let runs: Vec<RunReport> = ctx.pool().map(
        managed
            .iter()
            .map(|&(i, p)| {
                let (spec, config, axis, goals) = (&spec, &config, &axis, &goals);
                move || {
                    let (slug, sc) = &axis[i];
                    let name = label(slug, p);
                    ctx.timed(&name, || {
                        let mut opts = ctx.run_options();
                        opts.telemetry = ctx.telemetry_config(&name, goals[i], ctx.warmup_s());
                        let mut r = ctx.run_kind_streamed(
                            p,
                            config.clone(),
                            source_for(spec, sc, ctx.seed),
                            opts,
                            goals[i],
                        );
                        ctx.collect_stream(r.telemetry.take());
                        r
                    })
                }
            })
            .collect::<Vec<_>>(),
    );

    let widths = [13, 11, 8, 11, 8, 9, 7, 9];
    println!(
        "{}",
        row(
            &[
                "scenario",
                "policy",
                "goal(ms)",
                "energy(kJ)",
                "save%",
                "mean(ms)",
                "viol%",
                "completed"
            ]
            .map(String::from),
            &widths
        )
    );
    let mut rows = Vec::new();
    for (i, (slug, _)) in axis.iter().enumerate() {
        let goal = goals[i];
        let mut emit = |p: PolicyKind, r: &RunReport| {
            let save = (1.0 - r.energy.total_joules() / bases[i].energy.total_joules()) * 100.0;
            let cells = [
                slug.clone(),
                p.label().to_string(),
                format!("{:.2}", goal * 1e3),
                format!("{:.0}", r.energy.total_joules() / 1e3),
                format!("{save:.1}"),
                format!("{:.2}", r.response.mean() * 1e3),
                format!(
                    "{:.1}",
                    violation_fraction(&r.response_series, goal, ctx.warmup_s()) * 100.0
                ),
                format!("{}", r.completed),
            ];
            println!("{}", row(&cells, &widths));
            rows.push(format!(
                "{slug},{},{},{},{},{},{},{},{}",
                p.label(),
                cells[2],
                cells[3],
                cells[4],
                cells[5],
                cells[6],
                r.completed,
                r.incomplete,
            ));
        };
        emit(PolicyKind::Base, &bases[i]);
        let per = PolicyKind::HEADLINE.len() - 1;
        for (k, &p) in PolicyKind::HEADLINE[1..].iter().enumerate() {
            emit(p, &runs[i * per + k]);
        }
    }
    ctx.write_csv(
        "scenario_sweep.csv",
        "scenario,policy,goal_ms,energy_kj,savings_pct,mean_ms,violation_pct,completed,incomplete",
        &rows,
    );

    // The streaming anchor: the untouched-baseline Base point must agree
    // with the standard materialised OLTP Base run, bit for bit.
    let plain = ctx.report(PolicyKind::Base, Workload::Oltp);
    assert_eq!(
        bases[0].energy.total_joules(),
        plain.energy.total_joules(),
        "streamed baseline diverged from the materialised Base run"
    );
    assert_eq!(
        bases[0].response.mean(),
        plain.response.mean(),
        "streamed baseline response diverged from the materialised Base run"
    );
    println!("anchor check: streamed baseline matches the materialised Base run exactly");
}
