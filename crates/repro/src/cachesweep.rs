//! The controller-cache sensitivity sweep (see DESIGN.md §12).
//!
//! Hibernator rides the OLTP trace with the controller DRAM cache swept
//! over capacity × write-back interval, plus one cache-off point as the
//! anchor: the anchor row must match the plain Hibernator run exactly.
//! The interesting tension is visible in the two extremes: a large cache
//! with a long flush interval absorbs the most foreground traffic (best
//! response times, fewest disk wakes), but every flush then lands as a
//! bigger batch of deferred writes that can yank sleeping disks out of
//! standby at once.

use crate::common::{row, violation_fraction, Ctx, PolicyKind, Workload};
use array::{RunReport, Simulation};
use hibernator::Hibernator;
use workload::TraceStats;

/// The swept grid: the cache-off anchor plus capacity × flush interval.
/// Chunks are 1 MiB at the standard scale, so the capacities are 1, 4,
/// and 16 GiB of controller DRAM.
pub(crate) fn grid() -> Vec<(u32, f64)> {
    let mut g = vec![(0u32, 0.0f64)];
    for cap in [1024u32, 4096, 16384] {
        for interval in [10.0f64, 60.0, 300.0] {
            g.push((cap, interval));
        }
    }
    g
}

/// Deterministic run label for a grid point; zero-padded so the sorted
/// stream order matches the grid order.
pub(crate) fn label(capacity: u32, interval_s: f64) -> String {
    format!("cache/c{capacity:05}_f{interval_s:03.0}")
}

/// The cache sweep experiment.
pub fn cachesweep(ctx: &Ctx) {
    println!("\n== CACHE: controller DRAM cache sensitivity (Hibernator/OLTP) ==");
    let config = ctx.array_config(Workload::Oltp);
    let trace = ctx.trace(Workload::Oltp);
    let stats = TraceStats::compute(&trace).expect("non-empty trace");
    println!(
        "trace re-reference share {:.1}% — the hit-rate ceiling of any chunk-granular cache",
        stats.re_reference_share * 100.0
    );

    // Stage 1: the unmanaged Base run calibrates the response-time goal,
    // exactly as the standard tables do.
    let goal = ctx.goal_s(Workload::Oltp);
    println!("goal {:.2} ms (1.3 x Base mean)", goal * 1e3);

    // Stage 2: the full grid fans out across the pool. Each point is an
    // independent seeded simulation; results come back in grid order
    // regardless of finish order, so the table and CSV are deterministic.
    let points = grid();
    let runs: Vec<RunReport> = ctx.pool().map(
        points
            .iter()
            .map(|&(cap, interval)| {
                let (config, trace) = (&config, &trace);
                move || {
                    let name = label(cap, interval);
                    ctx.timed(&name, || {
                        let mut opts = ctx.run_options();
                        if cap > 0 {
                            let mut c = cache::CacheConfig::with_capacity(cap);
                            c.flush_interval_s = interval;
                            opts.cache = Some(c);
                        }
                        opts.telemetry = ctx.telemetry_config(&name, goal, ctx.warmup_s());
                        let cfg = ctx.hibernator_config(goal);
                        let sim =
                            Simulation::new(config.clone(), Hibernator::new(cfg), trace, opts);
                        let mut r = sim.run();
                        ctx.collect_stream(r.telemetry.take());
                        r
                    })
                }
            })
            .collect::<Vec<_>>(),
    );

    let widths = [10, 11, 11, 9, 7, 7, 9, 9, 8];
    println!(
        "{}",
        row(
            &[
                "cap(chunk)",
                "flush(s)",
                "energy(kJ)",
                "mean(ms)",
                "viol%",
                "hit%",
                "absorbs",
                "wbacks",
                "flushes"
            ]
            .map(String::from),
            &widths
        )
    );
    let mut rows = Vec::new();
    for (&(cap, interval), report) in points.iter().zip(&runs) {
        let cs = report.cache.unwrap_or_default();
        let cells = [
            format!("{cap}"),
            if cap == 0 {
                "-".to_string()
            } else {
                format!("{interval:.0}")
            },
            format!("{:.0}", report.energy.total_joules() / 1e3),
            format!("{:.2}", report.response.mean() * 1e3),
            format!(
                "{:.1}",
                violation_fraction(&report.response_series, goal, ctx.warmup_s()) * 100.0
            ),
            format!("{:.1}", cs.read_hit_rate() * 100.0),
            format!("{}", cs.write_absorbs),
            format!("{}", cs.writebacks),
            format!("{}", cs.flushes),
        ];
        println!("{}", row(&cells, &widths));
        rows.push(format!(
            "{cap},{interval},{},{},{},{},{},{},{},{}",
            cells[2],
            cells[3],
            cells[4],
            cells[5],
            cs.read_hits,
            cs.write_absorbs,
            cs.writebacks,
            cs.flushes,
        ));
    }
    ctx.write_csv(
        "cache_sweep.csv",
        "capacity_chunks,flush_interval_s,energy_kj,mean_ms,violation_pct,hit_pct,read_hits,write_absorbs,writebacks,flushes",
        &rows,
    );

    // The anchor row must agree with a plain (cache-less) Hibernator run:
    // cache off is the pre-cache simulator, bit for bit.
    let anchor = &runs[0];
    let plain = ctx.report(PolicyKind::Hibernator, Workload::Oltp);
    assert_eq!(
        anchor.energy.total_joules(),
        plain.energy.total_joules(),
        "cache-off sweep point diverged from the plain Hibernator run"
    );
    println!("anchor check: cache-off point matches the plain Hibernator run exactly");
}
