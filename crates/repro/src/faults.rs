//! The fault-storm experiment: every headline policy rides out the same
//! scripted failure sequence (see DESIGN.md §4.8).
//!
//! The storm is *identical* across policies — same two whole-disk failures
//! at the same instants, with the same transient-error and sticky-spindle
//! precursors — so the comparison isolates how each policy copes: how much
//! foreground traffic it loses, how fast the rebuild completes, and what
//! the degraded interval does to response times. Hibernator's performance
//! guard treats a failure as an immediate boost trigger; the run prints its
//! boost counter to show that happening.

use crate::common::{row, violation_fraction, Ctx, PolicyKind, Workload};
use array::{Redundancy, RunReport, Simulation};
use faults::{FaultConfig, FaultEvent, FaultKind, FaultPlan, FaultSchedule};
use hibernator::Hibernator;
use simkit::SimTime;

/// The scripted storm for a run of `horizon_s` seconds: disk 3 dies at 30%
/// of the horizon (after a transient burst and a sticky-spindle window),
/// disk 9 dies at 55% (after a burst), and a surviving disk suffers a late
/// burst that only the retry machinery sees.
pub(crate) fn storm(horizon_s: f64) -> FaultSchedule {
    let at = |f: f64| SimTime::from_secs(horizon_s * f);
    FaultSchedule::new(vec![
        FaultEvent {
            time: at(0.27),
            disk: 3,
            kind: FaultKind::TransientBurst {
                error_prob: 0.2,
                duration_s: horizon_s * 0.03,
            },
        },
        FaultEvent {
            time: at(0.25),
            disk: 3,
            kind: FaultKind::SlowTransition {
                factor: 3.0,
                duration_s: horizon_s * 0.05,
            },
        },
        FaultEvent {
            time: at(0.30),
            disk: 3,
            kind: FaultKind::DiskFailure,
        },
        FaultEvent {
            time: at(0.52),
            disk: 9,
            kind: FaultKind::TransientBurst {
                error_prob: 0.15,
                duration_s: horizon_s * 0.03,
            },
        },
        FaultEvent {
            time: at(0.55),
            disk: 9,
            kind: FaultKind::DiskFailure,
        },
        FaultEvent {
            time: at(0.70),
            disk: 5,
            kind: FaultKind::TransientBurst {
                error_prob: 0.1,
                duration_s: horizon_s * 0.02,
            },
        },
    ])
}

/// The faults experiment: headline policies under the identical storm.
pub fn faults(ctx: &Ctx) {
    println!("\n== FAULTS: headline policies under an identical fault storm ==");
    let horizon_s = ctx.duration_s();
    let plan = FaultPlan {
        schedule: storm(horizon_s),
        config: FaultConfig::default(),
    };
    let mut config = ctx.array_config(Workload::Oltp);
    config.redundancy = Redundancy::Raid5Like;
    let trace = ctx.trace(Workload::Oltp);
    let opts = {
        let mut o = ctx.run_options();
        o.faults = Some(plan.clone());
        o
    };

    // Goal calibration: the unmanaged array under the same storm. Using the
    // faulted Base keeps "goal = factor × unmanaged mean" meaningful in the
    // degraded regime every policy shares. Stage 1 of the schedule: every
    // managed run below needs this goal.
    let base = ctx.timed("faults Base/OLTP+storm", || {
        let mut o = opts.clone();
        o.telemetry = ctx.telemetry_config("faults/Base", f64::MAX, 600.0);
        let mut r = ctx.run_kind(PolicyKind::Base, config.clone(), &trace, o, f64::MAX);
        ctx.collect_stream(r.telemetry.take());
        r
    });
    let goal = base.response.mean() * ctx.goal_factor();
    println!(
        "storm: disk 3 dies at {:.0} s, disk 9 at {:.0} s ({} scripted events); goal {:.2} ms",
        horizon_s * 0.30,
        horizon_s * 0.55,
        plan.schedule.len(),
        goal * 1e3,
    );

    let widths = [11, 11, 9, 7, 7, 6, 10, 8, 10];
    println!(
        "{}",
        row(
            &[
                "policy",
                "energy(kJ)",
                "mean(ms)",
                "viol%",
                "trans",
                "lost",
                "redirects",
                "rebuilt",
                "rebuild(s)"
            ]
            .map(String::from),
            &widths
        )
    );
    // Stage 2: every managed policy rides the storm concurrently. Each job
    // returns its report plus the Hibernator boost counter (zero for the
    // rest); results come back in headline order regardless of finish
    // order, so the table and CSV are deterministic.
    let managed: Vec<PolicyKind> = PolicyKind::HEADLINE
        .into_iter()
        .filter(|&p| p != PolicyKind::Base)
        .collect();
    let storm_runs: Vec<(RunReport, u64)> = ctx.pool().map(
        managed
            .iter()
            .map(|&p| {
                let (config, trace, opts) = (&config, &trace, &opts);
                move || {
                    ctx.timed(&format!("faults {}/OLTP+storm", p.label()), || {
                        let mut o = opts.clone();
                        o.telemetry =
                            ctx.telemetry_config(&format!("faults/{}", p.label()), goal, 600.0);
                        match p {
                            PolicyKind::Hibernator => {
                                let cfg = ctx.hibernator_config(goal);
                                let sim =
                                    Simulation::new(config.clone(), Hibernator::new(cfg), trace, o);
                                let (mut r, policy) = sim.run_returning_policy();
                                ctx.collect_stream(r.telemetry.take());
                                let boosts = policy.stats().boosts;
                                (r, boosts)
                            }
                            _ => {
                                let mut r = ctx.run_kind(p, config.clone(), trace, o, goal);
                                ctx.collect_stream(r.telemetry.take());
                                (r, 0)
                            }
                        }
                    })
                }
            })
            .collect::<Vec<_>>(),
    );
    let mut rows = Vec::new();
    let mut hib_boosts = 0u64;
    for p in PolicyKind::HEADLINE {
        let owned: Option<&RunReport> = match p {
            PolicyKind::Base => None, // already ran for calibration
            _ => {
                let i = managed.iter().position(|&m| m == p).expect("managed run");
                if p == PolicyKind::Hibernator {
                    hib_boosts = storm_runs[i].1;
                }
                Some(&storm_runs[i].0)
            }
        };
        let report = owned.unwrap_or(&base);
        let f = &report.faults;
        let cells = [
            p.label().to_string(),
            format!("{:.0}", report.energy.total_joules() / 1e3),
            format!("{:.2}", report.response.mean() * 1e3),
            format!(
                "{:.1}",
                violation_fraction(&report.response_series, goal, 600.0) * 100.0
            ),
            format!("{}", report.transitions),
            format!("{}", f.lost_requests),
            format!("{}", f.degraded_redirects),
            format!("{}", f.rebuild_chunks),
            match f.rebuild_completed_s {
                Some(t) => format!("{t:.0}"),
                None => "-".to_string(),
            },
        ];
        println!("{}", row(&cells, &widths));
        rows.push(cells.join(","));
    }
    println!(
        "Hibernator guard: {hib_boosts} boost(s) — failures force an immediate boost + re-plan"
    );
    ctx.write_csv(
        "faults_storm.csv",
        "policy,energy_kj,mean_ms,violation_pct,transitions,lost,redirects,rebuilt_chunks,rebuild_completed_s",
        &rows,
    );
}
