//! Table experiments T1–T5 (see DESIGN.md §6 for the experiment index).

use crate::common::{row, violation_fraction, Ctx, PolicyKind, Workload};
use diskmodel::{DiskSpec, PowerModel, ServiceModel, SpeedLevel};
use simkit::EnergyComponent;
use workload::TraceStats;

/// T1 — the multi-speed disk model parameter table.
pub fn t1(ctx: &Ctx) {
    println!("\n== T1: multi-speed disk model (Ultrastar-36Z15-derived) ==");
    let spec = DiskSpec::ultrastar_multispeed(6);
    let pm = PowerModel::new(&spec);
    let sm = ServiceModel::new(&spec);
    println!(
        "capacity {:.1} GB, {} cylinders x {} surfaces, {} zones, avg seek {:.2} ms",
        spec.capacity_bytes() as f64 / 1e9,
        spec.cylinders,
        spec.surfaces,
        spec.zones,
        sm.seek_model().average_seek_time() * 1e3,
    );
    let widths = [6, 8, 9, 9, 11, 13, 13];
    println!(
        "{}",
        row(
            &[
                "level",
                "RPM",
                "idle(W)",
                "xfer(W)",
                "E[S](ms)",
                "ramp-up(s)",
                "ramp-dn(s)"
            ]
            .map(String::from),
            &widths
        )
    );
    let mut rows = Vec::new();
    for l in spec.levels() {
        let up = pm.level_transition(SpeedLevel(0), l);
        let dn = pm.level_transition(spec.top_level(), l);
        let es = sm.expected_random_service_s(l, 16) * 1e3;
        let cells = [
            format!("{}", l.index()),
            format!("{:.0}", spec.rpm(l)),
            format!("{:.2}", pm.idle_w(l)),
            format!("{:.2}", pm.transfer_w(l)),
            format!("{es:.2}"),
            format!("{:.2}", up.duration_s),
            format!("{:.2}", dn.duration_s),
        ];
        println!("{}", row(&cells, &widths));
        rows.push(cells.join(","));
    }
    println!(
        "standby {:.2} W; spin-up 0->top {:.1} s @ {:.0} W; breakeven(standby) {:.0} s",
        pm.standby_w(),
        pm.spinup_from_standby(spec.top_level()).duration_s,
        spec.power_spinup_w,
        pm.breakeven_standby_s(spec.top_level()),
    );
    ctx.write_csv(
        "t1_disk_model.csv",
        "level,rpm,idle_w,xfer_w,es_ms,ramp_up_s,ramp_dn_s",
        &rows,
    );
}

/// T2 — workload characteristics.
pub fn t2(ctx: &Ctx) {
    println!("\n== T2: workload characteristics ==");
    // Generate both traces concurrently (single-flight keeps them shared
    // with every later run that needs them).
    ctx.pool().map(
        [Workload::Oltp, Workload::Cello]
            .iter()
            .map(|&w| {
                move || {
                    ctx.trace(w);
                }
            })
            .collect::<Vec<_>>(),
    );
    let widths = [7, 10, 10, 8, 10, 11, 11, 9, 10];
    println!(
        "{}",
        row(
            &[
                "trace",
                "requests",
                "rate(/s)",
                "read%",
                "size(KiB)",
                "fp(MiB)",
                "top10%shr",
                "re-ref%",
                "peak/mean"
            ]
            .map(String::from),
            &widths
        )
    );
    let mut rows = Vec::new();
    for w in [Workload::Oltp, Workload::Cello] {
        let trace = ctx.trace(w);
        let s = TraceStats::compute(&trace).expect("non-empty trace");
        let cells = [
            w.label().to_string(),
            format!("{}", s.requests),
            format!("{:.1}", s.mean_rate),
            format!("{:.1}", s.read_fraction * 100.0),
            format!("{:.1}", s.mean_size_kib),
            format!("{}", s.footprint_mib),
            format!("{:.2}", s.top_decile_share),
            format!("{:.1}", s.re_reference_share * 100.0),
            format!("{:.2}", s.peak_to_mean),
        ];
        println!("{}", row(&cells, &widths));
        rows.push(cells.join(","));
    }
    ctx.write_csv(
        "t2_workloads.csv",
        "trace,requests,rate,read_pct,size_kib,footprint_mib,top_decile_share,re_reference_share,peak_to_mean",
        &rows,
    );
}

/// T3 — the headline energy table: kJ and savings vs Base, per policy and
/// workload.
pub fn t3(ctx: &Ctx) {
    println!("\n== T3: energy consumption and savings ==");
    let widths = [13, 12, 12, 12, 12];
    println!(
        "{}",
        row(
            &["policy", "OLTP(kJ)", "OLTP sav%", "Cello(kJ)", "Cello sav%"].map(String::from),
            &widths
        )
    );
    let mut rows = Vec::new();
    let mut listed: Vec<PolicyKind> = PolicyKind::HEADLINE.to_vec();
    listed.push(PolicyKind::FixedSlow); // the always-slow energy bracket
    let pairs: Vec<(PolicyKind, Workload)> = listed
        .iter()
        .flat_map(|&p| [(p, Workload::Oltp), (p, Workload::Cello)])
        .collect();
    ctx.prefetch(&pairs);
    let base_o = ctx.report(PolicyKind::Base, Workload::Oltp);
    let base_c = ctx.report(PolicyKind::Base, Workload::Cello);
    for p in listed {
        let ro = ctx.report(p, Workload::Oltp);
        let rc = ctx.report(p, Workload::Cello);
        let cells = [
            p.label().to_string(),
            format!("{:.0}", ro.energy_kj()),
            format!("{:.1}", ro.savings_vs(&base_o) * 100.0),
            format!("{:.0}", rc.energy_kj()),
            format!("{:.1}", rc.savings_vs(&base_c) * 100.0),
        ];
        println!("{}", row(&cells, &widths));
        rows.push(cells.join(","));
    }
    ctx.write_csv(
        "t3_energy.csv",
        "policy,oltp_kj,oltp_savings_pct,cello_kj,cello_savings_pct",
        &rows,
    );
}

/// T4 — response time and goal compliance per policy and workload.
pub fn t4(ctx: &Ctx) {
    println!("\n== T4: response time vs goal ==");
    let warmup = ctx.duration_s() * 0.1;
    let widths = [13, 11, 11, 11, 11, 11, 11];
    println!(
        "{}",
        row(
            &[
                "policy",
                "O mean(ms)",
                "O p95(ms)",
                "O viol%",
                "C mean(ms)",
                "C p95(ms)",
                "C viol%"
            ]
            .map(String::from),
            &widths
        )
    );
    let mut rows = Vec::new();
    let pairs: Vec<(PolicyKind, Workload)> = PolicyKind::HEADLINE
        .iter()
        .flat_map(|&p| [(p, Workload::Oltp), (p, Workload::Cello)])
        .collect();
    ctx.prefetch(&pairs);
    for p in PolicyKind::HEADLINE {
        let ro = ctx.report(p, Workload::Oltp);
        let rc = ctx.report(p, Workload::Cello);
        let go = ctx.goal_s(Workload::Oltp);
        let gc = ctx.goal_s(Workload::Cello);
        let cells = [
            p.label().to_string(),
            format!("{:.2}", ro.mean_response_ms()),
            format!(
                "{:.2}",
                ro.response_hist.quantile(0.95).unwrap_or(0.0) * 1e3
            ),
            format!(
                "{:.1}",
                violation_fraction(&ro.response_series, go, warmup) * 100.0
            ),
            format!("{:.2}", rc.mean_response_ms()),
            format!(
                "{:.2}",
                rc.response_hist.quantile(0.95).unwrap_or(0.0) * 1e3
            ),
            format!(
                "{:.1}",
                violation_fraction(&rc.response_series, gc, warmup) * 100.0
            ),
        ];
        println!("{}", row(&cells, &widths));
        rows.push(cells.join(","));
    }
    println!(
        "goals: OLTP {:.2} ms, Cello {:.2} ms ({}x Base mean)",
        ctx.goal_s(Workload::Oltp) * 1e3,
        ctx.goal_s(Workload::Cello) * 1e3,
        ctx.goal_factor()
    );
    ctx.write_csv(
        "t4_response.csv",
        "policy,oltp_mean_ms,oltp_p95_ms,oltp_violation_pct,cello_mean_ms,cello_p95_ms,cello_violation_pct",
        &rows,
    );
}

/// T6 — redundancy sensitivity: the headline pair (Base vs Hibernator)
/// under RAID-5-like parity writes, vs plain striping.
pub fn t6(ctx: &Ctx) {
    println!("\n== T6: redundancy mode (OLTP, Base vs Hibernator) ==");
    use crate::common::PolicyKind;
    let trace = ctx.trace(Workload::Oltp);
    let modes = [
        ("striped", array::Redundancy::None),
        ("raid5", array::Redundancy::Raid5Like),
    ];
    // Stage 1: Base per redundancy mode (calibrates each goal).
    let bases = ctx.pool().map(
        modes
            .iter()
            .map(|&(label, redundancy)| {
                let trace = &trace;
                move || {
                    let mut config = ctx.array_config(Workload::Oltp);
                    config.redundancy = redundancy;
                    ctx.timed(&format!("t6 Base {label}/OLTP"), || {
                        ctx.run_kind(PolicyKind::Base, config, trace, ctx.run_options(), 0.1)
                    })
                }
            })
            .collect::<Vec<_>>(),
    );
    // Stage 2: Hibernator per mode against its own goal.
    let goals: Vec<f64> = bases
        .iter()
        .map(|b| b.response.mean() * ctx.goal_factor())
        .collect();
    let hibs = ctx.pool().map(
        modes
            .iter()
            .zip(&goals)
            .map(|(&(label, redundancy), &goal)| {
                let trace = &trace;
                move || {
                    let mut config = ctx.array_config(Workload::Oltp);
                    config.redundancy = redundancy;
                    ctx.timed(&format!("t6 Hibernator {label}/OLTP"), || {
                        ctx.run_kind(
                            PolicyKind::Hibernator,
                            config,
                            trace,
                            ctx.run_options(),
                            goal,
                        )
                    })
                }
            })
            .collect::<Vec<_>>(),
    );
    let mut rows = Vec::new();
    for (((label, _), base), (hib, goal)) in modes.iter().zip(&bases).zip(hibs.iter().zip(&goals)) {
        let sav = hib.savings_vs(base) * 100.0;
        println!(
            "  {label:>8}: base {:6.0} kJ, hib {:6.0} kJ ({sav:5.1}% saved), \
             base mean {:.2} ms, hib mean {:.2} ms (goal {:.2} ms)",
            base.energy_kj(),
            hib.energy_kj(),
            base.mean_response_ms(),
            hib.mean_response_ms(),
            goal * 1e3,
        );
        rows.push(format!(
            "{label},{:.1},{:.1},{sav:.2},{:.3},{:.3},{:.3}",
            base.energy_kj(),
            hib.energy_kj(),
            base.mean_response_ms(),
            hib.mean_response_ms(),
            goal * 1e3
        ));
    }
    ctx.write_csv(
        "t6_redundancy.csv",
        "mode,base_kj,hib_kj,savings_pct,base_mean_ms,hib_mean_ms,goal_ms",
        &rows,
    );
}

/// T5 — where the energy went: per-component breakdown (OLTP).
pub fn t5(ctx: &Ctx) {
    println!("\n== T5: energy breakdown by component, OLTP (kJ) ==");
    let widths = [13, 10, 9, 10, 11, 9, 10];
    println!(
        "{}",
        row(
            &[
                "policy",
                "idle",
                "seek",
                "transfer",
                "transition",
                "standby",
                "migration"
            ]
            .map(String::from),
            &widths
        )
    );
    let mut rows = Vec::new();
    ctx.prefetch(&PolicyKind::HEADLINE.map(|p| (p, Workload::Oltp)));
    for p in PolicyKind::HEADLINE {
        let r = ctx.report(p, Workload::Oltp);
        let kj = |c: EnergyComponent| r.energy.joules(c) / 1e3;
        let cells = [
            p.label().to_string(),
            format!("{:.0}", kj(EnergyComponent::IdleSpin)),
            format!("{:.1}", kj(EnergyComponent::Seek)),
            format!("{:.1}", kj(EnergyComponent::Transfer)),
            format!("{:.1}", kj(EnergyComponent::Transition)),
            format!("{:.1}", kj(EnergyComponent::Standby)),
            format!("{:.1}", kj(EnergyComponent::Migration)),
        ];
        println!("{}", row(&cells, &widths));
        rows.push(cells.join(","));
    }
    ctx.write_csv(
        "t5_breakdown.csv",
        "policy,idle_kj,seek_kj,transfer_kj,transition_kj,standby_kj,migration_kj",
        &rows,
    );
}
