//! Figure experiments F1–F12 (see DESIGN.md §6 for the experiment index).
//!
//! Each figure prints its series to stdout (coarse, human-readable) and
//! writes the full-resolution series to CSV in the results directory.
//!
//! Every figure follows the same parallel shape: *gather* the runs it
//! needs (through [`Ctx::prefetch`] for standard-scenario runs, or a
//! [`Ctx::pool`] batch for ad-hoc knob sweeps), then *format* rows
//! serially from the ordered results — so the CSV bytes never depend on
//! the jobs count.

use crate::common::{violation_fraction, Ctx, PolicyKind, Workload};
use array::{RunOptions, RunReport};
use hibernator::{Hibernator, HibernatorConfig};
use simkit::SimDuration;

/// F1 — array power over time per policy (OLTP).
pub fn f1(ctx: &Ctx) {
    println!("\n== F1: array power over time (OLTP) ==");
    ctx.prefetch(&PolicyKind::HEADLINE.map(|p| (p, Workload::Oltp)));
    let mut rows = Vec::new();
    for p in PolicyKind::HEADLINE {
        let r = ctx.report(p, Workload::Oltp);
        for (t, w) in r.power_series.mean_points() {
            rows.push(format!("{},{t:.0},{w:.1}", p.label()));
        }
        let avg: f64 = {
            let pts = r.power_series.mean_points();
            pts.iter().map(|p| p.1).sum::<f64>() / pts.len().max(1) as f64
        };
        println!("  {:>12}: avg {avg:.0} W", p.label());
    }
    ctx.write_csv("f1_power_over_time.csv", "policy,t_s,power_w", &rows);
}

/// F2 — windowed response time over time vs the goal (Cello, Hibernator).
pub fn f2(ctx: &Ctx) {
    println!("\n== F2: response time over time vs goal (Cello) ==");
    ctx.prefetch(&[
        (PolicyKind::Base, Workload::Cello),
        (PolicyKind::Hibernator, Workload::Cello),
    ]);
    let goal = ctx.goal_s(Workload::Cello);
    let mut rows = Vec::new();
    for p in [PolicyKind::Base, PolicyKind::Hibernator] {
        let r = ctx.report(p, Workload::Cello);
        for (t, v) in r.response_series.mean_points() {
            rows.push(format!("{},{t:.0},{:.3}", p.label(), v * 1e3));
        }
    }
    let hib = ctx.report(PolicyKind::Hibernator, Workload::Cello);
    let viol = violation_fraction(&hib.response_series, goal, ctx.duration_s() * 0.1);
    println!(
        "  goal {:.2} ms; Hibernator violates in {:.1}% of buckets",
        goal * 1e3,
        viol * 100.0
    );
    ctx.write_csv("f2_response_over_time.csv", "policy,t_s,mean_ms", &rows);
}

/// F3 — energy savings vs response-time goal factor (OLTP).
pub fn f3(ctx: &Ctx) {
    println!("\n== F3: savings vs goal factor (OLTP) ==");
    ctx.prefetch(&[(PolicyKind::Base, Workload::Oltp)]);
    let base = ctx.report(PolicyKind::Base, Workload::Oltp);
    let trace = ctx.trace(Workload::Oltp);
    let factors = [1.1, 1.3, 1.6, 2.0, 3.0];
    let runs = ctx.pool().map(
        factors
            .iter()
            .map(|&factor| {
                let (base, trace) = (&base, &trace);
                move || {
                    let goal = base.response.mean() * factor;
                    let r = ctx.timed(&format!("f3 goal {factor:.1}x/OLTP"), || {
                        ctx.run_kind(
                            PolicyKind::Hibernator,
                            ctx.array_config(Workload::Oltp),
                            trace,
                            ctx.run_options(),
                            goal,
                        )
                    });
                    (goal, r)
                }
            })
            .collect::<Vec<_>>(),
    );
    let mut rows = Vec::new();
    for (factor, (goal, r)) in factors.iter().zip(&runs) {
        let sav = r.savings_vs(&base) * 100.0;
        println!(
            "  goal {factor:.1}x ({:.2} ms): savings {sav:.1}%, mean {:.2} ms",
            goal * 1e3,
            r.mean_response_ms()
        );
        rows.push(format!(
            "{factor},{:.4},{sav:.2},{:.3}",
            goal * 1e3,
            r.mean_response_ms()
        ));
    }
    ctx.write_csv(
        "f3_goal_sweep.csv",
        "goal_factor,goal_ms,savings_pct,mean_ms",
        &rows,
    );
}

/// F4 — energy savings vs epoch length (OLTP): the coarse-grain argument.
pub fn f4(ctx: &Ctx) {
    println!("\n== F4: savings vs epoch length (OLTP) ==");
    ctx.prefetch(&[(PolicyKind::Base, Workload::Oltp)]);
    let base = ctx.report(PolicyKind::Base, Workload::Oltp);
    let trace = ctx.trace(Workload::Oltp);
    let goal = ctx.goal_s(Workload::Oltp);
    let epochs_s: &[f64] = if ctx.quick {
        &[300.0, 1200.0, 3600.0]
    } else {
        &[300.0, 900.0, 1800.0, 3600.0, 7200.0, 14400.0]
    };
    let runs = ctx.pool().map(
        epochs_s
            .iter()
            .map(|&e| {
                let trace = &trace;
                move || {
                    let mut cfg = HibernatorConfig::for_goal(goal);
                    cfg.epoch = SimDuration::from_secs(e);
                    cfg.heat_tau = SimDuration::from_secs(e);
                    ctx.timed(&format!("f4 epoch {e:.0}s/OLTP"), || {
                        array::run_policy(
                            ctx.array_config(Workload::Oltp),
                            Hibernator::new(cfg),
                            trace,
                            ctx.run_options(),
                        )
                    })
                }
            })
            .collect::<Vec<_>>(),
    );
    let mut rows = Vec::new();
    for (&e, r) in epochs_s.iter().zip(&runs) {
        let sav = r.savings_vs(&base) * 100.0;
        println!(
            "  epoch {:>6.0} s: savings {sav:5.1}%, {:>5} transitions, mean {:.2} ms",
            e,
            r.transitions,
            r.mean_response_ms()
        );
        rows.push(format!(
            "{e},{sav:.2},{},{:.3}",
            r.transitions,
            r.mean_response_ms()
        ));
    }
    ctx.write_csv(
        "f4_epoch_sweep.csv",
        "epoch_s,savings_pct,transitions,mean_ms",
        &rows,
    );
}

/// F5 — energy savings vs number of disk speed levels (OLTP).
pub fn f5(ctx: &Ctx) {
    println!("\n== F5: savings vs number of speed levels (OLTP) ==");
    let trace = ctx.trace(Workload::Oltp);
    let levels_list: &[usize] = if ctx.quick { &[2, 6] } else { &[2, 3, 4, 6, 8] };
    // Stage 1: the Base run of each level count (calibrates its goal).
    let bases = ctx.pool().map(
        levels_list
            .iter()
            .map(|&levels| {
                let trace = &trace;
                move || {
                    let config = ctx.array_config_with(Workload::Oltp, ctx.disks(), levels);
                    ctx.timed(&format!("f5 Base {levels}-level/OLTP"), || {
                        ctx.run_kind(PolicyKind::Base, config, trace, ctx.run_options(), 0.1)
                    })
                }
            })
            .collect::<Vec<_>>(),
    );
    // Stage 2: the managed run of each level count, against its own goal.
    let goals: Vec<f64> = bases
        .iter()
        .map(|b| b.response.mean() * ctx.goal_factor())
        .collect();
    let runs = ctx.pool().map(
        levels_list
            .iter()
            .zip(&goals)
            .map(|(&levels, &goal)| {
                let trace = &trace;
                move || {
                    let config = ctx.array_config_with(Workload::Oltp, ctx.disks(), levels);
                    ctx.timed(&format!("f5 Hibernator {levels}-level/OLTP"), || {
                        ctx.run_kind(
                            PolicyKind::Hibernator,
                            config,
                            trace,
                            ctx.run_options(),
                            goal,
                        )
                    })
                }
            })
            .collect::<Vec<_>>(),
    );
    let mut rows = Vec::new();
    for ((&levels, base), r) in levels_list.iter().zip(&bases).zip(&runs) {
        let sav = r.savings_vs(base) * 100.0;
        println!(
            "  {levels} levels: savings {sav:.1}%, mean {:.2} ms",
            r.mean_response_ms()
        );
        rows.push(format!("{levels},{sav:.2},{:.3}", r.mean_response_ms()));
    }
    ctx.write_csv("f5_levels_sweep.csv", "levels,savings_pct,mean_ms", &rows);
}

/// F6 — savings and response vs load scale (OLTP): where saving stops.
pub fn f6(ctx: &Ctx) {
    println!("\n== F6: savings vs load scale (OLTP) ==");
    let loads: &[f64] = if ctx.quick {
        &[0.5, 1.0, 2.0]
    } else {
        &[0.25, 0.5, 1.0, 1.5, 2.0]
    };
    // Stage 1: per-load Base runs (each also generates its trace).
    let bases = ctx.pool().map(
        loads
            .iter()
            .map(|&load| {
                move || {
                    let trace = ctx.trace_with_load(Workload::Oltp, load);
                    let config = ctx.array_config(Workload::Oltp);
                    ctx.timed(&format!("f6 Base load {load:.2}x/OLTP"), || {
                        ctx.run_kind(PolicyKind::Base, config, &trace, ctx.run_options(), 0.1)
                    })
                }
            })
            .collect::<Vec<_>>(),
    );
    // Stage 2: the goal-calibrated Hibernator runs.
    let goals: Vec<f64> = bases
        .iter()
        .map(|b| b.response.mean() * ctx.goal_factor())
        .collect();
    let runs = ctx.pool().map(
        loads
            .iter()
            .zip(&goals)
            .map(|(&load, &goal)| {
                move || {
                    let trace = ctx.trace_with_load(Workload::Oltp, load);
                    let config = ctx.array_config(Workload::Oltp);
                    ctx.timed(&format!("f6 Hibernator load {load:.2}x/OLTP"), || {
                        ctx.run_kind(
                            PolicyKind::Hibernator,
                            config,
                            &trace,
                            ctx.run_options(),
                            goal,
                        )
                    })
                }
            })
            .collect::<Vec<_>>(),
    );
    let mut rows = Vec::new();
    for ((&load, (base, r)), &goal) in loads.iter().zip(bases.iter().zip(&runs)).zip(&goals) {
        let sav = r.savings_vs(base) * 100.0;
        println!(
            "  load {load:.2}x: savings {sav:5.1}%, mean {:.2} ms (goal {:.2} ms)",
            r.mean_response_ms(),
            goal * 1e3
        );
        rows.push(format!(
            "{load},{sav:.2},{:.3},{:.3}",
            r.mean_response_ms(),
            goal * 1e3
        ));
    }
    ctx.write_csv(
        "f6_load_sweep.csv",
        "load_factor,savings_pct,mean_ms,goal_ms",
        &rows,
    );
}

/// F7 — migration-policy ablation (OLTP): none vs random vs temperature.
pub fn f7(ctx: &Ctx) {
    println!("\n== F7: migration ablation (OLTP) ==");
    let variants = [
        PolicyKind::HibernatorNoMig,
        PolicyKind::HibernatorRandMig,
        PolicyKind::Hibernator,
    ];
    ctx.prefetch(&variants.map(|p| (p, Workload::Oltp)));
    let base = ctx.report(PolicyKind::Base, Workload::Oltp);
    let mut rows = Vec::new();
    for p in variants {
        let r = ctx.report(p, Workload::Oltp);
        let sav = r.savings_vs(&base) * 100.0;
        println!(
            "  {:>14}: savings {sav:5.1}%, mean {:.2} ms, moved {} chunks",
            p.label(),
            r.mean_response_ms(),
            r.migration.committed
        );
        rows.push(format!(
            "{},{sav:.2},{:.3},{}",
            p.label(),
            r.mean_response_ms(),
            r.migration.committed
        ));
    }
    ctx.write_csv(
        "f7_migration_ablation.csv",
        "mode,savings_pct,mean_ms,chunks_moved",
        &rows,
    );
}

/// F8 — response-time CDF with and without the performance guard (Cello).
pub fn f8(ctx: &Ctx) {
    println!("\n== F8: response CDF, guard on/off (Cello) ==");
    ctx.prefetch(&[
        (PolicyKind::Hibernator, Workload::Cello),
        (PolicyKind::HibernatorNoGuard, Workload::Cello),
    ]);
    let goal = ctx.goal_s(Workload::Cello);
    let mut rows = Vec::new();
    for p in [PolicyKind::Hibernator, PolicyKind::HibernatorNoGuard] {
        let r = ctx.report(p, Workload::Cello);
        for (v, f) in r.response_hist.cdf_points() {
            rows.push(format!("{},{:.5},{f:.5}", p.label(), v * 1e3));
        }
        let p99 = r.response_hist.quantile(0.99).unwrap_or(0.0) * 1e3;
        let viol = violation_fraction(&r.response_series, goal, ctx.duration_s() * 0.1) * 100.0;
        println!(
            "  {:>14}: mean {:.2} ms, p99 {p99:.1} ms, violations {viol:.1}%",
            p.label(),
            r.mean_response_ms()
        );
    }
    ctx.write_csv("f8_guard_cdf.csv", "variant,response_ms,cdf", &rows);
}

/// F9 — savings vs array size (OLTP, per-disk load held constant).
pub fn f9(ctx: &Ctx) {
    println!("\n== F9: savings vs array size (OLTP) ==");
    let sizes: &[usize] = if ctx.quick {
        &[8, 16]
    } else {
        &[8, 16, 24, 32]
    };
    // Stage 1: Base per size (arrival rate scales with the array so
    // per-disk load is fixed; each job generates its own trace).
    let bases = ctx.pool().map(
        sizes
            .iter()
            .map(|&disks| {
                move || {
                    let load = disks as f64 / ctx.disks() as f64;
                    let trace = ctx.trace_with_load(Workload::Oltp, load);
                    let config = ctx.array_config_with(Workload::Oltp, disks, 6);
                    ctx.timed(&format!("f9 Base {disks}-disk/OLTP"), || {
                        ctx.run_kind(PolicyKind::Base, config, &trace, ctx.run_options(), 0.1)
                    })
                }
            })
            .collect::<Vec<_>>(),
    );
    // Stage 2: Hibernator per size against the stage-1 goals.
    let goals: Vec<f64> = bases
        .iter()
        .map(|b| b.response.mean() * ctx.goal_factor())
        .collect();
    let runs = ctx.pool().map(
        sizes
            .iter()
            .zip(&goals)
            .map(|(&disks, &goal)| {
                move || {
                    let load = disks as f64 / ctx.disks() as f64;
                    let trace = ctx.trace_with_load(Workload::Oltp, load);
                    let config = ctx.array_config_with(Workload::Oltp, disks, 6);
                    ctx.timed(&format!("f9 Hibernator {disks}-disk/OLTP"), || {
                        ctx.run_kind(
                            PolicyKind::Hibernator,
                            config,
                            &trace,
                            ctx.run_options(),
                            goal,
                        )
                    })
                }
            })
            .collect::<Vec<_>>(),
    );
    let mut rows = Vec::new();
    for ((&disks, base), r) in sizes.iter().zip(&bases).zip(&runs) {
        let sav = r.savings_vs(base) * 100.0;
        println!(
            "  {disks:>2} disks: savings {sav:5.1}%, mean {:.2} ms",
            r.mean_response_ms()
        );
        rows.push(format!("{disks},{sav:.2},{:.3}", r.mean_response_ms()));
    }
    ctx.write_csv("f9_array_size.csv", "disks,savings_pct,mean_ms", &rows);
}

/// F10 — disks per speed tier over time (Cello): diurnal adaptation.
pub fn f10(ctx: &Ctx) {
    println!("\n== F10: disks per tier over time (Cello, Hibernator) ==");
    ctx.prefetch(&[(PolicyKind::Hibernator, Workload::Cello)]);
    let r = ctx.report(PolicyKind::Hibernator, Workload::Cello);
    let levels = r.level_series.len() - 2;
    let mut rows = Vec::new();
    for (li, series) in r.level_series.iter().enumerate() {
        let label = if li < levels {
            format!("L{li}")
        } else if li == levels {
            "standby".to_string()
        } else {
            "ramping".to_string()
        };
        for (t, v) in series.mean_points() {
            rows.push(format!("{label},{t:.0},{v:.2}"));
        }
    }
    // A compact stdout view: tier counts at a few instants.
    let sample_ts: Vec<f64> = r.level_series[0]
        .mean_points()
        .iter()
        .map(|p| p.0)
        .collect();
    for probe in sample_ts.iter().step_by((sample_ts.len() / 8).max(1)) {
        let mut line = format!("  t={probe:>7.0}s ");
        for (li, series) in r.level_series.iter().enumerate().take(levels) {
            let v = series
                .mean_points()
                .iter()
                .find(|(t, _)| t == probe)
                .map(|(_, v)| *v)
                .unwrap_or(0.0);
            line.push_str(&format!(" L{li}:{v:.0}"));
        }
        println!("{line}");
    }
    ctx.write_csv("f10_tier_adaptation.csv", "tier,t_s,disks", &rows);
}

/// F11 (extension) — the standby option on the diurnal workload: plain
/// Hibernator vs Hibernator+standby vs the TPM bound.
pub fn f11(ctx: &Ctx) {
    println!("\n== F11 (extension): standby option (Cello) ==");
    ctx.prefetch(&[
        (PolicyKind::Base, Workload::Cello),
        (PolicyKind::Hibernator, Workload::Cello),
    ]);
    let base = ctx.report(PolicyKind::Base, Workload::Cello);
    let goal = ctx.goal_s(Workload::Cello);
    let trace = ctx.trace(Workload::Cello);
    let mut rows = Vec::new();
    let plain = ctx.report(PolicyKind::Hibernator, Workload::Cello);
    let mut cfg = ctx.hibernator_config(goal);
    cfg.allow_standby = true;
    let standby = ctx.timed("f11 Hib+standby/Cello", || {
        array::run_policy(
            ctx.array_config(Workload::Cello),
            Hibernator::new(cfg),
            &trace,
            ctx.run_options(),
        )
    });
    for (name, r) in [("Hibernator", &*plain), ("Hib+standby", &standby)] {
        let sav = r.savings_vs(&base) * 100.0;
        let viol = violation_fraction(&r.response_series, goal, ctx.duration_s() * 0.1) * 100.0;
        println!(
            "  {name:>12}: savings {sav:5.1}%, mean {:.2} ms, violations {viol:.1}%, standby {:.0} kJ",
            r.mean_response_ms(),
            r.energy.joules(simkit::EnergyComponent::Standby) / 1e3
        );
        rows.push(format!(
            "{name},{sav:.2},{:.3},{viol:.2}",
            r.mean_response_ms()
        ));
    }
    ctx.write_csv(
        "f11_standby_extension.csv",
        "variant,savings_pct,mean_ms,violation_pct",
        &rows,
    );
}

/// F12 (validation) — M/G/1 predictor accuracy: fixed-level arrays under
/// increasing load, predicted vs measured mean response.
pub fn f12(ctx: &Ctx) {
    println!("\n== F12 (validation): M/G/1 predictor vs measurement ==");
    use diskmodel::SpeedLevel;
    use hibernator::mg1_response;
    use policies::FixedSpeed;
    let grid: Vec<(usize, f64)> = [0usize, 3, 5]
        .iter()
        .flat_map(|&level| [0.5, 1.0, 2.0].map(|load| (level, load)))
        .collect();
    let runs: Vec<RunReport> = ctx.pool().map(
        grid.iter()
            .map(|&(level, load)| {
                move || {
                    let trace = ctx.trace_with_load(Workload::Oltp, load);
                    let config = ctx.array_config(Workload::Oltp);
                    ctx.timed(&format!("f12 L{level} load {load:.1}x/OLTP"), || {
                        array::run_policy(
                            config,
                            FixedSpeed::new(SpeedLevel(level)),
                            &trace,
                            ctx.run_options(),
                        )
                    })
                }
            })
            .collect::<Vec<_>>(),
    );
    let mut rows = Vec::new();
    for (&(level, load), r) in grid.iter().zip(&runs) {
        let disks = ctx.disks() as f64;
        // Per-disk arrival rate of *disk-level* requests.
        let lambda = r.service.count() as f64 / ctx.duration_s() / disks;
        let es = r.service.mean();
        let es2 = r.service.raw_second_moment();
        let predicted = mg1_response(lambda, es, es2);
        // Skip the first bucket: it contains the initial spindle ramp.
        let steady: Vec<f64> = r
            .response_series
            .mean_points()
            .into_iter()
            .skip(1)
            .map(|(_, v)| v)
            .collect();
        let measured = steady.iter().sum::<f64>() / steady.len().max(1) as f64;
        let err = (measured - predicted) / predicted * 100.0;
        println!(
            "  L{level} load {load:.1}x: rho {:.2}  predicted {:6.2} ms  measured {:6.2} ms  ({err:+.1}%)",
            lambda * es,
            predicted * 1e3,
            measured * 1e3,
        );
        rows.push(format!(
            "{level},{load},{:.4},{:.4},{:.4},{err:.2}",
            lambda * es,
            predicted * 1e3,
            measured * 1e3
        ));
    }
    ctx.write_csv(
        "f12_model_validation.csv",
        "level,load,rho,predicted_ms,measured_ms,error_pct",
        &rows,
    );
}

/// Runs every figure, prefetching the standard-scenario union first so the
/// pool sees the whole grid at once.
pub fn all(ctx: &Ctx) {
    let mut pairs: Vec<(PolicyKind, Workload)> =
        PolicyKind::HEADLINE.map(|p| (p, Workload::Oltp)).to_vec();
    pairs.extend([
        (PolicyKind::HibernatorNoMig, Workload::Oltp),
        (PolicyKind::HibernatorRandMig, Workload::Oltp),
        (PolicyKind::Base, Workload::Cello),
        (PolicyKind::Hibernator, Workload::Cello),
        (PolicyKind::HibernatorNoGuard, Workload::Cello),
    ]);
    ctx.prefetch(&pairs);
    f1(ctx);
    f2(ctx);
    f3(ctx);
    f4(ctx);
    f5(ctx);
    f6(ctx);
    f7(ctx);
    f8(ctx);
    f9(ctx);
    f10(ctx);
    f11(ctx);
    f12(ctx);
}

/// Convenience re-export for `RunOptions` users inside this module tree.
#[allow(unused)]
fn _assert_signatures(_: RunOptions) {}
