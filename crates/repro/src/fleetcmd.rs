//! `repro fleet` — the datacenter-scale experiment: N Hibernator arrays
//! serving a shared multi-tenant OLTP workload under one power budget.
//!
//! The budget is expressed as a *fraction* of the fleet's nominal draw
//! (`arrays × disks × full-speed idle watts`), so `--budget-frac 0.6`
//! means "the fleet may draw 60 % of what it would idling flat-out".
//! A non-positive fraction disables the cap entirely.
//!
//! Outputs (all byte-identical at any `--jobs` value):
//!
//! * `fleet_summary.csv` — one row: energy vs integrated budget,
//!   cap-violation time, request conservation, fleet-wide latency;
//! * `fleet_epochs.csv` — the arbiter's decision log, one row per epoch;
//! * `fleet_tenants.csv` — per-tenant completion counts and percentiles;
//! * `fleet_stream.jsonl` — the fleet event stream, replayable through
//!   `repro audit` (which auto-detects fleet streams).
//!
//! The run self-audits before writing anything; an invariant violation
//! exits non-zero so CI catches it without a separate audit pass.

use crate::common::{Ctx, Workload};
use diskmodel::PowerModel;
use fleet::{run_fleet, BudgetSchedule, FleetSpec};
use hibernator::Hibernator;
use simkit::{LatencyHistogram, SimDuration};

/// Fleet epochs per horizon: the arbiter cadence scales with the run
/// length so even sub-quick smoke runs exercise several grant rounds.
const EPOCHS_PER_HORIZON: f64 = 12.0;

/// Nominal fleet draw: every disk of every array idling at full speed.
pub fn nominal_fleet_w(config: &array::ArrayConfig, arrays: usize) -> f64 {
    let pm = PowerModel::new(&config.spec);
    arrays as f64 * config.disks as f64 * pm.idle_w(config.spec.top_level())
}

/// Entry point for `repro fleet`.
pub fn fleet(ctx: &Ctx, arrays: usize, tenants: u32, budget_frac: f64) {
    let w = Workload::Oltp;
    let trace = ctx.trace(w);
    let config = ctx.array_config(w);
    let goal = ctx.goal_s(w);

    let nominal_w = nominal_fleet_w(&config, arrays);
    let capped = budget_frac > 0.0 && budget_frac.is_finite();
    let budget_w = if capped {
        Some(nominal_w * budget_frac)
    } else {
        None
    };
    let budget = match budget_w {
        Some(b) => BudgetSchedule::constant(b),
        None => BudgetSchedule::unlimited(),
    };
    println!(
        "\n## fleet — {arrays} array(s), {tenants} tenant(s), budget {}",
        match budget_w {
            Some(b) => format!(
                "{b:.0} W ({budget_frac:.0}% of {nominal_w:.0} W nominal)",
                budget_frac = budget_frac * 100.0
            ),
            None => "unlimited".to_string(),
        }
    );

    let mut opts = ctx.run_options();
    opts.telemetry = ctx.telemetry_config("fleet", goal, ctx.warmup_s());
    let mut spec = FleetSpec::new(arrays, tenants, config, opts, budget);
    spec.fleet_epoch = SimDuration::from_secs((ctx.duration_s() / EPOCHS_PER_HORIZON).max(60.0));

    let mut report = ctx.timed("fleet", || {
        run_fleet(&spec, &trace, ctx.pool(), |_| {
            Hibernator::new(ctx.hibernator_config(goal))
        })
    });
    for r in report.arrays.iter_mut() {
        ctx.collect_stream(r.telemetry.take());
    }

    // Self-audit before any output: a fleet run that breaks its own
    // invariants must not leave plausible-looking CSVs behind.
    let audit = report.audit().expect("fleet stream parses");
    for c in &audit.checks {
        let verdict = if c.passed { "PASS" } else { "FAIL" };
        println!("  [{verdict}] {}", c.name);
        if !c.passed {
            eprintln!("fleet: invariant {} violated: {}", c.name, c.detail);
            std::process::exit(1);
        }
    }

    println!("  epoch  start_s   budget_w   demand_w     moves  violated");
    for e in &report.epochs {
        println!(
            "  {:>5}  {:>7.0}  {:>9}  {:>9.1}  {:>8}  {}",
            e.epoch,
            e.start_s,
            fmt_opt(e.budget_w, 1),
            e.demand_w,
            e.moves,
            if e.violated { "yes" } else { "no" }
        );
    }

    // Fleet-wide latency: every tenant histogram shares the standard
    // latency layout, so they merge into one distribution.
    let mut all = LatencyHistogram::new_latency();
    for h in &report.tenant_latency {
        all.merge(h);
    }

    let summary = format!(
        "{arrays},{tenants},{},{nominal_w:.1},{:.1},{},{:.1},{},{},{},{},{},{},{},{}",
        fmt_opt(budget_w, 1),
        report.fleet_energy_j,
        fmt_opt(report.budget_j, 1),
        report.cap_violation_s,
        report.completed,
        report.incomplete,
        report.total_requests,
        report.routed_requests,
        report.tenant_moves,
        fmt_q_ms(&all, 0.50),
        fmt_q_ms(&all, 0.95),
        fmt_q_ms(&all, 0.99),
    );
    ctx.write_csv(
        "fleet_summary.csv",
        "arrays,tenants,budget_w,nominal_w,energy_j,budget_j,cap_violation_s,\
         completed,incomplete,total_requests,routed_requests,tenant_moves,\
         p50_ms,p95_ms,p99_ms",
        &[summary],
    );

    let epoch_rows: Vec<String> = report
        .epochs
        .iter()
        .enumerate()
        .map(|(k, e)| {
            let caps = report.epoch_caps(k);
            let cap_min = caps.iter().cloned().fold(f64::INFINITY, f64::min);
            let cap_max = caps.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            format!(
                "{},{:.0},{},{:.3},{},{},{},{},{}",
                e.epoch,
                e.start_s,
                fmt_opt(e.budget_w, 3),
                e.demand_w,
                if caps.is_empty() {
                    String::new()
                } else {
                    format!("{cap_min:.3}")
                },
                if caps.is_empty() {
                    String::new()
                } else {
                    format!("{cap_max:.3}")
                },
                e.moves,
                e.completed,
                u8::from(e.violated),
            )
        })
        .collect();
    ctx.write_csv(
        "fleet_epochs.csv",
        "epoch,start_s,budget_w,demand_w,cap_min_w,cap_max_w,moves,completed,violated",
        &epoch_rows,
    );

    let tenant_rows: Vec<String> = report
        .tenant_latency
        .iter()
        .enumerate()
        .map(|(t, h)| {
            format!(
                "{t},{},{},{},{}",
                h.count(),
                fmt_q_ms(h, 0.50),
                fmt_q_ms(h, 0.95),
                fmt_q_ms(h, 0.99),
            )
        })
        .collect();
    ctx.write_csv(
        "fleet_tenants.csv",
        "tenant,completed,p50_ms,p95_ms,p99_ms",
        &tenant_rows,
    );

    let stream_path = ctx.out_dir.join("fleet_stream.jsonl");
    std::fs::write(&stream_path, &report.fleet_stream.bytes).expect("write fleet stream");
    println!(
        "  -> {} ({} bytes)",
        stream_path.display(),
        report.fleet_stream.bytes.len()
    );
}

/// Formats an optional value with fixed precision, empty when absent
/// (unlimited budget).
fn fmt_opt(x: Option<f64>, prec: usize) -> String {
    match x {
        Some(v) => format!("{v:.prec$}"),
        None => String::new(),
    }
}

/// A latency quantile in milliseconds, empty when the histogram is empty.
fn fmt_q_ms(h: &LatencyHistogram, q: f64) -> String {
    match h.quantile(q) {
        Some(v) => format!("{:.3}", v * 1e3),
        None => String::new(),
    }
}
