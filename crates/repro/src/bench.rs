//! `repro bench` — the tracked hot-path benchmark.
//!
//! Times three canonical scenarios end-to-end through the public driver
//! (trace generation and goal calibration happen *outside* the timed
//! region, so the numbers isolate simulation cost):
//!
//! * **quick_t3** — the full quick-scale T3 grid: 7 policies × 2 workloads
//!   = 14 runs, the same set `repro --quick --jobs 1 t3` simulates;
//! * **fault_storm** — Base + Hibernator riding the scripted fault storm
//!   on a RAID-5-like array (exercises retry, redirect, and rebuild
//!   paths);
//! * **f6_highload** — Base + Hibernator at 2× OLTP load (the congested
//!   point of the F6 load sweep, where per-event costs dominate).
//!
//! Results land in `BENCH_hotpath.json` together with the recorded
//! pre-optimization baselines, so the speedup trajectory is tracked in one
//! file. `--reference` re-runs every simulation in full reference mode —
//! the full-scan wake resync ([`array::RunOptions::reference_full_resync`])
//! *and* the `BinaryHeap` event queue with per-event admission
//! ([`array::RunOptions::reference_heap_queue`]) — for an apples-to-apples
//! measure of the combined hot-path wins.
//!
//! The **fleet bench** ([`fleet_bench`]) then times three fleet shapes (4,
//! 64, and 256 arrays) serially and parallel through the persistent-worker
//! driver, writing `BENCH_fleet.json` with the pre-worker baseline and the
//! parallel-speedup floors.
//!
//! `--check-floor` exits nonzero if quick_t3 throughput falls below
//! [`QUICK_T3_FLOOR_EVENTS_PER_SEC`] or a fleet scenario's min-wall
//! parallel speedup falls below its floor on a machine with enough cores
//! ([`FLEET_QUICK_MIN_SPEEDUP`], [`FLEET_SCALE_MIN_SPEEDUP`]); CI runs it
//! as a smoke test against gross regressions.

use crate::common::{Ctx, PolicyKind, Workload};
use array::{Redundancy, RunOptions, RunReport};
use faults::{FaultConfig, FaultPlan};
use std::fmt::Write as _;
use std::time::Instant;

/// The pre-overhaul quick-t3 timing this PR is measured against: the sum
/// of the 14 per-run wall-clock timings from `repro --quick --jobs 1 t3`
/// at the commit preceding the hot-path overhaul (full wall clock
/// including trace generation and CSV formatting was 13.7 s).
const BASELINE_QUICK_T3_RUN_SUM_S: f64 = 13.36;

/// The quick-t3 run-sum at the commit preceding the ladder-queue /
/// batched-admission PR (heap queue, per-event admission, incremental
/// resync already in), measured the same way on the recorded baseline
/// machine.
const PRE_LADDER_QUICK_T3_RUN_SUM_S: f64 = 8.38;

/// CI floor for quick_t3 throughput. Deliberately far below what any
/// recorded machine measures (the baseline box does several million
/// events/s) so shared-runner noise never trips it, while an algorithmic
/// regression — a queue gone quadratic, admission batching disabled —
/// still does.
const QUICK_T3_FLOOR_EVENTS_PER_SEC: f64 = 600_000.0;

/// One benchmark scenario: a named list of (label, thunk-describable) runs.
struct Scenario {
    name: &'static str,
    /// Runs per iteration: (policy, workload-ish label) resolved by `run`.
    runs: Vec<BenchRun>,
}

/// A fully prepared run: everything `Ctx::run_kind` needs, owned.
struct BenchRun {
    policy: PolicyKind,
    config: array::ArrayConfig,
    trace: std::sync::Arc<workload::Trace>,
    opts: RunOptions,
    goal_s: f64,
}

/// Measured numbers for one scenario.
struct Outcome {
    name: &'static str,
    runs_per_iter: usize,
    iters: usize,
    mean_wall_s: f64,
    min_wall_s: f64,
    events_per_iter: u64,
    events_per_sec: f64,
}

/// Entry point for `repro bench`.
pub fn bench(seed: u64, out: &str, iters: usize, reference: bool, check_floor: bool) {
    assert!(iters >= 1, "bench: need at least one iteration");
    // Quick scale, one job: the baseline was measured single-threaded, and
    // serial timing keeps iteration-to-iteration noise low.
    let ctx = Ctx::new(true, seed, out, 1);
    println!(
        "# hot-path bench — quick scale, seed {seed}, {iters} iteration(s){}",
        if reference {
            ", reference mode (full-scan resync + heap queue)"
        } else {
            ""
        }
    );

    let scenarios = vec![
        quick_t3(&ctx, reference),
        fault_storm(&ctx, reference),
        f6_highload(&ctx, reference),
    ];

    let mut outcomes = Vec::new();
    for sc in &scenarios {
        let mut walls = Vec::with_capacity(iters);
        let mut events = 0u64;
        for i in 0..iters {
            let started = Instant::now();
            let mut iter_events = 0u64;
            for r in &sc.runs {
                let report = ctx.run_kind(
                    r.policy,
                    r.config.clone(),
                    &r.trace,
                    r.opts.clone(),
                    r.goal_s,
                );
                iter_events += report.events_processed;
            }
            let wall = started.elapsed().as_secs_f64();
            walls.push(wall);
            if i == 0 {
                events = iter_events;
            } else {
                assert_eq!(
                    events, iter_events,
                    "bench: nondeterministic event count in {}",
                    sc.name
                );
            }
            println!(
                "  [{name} iter {n}/{iters}] {wall:.2} s, {iter_events} events",
                name = sc.name,
                n = i + 1,
            );
        }
        let mean = walls.iter().sum::<f64>() / walls.len() as f64;
        let min = walls.iter().cloned().fold(f64::INFINITY, f64::min);
        outcomes.push(Outcome {
            name: sc.name,
            runs_per_iter: sc.runs.len(),
            iters,
            mean_wall_s: mean,
            min_wall_s: min,
            events_per_iter: events,
            events_per_sec: events as f64 / mean,
        });
    }

    let json = render_json(&outcomes, seed, iters, reference);
    let path = std::path::Path::new(out).join("BENCH_hotpath.json");
    std::fs::write(&path, json).expect("write BENCH_hotpath.json");
    println!("  -> {}", path.display());
    for o in &outcomes {
        let speedup = if o.name == "quick_t3" {
            format!(
                " ({:.2}x vs pre-overhaul {BASELINE_QUICK_T3_RUN_SUM_S} s, \
                 {:.2}x vs pre-ladder {PRE_LADDER_QUICK_T3_RUN_SUM_S} s)",
                BASELINE_QUICK_T3_RUN_SUM_S / o.mean_wall_s,
                PRE_LADDER_QUICK_T3_RUN_SUM_S / o.mean_wall_s
            )
        } else {
            String::new()
        };
        println!(
            "bench {}: mean {:.2} s over {} iter(s), {:.0} events/s{speedup}",
            o.name, o.mean_wall_s, o.iters, o.events_per_sec
        );
    }

    let fleet_results = fleet_bench(&ctx, seed, out, iters, reference);

    if check_floor {
        let q = outcomes
            .iter()
            .find(|o| o.name == "quick_t3")
            .expect("quick_t3 scenario always runs");
        if q.events_per_sec < QUICK_T3_FLOOR_EVENTS_PER_SEC {
            eprintln!(
                "bench: quick_t3 at {:.0} events/s is below the floor of {:.0}",
                q.events_per_sec, QUICK_T3_FLOOR_EVENTS_PER_SEC
            );
            std::process::exit(1);
        }
        println!(
            "bench: quick_t3 floor check passed ({:.0} >= {:.0} events/s)",
            q.events_per_sec, QUICK_T3_FLOOR_EVENTS_PER_SEC
        );

        // Fleet speedup floors, gated on core count: the min-wall speedup
        // (least noise-sensitive view) must clear each scenario's floor,
        // but only on machines with enough cores for the comparison to
        // measure parallelism rather than time-slicing.
        let cores = parallel::available_parallelism();
        for r in &fleet_results {
            if cores < r.sc.floor_cores {
                println!(
                    "bench: {} floor check SKIPPED ({cores} core(s) < {} needed)",
                    r.sc.name, r.sc.floor_cores
                );
                continue;
            }
            if r.speedup_min < r.sc.floor {
                eprintln!(
                    "bench: {} parallel speedup {:.3}x (min-wall, jobs {}) is below \
                     the floor of {:.1}x",
                    r.sc.name, r.speedup_min, r.runs[1].jobs, r.sc.floor
                );
                std::process::exit(1);
            }
            println!(
                "bench: {} floor check passed ({:.3}x >= {:.1}x at jobs {})",
                r.sc.name, r.speedup_min, r.sc.floor, r.runs[1].jobs
            );
        }
    }
}

/// The fleet-quick parallel speedup measured at the commit preceding the
/// persistent-worker driver (per-epoch `Pool::map` round-trips: sims
/// moved into boxed jobs and back every fleet epoch) — parallel stepping
/// was a net *loss* on the recorded machine.
const PRE_WORKERS_FLEET_QUICK_SPEEDUP: f64 = 0.963;

/// CI floor for the fleet_quick parallel speedup (jobs ≥ 2 vs serial):
/// with persistent workers, parallel stepping must at minimum not lose.
/// Only enforced when the machine has at least [`FLEET_QUICK_FLOOR_CORES`]
/// cores — on fewer, extra worker threads just time-slice one core.
const FLEET_QUICK_MIN_SPEEDUP: f64 = 1.0;
/// Cores needed before the fleet_quick floor is meaningful.
const FLEET_QUICK_FLOOR_CORES: usize = 2;

/// CI floor for the fleet_scale scenarios (64+ arrays, jobs = 4 vs
/// serial): at that width the per-epoch barrier is amortized over dozens
/// of arrays per worker, so 4 cores must deliver at least 2.5×. Enforced
/// only on machines with [`FLEET_SCALE_FLOOR_CORES`]+ cores.
const FLEET_SCALE_MIN_SPEEDUP: f64 = 2.5;
/// Cores needed before the fleet_scale floor is meaningful.
const FLEET_SCALE_FLOOR_CORES: usize = 4;

/// One fleet bench scenario: a fleet shape timed at two worker counts.
struct FleetScenario {
    name: &'static str,
    arrays: usize,
    tenants: u32,
    /// The parallel worker count to compare against serial.
    jobs_hi: usize,
    /// Speedup floor and the core count that arms it.
    floor: f64,
    floor_cores: usize,
}

/// Measured numbers for one fleet scenario at one worker count.
struct FleetOutcome {
    jobs: usize,
    mean_wall_s: f64,
    min_wall_s: f64,
    events_per_iter: u64,
    events_per_sec: f64,
}

/// One fleet scenario's results: the serial and parallel outcomes plus
/// both speedup views (mean-based for reporting, min-wall-based for the
/// floor gate — minima are far less sensitive to shared-runner noise).
struct FleetResult {
    sc: FleetScenario,
    runs: Vec<FleetOutcome>,
    speedup_mean: f64,
    speedup_min: f64,
}

/// The **fleet** bench: three fleet shapes under a 60 % power budget,
/// each timed serially (`--jobs 1`) and parallel. The fleet driver's
/// persistent worker team is the one place the suite parallelizes
/// *inside* a single run, so this is the scaling number the hot-path
/// bench cannot show.
///
/// * **fleet_quick** — 4 arrays / 8 tenants, parallel at the machine's
///   cores (capped at 4): the latency-sensitive shape where per-epoch
///   overhead shows up directly;
/// * **fleet_scale_64** — 64 arrays / 128 tenants, jobs 4 vs 1;
/// * **fleet_scale_256** — 256 arrays / 512 tenants, jobs 4 vs 1: the
///   scale-out shapes where the barrier must amortize.
///
/// Results land in `BENCH_fleet.json` with the recorded pre-worker
/// baseline and the floor constants; per-iteration event counts must
/// match across worker counts (determinism is asserted, not hoped for).
fn fleet_bench(ctx: &Ctx, seed: u64, out: &str, iters: usize, reference: bool) -> Vec<FleetResult> {
    use fleet::{run_fleet, BudgetSchedule, FleetSpec};
    use hibernator::Hibernator;

    const BUDGET_FRAC: f64 = 0.6;

    let scenarios = [
        FleetScenario {
            name: "fleet_quick",
            arrays: 4,
            tenants: 8,
            jobs_hi: parallel::available_parallelism().clamp(2, 4),
            floor: FLEET_QUICK_MIN_SPEEDUP,
            floor_cores: FLEET_QUICK_FLOOR_CORES,
        },
        FleetScenario {
            name: "fleet_scale_64",
            arrays: 64,
            tenants: 128,
            jobs_hi: 4,
            floor: FLEET_SCALE_MIN_SPEEDUP,
            floor_cores: FLEET_SCALE_FLOOR_CORES,
        },
        FleetScenario {
            name: "fleet_scale_256",
            arrays: 256,
            tenants: 512,
            jobs_hi: 4,
            floor: FLEET_SCALE_MIN_SPEEDUP,
            floor_cores: FLEET_SCALE_FLOOR_CORES,
        },
    ];

    let config = ctx.array_config(Workload::Oltp);
    let trace = ctx.trace(Workload::Oltp);
    let opts = bench_opts(ctx, reference);
    let (_, goal) = calibrate(ctx, &config, &trace, &opts);

    let mut results = Vec::new();
    for sc in scenarios {
        let nominal_w = crate::fleetcmd::nominal_fleet_w(&config, sc.arrays);
        let mut spec = FleetSpec::new(
            sc.arrays,
            sc.tenants,
            config.clone(),
            opts.clone(),
            BudgetSchedule::constant(nominal_w * BUDGET_FRAC),
        );
        spec.fleet_epoch = simkit::SimDuration::from_secs(ctx.duration_s() / 12.0);

        let mut runs: Vec<FleetOutcome> = Vec::new();
        // One expected event count across every iteration AND worker
        // count: determinism is asserted, not hoped for.
        let mut events = 0u64;
        for jobs in [1usize, sc.jobs_hi] {
            let pool = parallel::Pool::new(jobs);
            let mut walls = Vec::with_capacity(iters);
            for i in 0..iters {
                let started = Instant::now();
                let report = run_fleet(&spec, &trace, &pool, |_| {
                    Hibernator::new(ctx.hibernator_config(goal))
                });
                let wall = started.elapsed().as_secs_f64();
                let iter_events: u64 = report.arrays.iter().map(|r| r.events_processed).sum();
                if i == 0 && runs.is_empty() {
                    events = iter_events;
                } else {
                    assert_eq!(
                        events, iter_events,
                        "bench: nondeterministic {} event count at {jobs} job(s)",
                        sc.name
                    );
                }
                walls.push(wall);
                println!(
                    "  [{name} jobs={jobs} iter {n}/{iters}] {wall:.2} s, {iter_events} events",
                    name = sc.name,
                    n = i + 1,
                );
            }
            let mean = walls.iter().sum::<f64>() / walls.len() as f64;
            let min = walls.iter().cloned().fold(f64::INFINITY, f64::min);
            runs.push(FleetOutcome {
                jobs,
                mean_wall_s: mean,
                min_wall_s: min,
                events_per_iter: events,
                events_per_sec: events as f64 / mean,
            });
        }
        let speedup_mean = runs[0].mean_wall_s / runs[1].mean_wall_s;
        let speedup_min = runs[0].min_wall_s / runs[1].min_wall_s;
        println!(
            "bench {}: {:.2} s at 1 job, {:.2} s at {} job(s) ({speedup_mean:.2}x mean, \
             {speedup_min:.2}x min-wall)",
            sc.name, runs[0].mean_wall_s, runs[1].mean_wall_s, runs[1].jobs
        );
        results.push(FleetResult {
            sc,
            runs,
            speedup_mean,
            speedup_min,
        });
    }

    let json = render_fleet_json(&results, seed, iters, reference);
    let path = std::path::Path::new(out).join("BENCH_fleet.json");
    std::fs::write(&path, json).expect("write BENCH_fleet.json");
    println!("  -> {}", path.display());
    results
}

/// Hand-rolled JSON for `BENCH_fleet.json`: scenarios, both speedup
/// views, the recorded pre-worker baseline, the floor constants, and the
/// core count the numbers were measured on (floors only bind when the
/// machine has enough cores).
fn render_fleet_json(results: &[FleetResult], seed: u64, iters: usize, reference: bool) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"fleet\",");
    let _ = writeln!(s, "  \"seed\": {seed},");
    let _ = writeln!(s, "  \"iters\": {iters},");
    let _ = writeln!(s, "  \"reference_full_resync\": {reference},");
    let _ = writeln!(s, "  \"reference_heap_queue\": {reference},");
    let _ = writeln!(
        s,
        "  \"available_parallelism\": {},",
        parallel::available_parallelism()
    );
    let _ = writeln!(s, "  \"budget_frac\": 0.6,");
    let _ = writeln!(s, "  \"baseline_pre_workers\": {{");
    let _ = writeln!(
        s,
        "    \"label\": \"pre-persistent-workers (per-epoch Pool::map round-trips, \
         sims boxed into jobs and merged back every fleet epoch)\","
    );
    let _ = writeln!(
        s,
        "    \"fleet_quick_speedup_parallel_vs_serial\": {PRE_WORKERS_FLEET_QUICK_SPEEDUP}"
    );
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"floors\": {{");
    let _ = writeln!(
        s,
        "    \"fleet_quick_min_speedup\": {FLEET_QUICK_MIN_SPEEDUP},"
    );
    let _ = writeln!(
        s,
        "    \"fleet_quick_floor_cores\": {FLEET_QUICK_FLOOR_CORES},"
    );
    let _ = writeln!(
        s,
        "    \"fleet_scale_min_speedup\": {FLEET_SCALE_MIN_SPEEDUP},"
    );
    let _ = writeln!(
        s,
        "    \"fleet_scale_floor_cores\": {FLEET_SCALE_FLOOR_CORES}"
    );
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"scenarios\": [");
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"name\": \"{}\",", r.sc.name);
        let _ = writeln!(s, "      \"arrays\": {},", r.sc.arrays);
        let _ = writeln!(s, "      \"tenants\": {},", r.sc.tenants);
        let _ = writeln!(s, "      \"runs\": [");
        for (j, o) in r.runs.iter().enumerate() {
            let _ = writeln!(s, "        {{");
            let _ = writeln!(s, "          \"jobs\": {},", o.jobs);
            let _ = writeln!(s, "          \"mean_wall_s\": {:.4},", o.mean_wall_s);
            let _ = writeln!(s, "          \"min_wall_s\": {:.4},", o.min_wall_s);
            let _ = writeln!(s, "          \"events_per_iter\": {},", o.events_per_iter);
            let _ = writeln!(s, "          \"events_per_sec\": {:.0}", o.events_per_sec);
            let _ = writeln!(
                s,
                "        }}{}",
                if j + 1 < r.runs.len() { "," } else { "" }
            );
        }
        let _ = writeln!(s, "      ],");
        let _ = writeln!(
            s,
            "      \"speedup_parallel_vs_serial\": {:.3},",
            r.speedup_mean
        );
        let _ = writeln!(s, "      \"speedup_min_wall\": {:.3}", r.speedup_min);
        let _ = writeln!(s, "    }}{}", if i + 1 < results.len() { "," } else { "" });
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}

/// Base run options for the bench (standard quick-scale settings plus the
/// reference toggles; telemetry stays off — it is benchmarked by its own
/// lockdown suite). Reference mode turns on both the full-scan wake
/// resync and the `BinaryHeap` queue with per-event admission, i.e. the
/// hot path as it was before either overhaul.
fn bench_opts(ctx: &Ctx, reference: bool) -> RunOptions {
    let mut o = ctx.run_options();
    o.reference_full_resync = reference;
    o.reference_heap_queue = reference;
    o
}

/// Runs Base untimed and derives the calibrated goal from its mean
/// response (the same `goal = factor × Base mean` rule the experiments
/// use), without touching the context's run cache.
fn calibrate(
    ctx: &Ctx,
    config: &array::ArrayConfig,
    trace: &workload::Trace,
    opts: &RunOptions,
) -> (RunReport, f64) {
    let base = ctx.run_kind(
        PolicyKind::Base,
        config.clone(),
        trace,
        opts.clone(),
        f64::MAX,
    );
    let goal = base.response.mean() * ctx.goal_factor();
    (base, goal)
}

/// The 16-run quick T3 grid (HEADLINE + FixedSlow, both workloads).
fn quick_t3(ctx: &Ctx, reference: bool) -> Scenario {
    let mut runs = Vec::new();
    for w in [Workload::Oltp, Workload::Cello] {
        let config = ctx.array_config(w);
        let trace = ctx.trace(w);
        let opts = bench_opts(ctx, reference);
        let (_, goal) = calibrate(ctx, &config, &trace, &opts);
        for p in PolicyKind::HEADLINE
            .into_iter()
            .chain([PolicyKind::FixedSlow])
        {
            runs.push(BenchRun {
                policy: p,
                config: config.clone(),
                trace: trace.clone(),
                opts: opts.clone(),
                goal_s: if p == PolicyKind::Base {
                    f64::MAX
                } else {
                    goal
                },
            });
        }
    }
    Scenario {
        name: "quick_t3",
        runs,
    }
}

/// Base + Hibernator under the scripted fault storm, RAID-5-like.
fn fault_storm(ctx: &Ctx, reference: bool) -> Scenario {
    let mut config = ctx.array_config(Workload::Oltp);
    config.redundancy = Redundancy::Raid5Like;
    let trace = ctx.trace(Workload::Oltp);
    let mut opts = bench_opts(ctx, reference);
    opts.faults = Some(FaultPlan {
        schedule: crate::faults::storm(ctx.duration_s()),
        config: FaultConfig::default(),
    });
    let (_, goal) = calibrate(ctx, &config, &trace, &opts);
    let runs = [PolicyKind::Base, PolicyKind::Hibernator]
        .into_iter()
        .map(|p| BenchRun {
            policy: p,
            config: config.clone(),
            trace: trace.clone(),
            opts: opts.clone(),
            goal_s: if p == PolicyKind::Base {
                f64::MAX
            } else {
                goal
            },
        })
        .collect();
    Scenario {
        name: "fault_storm",
        runs,
    }
}

/// Base + Hibernator at 2× OLTP load (the F6 congested point).
fn f6_highload(ctx: &Ctx, reference: bool) -> Scenario {
    let config = ctx.array_config(Workload::Oltp);
    let trace = ctx.trace_with_load(Workload::Oltp, 2.0);
    let opts = bench_opts(ctx, reference);
    let (_, goal) = calibrate(ctx, &config, &trace, &opts);
    let runs = [PolicyKind::Base, PolicyKind::Hibernator]
        .into_iter()
        .map(|p| BenchRun {
            policy: p,
            config: config.clone(),
            trace: trace.clone(),
            opts: opts.clone(),
            goal_s: if p == PolicyKind::Base {
                f64::MAX
            } else {
                goal
            },
        })
        .collect();
    Scenario {
        name: "f6_highload",
        runs,
    }
}

/// Hand-rolled JSON (std-only crate): scenarios plus the recorded pre-PR
/// baseline, so the file is self-contained evidence of the trajectory.
fn render_json(outcomes: &[Outcome], seed: u64, iters: usize, reference: bool) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"hotpath\",");
    let _ = writeln!(s, "  \"seed\": {seed},");
    let _ = writeln!(s, "  \"iters\": {iters},");
    let _ = writeln!(s, "  \"reference_full_resync\": {reference},");
    let _ = writeln!(s, "  \"reference_heap_queue\": {reference},");
    let _ = writeln!(
        s,
        "  \"quick_t3_floor_events_per_sec\": {QUICK_T3_FLOOR_EVENTS_PER_SEC},"
    );
    let _ = writeln!(s, "  \"baseline\": {{");
    let _ = writeln!(
        s,
        "    \"label\": \"pre-overhaul (commit 4337876, repro --quick --jobs 1 t3)\","
    );
    let _ = writeln!(
        s,
        "    \"quick_t3_run_sum_s\": {BASELINE_QUICK_T3_RUN_SUM_S},"
    );
    let _ = writeln!(s, "    \"quick_t3_wall_total_s\": 13.7,");
    let _ = writeln!(
        s,
        "    \"note\": \"run_sum_s is the sum of the 14 per-run timings (trace generation and CSV formatting excluded), matching what this bench times; wall_total_s is the full command\""
    );
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"baseline_pre_ladder\": {{");
    let _ = writeln!(
        s,
        "    \"label\": \"pre-ladder-queue (heap queue, per-event admission, incremental resync)\","
    );
    let _ = writeln!(
        s,
        "    \"quick_t3_run_sum_s\": {PRE_LADDER_QUICK_T3_RUN_SUM_S}"
    );
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"scenarios\": [");
    for (i, o) in outcomes.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"name\": \"{}\",", o.name);
        let _ = writeln!(s, "      \"runs_per_iter\": {},", o.runs_per_iter);
        let _ = writeln!(s, "      \"iters\": {},", o.iters);
        let _ = writeln!(s, "      \"mean_wall_s\": {:.4},", o.mean_wall_s);
        let _ = writeln!(s, "      \"min_wall_s\": {:.4},", o.min_wall_s);
        let _ = writeln!(s, "      \"events_per_iter\": {},", o.events_per_iter);
        let _ = writeln!(s, "      \"events_per_sec\": {:.0}{}", o.events_per_sec, {
            if o.name == "quick_t3" {
                ","
            } else {
                ""
            }
        });
        if o.name == "quick_t3" {
            let _ = writeln!(
                s,
                "      \"speedup_vs_baseline\": {:.3},",
                BASELINE_QUICK_T3_RUN_SUM_S / o.mean_wall_s
            );
            let _ = writeln!(
                s,
                "      \"speedup_vs_pre_ladder\": {:.3}",
                PRE_LADDER_QUICK_T3_RUN_SUM_S / o.mean_wall_s
            );
        }
        let _ = writeln!(s, "    }}{}", if i + 1 < outcomes.len() { "," } else { "" });
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}
