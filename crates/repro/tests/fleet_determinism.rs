//! Determinism under parallelism, fleet edition: `repro fleet` at
//! `--jobs 1` and `--jobs 4` must produce byte-identical output — the
//! CSVs *and* the fleet event stream.
//!
//! The fleet driver is the one place the suite parallelizes inside a
//! single run (per-array segments fan out on the pool between arbiter
//! rounds), so this locks that `Pool::map`'s ordered merge really does
//! keep the worker count out of every observable byte. The emitted
//! stream must also pass `repro audit`, which routes fleet streams to
//! the fleet auditor automatically.

use std::path::{Path, PathBuf};
use std::process::Command;

/// Runs `repro fleet` on a tiny horizon and returns its output dir.
fn run_fleet_cmd(tag: &str, jobs: u32) -> PathBuf {
    let out = std::env::temp_dir().join(format!("repro_fleet_det_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&out);
    let status = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "--quick",
            "--horizon-h",
            "0.1",
            "--seed",
            "11",
            "--jobs",
            &jobs.to_string(),
            "--arrays",
            "3",
            "--tenants",
            "6",
            "--budget-frac",
            "0.5",
            "--out",
        ])
        .arg(&out)
        .arg("fleet")
        .output()
        .expect("spawn repro binary");
    assert!(
        status.status.success(),
        "repro fleet --jobs {jobs} failed:\n{}",
        String::from_utf8_lossy(&status.stderr)
    );
    out
}

/// All output files under `dir`, sorted by name.
fn outputs(dir: &Path) -> Vec<PathBuf> {
    let mut v: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("read results dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "csv" || e == "jsonl"))
        .collect();
    v.sort();
    v
}

#[test]
fn fleet_jobs_count_does_not_change_output_bytes() {
    let serial = run_fleet_cmd("j1", 1);
    let parallel = run_fleet_cmd("j4", 4);

    let a = outputs(&serial);
    let b = outputs(&parallel);
    assert!(
        a.iter()
            .any(|p| p.file_name().is_some_and(|n| n == "fleet_stream.jsonl")),
        "no fleet stream produced"
    );
    assert_eq!(
        a.iter().map(|p| p.file_name().unwrap()).collect::<Vec<_>>(),
        b.iter().map(|p| p.file_name().unwrap()).collect::<Vec<_>>(),
        "different file sets"
    );
    for (pa, pb) in a.iter().zip(&b) {
        let ba = std::fs::read(pa).expect("read output");
        let bb = std::fs::read(pb).expect("read output");
        assert!(
            ba == bb,
            "{} differs between --jobs 1 and --jobs 4",
            pa.file_name().unwrap().to_string_lossy()
        );
        assert!(!ba.is_empty(), "{} is empty", pa.display());
    }

    // The stream must replay cleanly through the audit subcommand.
    let audit = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("audit")
        .arg(serial.join("fleet_stream.jsonl"))
        .output()
        .expect("spawn repro audit");
    assert!(
        audit.status.success(),
        "repro audit rejected the fleet stream:\n{}\n{}",
        String::from_utf8_lossy(&audit.stdout),
        String::from_utf8_lossy(&audit.stderr)
    );

    let _ = std::fs::remove_dir_all(&serial);
    let _ = std::fs::remove_dir_all(&parallel);
}
