//! Determinism under parallelism, scenario edition: `repro scenarios` at
//! `--jobs 1` and `--jobs 4` must produce byte-identical output — the
//! sweep CSV *and* the telemetry stream — and the stream must replay
//! cleanly through `repro audit`. The sweep is the one experiment whose
//! runs are fed by streaming sources (scenario combinators over
//! `SpecStream`), so this locks that lazy generation is exactly as
//! jobs-invariant as the materialised path it replaced.

use std::path::{Path, PathBuf};
use std::process::Command;

/// Runs `repro scenarios` on a tiny horizon and returns its output dir.
fn run_scenarios_cmd(tag: &str, jobs: u32) -> PathBuf {
    let out = std::env::temp_dir().join(format!("repro_scen_det_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&out);
    let stream = out.join("scenario_stream.jsonl");
    let status = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "--quick",
            "--horizon-h",
            "0.02",
            "--seed",
            "11",
            "--jobs",
            &jobs.to_string(),
            "--telemetry-out",
        ])
        .arg(&stream)
        .arg("--out")
        .arg(&out)
        .arg("scenarios")
        .output()
        .expect("spawn repro binary");
    assert!(
        status.status.success(),
        "repro scenarios --jobs {jobs} failed:\n{}",
        String::from_utf8_lossy(&status.stderr)
    );
    out
}

/// All output files under `dir`, sorted by name.
fn outputs(dir: &Path) -> Vec<PathBuf> {
    let mut v: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("read results dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "csv" || e == "jsonl"))
        .collect();
    v.sort();
    v
}

#[test]
fn scenario_sweep_jobs_count_does_not_change_output_bytes() {
    let serial = run_scenarios_cmd("j1", 1);
    let parallel = run_scenarios_cmd("j4", 4);

    let a = outputs(&serial);
    let b = outputs(&parallel);
    assert!(
        a.iter()
            .any(|p| p.file_name().is_some_and(|n| n == "scenario_sweep.csv")),
        "no sweep CSV produced"
    );
    assert_eq!(
        a.iter().map(|p| p.file_name().unwrap()).collect::<Vec<_>>(),
        b.iter().map(|p| p.file_name().unwrap()).collect::<Vec<_>>(),
        "different file sets"
    );
    for (pa, pb) in a.iter().zip(&b) {
        let ba = std::fs::read(pa).expect("read output");
        let bb = std::fs::read(pb).expect("read output");
        assert!(
            ba == bb,
            "{} differs between --jobs 1 and --jobs 4",
            pa.file_name().unwrap().to_string_lossy()
        );
        assert!(!ba.is_empty(), "{} is empty", pa.display());
    }

    // The stream must replay cleanly through the audit subcommand.
    let audit = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("audit")
        .arg(serial.join("scenario_stream.jsonl"))
        .output()
        .expect("spawn repro audit");
    assert!(
        audit.status.success(),
        "repro audit rejected the scenario stream:\n{}\n{}",
        String::from_utf8_lossy(&audit.stdout),
        String::from_utf8_lossy(&audit.stderr)
    );

    let _ = std::fs::remove_dir_all(&serial);
    let _ = std::fs::remove_dir_all(&parallel);
}
