//! Determinism under parallelism: the same experiments at `--jobs 1` and
//! `--jobs 4` must produce byte-identical CSV output.
//!
//! Every simulation owns its seeded RNG and all CSV formatting happens
//! serially from ordered results, so the jobs count must never leak into
//! the outputs. The chosen experiments cover both scheduling paths:
//! `t3` exercises the single-flight run cache and the two-stage
//! Base-before-goal prefetch, `f6` exercises ad-hoc pool batches with
//! per-load trace generation, and `cache` exercises the controller-cache
//! sweep grid (whose flush batches add a second event source that must
//! not perturb determinism either).

use std::path::{Path, PathBuf};
use std::process::Command;

/// Runs the `repro` binary on a tiny horizon and returns its output dir.
fn run_repro(tag: &str, jobs: u32) -> PathBuf {
    let out = std::env::temp_dir().join(format!("repro_det_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&out);
    let status = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "--quick",
            "--horizon-h",
            "0.1",
            "--seed",
            "11",
            "--jobs",
            &jobs.to_string(),
            "--out",
        ])
        .arg(&out)
        .args(["t3", "f6", "cache"])
        .output()
        .expect("spawn repro binary");
    assert!(
        status.status.success(),
        "repro --jobs {jobs} failed:\n{}",
        String::from_utf8_lossy(&status.stderr)
    );
    out
}

/// All CSV files under `dir`, sorted by name.
fn csvs(dir: &Path) -> Vec<PathBuf> {
    let mut v: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("read results dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "csv"))
        .collect();
    v.sort();
    v
}

#[test]
fn jobs_count_does_not_change_csv_bytes() {
    let serial = run_repro("j1", 1);
    let parallel = run_repro("j4", 4);

    let a = csvs(&serial);
    let b = csvs(&parallel);
    assert!(!a.is_empty(), "no CSVs produced");
    assert_eq!(
        a.iter().map(|p| p.file_name().unwrap()).collect::<Vec<_>>(),
        b.iter().map(|p| p.file_name().unwrap()).collect::<Vec<_>>(),
        "different file sets"
    );
    for (pa, pb) in a.iter().zip(&b) {
        let ba = std::fs::read(pa).expect("read csv");
        let bb = std::fs::read(pb).expect("read csv");
        assert!(
            ba == bb,
            "{} differs between --jobs 1 and --jobs 4",
            pa.file_name().unwrap().to_string_lossy()
        );
        assert!(!ba.is_empty(), "{} is empty", pa.display());
    }

    let _ = std::fs::remove_dir_all(&serial);
    let _ = std::fs::remove_dir_all(&parallel);
}
