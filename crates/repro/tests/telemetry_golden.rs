//! Golden-file lockdown of the telemetry stream format.
//!
//! Runs the `repro` binary on a tiny t3 horizon with `--telemetry-out` at
//! `--jobs 1` and `--jobs 4` and byte-compares both streams against the
//! checked-in fixture. This pins three things at once: the JSON-lines
//! serialization of every event type, the determinism of the simulations
//! feeding it, and the jobs-independence of the stream assembly. Any
//! intentional format change regenerates the fixture with
//! `REGEN_GOLDEN=1 cargo test -p repro --test telemetry_golden`.

use std::path::PathBuf;
use std::process::Command;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join("t3_quick_stream.jsonl")
}

/// Runs t3 on a tiny horizon capturing telemetry, returns the stream bytes.
fn capture_stream(tag: &str, jobs: u32) -> Vec<u8> {
    let tmp = std::env::temp_dir().join(format!("repro_golden_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    let stream = tmp.join("stream.jsonl");
    std::fs::create_dir_all(&tmp).expect("create tmp dir");
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--quick", "--horizon-h", "0.0005", "--seed", "7"])
        .args(["--jobs", &jobs.to_string()])
        .arg("--telemetry-out")
        .arg(&stream)
        .arg("--out")
        .arg(&tmp)
        .arg("t3")
        .output()
        .expect("spawn repro binary");
    assert!(
        out.status.success(),
        "repro --jobs {jobs} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let bytes = std::fs::read(&stream).expect("read stream file");
    let _ = std::fs::remove_dir_all(&tmp);
    bytes
}

#[test]
fn stream_matches_golden_at_any_jobs_count() {
    let serial = capture_stream("j1", 1);
    let parallel = capture_stream("j4", 4);
    assert!(
        serial == parallel,
        "telemetry stream differs between --jobs 1 and --jobs 4"
    );

    let golden = golden_path();
    if std::env::var_os("REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(golden.parent().unwrap()).expect("create golden dir");
        std::fs::write(&golden, &serial).expect("write golden");
        eprintln!("regenerated {}", golden.display());
        return;
    }

    let expected = std::fs::read(&golden).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); regenerate with REGEN_GOLDEN=1",
            golden.display()
        )
    });
    if serial != expected {
        // Find the first differing line for a readable failure.
        let got = String::from_utf8_lossy(&serial);
        let want = String::from_utf8_lossy(&expected);
        for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
            assert_eq!(g, w, "first divergence at stream line {}", i + 1);
        }
        panic!(
            "stream length changed: {} vs golden {} lines",
            got.lines().count(),
            want.lines().count()
        );
    }

    // The checked-in stream must itself satisfy every audit invariant.
    let outcome = telemetry::audit::audit_bytes(&serial).expect("parsable stream");
    assert!(outcome.passed(), "golden stream fails audit");
    assert_eq!(outcome.runs.len(), 16, "t3 covers 8 policies x 2 workloads");
}
