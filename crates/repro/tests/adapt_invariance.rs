//! Jobs-invariance lockdown for the adaptation race.
//!
//! Runs `repro adapt` on a short horizon at `--jobs 1` and `--jobs 2`
//! and byte-compares the resulting `adapt_race.csv`: the race's finish
//! order and every reported number must be independent of how the runs
//! were scheduled across workers. Also sanity-checks the CSV shape (all
//! four adaptive contenders present, readapt and energy parse).

use std::path::PathBuf;
use std::process::Command;

/// Runs `repro adapt` with the given jobs count, returns the CSV bytes.
fn run_adapt(tag: &str, jobs: u32) -> Vec<u8> {
    let tmp = std::env::temp_dir().join(format!("repro_adapt_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    std::fs::create_dir_all(&tmp).expect("create tmp dir");
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--quick", "--horizon-h", "0.05", "--seed", "7"])
        .args(["--jobs", &jobs.to_string()])
        .arg("--out")
        .arg(&tmp)
        .arg("adapt")
        .output()
        .expect("spawn repro binary");
    assert!(
        out.status.success(),
        "repro adapt --jobs {jobs} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let csv = std::fs::read(PathBuf::from(&tmp).join("adapt_race.csv")).expect("read csv");
    let _ = std::fs::remove_dir_all(&tmp);
    csv
}

#[test]
fn adapt_csv_is_jobs_invariant_and_well_formed() {
    let serial = run_adapt("j1", 1);
    let parallel = run_adapt("j2", 2);
    assert!(
        serial == parallel,
        "adapt_race.csv differs between --jobs 1 and --jobs 2:\n{}\nvs\n{}",
        String::from_utf8_lossy(&serial),
        String::from_utf8_lossy(&parallel)
    );

    let text = String::from_utf8(serial).expect("utf-8 csv");
    let mut lines = text.lines();
    assert_eq!(
        lines.next(),
        Some("policy,goal_ms,energy_kj,mean_ms,readapt_s,postflip_viol_pct,completed,incomplete")
    );
    let rows: Vec<&str> = lines.collect();
    assert_eq!(rows.len(), 4, "one row per adaptive contender");
    for name in ["Hibernator", "Hib-LFU", "Hib-Bandit", "SleepScale"] {
        assert!(
            rows.iter().any(|r| r.starts_with(&format!("{name},"))),
            "missing contender {name} in:\n{text}"
        );
    }
    let mut prev: Option<(f64, f64)> = None;
    for r in &rows {
        let f: Vec<&str> = r.split(',').collect();
        assert_eq!(f.len(), 8, "malformed row {r}");
        let energy: f64 = f[2].parse().expect("energy parses");
        let readapt: f64 = f[4].parse().expect("readapt parses");
        assert!(energy > 0.0 && readapt >= 0.0, "insane row {r}");
        // Rows come out in finish order: readapt ascending, energy
        // breaking ties.
        if let Some((pr, pe)) = prev {
            assert!(
                readapt > pr || (readapt == pr && energy >= pe),
                "rows not ranked by (readapt, energy): {r} after ({pr}, {pe})"
            );
        }
        prev = Some((readapt, energy));
    }
}
