//! Golden-file lockdown of the MSR-Cambridge trace ingest: the committed
//! fixture must parse to exactly these requests, forever. Any change to
//! tick conversion, sector arithmetic, or sorting shows up here first.

use workload::trace_io::{read_msr_csv, MsrReader};
use workload::VolumeIoKind;

const FIXTURE: &str = include_str!("fixtures/msr_sample.csv");

#[test]
fn fixture_parses_to_golden_values() {
    let trace = read_msr_csv(FIXTURE.as_bytes()).unwrap();
    assert_eq!(trace.len(), 10);
    assert!(trace.is_sorted(), "collect must sort the capture");

    // (time_s, sector, sectors, kind) for every record, in sorted order.
    // The fixture's 8th line is time-stamped *before* its 7th — the sort
    // interleaves them (1.3 s before 1.5 s).
    let golden: &[(f64, u64, u32, VolumeIoKind)] = &[
        (0.0, 40_960, 8, VolumeIoKind::Read),
        (2.5, 8_192, 16, VolumeIoKind::Write),
        (5.0, 0, 1, VolumeIoKind::Read),
        (7.5, 65_536, 128, VolumeIoKind::Write),
        (10.0, 2_048, 8, VolumeIoKind::Read),
        (12.0, 1_024, 2, VolumeIoKind::Read),
        (13.0, 512, 1, VolumeIoKind::Read),
        (15.0, 4_096, 6, VolumeIoKind::Write),
        (20.0, 16_384, 32, VolumeIoKind::Write),
        (25.0, 32_768, 8, VolumeIoKind::Read),
    ];
    for (i, (r, g)) in trace.requests.iter().zip(golden).enumerate() {
        assert_eq!(r.time.as_secs(), g.0, "record {i} time");
        assert_eq!(r.sector, g.1, "record {i} sector");
        assert_eq!(r.sectors, g.2, "record {i} length");
        assert_eq!(r.kind, g.3, "record {i} kind");
    }
}

#[test]
fn fixture_streams_one_record_per_pull() {
    // The streaming reader yields records in *file* order (the fixture's
    // out-of-order line stays out of order until collected).
    let records: Vec<_> = MsrReader::new(FIXTURE.as_bytes())
        .collect::<Result<Vec<_>, _>>()
        .unwrap();
    assert_eq!(records.len(), 10);
    assert_eq!(records[6].time.as_secs(), 15.0);
    assert_eq!(records[7].time.as_secs(), 13.0, "file order preserved");
    let reads = records
        .iter()
        .filter(|r| r.kind == VolumeIoKind::Read)
        .count();
    assert_eq!(reads, 6);
}

#[test]
fn fixture_survives_native_roundtrip() {
    // Ingested traces persist through the native formats bit-exactly.
    let trace = read_msr_csv(FIXTURE.as_bytes()).unwrap();
    let mut csv = Vec::new();
    workload::trace_io::write_csv(&trace, &mut csv).unwrap();
    assert_eq!(
        workload::trace_io::read_csv(csv.as_slice())
            .unwrap()
            .requests,
        trace.requests
    );
}
