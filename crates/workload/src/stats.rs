//! Trace characterisation (the "workload table" of the evaluation).

use crate::request::{Trace, VolumeIoKind};

/// Summary statistics of a trace.
#[derive(Debug, Clone)]
pub struct TraceStats {
    /// Number of requests.
    pub requests: u64,
    /// Trace span in seconds (first to last arrival).
    pub span_s: f64,
    /// Mean arrival rate over the span (req/s).
    pub mean_rate: f64,
    /// Fraction of requests that are reads.
    pub read_fraction: f64,
    /// Mean request size in KiB.
    pub mean_size_kib: f64,
    /// Footprint: number of distinct 1 MiB regions touched.
    pub footprint_mib: u64,
    /// Share of accesses landing on the hottest 10% of touched 1 MiB
    /// regions (skew headline).
    pub top_decile_share: f64,
    /// Fraction of requests whose 1 MiB region was already touched
    /// earlier in the trace — an upper bound on what any
    /// region-granular cache could hit.
    pub re_reference_share: f64,
    /// Peak-to-mean ratio of per-minute arrival counts (burstiness).
    pub peak_to_mean: f64,
}

impl TraceStats {
    /// Computes the statistics of `trace`. Returns `None` for an empty
    /// trace (there is nothing to characterise).
    pub fn compute(trace: &Trace) -> Option<TraceStats> {
        if trace.is_empty() {
            return None;
        }
        let n = trace.len() as u64;
        let first = trace.requests.first().expect("non-empty").time.as_secs();
        let last = trace.end_time().as_secs();
        let span_s = (last - first).max(1e-9);

        let reads = trace
            .requests
            .iter()
            .filter(|r| r.kind == VolumeIoKind::Read)
            .count() as f64;
        let total_sectors: u64 = trace.requests.iter().map(|r| u64::from(r.sectors)).sum();

        // Footprint + skew over 1 MiB regions (2048 sectors). A request
        // whose region is already in the map is a re-reference: with an
        // unbounded region-granular cache it would have been a hit.
        const REGION: u64 = 2048;
        let mut counts = std::collections::HashMap::new();
        let mut re_referenced = 0u64;
        for r in &trace.requests {
            let c = counts.entry(r.sector / REGION).or_insert(0u64);
            if *c > 0 {
                re_referenced += 1;
            }
            *c += 1;
        }
        let mut per_region: Vec<u64> = counts.values().copied().collect();
        per_region.sort_unstable_by(|a, b| b.cmp(a));
        let decile = (per_region.len() / 10).max(1);
        let top: u64 = per_region[..decile].iter().sum();

        // Burstiness from per-minute bins.
        let bins = (span_s / 60.0).ceil() as usize;
        let mut minute = vec![0u64; bins.max(1)];
        for r in &trace.requests {
            let b = (((r.time.as_secs() - first) / 60.0) as usize).min(minute.len() - 1);
            minute[b] += 1;
        }
        let mean_per_min = n as f64 / minute.len() as f64;
        let peak = *minute.iter().max().expect("non-empty") as f64;

        Some(TraceStats {
            requests: n,
            span_s,
            mean_rate: n as f64 / span_s,
            read_fraction: reads / n as f64,
            mean_size_kib: total_sectors as f64 * 512.0 / 1024.0 / n as f64,
            footprint_mib: per_region.len() as u64,
            top_decile_share: top as f64 / n as f64,
            re_reference_share: re_referenced as f64 / n as f64,
            peak_to_mean: peak / mean_per_min,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::WorkloadSpec;
    use crate::request::VolumeRequest;
    use simkit::SimTime;

    #[test]
    fn empty_trace_yields_none() {
        assert!(TraceStats::compute(&Trace::new()).is_none());
    }

    #[test]
    fn simple_trace_stats() {
        let tr = Trace::from_requests(vec![
            VolumeRequest {
                time: SimTime::from_secs(0.0),
                sector: 0,
                sectors: 16,
                kind: VolumeIoKind::Read,
            },
            VolumeRequest {
                time: SimTime::from_secs(60.0),
                sector: 1_000_000,
                sectors: 48,
                kind: VolumeIoKind::Write,
            },
        ]);
        let s = TraceStats::compute(&tr).unwrap();
        assert_eq!(s.requests, 2);
        assert!((s.span_s - 60.0).abs() < 1e-9);
        assert!((s.read_fraction - 0.5).abs() < 1e-12);
        assert!((s.mean_size_kib - 16.0).abs() < 1e-9); // (8 KiB + 24 KiB)/2
        assert_eq!(s.footprint_mib, 2);
        assert_eq!(s.re_reference_share, 0.0, "two distinct regions");
    }

    #[test]
    fn re_reference_counts_repeat_regions() {
        // Three hits on region 0, one on region 1: requests 2, 3 are
        // re-references -> share 0.5.
        let mk = |t: f64, sector: u64| VolumeRequest {
            time: SimTime::from_secs(t),
            sector,
            sectors: 8,
            kind: VolumeIoKind::Read,
        };
        let tr = Trace::from_requests(vec![mk(0.0, 0), mk(1.0, 100), mk(2.0, 2000), mk(3.0, 4096)]);
        let s = TraceStats::compute(&tr).unwrap();
        assert!((s.re_reference_share - 0.5).abs() < 1e-12);
    }

    #[test]
    fn oltp_stats_reflect_spec() {
        let spec = WorkloadSpec::oltp(600.0, 80.0);
        let s = TraceStats::compute(&spec.generate(1)).unwrap();
        assert!((s.mean_rate - 80.0).abs() < 8.0);
        assert!((s.read_fraction - 0.7).abs() < 0.05);
        assert!(s.top_decile_share > 0.5, "skew {}", s.top_decile_share);
        assert!(s.peak_to_mean < 2.5, "OLTP should not be bursty");
    }

    #[test]
    fn cello_burstier_than_oltp() {
        let oltp = TraceStats::compute(&WorkloadSpec::oltp(7200.0, 40.0).generate(2)).unwrap();
        let cello =
            TraceStats::compute(&WorkloadSpec::cello_like(7200.0, 40.0).generate(2)).unwrap();
        assert!(
            cello.peak_to_mean > oltp.peak_to_mean,
            "cello {} vs oltp {}",
            cello.peak_to_mean,
            oltp.peak_to_mean
        );
    }
}
