//! # workload — request streams for the Hibernator evaluation
//!
//! Generates and characterises the I/O workloads the experiments run:
//!
//! * [`VolumeRequest`] / [`Trace`] — requests against the array's logical
//!   volume, with CSV and JSON-lines persistence in [`trace_io`];
//! * [`Poisson`], [`Mmpp2`], [`DiurnalProfile`] — arrival processes;
//! * [`ZipfExtents`], [`SequentialRuns`] — popularity and locality;
//! * [`WorkloadSpec`] — complete synthetic workload descriptions, with the
//!   `oltp` and `cello_like` presets the experiments use (substitutes for
//!   the paper's non-redistributable production traces; see DESIGN.md);
//! * [`TraceSource`] — pull-based streaming requests: [`SpecStream`]
//!   regenerates a spec lazily (bit-identical to [`WorkloadSpec::generate`]
//!   at O(1) trace memory), [`TraceCursor`] streams a materialised trace;
//! * [`Scenario`] — adversarial modifiers over a base spec (flash crowds,
//!   popularity flips, write floods, scan poison);
//! * [`TraceStats`] — the workload-characteristics table.
//!
//! Everything is deterministic given a spec and a seed.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod arrivals;
mod generator;
mod popularity;
mod request;
mod scenario;
mod stats;
mod stream;
pub mod tenants;
pub mod trace_io;

pub use arrivals::{DiurnalProfile, Mmpp2, Poisson};
pub use generator::{ArrivalModel, SizeMix, WorkloadSpec, WorkloadSpecError};
pub use popularity::{SequentialRuns, ZipfExtents};
pub use request::{Trace, VolumeIoKind, VolumeRequest};
pub use scenario::Scenario;
pub use stats::TraceStats;
pub use stream::{collect_trace, Counted, SpecStream, TraceCursor, TraceSource};
