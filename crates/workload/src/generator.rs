//! Synthetic workload generators.
//!
//! Because the paper's traces (a production OLTP trace and HP's Cello99
//! file-server trace) are not redistributable, the suite regenerates
//! workloads with the *properties that drive the results* (see DESIGN.md):
//!
//! * [`WorkloadSpec::oltp`] — steady, high arrival rate around the clock
//!   (defeats idleness-based spin-down), small random requests, strong Zipf
//!   skew (rewards temperature-driven migration), read-mostly.
//! * [`WorkloadSpec::cello_like`] — diurnal office profile with a nightly
//!   write burst, bursty MMPP arrivals, larger and more sequential
//!   requests: long low-load valleys where slow speeds and standby pay off.
//!
//! Generation is fully deterministic given `(spec, seed)`.

use crate::arrivals::{DiurnalProfile, Mmpp2, Poisson};
use crate::popularity::{SequentialRuns, ZipfExtents};
use crate::request::{Trace, VolumeIoKind, VolumeRequest};
use crate::stream::SpecStream;
use simkit::{DetRng, SimTime};
use std::fmt;

/// A structurally invalid [`WorkloadSpec`], caught by
/// [`WorkloadSpec::validate`] before any generation happens — NaN rates
/// or out-of-range probabilities would otherwise poison every downstream
/// draw silently.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpecError {
    /// `duration_s` is not a finite, non-negative number.
    BadDuration(f64),
    /// An arrival-model parameter is unusable; the string names it.
    BadArrivals(String),
    /// A probability field is outside `[0, 1]` (or NaN); `(field, value)`.
    BadFraction(&'static str, f64),
    /// The size mix has no choices at all.
    EmptySizeMix,
    /// A size-mix entry has a zero-sector size or a non-finite/negative
    /// weight; `(sectors, weight)`.
    BadSizeChoice(u32, f64),
    /// The size-mix weights sum to zero, so nothing can be sampled.
    ZeroSizeMixWeight,
    /// `extents` or `extent_sectors` is zero.
    EmptyFootprint,
    /// `zipf_theta` is negative or not finite.
    BadTheta(f64),
    /// The diurnal profile has a negative/non-finite hour or is
    /// identically zero; the string says which.
    BadDiurnal(String),
}

impl fmt::Display for WorkloadSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadSpecError::BadDuration(d) => write!(f, "bad duration {d}"),
            WorkloadSpecError::BadArrivals(msg) => write!(f, "bad arrivals: {msg}"),
            WorkloadSpecError::BadFraction(field, v) => {
                write!(f, "bad {field} {v} (want a probability in [0, 1])")
            }
            WorkloadSpecError::EmptySizeMix => write!(f, "empty size mix"),
            WorkloadSpecError::BadSizeChoice(s, w) => {
                write!(f, "bad size-mix choice ({s} sectors, weight {w})")
            }
            WorkloadSpecError::ZeroSizeMixWeight => {
                write!(f, "size-mix weights sum to zero")
            }
            WorkloadSpecError::EmptyFootprint => {
                write!(f, "zero extents or extent_sectors")
            }
            WorkloadSpecError::BadTheta(t) => write!(f, "bad zipf_theta {t}"),
            WorkloadSpecError::BadDiurnal(msg) => write!(f, "bad diurnal profile: {msg}"),
        }
    }
}

impl std::error::Error for WorkloadSpecError {}

/// Shape of the arrival process.
#[derive(Debug, Clone, Copy)]
pub enum ArrivalModel {
    /// Homogeneous Poisson at `rate` events/sec.
    Poisson {
        /// Events per second.
        rate: f64,
    },
    /// Two-state MMPP (quiet/burst).
    Mmpp {
        /// Quiet-state rate (events/sec).
        rate_quiet: f64,
        /// Burst-state rate (events/sec).
        rate_burst: f64,
        /// Mean quiet dwell (s).
        mean_quiet_s: f64,
        /// Mean burst dwell (s).
        mean_burst_s: f64,
    },
}

/// Distribution of request sizes, in sectors.
#[derive(Debug, Clone)]
pub struct SizeMix {
    /// `(sectors, weight)` choices; weights need not sum to 1.
    pub choices: Vec<(u32, f64)>,
}

impl SizeMix {
    /// A fixed size.
    pub fn fixed(sectors: u32) -> Self {
        SizeMix {
            choices: vec![(sectors, 1.0)],
        }
    }

    /// Samples a size.
    ///
    /// # Panics
    /// Panics if the mix is empty or total weight is non-positive.
    pub fn sample(&self, rng: &mut DetRng) -> u32 {
        let total: f64 = self.choices.iter().map(|(_, w)| w).sum();
        assert!(total > 0.0, "empty size mix");
        let mut u = rng.uniform01() * total;
        for &(s, w) in &self.choices {
            if u < w {
                return s;
            }
            u -= w;
        }
        self.choices.last().expect("non-empty").0
    }

    /// The weighted mean size in sectors.
    pub fn mean_sectors(&self) -> f64 {
        let total: f64 = self.choices.iter().map(|(_, w)| w).sum();
        self.choices
            .iter()
            .map(|&(s, w)| f64::from(s) * w)
            .sum::<f64>()
            / total
    }
}

/// Full description of a synthetic workload.
///
/// # Examples
/// ```
/// use workload::WorkloadSpec;
///
/// let spec = WorkloadSpec::oltp(60.0, 50.0); // 1 minute at 50 req/s
/// let trace = spec.generate(7);
/// assert!(trace.is_sorted());
/// let rate = trace.len() as f64 / 60.0;
/// assert!((rate - 50.0).abs() < 10.0);
/// // Same seed, same trace:
/// assert_eq!(spec.generate(7).requests, trace.requests);
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Name for reports.
    pub name: String,
    /// Trace duration in seconds.
    pub duration_s: f64,
    /// Arrival process.
    pub arrivals: ArrivalModel,
    /// 24-hour modulation (`None` = flat).
    pub diurnal: Option<[f64; 24]>,
    /// Fraction of requests that are reads.
    pub read_fraction: f64,
    /// Request-size mix.
    pub sizes: SizeMix,
    /// Number of popularity extents.
    pub extents: u32,
    /// Sectors per extent.
    pub extent_sectors: u64,
    /// Zipf exponent (0 = uniform).
    pub zipf_theta: f64,
    /// Probability that a request continues the previous one sequentially.
    pub sequential_fraction: f64,
}

impl WorkloadSpec {
    /// OLTP-style preset: `rate` req/s around the clock, 70% reads, 8 KiB
    /// pages with occasional 64 KiB scans, Zipf θ = 0.95 over a ~16 GiB
    /// footprint, almost no sequentiality.
    pub fn oltp(duration_s: f64, rate: f64) -> Self {
        WorkloadSpec {
            name: "oltp".into(),
            duration_s,
            arrivals: ArrivalModel::Poisson { rate },
            diurnal: None,
            read_fraction: 0.7,
            sizes: SizeMix {
                choices: vec![(16, 0.9), (128, 0.1)], // 8 KiB pages, 64 KiB scans
            },
            extents: 16_384,
            extent_sectors: 2_048, // 1 MiB extents → 16 GiB footprint
            zipf_theta: 0.95,
            sequential_fraction: 0.05,
        }
    }

    /// Cello-like file-server preset: bursty MMPP arrivals averaging
    /// `mean_rate` req/s before diurnal shaping, office-hours profile with a
    /// nightly backup bump, 55% reads, mixed sizes up to 256 KiB, milder
    /// skew, noticeable sequentiality.
    pub fn cello_like(duration_s: f64, mean_rate: f64) -> Self {
        // Choose MMPP states around the requested mean: bursts 8× quiet.
        let rate_quiet = mean_rate * 0.5;
        let rate_burst = mean_rate * 4.0;
        WorkloadSpec {
            name: "cello".into(),
            duration_s,
            arrivals: ArrivalModel::Mmpp {
                rate_quiet,
                rate_burst,
                mean_quiet_s: 240.0,
                mean_burst_s: 40.0,
            },
            diurnal: Some(to_hourly(DiurnalProfile::office_with_backup())),
            read_fraction: 0.55,
            sizes: SizeMix {
                choices: vec![(8, 0.35), (16, 0.3), (64, 0.2), (256, 0.1), (512, 0.05)],
            },
            extents: 24_576,
            extent_sectors: 2_048, // 24 GiB footprint
            zipf_theta: 0.75,
            sequential_fraction: 0.3,
        }
    }

    /// The volume footprint this workload touches, in sectors.
    pub fn footprint_sectors(&self) -> u64 {
        self.extent_sectors * u64::from(self.extents)
    }

    /// The long-run mean arrival rate implied by the spec, including
    /// diurnal shaping.
    pub fn mean_rate(&self) -> f64 {
        let base = match self.arrivals {
            ArrivalModel::Poisson { rate } => rate,
            ArrivalModel::Mmpp {
                rate_quiet,
                rate_burst,
                mean_quiet_s,
                mean_burst_s,
            } => {
                let pq = mean_quiet_s / (mean_quiet_s + mean_burst_s);
                pq * rate_quiet + (1.0 - pq) * rate_burst
            }
        };
        match &self.diurnal {
            None => base,
            Some(h) => base * h.iter().sum::<f64>() / 24.0,
        }
    }

    /// Checks the spec for structural problems — NaN or negative rates,
    /// probabilities outside `[0, 1]`, an empty size mix, a zero footprint,
    /// an all-zero diurnal profile — and reports the first one found.
    /// [`WorkloadSpec::generate`] and [`WorkloadSpec::stream`] call this up
    /// front, so a bad spec fails loudly instead of generating garbage.
    pub fn validate(&self) -> Result<(), WorkloadSpecError> {
        if !self.duration_s.is_finite() || self.duration_s < 0.0 {
            return Err(WorkloadSpecError::BadDuration(self.duration_s));
        }
        match self.arrivals {
            ArrivalModel::Poisson { rate } => {
                if !rate.is_finite() || rate <= 0.0 {
                    return Err(WorkloadSpecError::BadArrivals(format!(
                        "Poisson rate {rate}"
                    )));
                }
            }
            ArrivalModel::Mmpp {
                rate_quiet,
                rate_burst,
                mean_quiet_s,
                mean_burst_s,
            } => {
                for (name, v) in [
                    ("rate_quiet", rate_quiet),
                    ("rate_burst", rate_burst),
                    ("mean_quiet_s", mean_quiet_s),
                    ("mean_burst_s", mean_burst_s),
                ] {
                    if !v.is_finite() || v <= 0.0 {
                        return Err(WorkloadSpecError::BadArrivals(format!("MMPP {name} {v}")));
                    }
                }
                if rate_burst <= rate_quiet {
                    return Err(WorkloadSpecError::BadArrivals(format!(
                        "MMPP burst rate {rate_burst} must exceed quiet rate {rate_quiet}"
                    )));
                }
            }
        }
        for (field, v) in [
            ("read_fraction", self.read_fraction),
            ("sequential_fraction", self.sequential_fraction),
        ] {
            if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                return Err(WorkloadSpecError::BadFraction(field, v));
            }
        }
        if self.sizes.choices.is_empty() {
            return Err(WorkloadSpecError::EmptySizeMix);
        }
        for &(s, w) in &self.sizes.choices {
            if s == 0 || !w.is_finite() || w < 0.0 {
                return Err(WorkloadSpecError::BadSizeChoice(s, w));
            }
        }
        if self.sizes.choices.iter().map(|(_, w)| w).sum::<f64>() <= 0.0 {
            return Err(WorkloadSpecError::ZeroSizeMixWeight);
        }
        if self.extents == 0 || self.extent_sectors == 0 {
            return Err(WorkloadSpecError::EmptyFootprint);
        }
        if !self.zipf_theta.is_finite() || self.zipf_theta < 0.0 {
            return Err(WorkloadSpecError::BadTheta(self.zipf_theta));
        }
        if let Some(hourly) = &self.diurnal {
            for (h, m) in hourly.iter().enumerate() {
                if !m.is_finite() || *m < 0.0 {
                    return Err(WorkloadSpecError::BadDiurnal(format!(
                        "hour {h} multiplier {m}"
                    )));
                }
            }
            if hourly.iter().all(|&m| m == 0.0) {
                return Err(WorkloadSpecError::BadDiurnal("identically zero".into()));
            }
        }
        Ok(())
    }

    /// A streaming source yielding exactly the requests
    /// [`WorkloadSpec::generate`] would materialise, in the same order with
    /// the same bits, in O(1) memory per request (the popularity tables are
    /// the only O(extents) state). See [`SpecStream`].
    ///
    /// # Panics
    /// Panics if the spec fails [`WorkloadSpec::validate`].
    pub fn stream(&self, seed: u64) -> SpecStream {
        SpecStream::new(self, seed)
    }

    /// Generates the trace for this spec deterministically from `seed`.
    ///
    /// This is the materialised reference path;
    /// [`WorkloadSpec::stream`] yields the identical request sequence
    /// without holding it in memory, and `tests/stream_equivalence.rs`
    /// pins the two together.
    ///
    /// # Panics
    /// Panics if the spec fails [`WorkloadSpec::validate`] (zero extents,
    /// empty size mix, NaN rates, probabilities out of range, …).
    pub fn generate(&self, seed: u64) -> Trace {
        if let Err(e) = self.validate() {
            panic!("invalid workload spec {:?}: {e}", self.name);
        }
        let mut root = DetRng::new(seed, &format!("workload-{}", self.name));
        let mut arr_rng = root.split("arrivals");
        let mut pop_rng = root.split("popularity");
        let mut mix_rng = root.split("mix");

        // 1. Raw arrival times (at peak rate when diurnally modulated).
        let profile = self.diurnal.map(DiurnalProfile::new);
        let peak_mult = profile.as_ref().map_or(1.0, |p| p.peak());
        let raw: Vec<f64> = match self.arrivals {
            ArrivalModel::Poisson { rate } => {
                Poisson::new(rate * peak_mult).arrivals(&mut arr_rng, self.duration_s)
            }
            ArrivalModel::Mmpp {
                rate_quiet,
                rate_burst,
                mean_quiet_s,
                mean_burst_s,
            } => Mmpp2::new(
                rate_quiet * peak_mult,
                rate_burst * peak_mult,
                mean_quiet_s,
                mean_burst_s,
            )
            .arrivals(&mut arr_rng, self.duration_s),
        };
        let times = match &profile {
            Some(p) => p.thin(&mut arr_rng, &raw),
            None => raw,
        };

        // 2. Addresses, sizes, kinds.
        let zipf = ZipfExtents::new(
            &mut pop_rng,
            self.extents,
            self.extent_sectors,
            self.zipf_theta,
        );
        let mut seq = SequentialRuns::new(self.sequential_fraction, zipf.footprint_sectors());
        let mut requests = Vec::with_capacity(times.len());
        for t in times {
            let sectors = self.sizes.sample(&mut mix_rng);
            let random = zipf.sample_sector(&mut pop_rng, sectors);
            let sector = seq.choose(&mut mix_rng, random, sectors);
            let kind = if mix_rng.chance(self.read_fraction) {
                VolumeIoKind::Read
            } else {
                VolumeIoKind::Write
            };
            requests.push(VolumeRequest {
                time: SimTime::from_secs(t),
                sector,
                sectors,
                kind,
            });
        }
        Trace::from_requests(requests)
    }
}

pub(crate) fn to_hourly(p: DiurnalProfile) -> [f64; 24] {
    let mut h = [0.0; 24];
    for (i, v) in h.iter_mut().enumerate() {
        *v = p.multiplier(i as f64 * 3600.0);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_mix_sampling_and_mean() {
        let mix = SizeMix {
            choices: vec![(8, 1.0), (24, 1.0)],
        };
        assert_eq!(mix.mean_sectors(), 16.0);
        let mut rng = DetRng::new(1, "mix");
        for _ in 0..100 {
            let s = mix.sample(&mut rng);
            assert!(s == 8 || s == 24);
        }
        assert_eq!(SizeMix::fixed(64).sample(&mut rng), 64);
    }

    #[test]
    fn oltp_trace_properties() {
        let spec = WorkloadSpec::oltp(600.0, 100.0);
        let trace = spec.generate(42);
        assert!(trace.is_sorted());
        let rate = trace.len() as f64 / 600.0;
        assert!((rate - 100.0).abs() < 5.0, "rate {rate}");
        let reads = trace
            .requests
            .iter()
            .filter(|r| r.kind == VolumeIoKind::Read)
            .count() as f64
            / trace.len() as f64;
        assert!((reads - 0.7).abs() < 0.03, "read fraction {reads}");
        assert!(trace.max_sector() <= spec.footprint_sectors());
    }

    #[test]
    fn oltp_rate_is_steady_over_day() {
        let spec = WorkloadSpec::oltp(86_400.0, 20.0);
        let trace = spec.generate(7);
        let count_in = |lo: f64, hi: f64| {
            trace
                .requests
                .iter()
                .filter(|r| r.time.as_secs() >= lo && r.time.as_secs() < hi)
                .count() as f64
                / (hi - lo)
        };
        let morning = count_in(9.0 * 3600.0, 12.0 * 3600.0);
        let night = count_in(2.0 * 3600.0, 5.0 * 3600.0);
        assert!(
            (morning / night - 1.0).abs() < 0.15,
            "OLTP should be steady: {morning} vs {night}"
        );
    }

    #[test]
    fn cello_trace_has_diurnal_valleys() {
        let spec = WorkloadSpec::cello_like(86_400.0, 40.0);
        let trace = spec.generate(9);
        let count_in = |lo: f64, hi: f64| {
            trace
                .requests
                .iter()
                .filter(|r| r.time.as_secs() >= lo && r.time.as_secs() < hi)
                .count() as f64
                / (hi - lo)
        };
        let busy = count_in(9.0 * 3600.0, 17.0 * 3600.0);
        let small_hours = count_in(4.0 * 3600.0, 7.0 * 3600.0);
        assert!(
            busy > small_hours * 2.5,
            "no valley: busy {busy} vs night {small_hours}"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = WorkloadSpec::oltp(120.0, 50.0);
        let a = spec.generate(3);
        let b = spec.generate(3);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.requests.first(), b.requests.first());
        assert_eq!(a.requests.last(), b.requests.last());
        let c = spec.generate(4);
        assert_ne!(
            a.requests.first().map(|r| r.sector),
            c.requests.first().map(|r| r.sector)
        );
    }

    #[test]
    fn mean_rate_accounts_for_diurnal() {
        let spec = WorkloadSpec::cello_like(3600.0, 40.0);
        // Diurnal multipliers average below 1, so effective mean < MMPP mean.
        let mmpp_mean = match spec.arrivals {
            ArrivalModel::Mmpp {
                rate_quiet,
                rate_burst,
                mean_quiet_s,
                mean_burst_s,
            } => {
                let pq = mean_quiet_s / (mean_quiet_s + mean_burst_s);
                pq * rate_quiet + (1.0 - pq) * rate_burst
            }
            _ => unreachable!(),
        };
        assert!(spec.mean_rate() < mmpp_mean);
        assert!(spec.mean_rate() > 0.0);
    }

    #[test]
    fn realized_rate_matches_mean_rate() {
        let spec = WorkloadSpec::cello_like(86_400.0, 40.0);
        let trace = spec.generate(11);
        let realized = trace.len() as f64 / 86_400.0;
        let predicted = spec.mean_rate();
        assert!(
            (realized - predicted).abs() / predicted < 0.25,
            "realized {realized} predicted {predicted}"
        );
    }

    #[test]
    fn validate_accepts_both_presets() {
        assert_eq!(WorkloadSpec::oltp(60.0, 10.0).validate(), Ok(()));
        assert_eq!(WorkloadSpec::cello_like(60.0, 10.0).validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_bad_rates() {
        let mut spec = WorkloadSpec::oltp(60.0, 10.0);
        spec.arrivals = ArrivalModel::Poisson { rate: f64::NAN };
        assert!(matches!(
            spec.validate(),
            Err(WorkloadSpecError::BadArrivals(_))
        ));
        spec.arrivals = ArrivalModel::Poisson { rate: -5.0 };
        assert!(matches!(
            spec.validate(),
            Err(WorkloadSpecError::BadArrivals(_))
        ));
        spec.arrivals = ArrivalModel::Mmpp {
            rate_quiet: 10.0,
            rate_burst: 5.0, // inverted
            mean_quiet_s: 60.0,
            mean_burst_s: 10.0,
        };
        assert!(matches!(
            spec.validate(),
            Err(WorkloadSpecError::BadArrivals(_))
        ));
        spec.arrivals = ArrivalModel::Mmpp {
            rate_quiet: 10.0,
            rate_burst: 40.0,
            mean_quiet_s: f64::INFINITY,
            mean_burst_s: 10.0,
        };
        assert!(matches!(
            spec.validate(),
            Err(WorkloadSpecError::BadArrivals(_))
        ));
    }

    #[test]
    fn validate_rejects_out_of_range_fractions() {
        let mut spec = WorkloadSpec::oltp(60.0, 10.0);
        spec.read_fraction = 1.5;
        assert_eq!(
            spec.validate(),
            Err(WorkloadSpecError::BadFraction("read_fraction", 1.5))
        );
        spec.read_fraction = f64::NAN;
        assert!(matches!(
            spec.validate(),
            Err(WorkloadSpecError::BadFraction("read_fraction", _))
        ));
        spec.read_fraction = 0.5;
        spec.sequential_fraction = -0.1;
        assert_eq!(
            spec.validate(),
            Err(WorkloadSpecError::BadFraction("sequential_fraction", -0.1))
        );
    }

    #[test]
    fn validate_rejects_degenerate_size_mix() {
        let mut spec = WorkloadSpec::oltp(60.0, 10.0);
        spec.sizes = SizeMix { choices: vec![] };
        assert_eq!(spec.validate(), Err(WorkloadSpecError::EmptySizeMix));
        spec.sizes = SizeMix {
            choices: vec![(0, 1.0)],
        };
        assert_eq!(
            spec.validate(),
            Err(WorkloadSpecError::BadSizeChoice(0, 1.0))
        );
        spec.sizes = SizeMix {
            choices: vec![(16, f64::NAN)],
        };
        assert!(matches!(
            spec.validate(),
            Err(WorkloadSpecError::BadSizeChoice(16, _))
        ));
        spec.sizes = SizeMix {
            choices: vec![(16, 0.0), (64, 0.0)],
        };
        assert_eq!(spec.validate(), Err(WorkloadSpecError::ZeroSizeMixWeight));
    }

    #[test]
    fn validate_rejects_bad_footprint_theta_duration_diurnal() {
        let mut spec = WorkloadSpec::oltp(60.0, 10.0);
        spec.extents = 0;
        assert_eq!(spec.validate(), Err(WorkloadSpecError::EmptyFootprint));
        spec.extents = 16;
        spec.extent_sectors = 0;
        assert_eq!(spec.validate(), Err(WorkloadSpecError::EmptyFootprint));
        spec.extent_sectors = 2048;
        spec.zipf_theta = -1.0;
        assert_eq!(spec.validate(), Err(WorkloadSpecError::BadTheta(-1.0)));
        spec.zipf_theta = 0.9;
        spec.duration_s = f64::NAN;
        assert!(matches!(
            spec.validate(),
            Err(WorkloadSpecError::BadDuration(_))
        ));
        spec.duration_s = 60.0;
        spec.diurnal = Some([0.0; 24]);
        assert!(matches!(
            spec.validate(),
            Err(WorkloadSpecError::BadDiurnal(_))
        ));
        let mut h = [1.0; 24];
        h[3] = -0.5;
        spec.diurnal = Some(h);
        assert!(matches!(
            spec.validate(),
            Err(WorkloadSpecError::BadDiurnal(_))
        ));
    }

    #[test]
    fn error_display_names_the_problem() {
        let mut spec = WorkloadSpec::oltp(60.0, 10.0);
        spec.read_fraction = 2.0;
        let msg = spec.validate().unwrap_err().to_string();
        assert!(msg.contains("read_fraction"), "{msg}");
    }

    #[test]
    #[should_panic(expected = "invalid workload spec")]
    fn generate_panics_on_nan_rate() {
        let mut spec = WorkloadSpec::oltp(60.0, 10.0);
        spec.arrivals = ArrivalModel::Poisson { rate: f64::NAN };
        let _ = spec.generate(1);
    }

    #[test]
    #[should_panic(expected = "invalid workload spec")]
    fn stream_panics_on_empty_size_mix() {
        let mut spec = WorkloadSpec::oltp(60.0, 10.0);
        spec.sizes = SizeMix { choices: vec![] };
        let _ = spec.stream(1);
    }

    #[test]
    fn zipf_skew_shows_in_trace() {
        let spec = WorkloadSpec::oltp(600.0, 200.0);
        let trace = spec.generate(5);
        // Count accesses per extent; the top decile should dominate.
        let extents = spec.extents as usize;
        let mut counts = vec![0u32; extents];
        for r in &trace.requests {
            counts[(r.sector / spec.extent_sectors) as usize] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top: u32 = counts[..extents / 10].iter().sum();
        let total: u32 = counts.iter().sum();
        let share = f64::from(top) / f64::from(total);
        assert!(share > 0.5, "top-decile share {share}");
    }
}
