//! Tenant sharding for fleet-level simulation.
//!
//! The fleet layer views the shared logical volume as consecutive
//! fixed-size *tenant shards*: sector `s` belongs to tenant
//! `s / tenant_sectors`. A placement map (one `tenant → array` row per
//! fleet epoch) then splits a shared multi-tenant [`Trace`] into
//! per-array traces, and a per-epoch heat matrix gives the placement
//! planner its demand signal. Both are pure functions of the trace, so
//! placement can be planned *ahead* of simulation — the fleet driver
//! needs no feedback channel from the arrays to route requests, which
//! keeps routing deterministic and jobs-invariant.

use crate::stream::TraceSource;
use crate::{Trace, VolumeRequest};

/// The tenant owning `sector` under `tenant_sectors`-sector shards,
/// clamped to the `tenants` universe (the tail of an oversized volume
/// folds into the last tenant).
#[inline]
pub fn tenant_of(sector: u64, tenant_sectors: u64, tenants: u32) -> u32 {
    debug_assert!(tenant_sectors > 0 && tenants > 0);
    ((sector / tenant_sectors) as u32).min(tenants - 1)
}

/// The fleet epoch containing time `t` (epoch `k` spans
/// `[k·epoch_s, (k+1)·epoch_s)`).
#[inline]
pub fn epoch_of(t_s: f64, epoch_s: f64) -> usize {
    debug_assert!(epoch_s > 0.0);
    (t_s / epoch_s) as usize
}

/// Requests per tenant per fleet epoch: `heat[epoch][tenant]` counts the
/// requests tenant `tenant` issues during fleet epoch `epoch`. The matrix
/// spans `epochs` rows even where the trace is silent, so the placement
/// planner always has a row per decision point.
pub fn tenant_heat(
    trace: &Trace,
    tenants: u32,
    tenant_sectors: u64,
    epoch_s: f64,
    epochs: usize,
) -> Vec<Vec<u64>> {
    assert!(tenants > 0, "at least one tenant");
    assert!(tenant_sectors > 0, "tenant shards must be non-empty");
    assert!(epoch_s > 0.0, "fleet epoch must be positive");
    let mut heat = vec![vec![0u64; tenants as usize]; epochs.max(1)];
    let last = heat.len() - 1;
    for r in &trace.requests {
        let e = epoch_of(r.time.as_secs(), epoch_s).min(last);
        let t = tenant_of(r.sector, tenant_sectors, tenants);
        heat[e][t as usize] += 1;
    }
    heat
}

/// Splits a shared trace into one per-array trace according to a
/// placement map: request at time `t` with tenant `u` goes to array
/// `placement[epoch_of(t)][u]`. One stable forward pass — each per-array
/// trace preserves the shared trace's arrival order, so a single-array
/// fleet receives exactly the original trace.
///
/// # Panics
/// Panics if `placement` is empty, a row's length is not the tenant
/// universe implied by its sibling rows, or a routed array index is out
/// of range.
pub fn shard_by_placement(
    trace: &Trace,
    placement: &[Vec<u32>],
    tenant_sectors: u64,
    epoch_s: f64,
    arrays: usize,
) -> Vec<Trace> {
    assert!(!placement.is_empty(), "placement needs at least one epoch");
    assert!(arrays > 0, "at least one array");
    let tenants = placement[0].len() as u32;
    assert!(tenants > 0, "placement rows must cover at least one tenant");
    for row in placement {
        assert_eq!(row.len(), tenants as usize, "ragged placement map");
    }
    let last = placement.len() - 1;
    let mut out: Vec<Vec<VolumeRequest>> = vec![Vec::new(); arrays];
    for r in &trace.requests {
        let e = epoch_of(r.time.as_secs(), epoch_s).min(last);
        let t = tenant_of(r.sector, tenant_sectors, tenants);
        let a = placement[e][t as usize] as usize;
        assert!(
            a < arrays,
            "placement routes tenant {t} to missing array {a}"
        );
        out[a].push(*r);
    }
    out.into_iter()
        .map(|reqs| Trace { requests: reqs })
        .collect()
}

/// Requests the placement map routes to each array — the allocation
/// hints (and conservation check) a streaming fleet needs, in one pass
/// with no per-array materialisation.
///
/// # Panics
/// Panics on the same degenerate placements as [`shard_by_placement`],
/// including a routed array index out of range.
pub fn shard_counts(
    trace: &Trace,
    placement: &[Vec<u32>],
    tenant_sectors: u64,
    epoch_s: f64,
    arrays: usize,
) -> Vec<u64> {
    assert!(!placement.is_empty(), "placement needs at least one epoch");
    assert!(arrays > 0, "at least one array");
    let tenants = placement[0].len() as u32;
    assert!(tenants > 0, "placement rows must cover at least one tenant");
    for row in placement {
        assert_eq!(row.len(), tenants as usize, "ragged placement map");
    }
    let last = placement.len() - 1;
    let mut counts = vec![0u64; arrays];
    for r in &trace.requests {
        let e = epoch_of(r.time.as_secs(), epoch_s).min(last);
        let t = tenant_of(r.sector, tenant_sectors, tenants);
        let a = placement[e][t as usize] as usize;
        assert!(
            a < arrays,
            "placement routes tenant {t} to missing array {a}"
        );
        counts[a] += 1;
    }
    counts
}

/// A [`TraceSource`] yielding exactly the requests the placement map
/// routes to one array — the same subsequence, in the same order, as
/// [`shard_by_placement`]'s materialised shard for that array, but
/// walking the shared trace in place. N arrays each hold one of these
/// over one shared trace: the fleet no longer clones the trace per
/// array.
#[derive(Debug, Clone)]
pub struct ShardStream<'a> {
    trace: &'a Trace,
    placement: &'a [Vec<u32>],
    array: u32,
    tenant_sectors: u64,
    epoch_s: f64,
    tenants: u32,
    pos: usize,
    hint: Option<usize>,
}

impl<'a> ShardStream<'a> {
    /// A stream of `trace`'s requests routed to `array` under
    /// `placement`.
    ///
    /// # Panics
    /// Panics if the placement map is empty or ragged, or
    /// `tenant_sectors`/`epoch_s` is degenerate.
    pub fn new(
        trace: &'a Trace,
        placement: &'a [Vec<u32>],
        array: u32,
        tenant_sectors: u64,
        epoch_s: f64,
    ) -> ShardStream<'a> {
        assert!(!placement.is_empty(), "placement needs at least one epoch");
        let tenants = placement[0].len() as u32;
        assert!(tenants > 0, "placement rows must cover at least one tenant");
        for row in placement {
            assert_eq!(row.len(), tenants as usize, "ragged placement map");
        }
        assert!(tenant_sectors > 0, "tenant shards must be non-empty");
        assert!(epoch_s > 0.0, "fleet epoch must be positive");
        ShardStream {
            trace,
            placement,
            array,
            tenant_sectors,
            epoch_s,
            tenants,
            pos: 0,
            hint: None,
        }
    }

    /// Attaches an exact request count (from [`shard_counts`]) so
    /// consumers pre-size their allocations as the materialised path
    /// did.
    pub fn with_len_hint(mut self, hint: usize) -> ShardStream<'a> {
        self.hint = Some(hint);
        self
    }
}

impl TraceSource for ShardStream<'_> {
    fn next_request(&mut self) -> Option<VolumeRequest> {
        let last = self.placement.len() - 1;
        while let Some(r) = self.trace.requests.get(self.pos) {
            self.pos += 1;
            let e = epoch_of(r.time.as_secs(), self.epoch_s).min(last);
            let t = tenant_of(r.sector, self.tenant_sectors, self.tenants);
            if self.placement[e][t as usize] == self.array {
                return Some(*r);
            }
        }
        None
    }

    fn len_hint(&self) -> Option<usize> {
        self.hint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::collect_trace;
    use crate::VolumeIoKind;
    use simkit::SimTime;

    fn req(t: f64, sector: u64) -> VolumeRequest {
        VolumeRequest {
            time: SimTime::from_secs(t),
            sector,
            sectors: 8,
            kind: VolumeIoKind::Read,
        }
    }

    fn mixed_trace() -> Trace {
        // Tenants of 100 sectors each; three tenants interleaved in time.
        Trace::from_requests(vec![
            req(0.0, 10),   // tenant 0, epoch 0
            req(1.0, 110),  // tenant 1, epoch 0
            req(2.0, 210),  // tenant 2, epoch 0
            req(10.0, 15),  // tenant 0, epoch 1
            req(11.0, 115), // tenant 1, epoch 1
            req(19.0, 215), // tenant 2, epoch 1
        ])
    }

    #[test]
    fn tenant_of_clamps_to_universe() {
        assert_eq!(tenant_of(0, 100, 3), 0);
        assert_eq!(tenant_of(250, 100, 3), 2);
        assert_eq!(tenant_of(9_999, 100, 3), 2, "overflow folds into last");
    }

    #[test]
    fn heat_counts_per_epoch_per_tenant() {
        let heat = tenant_heat(&mixed_trace(), 3, 100, 10.0, 2);
        assert_eq!(heat, vec![vec![1, 1, 1], vec![1, 1, 1]]);
    }

    #[test]
    fn heat_clamps_late_requests_into_last_row() {
        let heat = tenant_heat(&mixed_trace(), 3, 100, 10.0, 1);
        assert_eq!(heat, vec![vec![2, 2, 2]]);
    }

    #[test]
    fn single_array_shard_is_the_identity() {
        let tr = mixed_trace();
        let placement = vec![vec![0, 0, 0]];
        let shards = shard_by_placement(&tr, &placement, 100, 10.0, 1);
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].requests, tr.requests);
    }

    #[test]
    fn placement_routes_and_conserves_requests() {
        let tr = mixed_trace();
        // Epoch 0: t0→a0, t1→a1, t2→a0. Epoch 1: tenant 2 moves to a1.
        let placement = vec![vec![0, 1, 0], vec![0, 1, 1]];
        let shards = shard_by_placement(&tr, &placement, 100, 10.0, 2);
        let total: usize = shards.iter().map(Trace::len).sum();
        assert_eq!(total, tr.len(), "no request lost or duplicated");
        assert_eq!(shards[0].requests.len(), 3); // t0 both epochs + t2 epoch 0
        assert_eq!(shards[1].requests.len(), 3);
        assert!(shards.iter().all(Trace::is_sorted));
        // The move lands: tenant 2's epoch-1 request is on array 1.
        assert!(shards[1].requests.iter().any(|r| r.sector == 215));
        assert!(shards[0].requests.iter().any(|r| r.sector == 210));
    }

    #[test]
    fn shard_stream_matches_materialised_shards() {
        let tr = mixed_trace();
        let placement = vec![vec![0, 1, 0], vec![0, 1, 1]];
        let shards = shard_by_placement(&tr, &placement, 100, 10.0, 2);
        let counts = shard_counts(&tr, &placement, 100, 10.0, 2);
        for (a, shard) in shards.iter().enumerate() {
            let stream = ShardStream::new(&tr, &placement, a as u32, 100, 10.0)
                .with_len_hint(counts[a] as usize);
            assert_eq!(stream.len_hint(), Some(shard.len()));
            assert_eq!(
                collect_trace(stream).requests,
                shard.requests,
                "array {a} stream diverges from its materialised shard"
            );
        }
        assert_eq!(counts.iter().sum::<u64>(), tr.len() as u64);
    }

    #[test]
    #[should_panic(expected = "missing array")]
    fn shard_counts_rejects_out_of_range_routing() {
        let tr = mixed_trace();
        let _ = shard_counts(&tr, &[vec![0, 5, 0]], 100, 10.0, 2);
    }

    #[test]
    fn shard_preserves_relative_order_within_an_array() {
        let tr = Trace::from_requests(vec![req(0.0, 10), req(0.0, 20), req(0.0, 30)]);
        let shards = shard_by_placement(&tr, &[vec![0]], 1_000, 10.0, 1);
        let sectors: Vec<u64> = shards[0].requests.iter().map(|r| r.sector).collect();
        assert_eq!(sectors, vec![10, 20, 30], "equal-time order is stable");
    }
}
