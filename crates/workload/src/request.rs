//! Volume-level request and trace types.
//!
//! A [`VolumeRequest`] addresses the *logical volume* the array exports —
//! a flat space of 512-byte sectors. The array layer translates volume
//! sectors through its striping + remap tables into per-disk requests.

use simkit::SimTime;

/// Read or write, at the volume level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VolumeIoKind {
    /// Volume read.
    Read,
    /// Volume write.
    Write,
}

/// One request against the logical volume.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VolumeRequest {
    /// Arrival time.
    pub time: SimTime,
    /// First volume sector.
    pub sector: u64,
    /// Number of sectors (≥ 1).
    pub sectors: u32,
    /// Read or write.
    pub kind: VolumeIoKind,
}

impl VolumeRequest {
    /// The request's size in bytes (512-byte sectors).
    pub fn bytes(&self) -> u64 {
        u64::from(self.sectors) * 512
    }

    /// One past the last sector touched.
    pub fn end_sector(&self) -> u64 {
        self.sector + u64::from(self.sectors)
    }
}

/// An in-memory trace: requests sorted by arrival time.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// The requests, ascending by `time`.
    pub requests: Vec<VolumeRequest>,
}

// Traces are shared read-only across the parallel harness's worker
// threads (behind `Arc`); this fails to compile if a field ever breaks
// that.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Trace>();
};

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace {
            requests: Vec::new(),
        }
    }

    /// Builds a trace from requests, sorting them by time (stable, so
    /// equal-time requests keep their generation order).
    pub fn from_requests(mut requests: Vec<VolumeRequest>) -> Self {
        requests.sort_by_key(|a| a.time);
        Trace { requests }
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True if the trace has no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// The arrival time of the last request, or zero for an empty trace.
    pub fn end_time(&self) -> SimTime {
        self.requests
            .last()
            .map(|r| r.time)
            .unwrap_or(SimTime::ZERO)
    }

    /// The highest sector touched plus one (the minimum volume size that
    /// can host this trace), or 0 for an empty trace.
    pub fn max_sector(&self) -> u64 {
        self.requests
            .iter()
            .map(|r| r.end_sector())
            .max()
            .unwrap_or(0)
    }

    /// Verifies the time-ordering invariant.
    pub fn is_sorted(&self) -> bool {
        self.requests.windows(2).all(|w| w[0].time <= w[1].time)
    }

    /// Restricts the trace to requests arriving strictly before `cutoff`,
    /// in place.
    pub fn truncate_at(&mut self, cutoff: SimTime) {
        self.requests.retain(|r| r.time < cutoff);
    }

    /// Scales every arrival rate by `factor` by dividing inter-arrival
    /// times — `factor` 2.0 doubles the load while keeping the access
    /// pattern identical. Request addresses and sizes are untouched.
    ///
    /// # Panics
    /// Panics if `factor` is not strictly positive.
    pub fn scale_rate(&mut self, factor: f64) {
        assert!(factor > 0.0 && factor.is_finite(), "bad rate factor");
        for r in &mut self.requests {
            r.time = SimTime::from_secs(r.time.as_secs() / factor);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(t: f64, sector: u64) -> VolumeRequest {
        VolumeRequest {
            time: SimTime::from_secs(t),
            sector,
            sectors: 16,
            kind: VolumeIoKind::Read,
        }
    }

    #[test]
    fn from_requests_sorts() {
        let tr = Trace::from_requests(vec![req(3.0, 0), req(1.0, 8), req(2.0, 4)]);
        assert!(tr.is_sorted());
        assert_eq!(tr.requests[0].sector, 8);
        assert_eq!(tr.end_time(), SimTime::from_secs(3.0));
    }

    #[test]
    fn byte_and_end_accessors() {
        let r = req(0.0, 100);
        assert_eq!(r.bytes(), 16 * 512);
        assert_eq!(r.end_sector(), 116);
    }

    #[test]
    fn max_sector_covers_extents() {
        let tr = Trace::from_requests(vec![req(0.0, 100), req(1.0, 50)]);
        assert_eq!(tr.max_sector(), 116);
        assert_eq!(Trace::new().max_sector(), 0);
    }

    #[test]
    fn truncate_drops_tail() {
        let mut tr = Trace::from_requests(vec![req(0.5, 0), req(1.5, 0), req(2.5, 0)]);
        tr.truncate_at(SimTime::from_secs(2.0));
        assert_eq!(tr.len(), 2);
    }

    #[test]
    fn scale_rate_compresses_time() {
        let mut tr = Trace::from_requests(vec![req(2.0, 0), req(4.0, 0)]);
        tr.scale_rate(2.0);
        assert_eq!(tr.requests[0].time, SimTime::from_secs(1.0));
        assert_eq!(tr.requests[1].time, SimTime::from_secs(2.0));
        assert!(tr.is_sorted());
    }

    #[test]
    fn empty_trace_is_benign() {
        let tr = Trace::new();
        assert!(tr.is_empty());
        assert_eq!(tr.end_time(), SimTime::ZERO);
        assert!(tr.is_sorted());
    }
}
