//! Streaming trace sources.
//!
//! A [`TraceSource`] is a pull-based, deterministic request iterator: the
//! simulation asks for one request at a time and never sees (or pays for)
//! a materialised [`Trace`] vector. Week-long horizons then run in O(1)
//! trace memory, and the fleet driver can feed N arrays from one shared
//! trace without cloning it per array.
//!
//! The sources:
//!
//! * [`TraceCursor`] — walks a borrowed materialised [`Trace`] (the
//!   adapter that makes every existing trace streamable);
//! * [`SpecStream`] — regenerates a [`WorkloadSpec`]'s synthetic trace
//!   lazily, bit-identical to [`WorkloadSpec::generate`] (locked down by
//!   `tests/stream_equivalence.rs`);
//! * [`Counted`] — a transparent wrapper exposing how many requests
//!   flowed through, for bounded-memory assertions;
//! * the scenario combinators in [`crate::scenario`] and the per-array
//!   [`crate::tenants::ShardStream`].
//!
//! # The two-pass RNG trick
//!
//! [`WorkloadSpec::generate`] draws *every* raw arrival from the
//! `arrivals` RNG stream before drawing the first diurnal thinning
//! chance from that same stream. A lazy generator cannot reorder those
//! draws without changing every bit downstream, so [`SpecStream`] clones
//! the arrivals RNG at construction and runs the raw-arrival recurrence
//! on the clone once, discarding the times — an O(duration × rate) *time*
//! pass with O(1) memory — leaving the clone exactly where the batch
//! path's thinning draws begin. Streaming then re-derives each raw
//! arrival from the original RNG and each thinning chance from the
//! advanced clone, reproducing the batch draw order exactly.

use crate::arrivals::{DiurnalProfile, Mmpp2, Poisson};
use crate::generator::{ArrivalModel, SizeMix, WorkloadSpec};
use crate::popularity::{SequentialRuns, ZipfExtents};
use crate::request::{Trace, VolumeIoKind, VolumeRequest};
use simkit::{DetRng, SimTime};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A pull-based, deterministic, bounded-memory request source.
///
/// Contract: successive [`TraceSource::next_request`] calls yield
/// requests with nondecreasing `time` until the source is exhausted
/// (`None` thereafter). Sources are `Send` so simulations holding them
/// can cross worker threads.
pub trait TraceSource: Send {
    /// Pulls the next request, or `None` when the source is exhausted.
    fn next_request(&mut self) -> Option<VolumeRequest>;

    /// Total number of requests this source will yield, when cheaply
    /// known up front. Consumers may use it only for allocation sizing —
    /// never for behavior — so `None` is always a correct answer.
    fn len_hint(&self) -> Option<usize> {
        None
    }
}

impl<S: TraceSource + ?Sized> TraceSource for Box<S> {
    fn next_request(&mut self) -> Option<VolumeRequest> {
        (**self).next_request()
    }

    fn len_hint(&self) -> Option<usize> {
        (**self).len_hint()
    }
}

/// Drains a source into a materialised [`Trace`] (sorted defensively,
/// though a law-abiding source is already in time order).
pub fn collect_trace(mut source: impl TraceSource) -> Trace {
    let mut requests = Vec::with_capacity(source.len_hint().unwrap_or(0));
    while let Some(r) = source.next_request() {
        requests.push(r);
    }
    Trace::from_requests(requests)
}

/// A [`TraceSource`] over a borrowed materialised [`Trace`].
#[derive(Debug)]
pub struct TraceCursor<'a> {
    trace: &'a Trace,
    pos: usize,
}

impl<'a> TraceCursor<'a> {
    /// A cursor at the start of `trace`.
    pub fn new(trace: &'a Trace) -> Self {
        TraceCursor { trace, pos: 0 }
    }
}

impl TraceSource for TraceCursor<'_> {
    fn next_request(&mut self) -> Option<VolumeRequest> {
        let r = self.trace.requests.get(self.pos).copied();
        if r.is_some() {
            self.pos += 1;
        }
        r
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.trace.len())
    }
}

/// A transparent wrapper counting the requests that flow through a
/// source, observable from outside the simulation that consumed it.
/// The bounded-memory acceptance test wraps a week-long [`SpecStream`]
/// in one to prove millions of requests streamed through while the
/// simulation buffered at most one.
pub struct Counted<S> {
    inner: S,
    count: Arc<AtomicU64>,
}

impl<S: TraceSource> Counted<S> {
    /// Wraps `inner`; the returned counter tracks pulled requests.
    pub fn new(inner: S) -> (Self, Arc<AtomicU64>) {
        let count = Arc::new(AtomicU64::new(0));
        (
            Counted {
                inner,
                count: Arc::clone(&count),
            },
            count,
        )
    }
}

impl<S: TraceSource> TraceSource for Counted<S> {
    fn next_request(&mut self) -> Option<VolumeRequest> {
        let r = self.inner.next_request();
        if r.is_some() {
            self.count.fetch_add(1, Ordering::Relaxed);
        }
        r
    }

    fn len_hint(&self) -> Option<usize> {
        self.inner.len_hint()
    }
}

/// Lazy raw-arrival recurrence: the exact draw sequences of
/// [`Poisson::arrivals`] and [`Mmpp2::arrivals`], one step per call.
#[derive(Debug, Clone)]
pub(crate) struct ArrivalStream {
    horizon_s: f64,
    t: f64,
    done: bool,
    kind: ArrivalKind,
}

#[derive(Debug, Clone)]
enum ArrivalKind {
    Poisson {
        rate: f64,
    },
    Mmpp {
        process: Mmpp2,
        in_burst: bool,
        state_end: f64,
    },
}

impl ArrivalStream {
    /// Builds the stream, consuming from `rng` exactly the draws the
    /// batch generators consume before their arrival loop (the MMPP
    /// initial-state chance and first dwell).
    pub(crate) fn new(
        model: ArrivalModel,
        peak_mult: f64,
        rng: &mut DetRng,
        horizon_s: f64,
    ) -> Self {
        let kind = match model {
            ArrivalModel::Poisson { rate } => ArrivalKind::Poisson {
                rate: Poisson::new(rate * peak_mult).rate,
            },
            ArrivalModel::Mmpp {
                rate_quiet,
                rate_burst,
                mean_quiet_s,
                mean_burst_s,
            } => {
                let process = Mmpp2::new(
                    rate_quiet * peak_mult,
                    rate_burst * peak_mult,
                    mean_quiet_s,
                    mean_burst_s,
                );
                // Mirrors the preamble of `Mmpp2::arrivals` draw for draw.
                let in_burst = rng
                    .chance(process.mean_burst_s / (process.mean_quiet_s + process.mean_burst_s));
                let state_end = rng.exponential(if in_burst {
                    1.0 / process.mean_burst_s
                } else {
                    1.0 / process.mean_quiet_s
                });
                ArrivalKind::Mmpp {
                    process,
                    in_burst,
                    state_end,
                }
            }
        };
        ArrivalStream {
            horizon_s,
            t: 0.0,
            done: false,
            kind,
        }
    }

    /// The next raw arrival time, or `None` once the horizon is crossed.
    /// Draw-for-draw identical to the batch generators' loop bodies.
    pub(crate) fn next(&mut self, rng: &mut DetRng) -> Option<f64> {
        if self.done {
            return None;
        }
        match &mut self.kind {
            ArrivalKind::Poisson { rate } => {
                self.t += rng.exponential(*rate);
                if self.t >= self.horizon_s {
                    self.done = true;
                    return None;
                }
                Some(self.t)
            }
            ArrivalKind::Mmpp {
                process,
                in_burst,
                state_end,
            } => loop {
                self.t += rng.exponential(process.rate_burst);
                if self.t >= self.horizon_s {
                    self.done = true;
                    return None;
                }
                while self.t >= *state_end {
                    *in_burst = !*in_burst;
                    *state_end += rng.exponential(if *in_burst {
                        1.0 / process.mean_burst_s
                    } else {
                        1.0 / process.mean_quiet_s
                    });
                }
                let rate_now = if *in_burst {
                    process.rate_burst
                } else {
                    process.rate_quiet
                };
                if rng.chance(rate_now / process.rate_burst) {
                    return Some(self.t);
                }
            },
        }
    }
}

/// A [`TraceSource`] regenerating a [`WorkloadSpec`]'s synthetic trace
/// lazily — the same requests, in the same order, with the same bits, as
/// [`WorkloadSpec::generate`], without ever materialising them. Resident
/// state is the O(extents) popularity table plus a handful of RNGs.
///
/// # Examples
/// ```
/// use workload::{collect_trace, WorkloadSpec};
///
/// let spec = WorkloadSpec::oltp(30.0, 20.0);
/// assert_eq!(
///     collect_trace(spec.stream(7)).requests,
///     spec.generate(7).requests,
/// );
/// ```
pub struct SpecStream {
    arrivals: ArrivalStream,
    arr_rng: DetRng,
    /// Diurnal thinning: the profile plus the arrivals RNG advanced past
    /// every raw draw (the two-pass trick in the module docs).
    thin: Option<(DiurnalProfile, DetRng)>,
    pop_rng: DetRng,
    mix_rng: DetRng,
    zipf: ZipfExtents,
    seq: SequentialRuns,
    sizes: SizeMix,
    read_fraction: f64,
}

impl SpecStream {
    /// Builds the stream for `(spec, seed)`; equivalent to (and
    /// usually reached via) [`WorkloadSpec::stream`].
    ///
    /// # Panics
    /// Panics if the spec fails [`WorkloadSpec::validate`].
    pub fn new(spec: &WorkloadSpec, seed: u64) -> SpecStream {
        if let Err(e) = spec.validate() {
            panic!("invalid workload spec {:?}: {e}", spec.name);
        }
        let mut root = DetRng::new(seed, &format!("workload-{}", spec.name));
        let mut arr_rng = root.split("arrivals");
        let mut pop_rng = root.split("popularity");
        let mix_rng = root.split("mix");

        let profile = spec.diurnal.map(DiurnalProfile::new);
        let peak_mult = profile.as_ref().map_or(1.0, DiurnalProfile::peak);

        let (arrivals, thin) = match profile {
            None => (
                ArrivalStream::new(spec.arrivals, peak_mult, &mut arr_rng, spec.duration_s),
                None,
            ),
            Some(p) => {
                // Advance a clone past every raw-arrival draw: afterwards
                // it sits exactly where the batch path starts thinning.
                let mut thin_rng = arr_rng.clone();
                let mut advance =
                    ArrivalStream::new(spec.arrivals, peak_mult, &mut thin_rng, spec.duration_s);
                while advance.next(&mut thin_rng).is_some() {}
                let arrivals =
                    ArrivalStream::new(spec.arrivals, peak_mult, &mut arr_rng, spec.duration_s);
                (arrivals, Some((p, thin_rng)))
            }
        };

        let zipf = ZipfExtents::new(
            &mut pop_rng,
            spec.extents,
            spec.extent_sectors,
            spec.zipf_theta,
        );
        let seq = SequentialRuns::new(spec.sequential_fraction, zipf.footprint_sectors());
        SpecStream {
            arrivals,
            arr_rng,
            thin,
            pop_rng,
            mix_rng,
            zipf,
            seq,
            sizes: spec.sizes.clone(),
            read_fraction: spec.read_fraction,
        }
    }
}

impl TraceSource for SpecStream {
    fn next_request(&mut self) -> Option<VolumeRequest> {
        loop {
            let t = self.arrivals.next(&mut self.arr_rng)?;
            if let Some((profile, thin_rng)) = &mut self.thin {
                if !thin_rng.chance(profile.multiplier(t) / profile.peak()) {
                    continue;
                }
            }
            let sectors = self.sizes.sample(&mut self.mix_rng);
            let random = self.zipf.sample_sector(&mut self.pop_rng, sectors);
            let sector = self.seq.choose(&mut self.mix_rng, random, sectors);
            let kind = if self.mix_rng.chance(self.read_fraction) {
                VolumeIoKind::Read
            } else {
                VolumeIoKind::Write
            };
            return Some(VolumeRequest {
                time: SimTime::from_secs(t),
                sector,
                sectors,
                kind,
            });
        }
    }
}

// Streaming sources cross worker threads inside simulations.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<SpecStream>();
    assert_send::<TraceCursor<'static>>();
    assert_send::<Counted<SpecStream>>();
    assert_send::<Box<dyn TraceSource>>();
};

#[cfg(test)]
mod tests {
    use super::*;

    /// The one property everything else leans on: stream == generate,
    /// bit for bit, across both presets (Poisson/flat and MMPP/diurnal).
    #[test]
    fn stream_matches_generate_bit_for_bit() {
        for seed in [1u64, 7, 42] {
            let oltp = WorkloadSpec::oltp(600.0, 40.0);
            assert_eq!(
                collect_trace(oltp.stream(seed)).requests,
                oltp.generate(seed).requests,
                "oltp seed {seed}"
            );
            let cello = WorkloadSpec::cello_like(3600.0, 30.0);
            assert_eq!(
                collect_trace(cello.stream(seed)).requests,
                cello.generate(seed).requests,
                "cello seed {seed}"
            );
        }
    }

    #[test]
    fn stream_matches_generate_with_diurnal_poisson() {
        // Diurnal shaping over Poisson arrivals exercises the two-pass
        // trick on the simpler recurrence.
        let mut spec = WorkloadSpec::oltp(7200.0, 20.0);
        spec.diurnal = Some(crate::generator::to_hourly(
            DiurnalProfile::office_with_backup(),
        ));
        assert_eq!(
            collect_trace(spec.stream(11)).requests,
            spec.generate(11).requests
        );
    }

    #[test]
    fn cursor_replays_a_trace_exactly() {
        let trace = WorkloadSpec::oltp(30.0, 20.0).generate(3);
        let cursor = TraceCursor::new(&trace);
        assert_eq!(cursor.len_hint(), Some(trace.len()));
        assert_eq!(collect_trace(cursor).requests, trace.requests);
    }

    #[test]
    fn counted_counts_every_pull() {
        let spec = WorkloadSpec::oltp(30.0, 20.0);
        let n = spec.generate(5).len() as u64;
        let (counted, counter) = Counted::new(spec.stream(5));
        let collected = collect_trace(counted);
        assert_eq!(collected.len() as u64, n);
        assert_eq!(counter.load(Ordering::Relaxed), n);
    }

    #[test]
    fn exhausted_stream_stays_exhausted() {
        let mut s = WorkloadSpec::oltp(5.0, 2.0).stream(9);
        while s.next_request().is_some() {}
        for _ in 0..4 {
            assert!(s.next_request().is_none());
        }
    }

    #[test]
    fn stream_times_are_nondecreasing() {
        let mut s = WorkloadSpec::cello_like(7200.0, 25.0).stream(13);
        let mut last = SimTime::ZERO;
        while let Some(r) = s.next_request() {
            assert!(r.time >= last, "{:?} < {last:?}", r.time);
            last = r.time;
        }
    }

    #[test]
    fn zero_rate_hours_neither_hang_nor_disorder() {
        // A profile that is zero for most of the day: the generator must
        // skip the dead hours without stalling and stay monotone.
        let mut h = [0.0; 24];
        h[12] = 1.0; // a single live hour
        let mut spec = WorkloadSpec::oltp(86_400.0, 5.0);
        spec.diurnal = Some(h);
        let streamed = collect_trace(spec.stream(21));
        assert_eq!(streamed.requests, spec.generate(21).requests);
        assert!(streamed.is_sorted());
        assert!(!streamed.is_empty(), "the live hour must produce requests");
        // Linear interpolation keeps rate nonzero only around hour 12.
        assert!(streamed
            .requests
            .iter()
            .all(|r| (11.0 * 3600.0..14.0 * 3600.0).contains(&r.time.as_secs())));
    }

    #[test]
    fn single_request_stream_is_well_behaved() {
        // A horizon short enough that roughly one request fits: pulls
        // must terminate and match the batch path whatever the count.
        let spec = WorkloadSpec::oltp(0.2, 5.0);
        for seed in 0..20 {
            let streamed = collect_trace(spec.stream(seed));
            assert_eq!(streamed.requests, spec.generate(seed).requests);
        }
    }

    #[test]
    fn empty_horizon_stream_is_empty() {
        let spec = WorkloadSpec::oltp(0.0, 5.0);
        assert!(collect_trace(spec.stream(3)).is_empty());
        assert!(spec.generate(3).is_empty());
    }
}
