//! Block-popularity models.
//!
//! Data-center workloads are heavily skewed: a small fraction of the blocks
//! receives most of the accesses. [`ZipfExtents`] models this with a Zipf
//! distribution over fixed-size *extents* of the volume, with the rank→extent
//! assignment shuffled so that popularity is not spatially correlated (hot
//! data is scattered across the whole address space, exactly the situation
//! that makes Hibernator's migration worthwhile).
//!
//! [`SequentialRuns`] layers sequential locality on top: with probability
//! `p_seq`, the next request continues where the previous one ended.

use simkit::DetRng;

/// Zipf-distributed popularity over shuffled extents.
///
/// Extent `rank` (0 = hottest) is accessed with probability proportional to
/// `1 / (rank + 1)^theta`. The mapping from rank to physical extent index is
/// a deterministic permutation drawn from the generator's RNG stream.
#[derive(Debug, Clone)]
pub struct ZipfExtents {
    /// Cumulative probability by rank, for inverse-CDF sampling.
    cdf: Vec<f64>,
    /// rank → extent index permutation.
    rank_to_extent: Vec<u32>,
    /// Sectors per extent.
    extent_sectors: u64,
}

impl ZipfExtents {
    /// Builds the model: `extents` extents of `extent_sectors` each, skew
    /// exponent `theta` (0 = uniform, 1 ≈ classic web/OLTP skew).
    ///
    /// # Panics
    /// Panics if `extents == 0`, `extent_sectors == 0`, `theta < 0`, or
    /// `theta` is not finite.
    pub fn new(rng: &mut DetRng, extents: u32, extent_sectors: u64, theta: f64) -> Self {
        assert!(extents > 0, "need at least one extent");
        assert!(extent_sectors > 0, "extents must be non-empty");
        assert!(theta.is_finite() && theta >= 0.0, "bad theta {theta}");
        let mut cdf = Vec::with_capacity(extents as usize);
        let mut acc = 0.0;
        for r in 0..extents {
            acc += 1.0 / f64::from(r + 1).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        let mut rank_to_extent: Vec<u32> = (0..extents).collect();
        rng.shuffle(&mut rank_to_extent);
        ZipfExtents {
            cdf,
            rank_to_extent,
            extent_sectors,
        }
    }

    /// Number of extents.
    pub fn extents(&self) -> u32 {
        self.rank_to_extent.len() as u32
    }

    /// Sectors per extent.
    pub fn extent_sectors(&self) -> u64 {
        self.extent_sectors
    }

    /// Total footprint in sectors.
    pub fn footprint_sectors(&self) -> u64 {
        self.extent_sectors * u64::from(self.extents())
    }

    /// Samples a rank by inverse CDF (0 = hottest).
    pub fn sample_rank(&self, rng: &mut DetRng) -> u32 {
        let u = rng.uniform01();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf has no NaN"))
        {
            Ok(i) => i as u32,
            Err(i) => (i as u32).min(self.extents() - 1),
        }
    }

    /// Samples a starting sector: Zipf-chosen extent, uniform offset within
    /// it, leaving room for a request of `req_sectors`.
    pub fn sample_sector(&self, rng: &mut DetRng, req_sectors: u32) -> u64 {
        let rank = self.sample_rank(rng);
        let extent = self.rank_to_extent[rank as usize];
        let base = u64::from(extent) * self.extent_sectors;
        let slack = self.extent_sectors.saturating_sub(u64::from(req_sectors));
        let off = if slack == 0 { 0 } else { rng.below(slack) };
        base + off
    }

    /// The analytic fraction of accesses going to the hottest
    /// `fraction` of extents (a skew headline like "80% of I/Os hit 20%
    /// of the data").
    pub fn access_share_of_hottest(&self, fraction: f64) -> f64 {
        assert!((0.0..=1.0).contains(&fraction), "bad fraction");
        let k = ((self.extents() as f64 * fraction).round() as usize).clamp(0, self.cdf.len());
        if k == 0 {
            0.0
        } else {
            self.cdf[k - 1]
        }
    }
}

/// Sequential-run mixer: continues the previous access with probability
/// `p_seq`, otherwise draws a fresh random location.
#[derive(Debug, Clone)]
pub struct SequentialRuns {
    p_seq: f64,
    next_sequential: Option<u64>,
    volume_sectors: u64,
}

impl SequentialRuns {
    /// Creates the mixer for a volume of `volume_sectors`.
    ///
    /// # Panics
    /// Panics if `p_seq` is outside `[0, 1]` or the volume is empty.
    pub fn new(p_seq: f64, volume_sectors: u64) -> Self {
        assert!((0.0..=1.0).contains(&p_seq), "bad p_seq {p_seq}");
        assert!(volume_sectors > 0, "empty volume");
        SequentialRuns {
            p_seq,
            next_sequential: None,
            volume_sectors,
        }
    }

    /// Chooses the start sector for the next request: sequential
    /// continuation with probability `p_seq` (when one is available and
    /// fits), otherwise the provided `random_sector`.
    pub fn choose(&mut self, rng: &mut DetRng, random_sector: u64, req_sectors: u32) -> u64 {
        let take_seq = self.next_sequential.is_some() && rng.chance(self.p_seq);
        let sector = if take_seq {
            let s = self.next_sequential.unwrap();
            if s + u64::from(req_sectors) <= self.volume_sectors {
                s
            } else {
                random_sector
            }
        } else {
            random_sector
        };
        self.next_sequential = Some(sector + u64::from(req_sectors));
        sector
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::new(5, "pop-test")
    }

    #[test]
    fn uniform_theta_zero() {
        let mut r = rng();
        let z = ZipfExtents::new(&mut r, 100, 2048, 0.0);
        // Hottest 10% gets ~10% of accesses when theta = 0.
        let share = z.access_share_of_hottest(0.1);
        assert!((share - 0.1).abs() < 1e-9, "share {share}");
    }

    #[test]
    fn skewed_theta_concentrates() {
        let mut r = rng();
        let z = ZipfExtents::new(&mut r, 10_000, 2048, 1.0);
        let share = z.access_share_of_hottest(0.1);
        assert!(share > 0.6, "hot-10% share {share} too flat for theta=1");
    }

    #[test]
    fn empirical_matches_analytic_share() {
        let mut r = rng();
        let z = ZipfExtents::new(&mut r, 1000, 2048, 0.9);
        let hot_cut = z.extents() / 10;
        let n = 100_000;
        let mut hot = 0;
        for _ in 0..n {
            if z.sample_rank(&mut r) < hot_cut {
                hot += 1;
            }
        }
        let emp = hot as f64 / n as f64;
        let ana = z.access_share_of_hottest(0.1);
        assert!((emp - ana).abs() < 0.02, "empirical {emp} analytic {ana}");
    }

    #[test]
    fn sampled_sectors_in_bounds() {
        let mut r = rng();
        let z = ZipfExtents::new(&mut r, 128, 2048, 0.8);
        for _ in 0..10_000 {
            let s = z.sample_sector(&mut r, 64);
            assert!(s + 64 <= z.footprint_sectors());
        }
    }

    #[test]
    fn rank_shuffle_decorrelates_space() {
        // The hottest extent should rarely be extent 0 itself.
        let mut hits = 0;
        for seed in 0..50 {
            let mut r = DetRng::new(seed, "shuffle-check");
            let z = ZipfExtents::new(&mut r, 1000, 2048, 1.0);
            if z.rank_to_extent[0] == 0 {
                hits += 1;
            }
        }
        assert!(hits <= 2, "rank 0 landed on extent 0 {hits}/50 times");
    }

    #[test]
    fn deterministic_given_seed() {
        let build = || {
            let mut r = DetRng::new(7, "det");
            let z = ZipfExtents::new(&mut r, 64, 1024, 1.0);
            (0..32)
                .map(|_| z.sample_sector(&mut r, 8))
                .collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn sequential_runs_continue() {
        let mut r = rng();
        let mut seq = SequentialRuns::new(1.0, 1 << 30);
        let first = seq.choose(&mut r, 1000, 16);
        assert_eq!(first, 1000);
        let second = seq.choose(&mut r, 555_555, 16);
        assert_eq!(second, 1016, "p_seq=1 must continue the run");
        let third = seq.choose(&mut r, 777_777, 16);
        assert_eq!(third, 1032);
    }

    #[test]
    fn sequential_probability_zero_is_random() {
        let mut r = rng();
        let mut seq = SequentialRuns::new(0.0, 1 << 30);
        let _ = seq.choose(&mut r, 42, 16);
        let s = seq.choose(&mut r, 999, 16);
        assert_eq!(s, 999);
    }

    #[test]
    fn sequential_wraps_at_volume_end() {
        let mut r = rng();
        let vol = 2048u64;
        let mut seq = SequentialRuns::new(1.0, vol);
        let _ = seq.choose(&mut r, vol - 16, 16); // run now points past end
        let s = seq.choose(&mut r, 128, 16);
        assert_eq!(s, 128, "must fall back to random when run exceeds volume");
    }
}
