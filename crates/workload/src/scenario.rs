//! Adversarial scenario combinators.
//!
//! A [`Scenario`] is a deterministic modifier over a base [`WorkloadSpec`]:
//! it takes the spec's streaming request source and wraps or superposes it
//! to produce the access patterns that break energy policies tuned on
//! stationary skew — the cases the online-workload literature warns about:
//!
//! * [`Scenario::FlashCrowd`] — a surge of extra arrivals inside a window,
//!   defeating slow-reacting speed planners;
//! * [`Scenario::PopularityFlip`] — the hot extents go cold and the cold
//!   go hot mid-run, invalidating temperature-driven data placement;
//! * [`Scenario::WriteFlood`] — a window of never-re-referenced writes
//!   that defeats the write-back DRAM cache's coalescing;
//! * [`Scenario::ScanPoison`] — periodic large sequential scans that sweep
//!   the volume and poison LRU-style caches.
//!
//! Every combinator is a [`TraceSource`]: deterministic given
//! `(scenario, spec, seed)`, monotone in time, and O(1) memory. The
//! `repro scenarios` sweep runs each against the six headline policies.

use crate::generator::{ArrivalModel, WorkloadSpec};
use crate::request::{Trace, VolumeIoKind, VolumeRequest};
use crate::stream::{collect_trace, TraceSource};
use simkit::SimTime;

/// A deterministic adversarial modifier over a base workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scenario {
    /// Extra Poisson arrivals at `(multiplier − 1) ×` the base mean rate
    /// inside `[start_s, start_s + duration_s)` — a flash crowd on top of
    /// the unchanged base stream.
    FlashCrowd {
        /// Window start (seconds).
        start_s: f64,
        /// Window length (seconds).
        duration_s: f64,
        /// Total load multiplier inside the window; must exceed 1.
        multiplier: f64,
    },
    /// From `at_s` onward, extent `e` is remapped to `extents − 1 − e`
    /// (offset within the extent preserved): the popularity ranking
    /// inverts instantly while rates and sizes stay untouched.
    PopularityFlip {
        /// Flip time (seconds).
        at_s: f64,
    },
    /// Inside the window every request becomes a write to a cold,
    /// never-re-referenced address (an extent-strided walk), defeating
    /// write-back caching.
    WriteFlood {
        /// Window start (seconds).
        start_s: f64,
        /// Window length (seconds).
        duration_s: f64,
    },
    /// Every `interval_s` inside the window, a large sequential read scan
    /// sweeps the volume — classic LRU cache poison.
    ScanPoison {
        /// Window start (seconds).
        start_s: f64,
        /// Window length (seconds).
        duration_s: f64,
        /// Seconds between scan requests; must be positive and finite.
        interval_s: f64,
        /// Size of each scan request in sectors.
        scan_sectors: u32,
    },
}

impl Scenario {
    /// Stable short name, used for sweep labels and CSV rows.
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::FlashCrowd { .. } => "flash_crowd",
            Scenario::PopularityFlip { .. } => "pop_flip",
            Scenario::WriteFlood { .. } => "write_flood",
            Scenario::ScanPoison { .. } => "scan_poison",
        }
    }

    /// The standard adversarial suite for a run of `duration_s`, window
    /// positions scaled to the horizon (used by `repro scenarios`).
    pub fn standard_suite(duration_s: f64) -> Vec<Scenario> {
        vec![
            Scenario::FlashCrowd {
                start_s: duration_s * 0.3,
                duration_s: duration_s * 0.2,
                multiplier: 4.0,
            },
            Scenario::PopularityFlip {
                at_s: duration_s * 0.5,
            },
            Scenario::WriteFlood {
                start_s: duration_s * 0.4,
                duration_s: duration_s * 0.2,
            },
            Scenario::ScanPoison {
                start_s: duration_s * 0.3,
                duration_s: duration_s * 0.5,
                interval_s: 2.0,
                scan_sectors: 2_048,
            },
        ]
    }

    /// The scenario's streaming source over `spec`: the base spec's
    /// [`WorkloadSpec::stream`] wrapped or superposed by the modifier.
    ///
    /// # Panics
    /// Panics if the spec fails [`WorkloadSpec::validate`] or a scenario
    /// parameter is degenerate (non-finite window, `multiplier <= 1`,
    /// non-positive scan interval, scan larger than the footprint).
    pub fn apply(&self, spec: &WorkloadSpec, seed: u64) -> Box<dyn TraceSource> {
        match *self {
            Scenario::FlashCrowd {
                start_s,
                duration_s,
                multiplier,
            } => {
                assert!(
                    start_s.is_finite() && start_s >= 0.0 && duration_s.is_finite(),
                    "flash crowd: bad window [{start_s}, +{duration_s})"
                );
                assert!(
                    multiplier.is_finite() && multiplier > 1.0,
                    "flash crowd: multiplier {multiplier} must exceed 1"
                );
                // The surge is its own Poisson spec over just the window,
                // shifted into place. Its name (hence RNG label) differs
                // from the base, so the two streams are independent.
                let window = duration_s.min((spec.duration_s - start_s).max(0.0));
                let mut surge = spec.clone();
                surge.name = format!("{}-flash", spec.name);
                surge.duration_s = window;
                surge.arrivals = ArrivalModel::Poisson {
                    rate: spec.mean_rate() * (multiplier - 1.0),
                };
                surge.diurnal = None;
                Box::new(Superpose::new(
                    spec.stream(seed),
                    Shifted {
                        inner: surge.stream(seed),
                        offset_s: start_s,
                    },
                ))
            }
            Scenario::PopularityFlip { at_s } => {
                assert!(
                    at_s.is_finite() && at_s >= 0.0,
                    "popularity flip: bad time {at_s}"
                );
                Box::new(FlipPopularity {
                    inner: spec.stream(seed),
                    at: SimTime::from_secs(at_s),
                    extents: spec.extents,
                    extent_sectors: spec.extent_sectors,
                    footprint: spec.footprint_sectors(),
                })
            }
            Scenario::WriteFlood {
                start_s,
                duration_s,
            } => {
                assert!(
                    start_s.is_finite() && start_s >= 0.0 && duration_s.is_finite(),
                    "write flood: bad window [{start_s}, +{duration_s})"
                );
                Box::new(FloodWrites {
                    inner: spec.stream(seed),
                    start: SimTime::from_secs(start_s),
                    end: SimTime::from_secs(start_s + duration_s.max(0.0)),
                    stride: spec.extent_sectors,
                    footprint: spec.footprint_sectors(),
                    count: 0,
                })
            }
            Scenario::ScanPoison {
                start_s,
                duration_s,
                interval_s,
                scan_sectors,
            } => {
                assert!(
                    start_s.is_finite() && start_s >= 0.0 && duration_s.is_finite(),
                    "scan poison: bad window [{start_s}, +{duration_s})"
                );
                assert!(
                    interval_s.is_finite() && interval_s > 0.0,
                    "scan poison: bad interval {interval_s}"
                );
                let footprint = spec.footprint_sectors();
                assert!(
                    scan_sectors > 0 && u64::from(scan_sectors) <= footprint,
                    "scan poison: scan of {scan_sectors} sectors does not fit \
                     footprint {footprint}"
                );
                let end_s = (start_s + duration_s.max(0.0)).min(spec.duration_s);
                Box::new(Superpose::new(
                    spec.stream(seed),
                    ScanStream {
                        next_s: start_s,
                        end_s,
                        interval_s,
                        scan_sectors,
                        footprint,
                        k: 0,
                    },
                ))
            }
        }
    }

    /// Materialises the scenario's trace (for callers that still want a
    /// [`Trace`], e.g. golden tests).
    pub fn trace(&self, spec: &WorkloadSpec, seed: u64) -> Trace {
        collect_trace(self.apply(spec, seed))
    }
}

/// Time-ordered merge of two sources; ties go to `a` (the base stream).
struct Superpose<A, B> {
    a: A,
    b: B,
    next_a: Option<VolumeRequest>,
    next_b: Option<VolumeRequest>,
}

impl<A: TraceSource, B: TraceSource> Superpose<A, B> {
    fn new(mut a: A, mut b: B) -> Self {
        let next_a = a.next_request();
        let next_b = b.next_request();
        Superpose {
            a,
            b,
            next_a,
            next_b,
        }
    }
}

impl<A: TraceSource, B: TraceSource> TraceSource for Superpose<A, B> {
    fn next_request(&mut self) -> Option<VolumeRequest> {
        let take_a = match (&self.next_a, &self.next_b) {
            (Some(ra), Some(rb)) => ra.time <= rb.time,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        if take_a {
            std::mem::replace(&mut self.next_a, self.a.next_request())
        } else {
            std::mem::replace(&mut self.next_b, self.b.next_request())
        }
    }

    fn len_hint(&self) -> Option<usize> {
        // Buffered heads are already pulled out of the inner hints, so
        // sums would undercount; hints are allocation-only anyway.
        None
    }
}

/// Shifts every request of an inner source later by a fixed offset.
struct Shifted<S> {
    inner: S,
    offset_s: f64,
}

impl<S: TraceSource> TraceSource for Shifted<S> {
    fn next_request(&mut self) -> Option<VolumeRequest> {
        self.inner.next_request().map(|mut r| {
            r.time = SimTime::from_secs(r.time.as_secs() + self.offset_s);
            r
        })
    }

    fn len_hint(&self) -> Option<usize> {
        self.inner.len_hint()
    }
}

/// Mirrors the extent index from `at` onward (offset preserved); keeps
/// the original address if the mirrored request would not fit.
struct FlipPopularity<S> {
    inner: S,
    at: SimTime,
    extents: u32,
    extent_sectors: u64,
    footprint: u64,
}

impl<S: TraceSource> TraceSource for FlipPopularity<S> {
    fn next_request(&mut self) -> Option<VolumeRequest> {
        self.inner.next_request().map(|mut r| {
            if r.time >= self.at {
                let extent = r.sector / self.extent_sectors;
                if extent < u64::from(self.extents) {
                    let mirrored = u64::from(self.extents) - 1 - extent;
                    let flipped = mirrored * self.extent_sectors + r.sector % self.extent_sectors;
                    if flipped + u64::from(r.sectors) <= self.footprint {
                        r.sector = flipped;
                    }
                }
            }
            r
        })
    }

    fn len_hint(&self) -> Option<usize> {
        self.inner.len_hint()
    }
}

/// Turns every request in the window into a write against a cold,
/// extent-strided walk of the footprint — addresses that are never
/// re-referenced soon, so the write-back cache cannot coalesce them.
struct FloodWrites<S> {
    inner: S,
    start: SimTime,
    end: SimTime,
    stride: u64,
    footprint: u64,
    count: u64,
}

impl<S: TraceSource> TraceSource for FloodWrites<S> {
    fn next_request(&mut self) -> Option<VolumeRequest> {
        self.inner.next_request().map(|mut r| {
            if r.time >= self.start && r.time < self.end {
                let mut sector = (self.count.wrapping_mul(self.stride)) % self.footprint;
                if sector + u64::from(r.sectors) > self.footprint {
                    sector = 0;
                }
                self.count += 1;
                r.sector = sector;
                r.kind = VolumeIoKind::Write;
            }
            r
        })
    }

    fn len_hint(&self) -> Option<usize> {
        self.inner.len_hint()
    }
}

/// Deterministic fixed-interval sequential read scans sweeping the volume.
struct ScanStream {
    next_s: f64,
    end_s: f64,
    interval_s: f64,
    scan_sectors: u32,
    footprint: u64,
    k: u64,
}

impl TraceSource for ScanStream {
    fn next_request(&mut self) -> Option<VolumeRequest> {
        if self.next_s >= self.end_s {
            return None;
        }
        let t = self.next_s;
        let mut sector = (self.k.wrapping_mul(u64::from(self.scan_sectors))) % self.footprint;
        if sector + u64::from(self.scan_sectors) > self.footprint {
            sector = 0;
        }
        self.k += 1;
        self.next_s = t + self.interval_s;
        Some(VolumeRequest {
            time: SimTime::from_secs(t),
            sector,
            sectors: self.scan_sectors,
            kind: VolumeIoKind::Read,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> WorkloadSpec {
        WorkloadSpec::oltp(300.0, 30.0)
    }

    fn monotone(t: &Trace) -> bool {
        t.is_sorted()
    }

    #[test]
    fn scenarios_are_deterministic_and_monotone() {
        let spec = base();
        for sc in Scenario::standard_suite(spec.duration_s) {
            let a = sc.trace(&spec, 7);
            let b = sc.trace(&spec, 7);
            assert_eq!(a.requests, b.requests, "{} not deterministic", sc.name());
            assert!(monotone(&a), "{} emits out-of-order times", sc.name());
            assert!(
                a.max_sector() <= spec.footprint_sectors(),
                "{} escapes the footprint",
                sc.name()
            );
        }
    }

    #[test]
    fn flash_crowd_raises_rate_only_in_window() {
        let spec = base();
        let sc = Scenario::FlashCrowd {
            start_s: 100.0,
            duration_s: 50.0,
            multiplier: 4.0,
        };
        let plain = spec.generate(3);
        let crowd = sc.trace(&spec, 3);
        let count = |t: &Trace, lo: f64, hi: f64| {
            t.requests
                .iter()
                .filter(|r| r.time.as_secs() >= lo && r.time.as_secs() < hi)
                .count() as f64
        };
        // Outside the window the base stream is untouched.
        assert_eq!(count(&crowd, 0.0, 100.0), count(&plain, 0.0, 100.0));
        assert_eq!(count(&crowd, 150.0, 300.0), count(&plain, 150.0, 300.0));
        // Inside, roughly multiplier× the load.
        let in_window = count(&crowd, 100.0, 150.0) / count(&plain, 100.0, 150.0);
        assert!((3.0..5.0).contains(&in_window), "window ratio {in_window}");
    }

    #[test]
    fn popularity_flip_mirrors_extents_after_cut() {
        let spec = base();
        let sc = Scenario::PopularityFlip { at_s: 150.0 };
        let plain = spec.generate(5);
        let flipped = sc.trace(&spec, 5);
        assert_eq!(plain.len(), flipped.len());
        let es = spec.extent_sectors;
        let last = u64::from(spec.extents) - 1;
        let mut mirrored = 0u32;
        for (p, f) in plain.requests.iter().zip(&flipped.requests) {
            assert_eq!(p.time, f.time);
            assert_eq!(p.kind, f.kind);
            if p.time.as_secs() < 150.0 {
                assert_eq!(p.sector, f.sector, "pre-flip requests must be untouched");
            } else if f.sector != p.sector {
                assert_eq!(f.sector / es, last - p.sector / es);
                assert_eq!(f.sector % es, p.sector % es);
                mirrored += 1;
            }
        }
        assert!(mirrored > 100, "flip barely mirrored anything: {mirrored}");
    }

    #[test]
    fn write_flood_forces_cold_writes_in_window() {
        let spec = base();
        let sc = Scenario::WriteFlood {
            start_s: 100.0,
            duration_s: 100.0,
        };
        let t = sc.trace(&spec, 9);
        let in_window: Vec<_> = t
            .requests
            .iter()
            .filter(|r| (100.0..200.0).contains(&r.time.as_secs()))
            .collect();
        assert!(in_window.len() > 1000);
        assert!(in_window.iter().all(|r| r.kind == VolumeIoKind::Write));
        // The strided walk never repeats an address within an extent cycle.
        let uniq: std::collections::HashSet<u64> = in_window.iter().map(|r| r.sector).collect();
        assert!(
            uniq.len() as f64 > in_window.len() as f64 * 0.9,
            "flood addresses should be cold: {} unique of {}",
            uniq.len(),
            in_window.len()
        );
    }

    #[test]
    fn scan_poison_injects_periodic_scans() {
        let spec = base();
        let sc = Scenario::ScanPoison {
            start_s: 50.0,
            duration_s: 200.0,
            interval_s: 2.0,
            scan_sectors: 2_048,
        };
        let t = sc.trace(&spec, 4);
        let scans: Vec<_> = t
            .requests
            .iter()
            .filter(|r| r.sectors == 2_048 && r.kind == VolumeIoKind::Read)
            .collect();
        assert_eq!(scans.len(), 100, "200 s window at one scan per 2 s");
        assert!(scans
            .windows(2)
            .all(|w| (w[1].time.as_secs() - w[0].time.as_secs() - 2.0).abs() < 1e-9));
        assert!(scans
            .iter()
            .all(|r| r.sector + u64::from(r.sectors) <= spec.footprint_sectors()));
    }

    #[test]
    fn scenario_base_stream_is_untouched_outside_modifiers() {
        // WriteFlood with an empty window is the identity.
        let spec = base();
        let sc = Scenario::WriteFlood {
            start_s: 400.0, // beyond the horizon
            duration_s: 10.0,
        };
        assert_eq!(sc.trace(&spec, 6).requests, spec.generate(6).requests);
    }

    #[test]
    #[should_panic(expected = "multiplier")]
    fn flash_crowd_rejects_unit_multiplier() {
        let spec = base();
        let _ = Scenario::FlashCrowd {
            start_s: 0.0,
            duration_s: 10.0,
            multiplier: 1.0,
        }
        .apply(&spec, 1);
    }

    #[test]
    #[should_panic(expected = "bad interval")]
    fn scan_poison_rejects_zero_interval() {
        let spec = base();
        let _ = Scenario::ScanPoison {
            start_s: 0.0,
            duration_s: 10.0,
            interval_s: 0.0,
            scan_sectors: 64,
        }
        .apply(&spec, 1);
    }
}
