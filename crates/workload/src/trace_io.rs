//! Trace persistence.
//!
//! Three formats:
//!
//! * **CSV** — `time_s,sector,sectors,kind` per line, human-greppable and
//!   compatible with spreadsheet tooling; `kind` is `R` or `W`.
//! * **JSON lines** — one flat JSON object per [`VolumeRequest`] per line.
//! * **MSR-Cambridge block traces** — the SNIA-published
//!   `Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime` CSV
//!   schema (timestamps in Windows FILETIME ticks, offsets/sizes in
//!   bytes), ingested by the streaming [`MsrReader`].
//!
//! The native writers use shortest-round-trip float formatting, so every
//! field survives a write/read cycle exactly. All readers validate as they
//! parse and report the offending line number in errors, because traces
//! are exactly the kind of input users hand-edit.

use crate::request::{Trace, VolumeIoKind, VolumeRequest};
use simkit::SimTime;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

/// Errors raised by trace parsing.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line: `(line_number, description)`.
    Parse(usize, String),
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceIoError::Parse(line, msg) => write!(f, "trace parse error at line {line}: {msg}"),
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Writes a trace as CSV (with a header line). Times use shortest
/// round-trip float formatting, so [`read_csv`] recovers every bit.
pub fn write_csv<W: Write>(trace: &Trace, mut w: W) -> Result<(), TraceIoError> {
    writeln!(w, "time_s,sector,sectors,kind")?;
    for r in &trace.requests {
        let k = match r.kind {
            VolumeIoKind::Read => 'R',
            VolumeIoKind::Write => 'W',
        };
        writeln!(w, "{:?},{},{},{}", r.time.as_secs(), r.sector, r.sectors, k)?;
    }
    Ok(())
}

/// Reads a CSV trace (header line required), sorting the result by time.
pub fn read_csv<R: Read>(r: R) -> Result<Trace, TraceIoError> {
    let reader = BufReader::new(r);
    let mut requests = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = i + 1;
        if i == 0 {
            if line.trim() != "time_s,sector,sectors,kind" {
                return Err(TraceIoError::Parse(lineno, "missing/invalid header".into()));
            }
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 4 {
            return Err(TraceIoError::Parse(
                lineno,
                format!("expected 4 fields, got {}", fields.len()),
            ));
        }
        let time: f64 = fields[0]
            .trim()
            .parse()
            .map_err(|e| TraceIoError::Parse(lineno, format!("bad time: {e}")))?;
        if !time.is_finite() || time < 0.0 {
            return Err(TraceIoError::Parse(lineno, format!("bad time {time}")));
        }
        let sector: u64 = fields[1]
            .trim()
            .parse()
            .map_err(|e| TraceIoError::Parse(lineno, format!("bad sector: {e}")))?;
        let sectors: u32 = fields[2]
            .trim()
            .parse()
            .map_err(|e| TraceIoError::Parse(lineno, format!("bad length: {e}")))?;
        if sectors == 0 {
            return Err(TraceIoError::Parse(lineno, "zero-length request".into()));
        }
        let kind = match fields[3].trim() {
            "R" | "r" => VolumeIoKind::Read,
            "W" | "w" => VolumeIoKind::Write,
            other => {
                return Err(TraceIoError::Parse(
                    lineno,
                    format!("bad kind {other:?} (want R or W)"),
                ))
            }
        };
        requests.push(VolumeRequest {
            time: SimTime::from_secs(time),
            sector,
            sectors,
            kind,
        });
    }
    Ok(Trace::from_requests(requests))
}

/// Writes a trace as JSON lines.
///
/// Each line is a flat object:
/// `{"time_s":1.25,"sector":4096,"sectors":16,"kind":"R"}`. The time is
/// emitted with Rust's shortest-round-trip float formatting, so every field
/// survives a write/read cycle exactly.
pub fn write_jsonl<W: Write>(trace: &Trace, mut w: W) -> Result<(), TraceIoError> {
    for r in &trace.requests {
        let k = match r.kind {
            VolumeIoKind::Read => 'R',
            VolumeIoKind::Write => 'W',
        };
        writeln!(
            w,
            "{{\"time_s\":{:?},\"sector\":{},\"sectors\":{},\"kind\":\"{k}\"}}",
            r.time.as_secs(),
            r.sector,
            r.sectors
        )?;
    }
    Ok(())
}

/// Pulls the raw text of `key` out of a flat one-line JSON object. The
/// format is the fixed four-field schema `write_jsonl` emits — values are
/// numbers or the single-letter strings `"R"`/`"W"`, so a purpose-built
/// scanner (find `"key":`, read to the next `,` or `}`) is exact.
fn json_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

/// Reads a JSON-lines trace, sorting the result by time.
pub fn read_jsonl<R: Read>(r: R) -> Result<Trace, TraceIoError> {
    let reader = BufReader::new(r);
    let mut requests = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let parse = |key: &str| -> Result<&str, TraceIoError> {
            json_field(&line, key)
                .ok_or_else(|| TraceIoError::Parse(lineno, format!("bad JSON: missing {key:?}")))
        };
        let time: f64 = parse("time_s")?
            .parse()
            .map_err(|e| TraceIoError::Parse(lineno, format!("bad JSON time: {e}")))?;
        if !time.is_finite() || time < 0.0 {
            return Err(TraceIoError::Parse(lineno, format!("bad time {time}")));
        }
        let sector: u64 = parse("sector")?
            .parse()
            .map_err(|e| TraceIoError::Parse(lineno, format!("bad JSON sector: {e}")))?;
        let sectors: u32 = parse("sectors")?
            .parse()
            .map_err(|e| TraceIoError::Parse(lineno, format!("bad JSON length: {e}")))?;
        if sectors == 0 {
            return Err(TraceIoError::Parse(lineno, "zero-length request".into()));
        }
        let kind = match parse("kind")? {
            "\"R\"" => VolumeIoKind::Read,
            "\"W\"" => VolumeIoKind::Write,
            other => {
                return Err(TraceIoError::Parse(
                    lineno,
                    format!("bad JSON kind {other} (want \"R\" or \"W\")"),
                ))
            }
        };
        requests.push(VolumeRequest {
            time: SimTime::from_secs(time),
            sector,
            sectors,
            kind,
        });
    }
    Ok(Trace::from_requests(requests))
}

/// Seconds per Windows FILETIME tick (100 ns).
const FILETIME_TICK_S: f64 = 1e-7;

/// Bytes per volume sector.
const SECTOR_BYTES: u64 = 512;

/// Streaming reader for MSR-Cambridge/SNIA-style block traces:
/// `Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime` per
/// line, where `Timestamp` is in Windows FILETIME ticks (100 ns since
/// 1601), `Type` is `Read`/`Write` (case-insensitive), and
/// `Offset`/`Size` are bytes. An optional `Timestamp,...` header line is
/// skipped.
///
/// The reader is an iterator of validated [`VolumeRequest`]s — one line
/// resident at a time, suitable for arbitrarily large trace files:
///
/// * times are made relative to the **first** record (clamped at zero
///   for records time-stamped before it, which real captures contain);
/// * byte offsets/sizes convert to 512-byte sectors (sizes round up);
/// * `Hostname`, `DiskNumber` and `ResponseTime` are ignored.
///
/// Errors carry the 1-based line number and fuse the iterator. MSR
/// captures are not globally time-sorted, so the collecting
/// [`read_msr_csv`] sorts; a raw `MsrReader` is **not** a `TraceSource`.
pub struct MsrReader<R: Read> {
    lines: std::io::Lines<BufReader<R>>,
    lineno: usize,
    first_ticks: Option<u64>,
    done: bool,
}

impl<R: Read> MsrReader<R> {
    /// Wraps a byte stream of MSR-format CSV.
    pub fn new(r: R) -> Self {
        MsrReader {
            lines: BufReader::new(r).lines(),
            lineno: 0,
            first_ticks: None,
            done: false,
        }
    }

    fn parse_line(&mut self, line: &str) -> Result<VolumeRequest, TraceIoError> {
        let lineno = self.lineno;
        let bad = |msg: String| TraceIoError::Parse(lineno, msg);
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 7 {
            return Err(bad(format!(
                "expected 7 MSR fields (Timestamp,Hostname,DiskNumber,Type,\
                 Offset,Size,ResponseTime), got {}",
                fields.len()
            )));
        }
        let ticks: u64 = fields[0]
            .trim()
            .parse()
            .map_err(|e| bad(format!("bad timestamp: {e}")))?;
        let kind = match fields[3].trim() {
            t if t.eq_ignore_ascii_case("Read") => VolumeIoKind::Read,
            t if t.eq_ignore_ascii_case("Write") => VolumeIoKind::Write,
            other => return Err(bad(format!("bad type {other:?} (want Read or Write)"))),
        };
        let offset: u64 = fields[4]
            .trim()
            .parse()
            .map_err(|e| bad(format!("bad offset: {e}")))?;
        let size: u64 = fields[5]
            .trim()
            .parse()
            .map_err(|e| bad(format!("bad size: {e}")))?;
        if size == 0 {
            return Err(bad("zero-length request".into()));
        }
        let sectors = size.div_ceil(SECTOR_BYTES);
        let sectors: u32 = sectors
            .try_into()
            .map_err(|_| bad(format!("request of {size} bytes too large")))?;
        let first = *self.first_ticks.get_or_insert(ticks);
        let rel_s = ticks.saturating_sub(first) as f64 * FILETIME_TICK_S;
        Ok(VolumeRequest {
            time: SimTime::from_secs(rel_s),
            sector: offset / SECTOR_BYTES,
            sectors,
            kind,
        })
    }
}

impl<R: Read> Iterator for MsrReader<R> {
    type Item = Result<VolumeRequest, TraceIoError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            let line = match self.lines.next()? {
                Ok(l) => l,
                Err(e) => {
                    self.done = true;
                    return Some(Err(TraceIoError::Io(e)));
                }
            };
            self.lineno += 1;
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            if self.lineno == 1 && trimmed.starts_with("Timestamp,") {
                continue; // optional header
            }
            let parsed = self.parse_line(trimmed);
            if parsed.is_err() {
                self.done = true;
            }
            return Some(parsed);
        }
    }
}

/// Reads an entire MSR-format trace (see [`MsrReader`]), sorting the
/// result by time.
pub fn read_msr_csv<R: Read>(r: R) -> Result<Trace, TraceIoError> {
    let requests: Vec<VolumeRequest> = MsrReader::new(r).collect::<Result<_, _>>()?;
    Ok(Trace::from_requests(requests))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::WorkloadSpec;

    fn sample() -> Trace {
        WorkloadSpec::oltp(30.0, 20.0).generate(5)
    }

    #[test]
    fn csv_roundtrip_is_exact() {
        let tr = sample();
        let mut buf = Vec::new();
        write_csv(&tr, &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(
            back.requests, tr.requests,
            "CSV must round-trip bit-exactly"
        );
    }

    /// Multi-seed round-trip sweep: generated traces survive CSV and
    /// JSONL write/read cycles bit-exactly, and the two formats agree
    /// with each other (CSV → JSONL → CSV reproduces the bytes).
    #[test]
    fn roundtrip_property_csv_and_jsonl_agree() {
        for seed in 0..20 {
            let tr = WorkloadSpec::oltp(10.0 + seed as f64, 15.0).generate(seed);
            let mut csv = Vec::new();
            write_csv(&tr, &mut csv).unwrap();
            let from_csv = read_csv(csv.as_slice()).unwrap();
            assert_eq!(from_csv.requests, tr.requests, "seed {seed} csv");

            let mut jsonl = Vec::new();
            write_jsonl(&tr, &mut jsonl).unwrap();
            let from_jsonl = read_jsonl(jsonl.as_slice()).unwrap();
            assert_eq!(from_jsonl.requests, tr.requests, "seed {seed} jsonl");

            let mut csv_again = Vec::new();
            write_csv(&from_jsonl, &mut csv_again).unwrap();
            assert_eq!(csv_again, csv, "seed {seed} csv→jsonl→csv bytes");
        }
    }

    #[test]
    fn roundtrip_survives_awkward_floats() {
        // Times that fixed-precision formatting would corrupt: a float
        // artifact (0.1 + 0.2), a subnormal-ish tiny value, and a time
        // needing all 17 significant digits.
        let tr = Trace::from_requests(vec![
            VolumeRequest {
                time: SimTime::from_secs(0.1 + 0.2),
                sector: 0,
                sectors: 8,
                kind: VolumeIoKind::Read,
            },
            VolumeRequest {
                time: SimTime::from_secs(1e-15),
                sector: 7,
                sectors: 1,
                kind: VolumeIoKind::Write,
            },
            VolumeRequest {
                time: SimTime::from_secs(86_399.999_999_999_99),
                sector: u64::MAX / 512,
                sectors: u32::MAX,
                kind: VolumeIoKind::Read,
            },
        ]);
        let mut csv = Vec::new();
        write_csv(&tr, &mut csv).unwrap();
        assert_eq!(read_csv(csv.as_slice()).unwrap().requests, tr.requests);
        let mut jsonl = Vec::new();
        write_jsonl(&tr, &mut jsonl).unwrap();
        assert_eq!(read_jsonl(jsonl.as_slice()).unwrap().requests, tr.requests);
    }

    /// Every malformed input reports the exact offending line.
    #[test]
    fn malformed_csv_corpus_reports_correct_line_numbers() {
        let corpus: &[(&str, usize, &str)] = &[
            ("bogus header\n1.0,2,3,R\n", 1, "header"),
            ("time_s,sector,sectors,kind\nx,2,3,R\n", 2, "bad time"),
            ("time_s,sector,sectors,kind\nnan,2,3,R\n", 2, "bad time"),
            ("time_s,sector,sectors,kind\ninf,2,3,R\n", 2, "bad time"),
            ("time_s,sector,sectors,kind\n-1.0,2,3,R\n", 2, "bad time"),
            ("time_s,sector,sectors,kind\n1.0,-2,3,R\n", 2, "bad sector"),
            ("time_s,sector,sectors,kind\n1.0,2,0,R\n", 2, "zero-length"),
            ("time_s,sector,sectors,kind\n1.0,2,3\n", 2, "4 fields"),
            (
                "time_s,sector,sectors,kind\n1.0,2,3,R\n2.0,4,5,Q\n",
                3,
                "bad kind",
            ),
            (
                "time_s,sector,sectors,kind\n1.0,2,3,R\n\n2.0,4,5,R,extra\n",
                4,
                "4 fields",
            ),
        ];
        for (data, want_line, want_msg) in corpus {
            match read_csv(data.as_bytes()) {
                Err(TraceIoError::Parse(line, msg)) => {
                    assert_eq!(line, *want_line, "input {data:?} reported line {line}");
                    assert!(
                        msg.contains(want_msg),
                        "input {data:?}: message {msg:?} lacks {want_msg:?}"
                    );
                }
                other => panic!("input {data:?}: expected parse error, got {other:?}"),
            }
        }
    }

    #[test]
    fn malformed_jsonl_corpus_reports_correct_line_numbers() {
        let good = "{\"time_s\":1.0,\"sector\":2,\"sectors\":8,\"kind\":\"R\"}";
        let corpus: &[(String, usize, &str)] = &[
            (format!("{good}\nnot-json\n"), 2, "missing"),
            (
                format!("{good}\n{{\"time_s\":-1.0,\"sector\":2,\"sectors\":8,\"kind\":\"R\"}}\n"),
                2,
                "bad time",
            ),
            (
                format!("{good}\n\n{{\"time_s\":1.0,\"sector\":2,\"sectors\":0,\"kind\":\"R\"}}\n"),
                3,
                "zero-length",
            ),
            (
                "{\"time_s\":1.0,\"sector\":2,\"sectors\":8,\"kind\":\"Z\"}\n".to_string(),
                1,
                "kind",
            ),
        ];
        for (data, want_line, want_msg) in corpus {
            match read_jsonl(data.as_bytes()) {
                Err(TraceIoError::Parse(line, msg)) => {
                    assert_eq!(line, *want_line, "input {data:?} reported line {line}");
                    assert!(
                        msg.contains(want_msg),
                        "input {data:?}: message {msg:?} lacks {want_msg:?}"
                    );
                }
                other => panic!("input {data:?}: expected parse error, got {other:?}"),
            }
        }
    }

    const MSR_BASE: u64 = 128_166_372_000_000_000;

    fn msr_line(tick_off: u64, kind: &str, offset: u64, size: u64) -> String {
        format!(
            "{},src1,0,{kind},{offset},{size},421\n",
            MSR_BASE + tick_off
        )
    }

    #[test]
    fn msr_reader_converts_ticks_offsets_and_sizes() {
        let data = format!(
            "Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime\n{}{}{}",
            msr_line(0, "Read", 1_310_720, 4_096),
            msr_line(5_000_000, "write", 512, 100), // 0.5 s later, ragged size
            msr_line(10_000_000, "READ", 0, 512),
        );
        let tr = read_msr_csv(data.as_bytes()).unwrap();
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.requests[0].time.as_secs(), 0.0);
        assert_eq!(tr.requests[0].sector, 2_560);
        assert_eq!(tr.requests[0].sectors, 8);
        assert_eq!(tr.requests[0].kind, VolumeIoKind::Read);
        assert_eq!(tr.requests[1].time.as_secs(), 0.5);
        assert_eq!(tr.requests[1].sector, 1);
        assert_eq!(tr.requests[1].sectors, 1, "sizes round up to a sector");
        assert_eq!(tr.requests[1].kind, VolumeIoKind::Write);
        assert_eq!(tr.requests[2].time.as_secs(), 1.0);
        assert_eq!(tr.requests[2].sector, 0);
    }

    #[test]
    fn msr_reader_is_streaming_and_headerless_tolerant() {
        // No header; records before the first time-stamp clamp to zero;
        // the collect sorts.
        let data = [
            msr_line(20_000_000, "Read", 1_024, 512),
            // 1 s *before* the first record: relative time clamps to 0.
            format!("{},src1,0,Write,2048,512,9\n", MSR_BASE + 10_000_000),
            msr_line(30_000_000, "Read", 4_096, 512),
        ]
        .concat();
        let mut reader = MsrReader::new(data.as_bytes());
        let first = reader.next().unwrap().unwrap();
        assert_eq!(first.time.as_secs(), 0.0);
        let second = reader.next().unwrap().unwrap();
        assert_eq!(second.time.as_secs(), 0.0, "earlier records clamp to zero");
        assert_eq!(second.kind, VolumeIoKind::Write);
        let third = reader.next().unwrap().unwrap();
        assert_eq!(third.time.as_secs(), 1.0);
        assert!(reader.next().is_none());
        let tr = read_msr_csv(data.as_bytes()).unwrap();
        assert!(tr.is_sorted());
    }

    #[test]
    fn malformed_msr_corpus_reports_correct_line_numbers() {
        let header = "Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime\n";
        let good = msr_line(0, "Read", 512, 512);
        let corpus: &[(String, usize, &str)] = &[
            (
                format!("{header}abc,h,0,Read,0,512,1\n"),
                2,
                "bad timestamp",
            ),
            (
                format!("{header}{good}1,h,0,Erase,0,512,1\n"),
                3,
                "bad type",
            ),
            (format!("{good}1,h,0,Read,0,0,1\n"), 2, "zero-length"),
            (format!("{header}{good}1,h,0,Read,0\n"), 3, "7 MSR fields"),
            (
                format!("{header}{good}1,h,0,Read,-4096,512,1\n"),
                3,
                "bad offset",
            ),
        ];
        for (data, want_line, want_msg) in corpus {
            match read_msr_csv(data.as_bytes()) {
                Err(TraceIoError::Parse(line, msg)) => {
                    assert_eq!(line, *want_line, "input {data:?} reported line {line}");
                    assert!(
                        msg.contains(want_msg),
                        "input {data:?}: message {msg:?} lacks {want_msg:?}"
                    );
                }
                other => panic!("input {data:?}: expected parse error, got {other:?}"),
            }
        }
    }

    #[test]
    fn msr_reader_fuses_after_error() {
        let data = format!(
            "{}boom\n{}",
            msr_line(0, "Read", 512, 512),
            msr_line(1, "Read", 512, 512)
        );
        let mut reader = MsrReader::new(data.as_bytes());
        assert!(reader.next().unwrap().is_ok());
        assert!(reader.next().unwrap().is_err());
        assert!(reader.next().is_none(), "errors fuse the iterator");
    }

    #[test]
    fn jsonl_roundtrip_is_exact() {
        let tr = sample();
        let mut buf = Vec::new();
        write_jsonl(&tr, &mut buf).unwrap();
        let back = read_jsonl(buf.as_slice()).unwrap();
        assert_eq!(back.requests, tr.requests);
    }

    #[test]
    fn csv_rejects_missing_header() {
        let err = read_csv("1.0,2,3,R\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TraceIoError::Parse(1, _)), "{err}");
    }

    #[test]
    fn csv_rejects_bad_kind() {
        let data = "time_s,sector,sectors,kind\n1.0,2,3,X\n";
        let err = read_csv(data.as_bytes()).unwrap_err();
        match err {
            TraceIoError::Parse(2, msg) => assert!(msg.contains("bad kind"), "{msg}"),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn csv_rejects_zero_length() {
        let data = "time_s,sector,sectors,kind\n1.0,2,0,R\n";
        assert!(read_csv(data.as_bytes()).is_err());
    }

    #[test]
    fn csv_rejects_negative_time() {
        let data = "time_s,sector,sectors,kind\n-5.0,2,8,R\n";
        assert!(read_csv(data.as_bytes()).is_err());
    }

    #[test]
    fn csv_skips_blank_lines_and_sorts() {
        let data = "time_s,sector,sectors,kind\n2.0,10,8,W\n\n1.0,20,8,R\n";
        let tr = read_csv(data.as_bytes()).unwrap();
        assert_eq!(tr.len(), 2);
        assert!(tr.is_sorted());
        assert_eq!(tr.requests[0].sector, 20);
    }

    #[test]
    fn jsonl_reports_line_numbers() {
        let mut buf = Vec::new();
        write_jsonl(&sample(), &mut buf).unwrap();
        let good = String::from_utf8(buf).unwrap();
        let good_first = good.lines().next().unwrap();
        let data = format!("{good_first}\nnot-json\n");
        let err = read_jsonl(data.as_bytes()).unwrap_err();
        assert!(matches!(err, TraceIoError::Parse(2, _)), "{err}");
    }

    #[test]
    fn jsonl_rejects_bad_kind() {
        let data = "{\"time_s\":1.0,\"sector\":2,\"sectors\":8,\"kind\":\"X\"}\n";
        let err = read_jsonl(data.as_bytes()).unwrap_err();
        match err {
            TraceIoError::Parse(1, msg) => assert!(msg.contains("kind"), "{msg}"),
            other => panic!("unexpected {other}"),
        }
    }
}
