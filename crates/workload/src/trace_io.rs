//! Trace persistence.
//!
//! Two formats:
//!
//! * **CSV** — `time_s,sector,sectors,kind` per line, human-greppable and
//!   compatible with spreadsheet tooling; `kind` is `R` or `W`.
//! * **JSON lines** — one flat JSON object per [`VolumeRequest`] per line,
//!   exact round-trip of every field (shortest-round-trip float formatting).
//!
//! Both readers validate as they parse and report the offending line number
//! in errors, because traces are exactly the kind of input users hand-edit.

use crate::request::{Trace, VolumeIoKind, VolumeRequest};
use simkit::SimTime;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

/// Errors raised by trace parsing.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line: `(line_number, description)`.
    Parse(usize, String),
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceIoError::Parse(line, msg) => write!(f, "trace parse error at line {line}: {msg}"),
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Writes a trace as CSV (with a header line).
pub fn write_csv<W: Write>(trace: &Trace, mut w: W) -> Result<(), TraceIoError> {
    writeln!(w, "time_s,sector,sectors,kind")?;
    for r in &trace.requests {
        let k = match r.kind {
            VolumeIoKind::Read => 'R',
            VolumeIoKind::Write => 'W',
        };
        writeln!(
            w,
            "{:.9},{},{},{}",
            r.time.as_secs(),
            r.sector,
            r.sectors,
            k
        )?;
    }
    Ok(())
}

/// Reads a CSV trace (header line required), sorting the result by time.
pub fn read_csv<R: Read>(r: R) -> Result<Trace, TraceIoError> {
    let reader = BufReader::new(r);
    let mut requests = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = i + 1;
        if i == 0 {
            if line.trim() != "time_s,sector,sectors,kind" {
                return Err(TraceIoError::Parse(lineno, "missing/invalid header".into()));
            }
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 4 {
            return Err(TraceIoError::Parse(
                lineno,
                format!("expected 4 fields, got {}", fields.len()),
            ));
        }
        let time: f64 = fields[0]
            .trim()
            .parse()
            .map_err(|e| TraceIoError::Parse(lineno, format!("bad time: {e}")))?;
        if !time.is_finite() || time < 0.0 {
            return Err(TraceIoError::Parse(lineno, format!("bad time {time}")));
        }
        let sector: u64 = fields[1]
            .trim()
            .parse()
            .map_err(|e| TraceIoError::Parse(lineno, format!("bad sector: {e}")))?;
        let sectors: u32 = fields[2]
            .trim()
            .parse()
            .map_err(|e| TraceIoError::Parse(lineno, format!("bad length: {e}")))?;
        if sectors == 0 {
            return Err(TraceIoError::Parse(lineno, "zero-length request".into()));
        }
        let kind = match fields[3].trim() {
            "R" | "r" => VolumeIoKind::Read,
            "W" | "w" => VolumeIoKind::Write,
            other => {
                return Err(TraceIoError::Parse(
                    lineno,
                    format!("bad kind {other:?} (want R or W)"),
                ))
            }
        };
        requests.push(VolumeRequest {
            time: SimTime::from_secs(time),
            sector,
            sectors,
            kind,
        });
    }
    Ok(Trace::from_requests(requests))
}

/// Writes a trace as JSON lines.
///
/// Each line is a flat object:
/// `{"time_s":1.25,"sector":4096,"sectors":16,"kind":"R"}`. The time is
/// emitted with Rust's shortest-round-trip float formatting, so every field
/// survives a write/read cycle exactly.
pub fn write_jsonl<W: Write>(trace: &Trace, mut w: W) -> Result<(), TraceIoError> {
    for r in &trace.requests {
        let k = match r.kind {
            VolumeIoKind::Read => 'R',
            VolumeIoKind::Write => 'W',
        };
        writeln!(
            w,
            "{{\"time_s\":{:?},\"sector\":{},\"sectors\":{},\"kind\":\"{k}\"}}",
            r.time.as_secs(),
            r.sector,
            r.sectors
        )?;
    }
    Ok(())
}

/// Pulls the raw text of `key` out of a flat one-line JSON object. The
/// format is the fixed four-field schema `write_jsonl` emits — values are
/// numbers or the single-letter strings `"R"`/`"W"`, so a purpose-built
/// scanner (find `"key":`, read to the next `,` or `}`) is exact.
fn json_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

/// Reads a JSON-lines trace, sorting the result by time.
pub fn read_jsonl<R: Read>(r: R) -> Result<Trace, TraceIoError> {
    let reader = BufReader::new(r);
    let mut requests = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let parse = |key: &str| -> Result<&str, TraceIoError> {
            json_field(&line, key)
                .ok_or_else(|| TraceIoError::Parse(lineno, format!("bad JSON: missing {key:?}")))
        };
        let time: f64 = parse("time_s")?
            .parse()
            .map_err(|e| TraceIoError::Parse(lineno, format!("bad JSON time: {e}")))?;
        if !time.is_finite() || time < 0.0 {
            return Err(TraceIoError::Parse(lineno, format!("bad time {time}")));
        }
        let sector: u64 = parse("sector")?
            .parse()
            .map_err(|e| TraceIoError::Parse(lineno, format!("bad JSON sector: {e}")))?;
        let sectors: u32 = parse("sectors")?
            .parse()
            .map_err(|e| TraceIoError::Parse(lineno, format!("bad JSON length: {e}")))?;
        if sectors == 0 {
            return Err(TraceIoError::Parse(lineno, "zero-length request".into()));
        }
        let kind = match parse("kind")? {
            "\"R\"" => VolumeIoKind::Read,
            "\"W\"" => VolumeIoKind::Write,
            other => {
                return Err(TraceIoError::Parse(
                    lineno,
                    format!("bad JSON kind {other} (want \"R\" or \"W\")"),
                ))
            }
        };
        requests.push(VolumeRequest {
            time: SimTime::from_secs(time),
            sector,
            sectors,
            kind,
        });
    }
    Ok(Trace::from_requests(requests))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::WorkloadSpec;

    fn sample() -> Trace {
        WorkloadSpec::oltp(30.0, 20.0).generate(5)
    }

    #[test]
    fn csv_roundtrip() {
        let tr = sample();
        let mut buf = Vec::new();
        write_csv(&tr, &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(back.len(), tr.len());
        for (a, b) in tr.requests.iter().zip(&back.requests) {
            assert!((a.time.as_secs() - b.time.as_secs()).abs() < 1e-8);
            assert_eq!(a.sector, b.sector);
            assert_eq!(a.sectors, b.sectors);
            assert_eq!(a.kind, b.kind);
        }
    }

    #[test]
    fn jsonl_roundtrip_is_exact() {
        let tr = sample();
        let mut buf = Vec::new();
        write_jsonl(&tr, &mut buf).unwrap();
        let back = read_jsonl(buf.as_slice()).unwrap();
        assert_eq!(back.requests, tr.requests);
    }

    #[test]
    fn csv_rejects_missing_header() {
        let err = read_csv("1.0,2,3,R\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TraceIoError::Parse(1, _)), "{err}");
    }

    #[test]
    fn csv_rejects_bad_kind() {
        let data = "time_s,sector,sectors,kind\n1.0,2,3,X\n";
        let err = read_csv(data.as_bytes()).unwrap_err();
        match err {
            TraceIoError::Parse(2, msg) => assert!(msg.contains("bad kind"), "{msg}"),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn csv_rejects_zero_length() {
        let data = "time_s,sector,sectors,kind\n1.0,2,0,R\n";
        assert!(read_csv(data.as_bytes()).is_err());
    }

    #[test]
    fn csv_rejects_negative_time() {
        let data = "time_s,sector,sectors,kind\n-5.0,2,8,R\n";
        assert!(read_csv(data.as_bytes()).is_err());
    }

    #[test]
    fn csv_skips_blank_lines_and_sorts() {
        let data = "time_s,sector,sectors,kind\n2.0,10,8,W\n\n1.0,20,8,R\n";
        let tr = read_csv(data.as_bytes()).unwrap();
        assert_eq!(tr.len(), 2);
        assert!(tr.is_sorted());
        assert_eq!(tr.requests[0].sector, 20);
    }

    #[test]
    fn jsonl_reports_line_numbers() {
        let mut buf = Vec::new();
        write_jsonl(&sample(), &mut buf).unwrap();
        let good = String::from_utf8(buf).unwrap();
        let good_first = good.lines().next().unwrap();
        let data = format!("{good_first}\nnot-json\n");
        let err = read_jsonl(data.as_bytes()).unwrap_err();
        assert!(matches!(err, TraceIoError::Parse(2, _)), "{err}");
    }

    #[test]
    fn jsonl_rejects_bad_kind() {
        let data = "{\"time_s\":1.0,\"sector\":2,\"sectors\":8,\"kind\":\"X\"}\n";
        let err = read_jsonl(data.as_bytes()).unwrap_err();
        match err {
            TraceIoError::Parse(1, msg) => assert!(msg.contains("kind"), "{msg}"),
            other => panic!("unexpected {other}"),
        }
    }
}
