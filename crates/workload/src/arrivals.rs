//! Arrival processes.
//!
//! Three layers compose the arrival stream:
//!
//! * [`Poisson`] — memoryless arrivals at a fixed rate, the textbook model
//!   for OLTP front-ends;
//! * [`Mmpp2`] — a two-state Markov-modulated Poisson process (quiet state /
//!   burst state) reproducing the burstiness of file-server traces;
//! * [`DiurnalProfile`] — a 24-hour rate-multiplier curve applied on top,
//!   giving the day/night load cycle that makes spin-down policies
//!   attractive at all.
//!
//! All generators are thinning-based where modulation applies, so the
//! produced process has exactly the requested *instantaneous* rate.

use simkit::DetRng;

/// Homogeneous Poisson arrivals.
#[derive(Debug, Clone, Copy)]
pub struct Poisson {
    /// Events per second.
    pub rate: f64,
}

impl Poisson {
    /// Creates a Poisson process with `rate` events/second.
    ///
    /// # Panics
    /// Panics if `rate` is not strictly positive.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "Poisson: bad rate {rate}");
        Poisson { rate }
    }

    /// Generates arrival times in `[0, horizon_s)`.
    pub fn arrivals(&self, rng: &mut DetRng, horizon_s: f64) -> Vec<f64> {
        let mut t = 0.0;
        let mut out = Vec::with_capacity((self.rate * horizon_s * 1.1) as usize + 8);
        loop {
            t += rng.exponential(self.rate);
            if t >= horizon_s {
                break;
            }
            out.push(t);
        }
        out
    }
}

/// Two-state Markov-modulated Poisson process.
///
/// The process alternates between a *quiet* state with rate `rate_quiet`
/// and a *burst* state with rate `rate_burst`; dwell times in each state
/// are exponential with the given means.
#[derive(Debug, Clone, Copy)]
pub struct Mmpp2 {
    /// Arrival rate in the quiet state (events/sec).
    pub rate_quiet: f64,
    /// Arrival rate in the burst state (events/sec).
    pub rate_burst: f64,
    /// Mean dwell time in the quiet state (s).
    pub mean_quiet_s: f64,
    /// Mean dwell time in the burst state (s).
    pub mean_burst_s: f64,
}

impl Mmpp2 {
    /// Creates the process.
    ///
    /// # Panics
    /// Panics if any parameter is non-positive, or if the burst rate does
    /// not exceed the quiet rate (the states would be indistinguishable).
    pub fn new(rate_quiet: f64, rate_burst: f64, mean_quiet_s: f64, mean_burst_s: f64) -> Self {
        assert!(
            rate_quiet > 0.0 && rate_burst > 0.0,
            "rates must be positive"
        );
        assert!(rate_burst > rate_quiet, "burst rate must exceed quiet rate");
        assert!(
            mean_quiet_s > 0.0 && mean_burst_s > 0.0,
            "dwell times must be positive"
        );
        Mmpp2 {
            rate_quiet,
            rate_burst,
            mean_quiet_s,
            mean_burst_s,
        }
    }

    /// The long-run average arrival rate.
    pub fn mean_rate(&self) -> f64 {
        let pq = self.mean_quiet_s / (self.mean_quiet_s + self.mean_burst_s);
        pq * self.rate_quiet + (1.0 - pq) * self.rate_burst
    }

    /// Generates arrival times in `[0, horizon_s)` by thinning against the
    /// burst rate.
    pub fn arrivals(&self, rng: &mut DetRng, horizon_s: f64) -> Vec<f64> {
        let mut out = Vec::new();
        let mut t = 0.0;
        let mut in_burst = rng.chance(self.mean_burst_s / (self.mean_quiet_s + self.mean_burst_s));
        let mut state_end = rng.exponential(if in_burst {
            1.0 / self.mean_burst_s
        } else {
            1.0 / self.mean_quiet_s
        });
        loop {
            t += rng.exponential(self.rate_burst);
            if t >= horizon_s {
                break;
            }
            // Advance the modulating chain to time t.
            while t >= state_end {
                in_burst = !in_burst;
                state_end += rng.exponential(if in_burst {
                    1.0 / self.mean_burst_s
                } else {
                    1.0 / self.mean_quiet_s
                });
            }
            let rate_now = if in_burst {
                self.rate_burst
            } else {
                self.rate_quiet
            };
            if rng.chance(rate_now / self.rate_burst) {
                out.push(t);
            }
        }
        out
    }
}

/// A 24-hour rate-multiplier profile, linearly interpolated between hourly
/// control points and repeated every day.
#[derive(Debug, Clone)]
pub struct DiurnalProfile {
    /// 24 multipliers, one per hour of the day; all ≥ 0, at least one > 0.
    hourly: [f64; 24],
    peak: f64,
}

impl DiurnalProfile {
    /// Builds a profile from 24 hourly multipliers.
    ///
    /// # Panics
    /// Panics if any multiplier is negative/non-finite or all are zero.
    pub fn new(hourly: [f64; 24]) -> Self {
        assert!(
            hourly.iter().all(|m| m.is_finite() && *m >= 0.0),
            "bad multiplier"
        );
        let peak = hourly.iter().cloned().fold(0.0f64, f64::max);
        assert!(peak > 0.0, "profile is identically zero");
        DiurnalProfile { hourly, peak }
    }

    /// A flat profile (multiplier 1.0 around the clock).
    pub fn flat() -> Self {
        Self::new([1.0; 24])
    }

    /// A file-server-like profile: busy working hours (09–18), a late-night
    /// backup bump (01–03), and quiet small hours.
    pub fn office_with_backup() -> Self {
        let mut h = [0.15; 24];
        for (i, v) in h.iter_mut().enumerate() {
            *v = match i {
                9..=11 => 1.0,
                12 => 0.8,
                13..=17 => 1.0,
                8 | 18 => 0.6,
                19..=21 => 0.35,
                1..=2 => 0.7, // nightly backup burst
                _ => 0.15,
            };
        }
        Self::new(h)
    }

    /// The multiplier at simulated time `t_s` (seconds), interpolating
    /// between hour points and wrapping daily.
    pub fn multiplier(&self, t_s: f64) -> f64 {
        let day_s = t_s.rem_euclid(86_400.0);
        let hf = day_s / 3600.0;
        let h0 = hf.floor() as usize % 24;
        let h1 = (h0 + 1) % 24;
        let frac = hf - hf.floor();
        self.hourly[h0] * (1.0 - frac) + self.hourly[h1] * frac
    }

    /// The maximum multiplier (thinning envelope).
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Thins a stationary arrival stream so its instantaneous rate follows
    /// `base_rate × multiplier(t)`. Input times must have been generated at
    /// rate `base_rate × peak()`.
    pub fn thin(&self, rng: &mut DetRng, arrivals_at_peak: &[f64]) -> Vec<f64> {
        arrivals_at_peak
            .iter()
            .copied()
            .filter(|&t| rng.chance(self.multiplier(t) / self.peak))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::new(11, "arrivals-test")
    }

    #[test]
    fn poisson_rate_is_respected() {
        let mut r = rng();
        let arr = Poisson::new(50.0).arrivals(&mut r, 200.0);
        let rate = arr.len() as f64 / 200.0;
        assert!((rate - 50.0).abs() < 2.0, "rate {rate}");
    }

    #[test]
    fn poisson_sorted_and_in_range() {
        let mut r = rng();
        let arr = Poisson::new(10.0).arrivals(&mut r, 50.0);
        assert!(arr.windows(2).all(|w| w[0] <= w[1]));
        assert!(arr.iter().all(|&t| (0.0..50.0).contains(&t)));
    }

    #[test]
    fn poisson_interarrival_cv_near_one() {
        let mut r = rng();
        let arr = Poisson::new(100.0).arrivals(&mut r, 500.0);
        let gaps: Vec<f64> = arr.windows(2).map(|w| w[1] - w[0]).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        let cv2 = var / (mean * mean);
        assert!((cv2 - 1.0).abs() < 0.1, "cv² {cv2}");
    }

    #[test]
    fn mmpp_mean_rate_formula() {
        let m = Mmpp2::new(5.0, 100.0, 300.0, 30.0);
        let pq = 300.0 / 330.0;
        assert!((m.mean_rate() - (pq * 5.0 + (1.0 - pq) * 100.0)).abs() < 1e-12);
    }

    #[test]
    fn mmpp_realises_mean_rate() {
        let m = Mmpp2::new(5.0, 100.0, 100.0, 20.0);
        let mut r = rng();
        let horizon = 20_000.0;
        let arr = m.arrivals(&mut r, horizon);
        let rate = arr.len() as f64 / horizon;
        assert!(
            (rate - m.mean_rate()).abs() / m.mean_rate() < 0.1,
            "rate {rate} vs mean {}",
            m.mean_rate()
        );
    }

    #[test]
    fn mmpp_burstier_than_poisson() {
        // Count-based dispersion over 1s bins: MMPP should overdisperse.
        let m = Mmpp2::new(2.0, 200.0, 50.0, 5.0);
        let mut r = rng();
        let horizon = 5_000.0;
        let arr = m.arrivals(&mut r, horizon);
        let bins = horizon as usize;
        let mut counts = vec![0f64; bins];
        for t in arr {
            counts[t as usize] += 1.0;
        }
        let mean = counts.iter().sum::<f64>() / bins as f64;
        let var = counts.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / bins as f64;
        assert!(
            var / mean > 2.0,
            "index of dispersion {} not bursty",
            var / mean
        );
    }

    #[test]
    fn diurnal_interpolates_and_wraps() {
        let p = DiurnalProfile::office_with_backup();
        assert_eq!(p.multiplier(10.0 * 3600.0), 1.0); // mid-morning
        let night = p.multiplier(5.0 * 3600.0);
        assert!(night < 0.3, "small hours should be quiet: {night}");
        // Wraps daily.
        assert_eq!(
            p.multiplier(10.0 * 3600.0),
            p.multiplier(86_400.0 + 10.0 * 3600.0)
        );
        // Interpolation between hours 9 (1.0) and 12 (0.8) at 11:30.
        let m = p.multiplier(11.5 * 3600.0);
        assert!((0.8..=1.0).contains(&m));
    }

    #[test]
    fn flat_profile_is_identity() {
        let p = DiurnalProfile::flat();
        for h in 0..48 {
            assert_eq!(p.multiplier(h as f64 * 1800.0), 1.0);
        }
        assert_eq!(p.peak(), 1.0);
    }

    #[test]
    fn thinning_matches_profile_shape() {
        let p = DiurnalProfile::office_with_backup();
        let base = 20.0;
        let mut r = rng();
        let at_peak = Poisson::new(base * p.peak()).arrivals(&mut r, 86_400.0);
        let thinned = p.thin(&mut r, &at_peak);
        // Compare busy hour (10:00) and quiet hour (05:00) realised rates.
        let count_in = |lo: f64, hi: f64| {
            thinned.iter().filter(|&&t| t >= lo && t < hi).count() as f64 / (hi - lo)
        };
        let busy = count_in(9.5 * 3600.0, 11.5 * 3600.0);
        let quiet = count_in(4.0 * 3600.0, 6.0 * 3600.0);
        assert!(busy > quiet * 3.0, "busy {busy} quiet {quiet}");
    }

    #[test]
    #[should_panic(expected = "burst rate must exceed")]
    fn mmpp_rejects_inverted_rates() {
        let _ = Mmpp2::new(10.0, 5.0, 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "identically zero")]
    fn profile_rejects_all_zero() {
        let _ = DiurnalProfile::new([0.0; 24]);
    }
}
