//! Energy accounting.
//!
//! Every joule a simulated disk consumes is attributed to exactly one
//! [`EnergyComponent`], so the experiment harness can report both totals and
//! breakdowns (the paper-style "where did the energy go" table). The ledger
//! enforces the conservation invariant `total == Σ components` by
//! construction: there is no way to add unattributed energy.

use std::fmt;

/// Where a parcel of energy was spent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnergyComponent {
    /// Keeping the platters spinning with no request in service.
    IdleSpin,
    /// Moving the arm during a seek.
    Seek,
    /// Rotating + transferring while a request occupies the head.
    Transfer,
    /// Changing rotational speed (spin-up, spin-down, inter-RPM ramps).
    Transition,
    /// Deep sleep with platters stopped.
    Standby,
    /// Background data-migration I/O issued by a power policy.
    Migration,
}

impl EnergyComponent {
    /// All components, in a fixed reporting order.
    pub const ALL: [EnergyComponent; 6] = [
        EnergyComponent::IdleSpin,
        EnergyComponent::Seek,
        EnergyComponent::Transfer,
        EnergyComponent::Transition,
        EnergyComponent::Standby,
        EnergyComponent::Migration,
    ];

    /// A short stable label for tables and CSV headers.
    pub fn label(self) -> &'static str {
        match self {
            EnergyComponent::IdleSpin => "idle_spin",
            EnergyComponent::Seek => "seek",
            EnergyComponent::Transfer => "transfer",
            EnergyComponent::Transition => "transition",
            EnergyComponent::Standby => "standby",
            EnergyComponent::Migration => "migration",
        }
    }

    fn index(self) -> usize {
        match self {
            EnergyComponent::IdleSpin => 0,
            EnergyComponent::Seek => 1,
            EnergyComponent::Transfer => 2,
            EnergyComponent::Transition => 3,
            EnergyComponent::Standby => 4,
            EnergyComponent::Migration => 5,
        }
    }
}

impl fmt::Display for EnergyComponent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// An attributed energy ledger, in joules.
///
/// # Examples
/// ```
/// use simkit::{EnergyComponent, EnergyLedger};
///
/// let mut e = EnergyLedger::new();
/// e.add(EnergyComponent::IdleSpin, 120.0);
/// e.add(EnergyComponent::Seek, 3.5);
/// assert_eq!(e.total_joules(), 123.5);
/// assert_eq!(e.joules(EnergyComponent::Seek), 3.5);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EnergyLedger {
    joules: [f64; 6],
}

impl EnergyLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        EnergyLedger { joules: [0.0; 6] }
    }

    /// Adds `joules` of energy attributed to `component`.
    ///
    /// # Panics
    /// Panics if `joules` is negative or non-finite — energy only flows in.
    pub fn add(&mut self, component: EnergyComponent, joules: f64) {
        assert!(
            joules.is_finite() && joules >= 0.0,
            "EnergyLedger::add: bad amount {joules}"
        );
        self.joules[component.index()] += joules;
    }

    /// Joules attributed to a single component.
    pub fn joules(&self, component: EnergyComponent) -> f64 {
        self.joules[component.index()]
    }

    /// Total joules across all components.
    pub fn total_joules(&self) -> f64 {
        self.joules.iter().sum()
    }

    /// Total energy in kilojoules (the unit the paper-style tables use).
    pub fn total_kilojoules(&self) -> f64 {
        self.total_joules() / 1e3
    }

    /// Total energy in watt-hours.
    pub fn total_watt_hours(&self) -> f64 {
        self.total_joules() / 3600.0
    }

    /// Fraction of the total attributed to `component` (0 if total is 0).
    pub fn fraction(&self, component: EnergyComponent) -> f64 {
        let t = self.total_joules();
        if t == 0.0 {
            0.0
        } else {
            self.joules(component) / t
        }
    }

    /// Iterates `(component, joules)` in reporting order.
    pub fn breakdown(&self) -> impl Iterator<Item = (EnergyComponent, f64)> + '_ {
        EnergyComponent::ALL.iter().map(|&c| (c, self.joules(c)))
    }

    /// Merges another ledger into this one.
    pub fn merge(&mut self, other: &EnergyLedger) {
        for (a, b) in self.joules.iter_mut().zip(&other.joules) {
            *a += b;
        }
    }

    /// The energy saved relative to a baseline ledger, as a fraction of the
    /// baseline total (negative if this ledger spent *more*). Returns 0 when
    /// the baseline is empty.
    pub fn savings_vs(&self, baseline: &EnergyLedger) -> f64 {
        let b = baseline.total_joules();
        if b == 0.0 {
            0.0
        } else {
            (b - self.total_joules()) / b
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ledger_is_zero() {
        let e = EnergyLedger::new();
        assert_eq!(e.total_joules(), 0.0);
        for c in EnergyComponent::ALL {
            assert_eq!(e.joules(c), 0.0);
            assert_eq!(e.fraction(c), 0.0);
        }
    }

    #[test]
    fn components_sum_to_total() {
        let mut e = EnergyLedger::new();
        let amounts = [5.0, 1.0, 2.0, 10.0, 0.5, 3.0];
        for (c, a) in EnergyComponent::ALL.iter().zip(amounts) {
            e.add(*c, a);
        }
        let sum: f64 = e.breakdown().map(|(_, j)| j).sum();
        assert!((sum - e.total_joules()).abs() < 1e-12);
        assert_eq!(e.total_joules(), amounts.iter().sum::<f64>());
    }

    #[test]
    fn unit_conversions() {
        let mut e = EnergyLedger::new();
        e.add(EnergyComponent::IdleSpin, 7200.0);
        assert_eq!(e.total_kilojoules(), 7.2);
        assert_eq!(e.total_watt_hours(), 2.0);
    }

    #[test]
    fn fractions() {
        let mut e = EnergyLedger::new();
        e.add(EnergyComponent::Seek, 1.0);
        e.add(EnergyComponent::Transfer, 3.0);
        assert_eq!(e.fraction(EnergyComponent::Seek), 0.25);
        assert_eq!(e.fraction(EnergyComponent::Transfer), 0.75);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = EnergyLedger::new();
        a.add(EnergyComponent::Seek, 1.0);
        let mut b = EnergyLedger::new();
        b.add(EnergyComponent::Seek, 2.0);
        b.add(EnergyComponent::Standby, 4.0);
        a.merge(&b);
        assert_eq!(a.joules(EnergyComponent::Seek), 3.0);
        assert_eq!(a.joules(EnergyComponent::Standby), 4.0);
    }

    #[test]
    fn savings_computation() {
        let mut base = EnergyLedger::new();
        base.add(EnergyComponent::IdleSpin, 100.0);
        let mut ours = EnergyLedger::new();
        ours.add(EnergyComponent::IdleSpin, 40.0);
        assert!((ours.savings_vs(&base) - 0.6).abs() < 1e-12);
        assert!((base.savings_vs(&ours) + 1.5).abs() < 1e-12); // spent more
        assert_eq!(ours.savings_vs(&EnergyLedger::new()), 0.0);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(EnergyComponent::IdleSpin.label(), "idle_spin");
        assert_eq!(format!("{}", EnergyComponent::Migration), "migration");
    }

    #[test]
    #[should_panic(expected = "bad amount")]
    fn rejects_negative_energy() {
        EnergyLedger::new().add(EnergyComponent::Seek, -1.0);
    }
}
