//! Fixed-bucket time series for "X over time" figures.
//!
//! Several experiments plot a quantity against simulated time (per-epoch
//! energy, windowed response time, disks per tier). [`TimeSeries`] buckets
//! samples into fixed-width intervals and records, per bucket, the sample
//! mean and sum — enough for every figure in the suite without retaining
//! raw samples.

use crate::time::{SimDuration, SimTime};

/// One aggregated bucket of a [`TimeSeries`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SeriesBucket {
    /// Number of samples in the bucket.
    pub count: u64,
    /// Sum of sample values.
    pub sum: f64,
    /// Smallest sample, meaningless if `count == 0`.
    pub min: f64,
    /// Largest sample, meaningless if `count == 0`.
    pub max: f64,
}

impl SeriesBucket {
    /// Mean of the bucket's samples, or `None` if the bucket is empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }
}

/// A time series aggregated into fixed-width buckets.
///
/// # Examples
/// ```
/// use simkit::{SimDuration, SimTime, TimeSeries};
///
/// let mut s = TimeSeries::new(SimDuration::from_secs(60.0));
/// s.record(SimTime::from_secs(10.0), 1.0);
/// s.record(SimTime::from_secs(20.0), 3.0);
/// s.record(SimTime::from_secs(70.0), 8.0);
/// let pts = s.mean_points();
/// assert_eq!(pts.len(), 2);
/// assert_eq!(pts[0], (30.0, 2.0)); // bucket midpoint, mean
/// assert_eq!(pts[1], (90.0, 8.0));
/// ```
#[derive(Debug, Clone)]
pub struct TimeSeries {
    bucket_width: SimDuration,
    buckets: Vec<SeriesBucket>,
}

impl TimeSeries {
    /// Creates a series with the given bucket width.
    ///
    /// # Panics
    /// Panics if `bucket_width` is zero.
    pub fn new(bucket_width: SimDuration) -> Self {
        assert!(!bucket_width.is_zero(), "TimeSeries: zero bucket width");
        TimeSeries {
            bucket_width,
            buckets: Vec::new(),
        }
    }

    /// The configured bucket width.
    pub fn bucket_width(&self) -> SimDuration {
        self.bucket_width
    }

    fn bucket_for(&mut self, t: SimTime) -> &mut SeriesBucket {
        let idx = (t.as_secs() / self.bucket_width.as_secs()).floor() as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, SeriesBucket::default());
        }
        &mut self.buckets[idx]
    }

    /// Records a sample at time `t`.
    ///
    /// # Panics
    /// Panics if `v` is non-finite.
    pub fn record(&mut self, t: SimTime, v: f64) {
        assert!(v.is_finite(), "TimeSeries: non-finite sample");
        let b = self.bucket_for(t);
        if b.count == 0 {
            b.min = v;
            b.max = v;
        } else {
            b.min = b.min.min(v);
            b.max = b.max.max(v);
        }
        b.count += 1;
        b.sum += v;
    }

    /// Number of buckets spanned so far (including empty interior buckets).
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Bucket at index `i`, if it exists.
    pub fn bucket(&self, i: usize) -> Option<&SeriesBucket> {
        self.buckets.get(i)
    }

    /// `(bucket_midpoint_secs, mean)` for every non-empty bucket.
    pub fn mean_points(&self) -> Vec<(f64, f64)> {
        self.points_by(|b| b.mean())
    }

    /// `(bucket_midpoint_secs, sum)` for every non-empty bucket — e.g. the
    /// joules spent in each interval.
    pub fn sum_points(&self) -> Vec<(f64, f64)> {
        self.points_by(|b| (b.count > 0).then_some(b.sum))
    }

    fn points_by(&self, f: impl Fn(&SeriesBucket) -> Option<f64>) -> Vec<(f64, f64)> {
        let w = self.bucket_width.as_secs();
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| f(b).map(|v| ((i as f64 + 0.5) * w, v)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn empty_series() {
        let s = TimeSeries::new(SimDuration::from_secs(1.0));
        assert!(s.is_empty());
        assert!(s.mean_points().is_empty());
        assert!(s.bucket(0).is_none());
    }

    #[test]
    fn bucketing_boundaries() {
        let mut s = TimeSeries::new(SimDuration::from_secs(10.0));
        s.record(t(0.0), 1.0);
        s.record(t(9.999), 2.0);
        s.record(t(10.0), 3.0); // exactly on the boundary: next bucket
        assert_eq!(s.len(), 2);
        assert_eq!(s.bucket(0).unwrap().count, 2);
        assert_eq!(s.bucket(1).unwrap().count, 1);
    }

    #[test]
    fn interior_gaps_are_skipped_in_points() {
        let mut s = TimeSeries::new(SimDuration::from_secs(1.0));
        s.record(t(0.5), 1.0);
        s.record(t(5.5), 2.0);
        let pts = s.mean_points();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0], (0.5, 1.0));
        assert_eq!(pts[1], (5.5, 2.0));
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn bucket_stats() {
        let mut s = TimeSeries::new(SimDuration::from_secs(10.0));
        for v in [4.0, 6.0, 2.0] {
            s.record(t(3.0), v);
        }
        let b = s.bucket(0).unwrap();
        assert_eq!(b.count, 3);
        assert_eq!(b.sum, 12.0);
        assert_eq!(b.min, 2.0);
        assert_eq!(b.max, 6.0);
        assert_eq!(b.mean(), Some(4.0));
    }

    #[test]
    fn sum_points_report_totals() {
        let mut s = TimeSeries::new(SimDuration::from_secs(60.0));
        s.record(t(1.0), 100.0);
        s.record(t(2.0), 50.0);
        let pts = s.sum_points();
        assert_eq!(pts, vec![(30.0, 150.0)]);
    }

    #[test]
    #[should_panic(expected = "zero bucket width")]
    fn rejects_zero_width() {
        let _ = TimeSeries::new(SimDuration::ZERO);
    }
}
