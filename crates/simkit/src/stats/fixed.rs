//! Linear fixed-bucket histogram.
//!
//! [`LatencyHistogram`](super::LatencyHistogram) trades resolution for
//! range with geometric buckets; telemetry wants the opposite trade:
//! buckets whose boundaries are trivially reproducible from two numbers
//! (`width`, `buckets`) so a serialized count vector can be re-derived and
//! compared byte-for-byte by an external auditor. [`FixedHistogram`]
//! buckets `[0, width)`, `[width, 2·width)`, … plus a single overflow
//! bucket for everything at or above `width · buckets`.

/// A histogram over equal-width buckets starting at zero.
///
/// # Examples
/// ```
/// use simkit::FixedHistogram;
///
/// let mut h = FixedHistogram::new(10.0, 4);
/// h.record(0.0);
/// h.record(9.9);
/// h.record(35.0);
/// h.record(1e9); // lands in the overflow bucket
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.counts(), &[2, 0, 0, 1]);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct FixedHistogram {
    width: f64,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
    sum: f64,
}

impl FixedHistogram {
    /// Creates a histogram with `buckets` buckets of `width` each.
    ///
    /// # Panics
    /// Panics if `width` is not positive and finite or `buckets` is zero.
    pub fn new(width: f64, buckets: usize) -> Self {
        assert!(
            width > 0.0 && width.is_finite(),
            "FixedHistogram: bad width {width}"
        );
        assert!(buckets > 0, "FixedHistogram: zero buckets");
        FixedHistogram {
            width,
            counts: vec![0; buckets],
            overflow: 0,
            total: 0,
            sum: 0.0,
        }
    }

    /// The configured bucket width.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Records one sample.
    ///
    /// # Panics
    /// Panics if `v` is negative or non-finite.
    pub fn record(&mut self, v: f64) {
        assert!(v >= 0.0 && v.is_finite(), "FixedHistogram: bad sample {v}");
        let idx = (v / self.width).floor() as usize;
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
        self.total += 1;
        self.sum += v;
    }

    /// Total samples recorded (including overflow).
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Per-bucket counts; the overflow bucket is *not* included.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Samples at or above `width · buckets`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Mean of all samples, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.total > 0).then(|| self.sum / self.total as f64)
    }

    /// Half-open value range `[lo, hi)` of bucket `i`.
    pub fn bucket_range(&self, i: usize) -> (f64, f64) {
        (i as f64 * self.width, (i + 1) as f64 * self.width)
    }

    /// Merges another histogram with the identical layout.
    ///
    /// # Panics
    /// Panics if widths or bucket counts differ.
    pub fn merge(&mut self, other: &FixedHistogram) {
        assert!(
            self.width == other.width && self.counts.len() == other.counts.len(),
            "FixedHistogram: merge layout mismatch"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.total += other.total;
        self.sum += other.sum;
    }

    /// Clears all counts, keeping the layout.
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.overflow = 0;
        self.total = 0;
        self.sum = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_half_open_and_overflow_catches_the_rest() {
        let mut h = FixedHistogram::new(2.0, 3);
        for v in [0.0, 1.999, 2.0, 5.999, 6.0, 100.0] {
            h.record(v);
        }
        assert_eq!(h.counts(), &[2, 1, 1]);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 6);
        assert_eq!(h.bucket_range(1), (2.0, 4.0));
    }

    #[test]
    fn mean_and_reset() {
        let mut h = FixedHistogram::new(1.0, 2);
        assert!(h.mean().is_none());
        h.record(1.0);
        h.record(3.0);
        assert_eq!(h.mean(), Some(2.0));
        h.reset();
        assert!(h.is_empty());
        assert_eq!(h.counts(), &[0, 0]);
    }

    #[test]
    fn merge_accumulates_identical_layouts() {
        let mut a = FixedHistogram::new(1.0, 2);
        let mut b = FixedHistogram::new(1.0, 2);
        a.record(0.5);
        b.record(0.5);
        b.record(5.0);
        a.merge(&b);
        assert_eq!(a.counts(), &[2, 0]);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.count(), 3);
    }

    #[test]
    #[should_panic]
    fn negative_sample_panics() {
        FixedHistogram::new(1.0, 1).record(-0.1);
    }

    #[test]
    #[should_panic]
    fn merge_layout_mismatch_panics() {
        let mut a = FixedHistogram::new(1.0, 2);
        a.merge(&FixedHistogram::new(2.0, 2));
    }
}
