//! Online statistics used throughout the simulator.
//!
//! * [`Moments`] — streaming mean/variance/`E[X²]` (feeds the M/G/1 model).
//! * [`LatencyHistogram`] — geometric-bucket percentiles for latency CDFs.
//! * [`FixedHistogram`] — linear-bucket counts with reproducible layout
//!   (telemetry latency/queue-depth histograms).
//! * [`SlidingWindow`] — trailing-time-window mean (the performance guard).
//! * [`TimeWeighted`] — integrals of piecewise-constant signals (energy,
//!   queue depth).
//! * [`Ewma`] / [`DecayingRate`] — exponential forgetting (temperatures).

mod ewma;
mod fixed;
mod histogram;
mod moments;
mod timeweighted;
mod window;

pub use ewma::{DecayingRate, Ewma};
pub use fixed::FixedHistogram;
pub use histogram::LatencyHistogram;
pub use moments::Moments;
pub use timeweighted::TimeWeighted;
pub use window::SlidingWindow;
