//! Streaming first/second/third-moment accumulators.
//!
//! [`Moments`] implements Welford's numerically stable online algorithm,
//! extended to track the raw second moment `E[X²]` as well — the quantity
//! the M/G/1 response-time predictor in the `hibernator` crate needs
//! (`R = E[S] + λ·E[S²] / (2(1 − ρ))`).

/// Online mean / variance / min / max / raw second moment.
///
/// # Examples
/// ```
/// use simkit::Moments;
///
/// let mut m = Moments::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     m.record(x);
/// }
/// assert_eq!(m.count(), 4);
/// assert_eq!(m.mean(), 2.5);
/// assert!((m.variance() - 1.25).abs() < 1e-12);
/// assert_eq!(m.raw_second_moment(), (1.0 + 4.0 + 9.0 + 16.0) / 4.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Moments {
    n: u64,
    mean: f64,
    m2: f64,
    sum_sq: f64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Moments {
    /// An empty accumulator.
    pub fn new() -> Self {
        Moments {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            sum_sq: 0.0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    ///
    /// # Panics
    /// Panics if `x` is not finite: a NaN sample would silently poison every
    /// later statistic.
    pub fn record(&mut self, x: f64) {
        assert!(x.is_finite(), "Moments::record: non-finite sample {x}");
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.sum += x;
        self.sum_sq += x * x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Sample mean, or 0 if empty (a neutral value convenient for reports).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Population variance (dividing by n), or 0 if fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / self.n as f64).max(0.0)
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// The raw second moment `E[X²]`, or 0 if empty.
    pub fn raw_second_moment(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum_sq / self.n as f64
        }
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Squared coefficient of variation `Var/Mean²`, or 0 for an empty or
    /// zero-mean accumulator. Values near 1 indicate exponential-like spread.
    pub fn cv2(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.variance() / (m * m)
        }
    }

    /// Merges another accumulator into this one (parallel-friendly).
    pub fn merge(&mut self, other: &Moments) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.mean = (n1 * self.mean + n2 * other.mean) / n;
        self.n += other.n;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Resets to the empty state.
    pub fn reset(&mut self) {
        *self = Moments::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_neutral() {
        let m = Moments::new();
        assert!(m.is_empty());
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.variance(), 0.0);
        assert_eq!(m.raw_second_moment(), 0.0);
        assert_eq!(m.min(), None);
        assert_eq!(m.max(), None);
    }

    #[test]
    fn single_sample() {
        let mut m = Moments::new();
        m.record(5.0);
        assert_eq!(m.mean(), 5.0);
        assert_eq!(m.variance(), 0.0);
        assert_eq!(m.min(), Some(5.0));
        assert_eq!(m.max(), Some(5.0));
        assert_eq!(m.sum(), 5.0);
    }

    #[test]
    fn matches_naive_computation() {
        let xs = [3.1, 0.4, 2.2, 9.8, 5.5, 1.0, 7.7];
        let mut m = Moments::new();
        for &x in &xs {
            m.record(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        let e2 = xs.iter().map(|x| x * x).sum::<f64>() / n;
        assert!((m.mean() - mean).abs() < 1e-12);
        assert!((m.variance() - var).abs() < 1e-12);
        assert!((m.raw_second_moment() - e2).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() + 2.0).collect();
        let mut whole = Moments::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = Moments::new();
        let mut b = Moments::new();
        for &x in &xs[..37] {
            a.record(x);
        }
        for &x in &xs[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() < 1e-12);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Moments::new();
        a.record(1.0);
        a.record(2.0);
        let before = a.clone();
        a.merge(&Moments::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());

        let mut empty = Moments::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 2);
        assert_eq!(empty.mean(), before.mean());
    }

    #[test]
    fn cv2_of_constant_is_zero() {
        let mut m = Moments::new();
        for _ in 0..10 {
            m.record(4.2);
        }
        assert!(m.cv2().abs() < 1e-24);
    }

    #[test]
    fn reset_clears() {
        let mut m = Moments::new();
        m.record(1.0);
        m.reset();
        assert!(m.is_empty());
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_nan() {
        Moments::new().record(f64::NAN);
    }
}
