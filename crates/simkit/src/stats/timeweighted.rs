//! Time-weighted averages of piecewise-constant signals.
//!
//! Queue depths, spindle speeds, and power draws are step functions of
//! simulated time: they hold a value until an event changes it. Their mean
//! over an interval is the integral divided by the elapsed time, which
//! [`TimeWeighted`] accumulates incrementally. Integrating the *power* signal
//! this way is exactly how the energy ledger computes joules.

use crate::time::{SimDuration, SimTime};

/// Integrates a piecewise-constant signal over simulated time.
///
/// # Examples
/// ```
/// use simkit::{TimeWeighted, SimTime};
///
/// // A queue that holds 2 jobs for 4s, then 6 jobs for 1s:
/// let mut q = TimeWeighted::new(SimTime::ZERO, 2.0);
/// q.set(SimTime::from_secs(4.0), 6.0);
/// assert_eq!(q.mean(SimTime::from_secs(5.0)), (2.0 * 4.0 + 6.0 * 1.0) / 5.0);
/// assert_eq!(q.integral(SimTime::from_secs(5.0)), 14.0);
/// ```
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    last_change: SimTime,
    current: f64,
    integral: f64,
    start: SimTime,
    min: f64,
    max: f64,
}

impl TimeWeighted {
    /// Starts the signal at `value` from time `start`.
    ///
    /// # Panics
    /// Panics if `value` is non-finite.
    pub fn new(start: SimTime, value: f64) -> Self {
        assert!(value.is_finite(), "TimeWeighted: non-finite initial value");
        TimeWeighted {
            last_change: start,
            current: value,
            integral: 0.0,
            start,
            min: value,
            max: value,
        }
    }

    /// The value the signal currently holds.
    pub fn current(&self) -> f64 {
        self.current
    }

    /// Changes the signal to `value` at time `now`.
    ///
    /// # Panics
    /// Panics if `value` is non-finite, or (debug builds) if `now` precedes
    /// the previous change.
    pub fn set(&mut self, now: SimTime, value: f64) {
        assert!(value.is_finite(), "TimeWeighted: non-finite value");
        self.advance(now);
        self.current = value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Adds `delta` to the current value at time `now` (for counters like
    /// queue depth).
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let v = self.current + delta;
        self.set(now, v);
    }

    fn advance(&mut self, now: SimTime) {
        debug_assert!(now >= self.last_change, "TimeWeighted: time reversed");
        let dt = now.saturating_since(self.last_change);
        self.integral += self.current * dt.as_secs();
        self.last_change = now;
    }

    /// The integral of the signal from `start` to `now`
    /// (value × seconds; joules when the signal is watts).
    pub fn integral(&self, now: SimTime) -> f64 {
        let dt = now.saturating_since(self.last_change);
        self.integral + self.current * dt.as_secs()
    }

    /// The time-weighted mean from `start` to `now`; equals the current
    /// value when no time has elapsed.
    pub fn mean(&self, now: SimTime) -> f64 {
        let elapsed = now.saturating_since(self.start);
        if elapsed.is_zero() {
            self.current
        } else {
            self.integral(now) / elapsed.as_secs()
        }
    }

    /// Smallest value the signal has held.
    pub fn min_seen(&self) -> f64 {
        self.min
    }

    /// Largest value the signal has held.
    pub fn max_seen(&self) -> f64 {
        self.max
    }

    /// Total time elapsed since the signal started, as of `now`.
    pub fn elapsed(&self, now: SimTime) -> SimDuration {
        now.saturating_since(self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn constant_signal() {
        let s = TimeWeighted::new(SimTime::ZERO, 3.0);
        assert_eq!(s.mean(t(10.0)), 3.0);
        assert_eq!(s.integral(t(10.0)), 30.0);
    }

    #[test]
    fn step_changes() {
        let mut s = TimeWeighted::new(SimTime::ZERO, 1.0);
        s.set(t(2.0), 5.0);
        s.set(t(4.0), 0.0);
        // 1*2 + 5*2 + 0*6 = 12 over 10s
        assert_eq!(s.integral(t(10.0)), 12.0);
        assert!((s.mean(t(10.0)) - 1.2).abs() < 1e-12);
    }

    #[test]
    fn mean_at_start_is_current() {
        let s = TimeWeighted::new(t(5.0), 7.0);
        assert_eq!(s.mean(t(5.0)), 7.0);
    }

    #[test]
    fn add_adjusts_counter() {
        let mut s = TimeWeighted::new(SimTime::ZERO, 0.0);
        s.add(t(1.0), 2.0); // depth 2 from t=1
        s.add(t(3.0), -1.0); // depth 1 from t=3
        assert_eq!(s.current(), 1.0);
        // 0*1 + 2*2 + 1*2 = 6 over 5s
        assert_eq!(s.integral(t(5.0)), 6.0);
    }

    #[test]
    fn extremes_tracked() {
        let mut s = TimeWeighted::new(SimTime::ZERO, 5.0);
        s.set(t(1.0), -2.0);
        s.set(t(2.0), 9.0);
        assert_eq!(s.min_seen(), -2.0);
        assert_eq!(s.max_seen(), 9.0);
    }

    #[test]
    fn non_zero_start() {
        let mut s = TimeWeighted::new(t(100.0), 2.0);
        s.set(t(110.0), 4.0);
        assert_eq!(s.integral(t(120.0)), 2.0 * 10.0 + 4.0 * 10.0);
        assert_eq!(s.mean(t(120.0)), 3.0);
        assert_eq!(s.elapsed(t(120.0)).as_secs(), 20.0);
    }

    #[test]
    fn repeated_set_same_time_keeps_last() {
        let mut s = TimeWeighted::new(SimTime::ZERO, 1.0);
        s.set(t(1.0), 2.0);
        s.set(t(1.0), 3.0);
        assert_eq!(s.current(), 3.0);
        assert_eq!(s.integral(t(2.0)), 1.0 + 3.0);
    }
}
