//! Log-scaled latency histogram with percentile queries.
//!
//! Response times in a disk simulation span five orders of magnitude
//! (sub-millisecond cache-adjacent transfers up to multi-second spin-up
//! stalls), so [`LatencyHistogram`] buckets samples geometrically: each
//! bucket's upper bound is `growth` times the previous one. This gives a
//! constant *relative* error bound on percentile queries (≤ `growth − 1`)
//! with a few hundred buckets.

/// A geometric-bucket histogram over positive values.
///
/// # Examples
/// ```
/// use simkit::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new_latency();
/// for i in 1..=1000 {
///     h.record(i as f64 / 1000.0); // 1ms .. 1s
/// }
/// let p50 = h.quantile(0.50).unwrap();
/// assert!((p50 - 0.5).abs() / 0.5 < 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    /// Lower bound of bucket 0; samples below it land in bucket 0.
    floor: f64,
    /// Geometric growth factor between bucket bounds (> 1).
    growth: f64,
    /// `ln(growth)` cached for bucket-index computation.
    ln_growth: f64,
    counts: Vec<u64>,
    total: u64,
    /// Count of samples at or below `floor` (kept inside bucket 0).
    underflow: u64,
    /// Exact running extremes, so `quantile(0.0)`/`quantile(1.0)` are tight.
    min: f64,
    max: f64,
}

impl LatencyHistogram {
    /// A histogram tuned for latencies: 10 µs floor, 2 % buckets, covering
    /// up to ~30 minutes.
    pub fn new_latency() -> Self {
        Self::new(1e-5, 1.02, 900)
    }

    /// Creates a histogram with `buckets` geometric buckets starting at
    /// `floor` and growing by `growth` per bucket.
    ///
    /// # Panics
    /// Panics if `floor <= 0`, `growth <= 1`, or `buckets == 0`.
    pub fn new(floor: f64, growth: f64, buckets: usize) -> Self {
        assert!(floor > 0.0, "floor must be positive");
        assert!(growth > 1.0, "growth must exceed 1");
        assert!(buckets > 0, "need at least one bucket");
        LatencyHistogram {
            floor,
            growth,
            ln_growth: growth.ln(),
            counts: vec![0; buckets],
            total: 0,
            underflow: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn bucket_index(&self, x: f64) -> usize {
        if x <= self.floor {
            return 0;
        }
        let idx = ((x / self.floor).ln() / self.ln_growth).floor() as usize;
        idx.min(self.counts.len() - 1)
    }

    /// Upper bound of bucket `i`.
    fn bucket_upper(&self, i: usize) -> f64 {
        self.floor * self.growth.powi(i as i32 + 1)
    }

    /// Adds one sample.
    ///
    /// # Panics
    /// Panics if `x` is negative or non-finite.
    pub fn record(&mut self, x: f64) {
        assert!(
            x.is_finite() && x >= 0.0,
            "LatencyHistogram::record: bad sample {x}"
        );
        if x <= self.floor {
            self.underflow += 1;
        }
        let i = self.bucket_index(x);
        self.counts[i] += 1;
        self.total += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The `q`-quantile (0 ≤ q ≤ 1), or `None` if empty.
    ///
    /// The answer is the upper bound of the bucket containing the q-th
    /// sample, clamped to the exact observed `[min, max]`; relative error is
    /// bounded by `growth − 1`.
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile: bad q {q}");
        if self.total == 0 {
            return None;
        }
        if q == 0.0 {
            return Some(self.min);
        }
        // Rank of the target sample (1-based), at least 1.
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(self.bucket_upper(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Exact observed maximum, or `None` if empty.
    pub fn observed_max(&self) -> Option<f64> {
        (self.total > 0).then_some(self.max)
    }

    /// Exact observed minimum, or `None` if empty.
    pub fn observed_min(&self) -> Option<f64> {
        (self.total > 0).then_some(self.min)
    }

    /// Fraction of samples that were at or below the bucket floor.
    pub fn underflow_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.underflow as f64 / self.total as f64
        }
    }

    /// Merges another histogram with identical bucket layout.
    ///
    /// # Panics
    /// Panics if the layouts differ.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        assert_eq!(self.floor, other.floor, "merge: floor mismatch");
        assert_eq!(self.growth, other.growth, "merge: growth mismatch");
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "merge: bucket-count mismatch"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.underflow += other.underflow;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Iterates `(bucket_upper_bound, count)` for non-empty buckets —
    /// the raw series behind a CDF plot.
    pub fn nonempty_buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (self.bucket_upper(i), c))
    }

    /// Emits the empirical CDF as `(value, cumulative_fraction)` points.
    pub fn cdf_points(&self) -> Vec<(f64, f64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (ub, c) in self.nonempty_buckets() {
            cum += c;
            out.push((ub.min(self.max), cum as f64 / self.total as f64));
        }
        out
    }

    /// Resets all counts.
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
        self.underflow = 0;
        self.min = f64::INFINITY;
        self.max = f64::NEG_INFINITY;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new_latency();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.observed_max(), None);
    }

    #[test]
    fn single_value_quantiles() {
        let mut h = LatencyHistogram::new_latency();
        h.record(0.010);
        for q in [0.0, 0.5, 0.99, 1.0] {
            let v = h.quantile(q).unwrap();
            assert!((v - 0.010).abs() <= 0.010 * 0.03, "q={q} v={v}");
        }
    }

    #[test]
    fn relative_error_bounded() {
        let mut h = LatencyHistogram::new_latency();
        let xs: Vec<f64> = (1..=10_000).map(|i| i as f64 * 1e-4).collect(); // 0.1ms..1s
        for &x in &xs {
            h.record(x);
        }
        for q in [0.01, 0.25, 0.5, 0.9, 0.99] {
            let exact = xs[((q * xs.len() as f64).ceil() as usize).max(1) - 1];
            let est = h.quantile(q).unwrap();
            assert!(
                (est - exact).abs() / exact < 0.05,
                "q={q} exact={exact} est={est}"
            );
        }
    }

    #[test]
    fn extremes_are_exact() {
        let mut h = LatencyHistogram::new_latency();
        h.record(0.0003);
        h.record(2.5);
        h.record(0.04);
        assert_eq!(h.quantile(0.0), Some(0.0003));
        assert_eq!(h.observed_min(), Some(0.0003));
        assert_eq!(h.observed_max(), Some(2.5));
        assert_eq!(h.quantile(1.0), Some(2.5));
    }

    #[test]
    fn underflow_counted() {
        let mut h = LatencyHistogram::new(1e-3, 1.1, 50);
        h.record(0.0);
        h.record(1e-4);
        h.record(0.5);
        assert!((h.underflow_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn overflow_clamps_to_last_bucket() {
        let mut h = LatencyHistogram::new(1e-3, 1.1, 10);
        h.record(1e9);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(1.0), Some(1e9)); // clamped to observed max
    }

    #[test]
    fn merge_matches_combined() {
        let mut a = LatencyHistogram::new_latency();
        let mut b = LatencyHistogram::new_latency();
        let mut whole = LatencyHistogram::new_latency();
        for i in 1..=1000 {
            let x = i as f64 * 1e-3;
            whole.record(x);
            if i % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        for q in [0.1, 0.5, 0.9] {
            assert_eq!(a.quantile(q), whole.quantile(q));
        }
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let mut h = LatencyHistogram::new_latency();
        for i in 1..=500 {
            h.record(i as f64 * 2e-3);
        }
        let cdf = h.cdf_points();
        assert!(!cdf.is_empty());
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reset_clears() {
        let mut h = LatencyHistogram::new_latency();
        h.record(0.1);
        h.reset();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "bad sample")]
    fn rejects_negative() {
        LatencyHistogram::new_latency().record(-1.0);
    }
}
