//! Exponentially weighted moving averages over irregular samples.
//!
//! Temperature tracking in Hibernator needs "recent access frequency with
//! old history forgotten". [`Ewma`] implements a continuous-time EWMA: the
//! weight of past information decays as `exp(-Δt / τ)` where `τ` is the
//! half-life-like time constant, so sampling intervals need not be uniform.
//! [`DecayingRate`] builds on it to estimate an *event rate* (events/sec)
//! from a stream of event timestamps.

use crate::time::{SimDuration, SimTime};

/// Continuous-time exponentially weighted moving average.
///
/// # Examples
/// ```
/// use simkit::{Ewma, SimDuration, SimTime};
///
/// let mut e = Ewma::new(SimDuration::from_secs(10.0));
/// e.observe(SimTime::from_secs(0.0), 100.0);
/// // After several time constants the value converges to new observations:
/// for i in 1..=20 {
///     e.observe(SimTime::from_secs(i as f64 * 10.0), 0.0);
/// }
/// assert!(e.value().unwrap() < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct Ewma {
    tau: SimDuration,
    value: Option<f64>,
    last: SimTime,
}

impl Ewma {
    /// Creates an EWMA with time constant `tau` (larger = slower to forget).
    ///
    /// # Panics
    /// Panics if `tau` is zero.
    pub fn new(tau: SimDuration) -> Self {
        assert!(!tau.is_zero(), "Ewma: tau must be positive");
        Ewma {
            tau,
            value: None,
            last: SimTime::ZERO,
        }
    }

    /// Blends in a new observation at time `now`.
    ///
    /// # Panics
    /// Panics if `x` is non-finite.
    pub fn observe(&mut self, now: SimTime, x: f64) {
        assert!(x.is_finite(), "Ewma: non-finite observation");
        match self.value {
            None => self.value = Some(x),
            Some(v) => {
                let dt = now.saturating_since(self.last);
                let alpha = 1.0 - (-(dt / self.tau)).exp();
                self.value = Some(v + alpha * (x - v));
            }
        }
        self.last = now;
    }

    /// The current smoothed value, or `None` before the first observation.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// The configured time constant.
    pub fn tau(&self) -> SimDuration {
        self.tau
    }
}

/// Exponentially decaying event-rate estimator.
///
/// Each call to [`DecayingRate::hit`] registers one event; [`DecayingRate::rate`]
/// returns an estimate of events/second in which an event's contribution
/// decays as `exp(-age / tau)`. The estimate is the decayed hit mass divided
/// by `tau` (the mean age of surviving mass), which converges to the true
/// rate for a Poisson stream.
///
/// # Examples
/// ```
/// use simkit::{DecayingRate, SimDuration, SimTime};
///
/// let mut r = DecayingRate::new(SimDuration::from_secs(100.0));
/// for i in 0..1000 {
///     r.hit(SimTime::from_secs(i as f64 * 0.5), 1.0); // 2 events/sec
/// }
/// let est = r.rate(SimTime::from_secs(500.0));
/// assert!((est - 2.0).abs() < 0.2, "estimate {est}");
/// ```
#[derive(Debug, Clone)]
pub struct DecayingRate {
    tau: SimDuration,
    mass: f64,
    last: SimTime,
}

impl DecayingRate {
    /// Creates a rate estimator with decay time constant `tau`.
    ///
    /// # Panics
    /// Panics if `tau` is zero.
    pub fn new(tau: SimDuration) -> Self {
        assert!(!tau.is_zero(), "DecayingRate: tau must be positive");
        DecayingRate {
            tau,
            mass: 0.0,
            last: SimTime::ZERO,
        }
    }

    fn decay_to(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last);
        if !dt.is_zero() {
            self.mass *= (-(dt / self.tau)).exp();
            self.last = now;
        } else if now > self.last {
            self.last = now;
        }
    }

    /// Registers `weight` events at time `now` (weight 1.0 = one event;
    /// weights let callers count bytes or sectors instead of requests).
    ///
    /// # Panics
    /// Panics if `weight` is negative or non-finite.
    pub fn hit(&mut self, now: SimTime, weight: f64) {
        assert!(
            weight.is_finite() && weight >= 0.0,
            "DecayingRate: bad weight {weight}"
        );
        self.decay_to(now);
        self.mass += weight;
        self.last = now;
    }

    /// The decayed event mass as of `now` (useful as a relative "temperature").
    pub fn mass(&mut self, now: SimTime) -> f64 {
        self.decay_to(now);
        self.mass
    }

    /// Estimated event rate (events/sec) as of `now`.
    pub fn rate(&mut self, now: SimTime) -> f64 {
        self.mass(now) / self.tau.as_secs()
    }

    /// Resets the estimator to empty.
    pub fn reset(&mut self) {
        self.mass = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn ewma_first_observation_taken_verbatim() {
        let mut e = Ewma::new(SimDuration::from_secs(5.0));
        assert_eq!(e.value(), None);
        e.observe(t(0.0), 42.0);
        assert_eq!(e.value(), Some(42.0));
    }

    #[test]
    fn ewma_converges_to_constant_input() {
        let mut e = Ewma::new(SimDuration::from_secs(1.0));
        e.observe(t(0.0), 0.0);
        for i in 1..=50 {
            e.observe(t(i as f64), 10.0);
        }
        assert!((e.value().unwrap() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn ewma_long_gap_forgets_history() {
        let mut e = Ewma::new(SimDuration::from_secs(1.0));
        e.observe(t(0.0), 100.0);
        e.observe(t(1000.0), 0.0); // gap of 1000 time constants
        assert!(e.value().unwrap().abs() < 1e-9);
    }

    #[test]
    fn ewma_zero_gap_keeps_old_value() {
        let mut e = Ewma::new(SimDuration::from_secs(1.0));
        e.observe(t(5.0), 10.0);
        e.observe(t(5.0), 0.0); // alpha = 0 at dt = 0
        assert_eq!(e.value(), Some(10.0));
    }

    #[test]
    fn rate_tracks_poisson_like_stream() {
        let mut r = DecayingRate::new(SimDuration::from_secs(50.0));
        for i in 0..5000 {
            r.hit(t(i as f64 * 0.1), 1.0); // 10 events/sec
        }
        let est = r.rate(t(500.0));
        assert!((est - 10.0).abs() < 1.0, "estimate {est}");
    }

    #[test]
    fn rate_decays_when_idle() {
        let mut r = DecayingRate::new(SimDuration::from_secs(10.0));
        for i in 0..100 {
            r.hit(t(i as f64), 1.0);
        }
        let busy = r.rate(t(100.0));
        let idle = r.rate(t(200.0)); // 10 time constants later
        assert!(idle < busy * 1e-3, "busy {busy} idle {idle}");
    }

    #[test]
    fn mass_accumulates_weights() {
        let mut r = DecayingRate::new(SimDuration::from_secs(1e9)); // negligible decay
        r.hit(t(0.0), 2.5);
        r.hit(t(1.0), 1.5);
        assert!((r.mass(t(1.0)) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn reset_clears_mass() {
        let mut r = DecayingRate::new(SimDuration::from_secs(10.0));
        r.hit(t(0.0), 5.0);
        r.reset();
        assert_eq!(r.mass(t(0.0)), 0.0);
    }
}
