//! Sliding time-window statistics.
//!
//! The Hibernator performance guard watches the *recent* mean response time:
//! "is the array meeting its goal right now?". [`SlidingWindow`] keeps the
//! samples from the trailing `width` of simulated time in a deque with a
//! running sum, so the windowed mean is O(1) amortised per operation.

use crate::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Samples within a trailing window of simulated time.
///
/// # Examples
/// ```
/// use simkit::{SlidingWindow, SimDuration, SimTime};
///
/// let mut w = SlidingWindow::new(SimDuration::from_secs(10.0));
/// w.record(SimTime::from_secs(1.0), 4.0);
/// w.record(SimTime::from_secs(2.0), 6.0);
/// assert_eq!(w.mean(SimTime::from_secs(2.0)), Some(5.0));
/// // At t=11.5 the first sample (t=1.0) has aged out of the 10s window:
/// assert_eq!(w.mean(SimTime::from_secs(11.5)), Some(6.0));
/// ```
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    width: SimDuration,
    samples: VecDeque<(SimTime, f64)>,
    sum: f64,
    /// Sums drift under float cancellation; rebuild after this many evictions.
    evictions_since_rebuild: u32,
}

const REBUILD_EVERY: u32 = 4096;

impl SlidingWindow {
    /// Creates a window covering the trailing `width` of simulated time.
    ///
    /// # Panics
    /// Panics if `width` is zero.
    pub fn new(width: SimDuration) -> Self {
        assert!(!width.is_zero(), "SlidingWindow: width must be positive");
        SlidingWindow {
            width,
            samples: VecDeque::new(),
            sum: 0.0,
            evictions_since_rebuild: 0,
        }
    }

    /// The configured window width.
    pub fn width(&self) -> SimDuration {
        self.width
    }

    /// Records a sample observed at `now`.
    ///
    /// # Panics
    /// Panics if `value` is non-finite, or (debug builds) if `now` precedes
    /// the latest recorded sample — samples must arrive in time order.
    pub fn record(&mut self, now: SimTime, value: f64) {
        assert!(value.is_finite(), "SlidingWindow: non-finite sample");
        if let Some(&(last, _)) = self.samples.back() {
            debug_assert!(now >= last, "SlidingWindow: out-of-order sample");
        }
        self.samples.push_back((now, value));
        self.sum += value;
        self.evict(now);
    }

    fn evict(&mut self, now: SimTime) {
        let cutoff = now.saturating_since(SimTime::ZERO);
        while let Some(&(t, v)) = self.samples.front() {
            if now.saturating_since(t) > self.width && cutoff > SimDuration::ZERO {
                self.samples.pop_front();
                self.sum -= v;
                self.evictions_since_rebuild += 1;
            } else {
                break;
            }
        }
        if self.evictions_since_rebuild >= REBUILD_EVERY {
            self.sum = self.samples.iter().map(|&(_, v)| v).sum();
            self.evictions_since_rebuild = 0;
        }
    }

    /// Mean of the samples still inside the window as of `now`, or `None`
    /// if the window is empty.
    pub fn mean(&mut self, now: SimTime) -> Option<f64> {
        self.evict(now);
        if self.samples.is_empty() {
            None
        } else {
            Some(self.sum / self.samples.len() as f64)
        }
    }

    /// Number of samples inside the window as of `now`.
    pub fn len(&mut self, now: SimTime) -> usize {
        self.evict(now);
        self.samples.len()
    }

    /// True if the window holds no samples as of `now`.
    pub fn is_empty(&mut self, now: SimTime) -> bool {
        self.len(now) == 0
    }

    /// Largest sample inside the window as of `now`.
    pub fn max(&mut self, now: SimTime) -> Option<f64> {
        self.evict(now);
        self.samples
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |acc, v| Some(acc.map_or(v, |m: f64| m.max(v))))
    }

    /// Drops all samples.
    pub fn clear(&mut self) {
        self.samples.clear();
        self.sum = 0.0;
        self.evictions_since_rebuild = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn empty_window() {
        let mut w = SlidingWindow::new(SimDuration::from_secs(5.0));
        assert_eq!(w.mean(t(0.0)), None);
        assert!(w.is_empty(t(0.0)));
        assert_eq!(w.max(t(0.0)), None);
    }

    #[test]
    fn mean_within_window() {
        let mut w = SlidingWindow::new(SimDuration::from_secs(10.0));
        w.record(t(0.0), 1.0);
        w.record(t(1.0), 2.0);
        w.record(t(2.0), 3.0);
        assert_eq!(w.mean(t(2.0)), Some(2.0));
        assert_eq!(w.len(t(2.0)), 3);
    }

    #[test]
    fn old_samples_age_out() {
        let mut w = SlidingWindow::new(SimDuration::from_secs(10.0));
        w.record(t(0.0), 100.0);
        w.record(t(20.0), 2.0);
        assert_eq!(w.mean(t(20.0)), Some(2.0));
        assert_eq!(w.len(t(20.0)), 1);
    }

    #[test]
    fn aging_without_new_samples() {
        let mut w = SlidingWindow::new(SimDuration::from_secs(5.0));
        w.record(t(0.0), 7.0);
        assert_eq!(w.mean(t(4.0)), Some(7.0));
        assert_eq!(w.mean(t(6.0)), None);
    }

    #[test]
    fn max_tracks_window() {
        let mut w = SlidingWindow::new(SimDuration::from_secs(5.0));
        w.record(t(0.0), 9.0);
        w.record(t(4.0), 1.0);
        assert_eq!(w.max(t(4.0)), Some(9.0));
        assert_eq!(w.max(t(7.0)), Some(1.0));
    }

    #[test]
    fn clear_empties() {
        let mut w = SlidingWindow::new(SimDuration::from_secs(5.0));
        w.record(t(0.0), 1.0);
        w.clear();
        assert!(w.is_empty(t(0.0)));
    }

    #[test]
    fn rebuild_keeps_sum_accurate() {
        let mut w = SlidingWindow::new(SimDuration::from_secs(1.0));
        // Force many evictions; the periodic rebuild must keep the mean sane.
        for i in 0..20_000 {
            w.record(t(i as f64 * 0.5), 0.1 + (i % 7) as f64);
        }
        let m = w.mean(t(10_000.0)).unwrap();
        // Window of 1s at 0.5s spacing holds the last ~3 samples.
        assert!(m > 0.0 && m < 7.2, "mean {m}");
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn rejects_zero_width() {
        let _ = SlidingWindow::new(SimDuration::ZERO);
    }
}
