//! Deterministic random-number streams.
//!
//! Every stochastic component of the simulator (arrival processes, popularity
//! samplers, placement shuffles, fault injectors) draws from its own
//! [`DetRng`] stream derived from a single experiment seed plus a component
//! label. Splitting by label means adding a new random consumer does not
//! perturb the draws seen by existing ones — a property that keeps A/B
//! experiment comparisons honest.
//!
//! The generator is a self-contained **xoshiro256++** (public-domain
//! algorithm by Blackman & Vigna), seeded via SplitMix64 mixing of
//! `(seed, label-hash)`. Implementing it inline keeps the workspace free of
//! external dependencies and guarantees the stream is bit-stable forever —
//! no upstream crate version can ever shift our experiment results.

/// SplitMix64 step: a small, well-tested mixer used for seed derivation.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a label, used so RNG streams are named rather than numbered.
fn fnv1a(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// A deterministic, labelled random stream.
///
/// Cloning snapshots the stream state: the clone and the original then
/// produce the *same* draws. That is deliberate — streaming generators use
/// a clone to replay a draw sequence they have already accounted for (see
/// `workload`'s two-pass trick) — but it means two clones must never both
/// feed "independent" consumers; derive a labelled child with
/// [`DetRng::split`] for that.
///
/// # Examples
/// ```
/// use simkit::DetRng;
///
/// let mut a = DetRng::new(42, "arrivals");
/// let mut b = DetRng::new(42, "arrivals");
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed+label => same stream
///
/// let mut c = DetRng::new(42, "popularity");
/// assert_ne!(DetRng::new(42, "arrivals").next_u64(), c.next_u64());
/// ```
#[derive(Clone)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Creates the stream for `(seed, label)`.
    pub fn new(seed: u64, label: &str) -> Self {
        let mut state = seed ^ fnv1a(label);
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut state);
        }
        // All-zero state is the one degenerate case; SplitMix64 cannot
        // produce four consecutive zeros, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        DetRng { s }
    }

    /// The next 64 random bits (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next 32 random bits (upper half of a 64-bit step).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// Derives a child stream; children with distinct labels are independent.
    pub fn split(&mut self, label: &str) -> DetRng {
        let seed = self.next_u64();
        DetRng::new(seed, label)
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform01(&mut self) -> f64 {
        // 53 random mantissa bits — the standard (u >> 11) * 2^-53 recipe.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "uniform: empty range [{lo}, {hi})");
        lo + (hi - lo) * self.uniform01()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below: n must be positive");
        // Lemire-style rejection sampling: unbiased for every n.
        let zone = u64::MAX - u64::MAX % n;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// An exponentially distributed sample with the given `rate` (events/sec).
    ///
    /// # Panics
    /// Panics if `rate` is not strictly positive and finite.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(
            rate.is_finite() && rate > 0.0,
            "exponential: bad rate {rate}"
        );
        // Inverse CDF; 1 - u in (0, 1] avoids ln(0).
        -(1.0 - self.uniform01()).ln() / rate
    }

    /// Bernoulli trial with probability `p` of `true`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "chance: bad probability {p}");
        self.uniform01() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_label_reproduces() {
        let mut a = DetRng::new(7, "x");
        let mut b = DetRng::new(7, "x");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_labels_diverge() {
        let mut a = DetRng::new(7, "x");
        let mut b = DetRng::new(7, "y");
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same <= 1, "streams should be effectively independent");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(7, "x");
        let mut b = DetRng::new(8, "x");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn split_streams_are_deterministic() {
        let mut p1 = DetRng::new(1, "parent");
        let mut p2 = DetRng::new(1, "parent");
        let mut c1 = p1.split("child");
        let mut c2 = p2.split("child");
        assert_eq!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn exponential_mean_close_to_inverse_rate() {
        let mut rng = DetRng::new(3, "exp");
        let rate = 4.0;
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(rate)).sum::<f64>() / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn uniform_bounds_respected() {
        let mut rng = DetRng::new(5, "u");
        for _ in 0..10_000 {
            let x = rng.uniform(2.0, 3.0);
            assert!((2.0..3.0).contains(&x));
            let k = rng.below(10);
            assert!(k < 10);
        }
    }

    #[test]
    fn uniform01_in_unit_interval_and_well_spread() {
        let mut rng = DetRng::new(11, "u01");
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.uniform01();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut rng = DetRng::new(13, "below");
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            counts[rng.below(7) as usize] += 1;
        }
        for &c in &counts {
            assert!((8500..11500).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut a = DetRng::new(21, "fb");
        let mut b = DetRng::new(21, "fb");
        let mut x = [0u8; 13];
        let mut y = [0u8; 13];
        a.fill_bytes(&mut x);
        b.fill_bytes(&mut y);
        assert_eq!(x, y);
        assert!(x.iter().any(|&v| v != 0));
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DetRng::new(5, "c");
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = DetRng::new(9, "s");
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle should move items");
    }

    #[test]
    #[should_panic(expected = "bad rate")]
    fn exponential_rejects_zero_rate() {
        DetRng::new(1, "e").exponential(0.0);
    }

    #[test]
    fn clone_snapshots_the_stream() {
        let mut a = DetRng::new(17, "snap");
        let _ = a.next_u64(); // advance off the seed state
        let mut b = a.clone();
        let ahead: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let replay: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(ahead, replay, "a clone must replay the same draws");
    }
}
