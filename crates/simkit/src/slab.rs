//! A free-list slab: dense, reusing storage for short-lived records keyed
//! by small integers.
//!
//! The simulator's in-flight request state (gather counters, pending
//! parent volumes) is born and dies millions of times per run. A hash- or
//! probe-based map pays a key hash plus probe chain on every touch and
//! grows without bound as ids march upward; the slab instead hands out
//! *slot indices* as the ids themselves, so every access is one bounds
//! check and an array index, and a slot freed by a completed request is
//! immediately reused by the next arrival — the backing `Vec` stays as
//! small as the peak concurrency, not the run length.
//!
//! Keys are `u32` slot indices. `insert` returns the key; the caller
//! threads it through whatever queues reference the record and hands it
//! back to `remove` exactly once. Accessing a freed slot is a logic error
//! and panics (in debug via the occupancy check; `get`/`get_mut` return
//! `None`), never yields stale data typed as live.

/// A slot: either a live value or a link in the free list.
enum Slot<T> {
    /// Occupied by a live record.
    Full(T),
    /// Vacant; holds the index of the next free slot (`u32::MAX` = none).
    Free(u32),
}

/// A free-list slab allocator with `u32` keys. See the module docs.
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    /// Head of the free list (`u32::MAX` when empty).
    free_head: u32,
    len: usize,
}

const NIL: u32 = u32::MAX;

impl<T> Slab<T> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty slab with room for `cap` records before growing.
    pub fn with_capacity(cap: usize) -> Self {
        Slab {
            slots: Vec::with_capacity(cap),
            free_head: NIL,
            len: 0,
        }
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no records are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Stores `value`, returning its slot key. Reuses the most recently
    /// freed slot when one exists (LIFO keeps the hot slots cache-warm).
    #[inline]
    pub fn insert(&mut self, value: T) -> u32 {
        self.len += 1;
        if self.free_head != NIL {
            let key = self.free_head;
            match std::mem::replace(&mut self.slots[key as usize], Slot::Full(value)) {
                Slot::Free(next) => self.free_head = next,
                Slot::Full(_) => unreachable!("free list pointed at a full slot"),
            }
            key
        } else {
            let key = self.slots.len() as u32;
            assert!(key != NIL, "slab exhausted u32 key space");
            self.slots.push(Slot::Full(value));
            key
        }
    }

    /// Removes and returns the record at `key`, or `None` if the slot is
    /// vacant or out of range.
    #[inline]
    pub fn remove(&mut self, key: u32) -> Option<T> {
        let slot = self.slots.get_mut(key as usize)?;
        if matches!(slot, Slot::Free(_)) {
            return None;
        }
        match std::mem::replace(slot, Slot::Free(self.free_head)) {
            Slot::Full(v) => {
                self.free_head = key;
                self.len -= 1;
                Some(v)
            }
            Slot::Free(_) => unreachable!("checked occupied above"),
        }
    }

    /// A shared reference to the record at `key`, if live.
    #[inline]
    pub fn get(&self, key: u32) -> Option<&T> {
        match self.slots.get(key as usize) {
            Some(Slot::Full(v)) => Some(v),
            _ => None,
        }
    }

    /// A mutable reference to the record at `key`, if live.
    #[inline]
    pub fn get_mut(&mut self, key: u32) -> Option<&mut T> {
        match self.slots.get_mut(key as usize) {
            Some(Slot::Full(v)) => Some(v),
            _ => None,
        }
    }

    /// True when `key` addresses a live record.
    #[inline]
    pub fn contains_key(&self, key: u32) -> bool {
        matches!(self.slots.get(key as usize), Some(Slot::Full(_)))
    }

    /// Drops every record and resets the free list. Allocated capacity is
    /// retained.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free_head = NIL;
        self.len = 0;
    }
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s = Slab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        assert_ne!(a, b);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(a), Some(&"a"));
        assert_eq!(s.get(b), Some(&"b"));
        assert_eq!(s.remove(a), Some("a"));
        assert_eq!(s.remove(a), None, "double remove is None, not stale data");
        assert!(!s.contains_key(a));
        assert!(s.contains_key(b));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn freed_slots_are_reused_lifo() {
        let mut s = Slab::new();
        let keys: Vec<u32> = (0..4).map(|i| s.insert(i)).collect();
        s.remove(keys[1]);
        s.remove(keys[3]);
        // LIFO: the most recently freed slot comes back first.
        assert_eq!(s.insert(10), keys[3]);
        assert_eq!(s.insert(11), keys[1]);
        // Free list exhausted: next insert grows the vec.
        assert_eq!(s.insert(12), 4);
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut s = Slab::new();
        let k = s.insert(1u64);
        *s.get_mut(k).unwrap() += 41;
        assert_eq!(s.get(k), Some(&42));
    }

    #[test]
    fn clear_resets_keys() {
        let mut s = Slab::new();
        let k = s.insert('x');
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.get(k), None);
        assert_eq!(s.insert('y'), 0, "keys restart after clear");
    }

    #[test]
    fn out_of_range_keys_are_vacant() {
        let mut s = Slab::<u8>::new();
        assert_eq!(s.get(7), None);
        assert_eq!(s.remove(7), None);
        assert!(!s.contains_key(7));
    }

    /// Oracle check against a HashMap through a deterministic churn of
    /// inserts and removes — same live set, same values, at every step.
    #[test]
    fn churn_matches_hashmap_oracle() {
        use std::collections::HashMap;
        let mut s = Slab::new();
        let mut oracle: HashMap<u32, u64> = HashMap::new();
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut live: Vec<u32> = Vec::new();
        for i in 0..10_000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            if live.is_empty() || !state.is_multiple_of(3) {
                let k = s.insert(i);
                assert!(oracle.insert(k, i).is_none(), "key {k} reused while live");
                live.push(k);
            } else {
                let ix = (state as usize / 3) % live.len();
                let k = live.swap_remove(ix);
                assert_eq!(s.remove(k), oracle.remove(&k));
            }
            assert_eq!(s.len(), oracle.len());
        }
        for (&k, v) in &oracle {
            assert_eq!(s.get(k), Some(v));
        }
    }
}
