//! A deterministic discrete-event queue.
//!
//! [`EventQueue`] is a priority queue of `(SimTime, payload)` pairs ordered by
//! time, with FIFO tie-breaking: two events scheduled for the same instant
//! pop in the order they were pushed. This determinism matters — simulation
//! results must be bit-identical across runs for a given seed, and
//! `BinaryHeap` alone does not guarantee a stable order among equal keys.
//!
//! The queue owns its payloads and makes no assumptions about them; the
//! simulation driver (in the `array` crate) defines the event enum.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry in the queue: ordered by `(time, seq)` ascending.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest (time, seq) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue with FIFO tie-breaking.
///
/// # Examples
/// ```
/// use simkit::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2.0), "late");
/// q.push(SimTime::from_secs(1.0), "early");
/// q.push(SimTime::from_secs(1.0), "early-second");
///
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1.0), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1.0), "early-second")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2.0), "late")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with room for `cap` events before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at `time`.
    pub fn push(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// The firing time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[5.0, 1.0, 3.0, 2.0, 4.0] {
            q.push(SimTime::from_secs(t), t as u32);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1.0);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1.0), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1.0)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert_eq!(q.peek_time(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::with_capacity(8);
        q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO, 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10.0), "c");
        q.push(SimTime::from_secs(1.0), "a");
        assert_eq!(q.pop().unwrap().1, "a");
        q.push(SimTime::from_secs(5.0), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }
}
