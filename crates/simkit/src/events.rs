//! A deterministic discrete-event queue.
//!
//! [`EventQueue`] is a priority queue of `(SimTime, payload)` pairs ordered by
//! time, with FIFO tie-breaking: two events scheduled for the same instant
//! pop in the order they were pushed. This determinism matters — simulation
//! results must be bit-identical across runs for a given seed, and
//! `BinaryHeap` alone does not guarantee a stable order among equal keys.
//!
//! Internally each entry carries a single `u128` comparison key:
//! `(time.ordered_bits() << 64) | seq`. For the non-negative finite times
//! `SimTime` admits, IEEE-754 bit patterns order exactly like the values, so
//! one integer comparison replaces the float-compare + tie-break pair on
//! every operation. The time is recovered losslessly from the high 64 bits
//! on `pop`.
//!
//! Two backends implement the same ordering contract over those keys:
//!
//! * [`QueueBackend::Ladder`] (the default) — the radix-rung structure in
//!   [`crate::ladder`], near-O(1) per operation for the monotone push
//!   pattern of a forward-running simulation.
//! * [`QueueBackend::ReferenceHeap`] — the original `BinaryHeap`, kept
//!   runnable so differential tests can pin the ladder to it bit-for-bit
//!   (the `reference_full_resync` idiom).
//!
//! Keys are totally ordered (the sequence number makes them unique), so the
//! two backends pop identical streams for identical push sequences — the
//! backend choice can never change simulation output, only its speed.
//!
//! The queue owns its payloads and makes no assumptions about them; the
//! simulation driver (in the `array` crate) defines the event enum.

use crate::ladder::Ladder;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Which structure backs an [`EventQueue`]. Both honor the same ordering
/// contract; `ReferenceHeap` exists for differential testing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueBackend {
    /// Radix-rung ladder queue: near-O(1) for monotone simulation pushes.
    #[default]
    Ladder,
    /// The original `BinaryHeap`: O(log n) sifts, kept as the reference.
    ReferenceHeap,
}

/// An entry in the heap backend, ordered by the packed `(time, seq)` key
/// ascending.
struct Entry<E> {
    /// `(time.ordered_bits() << 64) | seq` — a single integer comparison
    /// gives time order with FIFO tie-breaking.
    key: u128,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the smallest key pops first.
        other.key.cmp(&self.key)
    }
}

enum Inner<E> {
    Ladder(Ladder<E>),
    Heap(BinaryHeap<Entry<E>>),
}

/// A time-ordered event queue with FIFO tie-breaking.
///
/// # Examples
/// ```
/// use simkit::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2.0), "late");
/// q.push(SimTime::from_secs(1.0), "early");
/// q.push(SimTime::from_secs(1.0), "early-second");
///
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1.0), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1.0), "early-second")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2.0), "late")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    inner: Inner<E>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue on the default (ladder) backend.
    pub fn new() -> Self {
        Self::with_backend(QueueBackend::Ladder, 0)
    }

    /// Creates an empty queue with room for `cap` events before
    /// reallocating. (The ladder backend sizes its rungs on demand, so
    /// `cap` only pre-sizes the reference heap.)
    pub fn with_capacity(cap: usize) -> Self {
        Self::with_backend(QueueBackend::Ladder, cap)
    }

    /// Creates an empty queue on an explicit backend.
    pub fn with_backend(backend: QueueBackend, cap: usize) -> Self {
        let inner = match backend {
            QueueBackend::Ladder => Inner::Ladder(Ladder::new()),
            QueueBackend::ReferenceHeap => Inner::Heap(BinaryHeap::with_capacity(cap)),
        };
        EventQueue { inner, next_seq: 0 }
    }

    /// The backend this queue runs on.
    pub fn backend(&self) -> QueueBackend {
        match self.inner {
            Inner::Ladder(_) => QueueBackend::Ladder,
            Inner::Heap(_) => QueueBackend::ReferenceHeap,
        }
    }

    /// Schedules `payload` to fire at `time`.
    #[inline]
    pub fn push(&mut self, time: SimTime, payload: E) {
        let key = self.reserve_key(time);
        self.push_reserved(key, payload);
    }

    /// Allocates the queue position — packed `(time, seq)` key — that the
    /// next [`push`](Self::push) at `time` would occupy, without storing
    /// anything. Feed it to [`push_reserved`](Self::push_reserved) later,
    /// or drop it to consume the slot.
    ///
    /// This lets a driver decide to handle an event inline (skipping the
    /// queue round-trip) while keeping the sequence numbering — and with
    /// it FIFO tie-breaking — bit-identical to the push-then-pop path.
    #[inline]
    pub fn reserve_key(&mut self, time: SimTime) -> u128 {
        let seq = self.next_seq;
        self.next_seq += 1;
        ((time.ordered_bits() as u128) << 64) | seq as u128
    }

    /// Schedules `payload` under a key from
    /// [`reserve_key`](Self::reserve_key).
    #[inline]
    pub fn push_reserved(&mut self, key: u128, payload: E) {
        match &mut self.inner {
            Inner::Ladder(l) => l.push(key, payload),
            Inner::Heap(h) => h.push(Entry { key, payload }),
        }
    }

    /// Removes and returns the earliest event, or `None` if empty.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        match &mut self.inner {
            Inner::Ladder(l) => l.pop().map(|(k, p)| (time_of(k), p)),
            Inner::Heap(h) => h.pop().map(|e| (time_of(e.key), e.payload)),
        }
    }

    /// The firing time of the earliest pending event, if any.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.peek_key().map(time_of)
    }

    /// The packed `(time, seq)` key of the earliest pending event, if any.
    /// Comparable against [`reserve_key`](Self::reserve_key) results to
    /// ask "would a push at time t pop before everything queued?".
    #[inline]
    pub fn peek_key(&self) -> Option<u128> {
        match &self.inner {
            Inner::Ladder(l) => l.peek_key(),
            Inner::Heap(h) => h.peek().map(|e| e.key),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.inner {
            Inner::Ladder(l) => l.len(),
            Inner::Heap(h) => h.len(),
        }
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all pending events. The sequence counter keeps counting, so
    /// FIFO order is preserved across a clear.
    pub fn clear(&mut self) {
        match &mut self.inner {
            Inner::Ladder(l) => l.clear(),
            Inner::Heap(h) => h.clear(),
        }
    }
}

/// Recovers the firing time from a packed key's high 64 bits.
#[inline]
fn time_of(key: u128) -> SimTime {
    SimTime::from_ordered_bits((key >> 64) as u64)
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every behavioral test runs against both backends: the contract is
    /// one and the same.
    fn each_backend(f: impl Fn(EventQueue<u32>)) {
        f(EventQueue::with_backend(QueueBackend::Ladder, 0));
        f(EventQueue::with_backend(QueueBackend::ReferenceHeap, 8));
    }

    #[test]
    fn default_backend_is_the_ladder() {
        assert_eq!(EventQueue::<()>::new().backend(), QueueBackend::Ladder);
        assert_eq!(
            EventQueue::<()>::with_capacity(64).backend(),
            QueueBackend::Ladder
        );
    }

    #[test]
    fn pops_in_time_order() {
        each_backend(|mut q| {
            for &t in &[5.0, 1.0, 3.0, 2.0, 4.0] {
                q.push(SimTime::from_secs(t), t as u32);
            }
            let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
            assert_eq!(order, vec![1, 2, 3, 4, 5]);
        });
    }

    #[test]
    fn fifo_among_equal_times() {
        each_backend(|mut q| {
            let t = SimTime::from_secs(1.0);
            for i in 0..100 {
                q.push(t, i);
            }
            let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>());
        });
    }

    #[test]
    fn peek_does_not_remove() {
        each_backend(|mut q| {
            q.push(SimTime::from_secs(1.0), 0);
            assert_eq!(q.peek_time(), Some(SimTime::from_secs(1.0)));
            assert_eq!(q.len(), 1);
            assert!(!q.is_empty());
            q.pop();
            assert_eq!(q.peek_time(), None);
            assert!(q.is_empty());
        });
    }

    #[test]
    fn clear_empties_queue() {
        each_backend(|mut q| {
            q.push(SimTime::ZERO, 1);
            q.push(SimTime::ZERO, 2);
            q.clear();
            assert!(q.is_empty());
            assert_eq!(q.pop(), None);
        });
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        each_backend(|mut q| {
            q.push(SimTime::from_secs(10.0), 3);
            q.push(SimTime::from_secs(1.0), 1);
            assert_eq!(q.pop().unwrap().1, 1);
            q.push(SimTime::from_secs(5.0), 2);
            assert_eq!(q.pop().unwrap().1, 2);
            assert_eq!(q.pop().unwrap().1, 3);
        });
    }

    #[test]
    fn zero_time_events_stay_fifo() {
        // SimTime::ZERO packs to key high bits = 0; seq alone must order.
        each_backend(|mut q| {
            for i in 0..10 {
                q.push(SimTime::ZERO, i);
            }
            let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
            assert_eq!(order, (0..10).collect::<Vec<_>>());
        });
    }

    #[test]
    fn pop_recovers_exact_times() {
        each_backend(|mut q| {
            let times = [0.0, 1.5e-7, 0.1, 1.0 / 3.0, 7200.0];
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_secs(t), i as u32);
            }
            for &t in &times {
                let (popped, _) = q.pop().unwrap();
                assert_eq!(
                    popped,
                    SimTime::from_secs(t),
                    "times must roundtrip exactly"
                );
            }
        });
    }

    /// Regression test: growing past the initial `with_capacity` while
    /// interleaving pushes and pops must preserve FIFO tie-breaking. The
    /// sequence counter lives outside the backend storage, so internal
    /// reallocation must not disturb the order among equal times.
    #[test]
    fn with_capacity_realloc_preserves_fifo_ties() {
        for backend in [QueueBackend::Ladder, QueueBackend::ReferenceHeap] {
            let mut q = EventQueue::with_backend(backend, 4);
            let early = SimTime::from_secs(1.0);
            let tied = SimTime::from_secs(2.0);

            // Seed below capacity, pop one, then push far past the initial
            // capacity so the backing buffer reallocates mid-stream.
            q.push(early, 1000);
            q.push(tied, 0);
            q.push(tied, 1);
            assert_eq!(q.pop(), Some((early, 1000)));
            for i in 2..64 {
                q.push(tied, i);
            }
            assert!(q.len() > 4, "test must exceed the initial capacity");

            let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
            assert_eq!(
                order,
                (0..64).collect::<Vec<_>>(),
                "FIFO tie-breaking must survive reallocation ({backend:?})"
            );
        }
    }

    /// Oracle check: random interleaved pushes and pops, with heavy time
    /// ties and times earlier than already-popped events (forcing the
    /// ladder's late-push fallback), must match the reference heap pop
    /// for pop. Deterministic LCG, no external RNG.
    #[test]
    fn randomized_churn_matches_heap_oracle() {
        let mut ladder = EventQueue::with_backend(QueueBackend::Ladder, 0);
        let mut heap = EventQueue::with_backend(QueueBackend::ReferenceHeap, 0);
        let mut state = 0x243f6a8885a308d3u64;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut payload = 0u32;
        for _ in 0..50_000 {
            if rng() % 4 != 0 {
                // Coarse 1/8-second grid over ~2 minutes: plenty of exact
                // ties and plenty of backwards jumps relative to pops.
                let t = SimTime::from_secs((rng() % 1000) as f64 * 0.125);
                ladder.push(t, payload);
                heap.push(t, payload);
                payload += 1;
            } else {
                assert_eq!(ladder.pop(), heap.pop());
            }
            assert_eq!(ladder.len(), heap.len());
            assert_eq!(ladder.peek_time(), heap.peek_time());
        }
        loop {
            let (a, b) = (ladder.pop(), heap.pop());
            assert_eq!(a, b, "drain order diverged");
            if a.is_none() {
                break;
            }
        }
    }

    /// Oracle check for the simulator's actual pattern: drain while
    /// inserting, every push at or after the last popped time (monotone),
    /// so the ladder's rung-relabel path does all the work.
    #[test]
    fn drain_while_inserting_matches_heap_oracle() {
        let mut ladder = EventQueue::with_backend(QueueBackend::Ladder, 0);
        let mut heap = EventQueue::with_backend(QueueBackend::ReferenceHeap, 0);
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut rng = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        let mut payload = 0u32;
        for i in 0..64 {
            let t = SimTime::from_secs(i as f64 * 0.01);
            ladder.push(t, payload);
            heap.push(t, payload);
            payload += 1;
        }
        for _ in 0..20_000 {
            let (a, b) = (ladder.pop(), heap.pop());
            assert_eq!(a, b);
            let Some((now, _)) = a else { break };
            // Schedule 0–2 follow-ups at now + jittered delay (delay 0
            // keeps same-instant FIFO bursts in play).
            for _ in 0..rng() % 3 {
                let t = now + crate::SimDuration::from_secs((rng() % 8) as f64 * 0.05);
                ladder.push(t, payload);
                heap.push(t, payload);
                payload += 1;
            }
        }
        loop {
            let (a, b) = (ladder.pop(), heap.pop());
            assert_eq!(a, b, "drain order diverged");
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn reserved_keys_interleave_with_pushes() {
        each_backend(|mut q| {
            let t = SimTime::from_secs(1.0);
            q.push(t, 0);
            // Reserve, push another at the same time, then file the
            // reserved key: pop order must follow reservation order.
            let k = q.reserve_key(t);
            q.push(t, 2);
            q.push_reserved(k, 1);
            let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
            assert_eq!(order, vec![0, 1, 2]);
        });
    }

    #[test]
    fn peek_key_matches_pop_order() {
        each_backend(|mut q| {
            q.push(SimTime::from_secs(2.0), 2);
            q.push(SimTime::from_secs(1.0), 1);
            let k = q.peek_key().unwrap();
            let probe = q.reserve_key(SimTime::from_secs(0.5));
            assert!(probe < k, "an earlier time must reserve a smaller key");
            q.push_reserved(probe, 0);
            assert_eq!(q.peek_key(), Some(probe));
            let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
            assert_eq!(order, vec![0, 1, 2]);
        });
    }
}
