//! A deterministic discrete-event queue.
//!
//! [`EventQueue`] is a priority queue of `(SimTime, payload)` pairs ordered by
//! time, with FIFO tie-breaking: two events scheduled for the same instant
//! pop in the order they were pushed. This determinism matters — simulation
//! results must be bit-identical across runs for a given seed, and
//! `BinaryHeap` alone does not guarantee a stable order among equal keys.
//!
//! Internally each entry carries a single `u128` comparison key:
//! `(time.ordered_bits() << 64) | seq`. For the non-negative finite times
//! `SimTime` admits, IEEE-754 bit patterns order exactly like the values, so
//! one integer comparison replaces the float-compare + tie-break pair on
//! every sift during push/pop. The time is recovered losslessly from the
//! high 64 bits on `pop`.
//!
//! The queue owns its payloads and makes no assumptions about them; the
//! simulation driver (in the `array` crate) defines the event enum.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry in the queue, ordered by the packed `(time, seq)` key ascending.
struct Entry<E> {
    /// `(time.ordered_bits() << 64) | seq` — a single integer comparison
    /// gives time order with FIFO tie-breaking.
    key: u128,
    payload: E,
}

impl<E> Entry<E> {
    #[inline]
    fn time(&self) -> SimTime {
        SimTime::from_ordered_bits((self.key >> 64) as u64)
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the smallest key pops first.
        other.key.cmp(&self.key)
    }
}

/// A time-ordered event queue with FIFO tie-breaking.
///
/// # Examples
/// ```
/// use simkit::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2.0), "late");
/// q.push(SimTime::from_secs(1.0), "early");
/// q.push(SimTime::from_secs(1.0), "early-second");
///
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1.0), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1.0), "early-second")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2.0), "late")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with room for `cap` events before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at `time`.
    pub fn push(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let key = ((time.ordered_bits() as u128) << 64) | seq as u128;
        self.heap.push(Entry { key, payload });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time(), e.payload))
    }

    /// The firing time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time())
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[5.0, 1.0, 3.0, 2.0, 4.0] {
            q.push(SimTime::from_secs(t), t as u32);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1.0);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1.0), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1.0)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert_eq!(q.peek_time(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::with_capacity(8);
        q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO, 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10.0), "c");
        q.push(SimTime::from_secs(1.0), "a");
        assert_eq!(q.pop().unwrap().1, "a");
        q.push(SimTime::from_secs(5.0), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }

    #[test]
    fn zero_time_events_stay_fifo() {
        // SimTime::ZERO packs to key high bits = 0; seq alone must order.
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(SimTime::ZERO, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn pop_recovers_exact_times() {
        let times = [0.0, 1.5e-7, 0.1, 1.0 / 3.0, 7200.0];
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_secs(t), i);
        }
        for &t in &times {
            let (popped, _) = q.pop().unwrap();
            assert_eq!(
                popped,
                SimTime::from_secs(t),
                "times must roundtrip exactly"
            );
        }
    }

    /// Regression test: growing past the initial `with_capacity` while
    /// interleaving pushes and pops must preserve FIFO tie-breaking. The
    /// sequence counter lives outside the heap storage, so internal
    /// reallocation must not disturb the order among equal times.
    #[test]
    fn with_capacity_realloc_preserves_fifo_ties() {
        let mut q = EventQueue::with_capacity(4);
        let early = SimTime::from_secs(1.0);
        let tied = SimTime::from_secs(2.0);

        // Seed below capacity, pop one, then push far past the initial
        // capacity so the backing buffer reallocates mid-stream.
        q.push(early, 1000);
        q.push(tied, 0);
        q.push(tied, 1);
        assert_eq!(q.pop(), Some((early, 1000)));
        for i in 2..64 {
            q.push(tied, i);
        }
        assert!(q.len() > 4, "test must exceed the initial capacity");

        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(
            order,
            (0..64).collect::<Vec<_>>(),
            "FIFO tie-breaking must survive reallocation"
        );
    }
}
