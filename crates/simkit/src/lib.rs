//! # simkit — discrete-event simulation substrate
//!
//! The foundation layer of the Hibernator reproduction. Every other crate in
//! the workspace builds on these primitives:
//!
//! * **Time** — [`SimTime`] / [`SimDuration`], a NaN-free, totally ordered
//!   simulated timeline in seconds.
//! * **Events** — [`EventQueue`], a deterministic priority queue with FIFO
//!   tie-breaking so simulations replay bit-identically.
//! * **Id maps** — [`IdMap`], a one-multiply open-addressed map for the
//!   sequential ids the simulator assigns on its hot path.
//! * **Slabs** — [`Slab`], a free-list arena whose slot indices double as
//!   the ids of in-flight records, killing per-request allocation.
//! * **Randomness** — [`DetRng`], labelled deterministic random streams
//!   derived from one experiment seed.
//! * **Statistics** — [`Moments`], [`LatencyHistogram`], [`FixedHistogram`],
//!   [`SlidingWindow`], [`TimeWeighted`], [`Ewma`], [`DecayingRate`],
//!   [`TimeSeries`].
//! * **Energy** — [`EnergyLedger`] with per-[`EnergyComponent`] attribution.
//!
//! Nothing in this crate knows about disks or power policies; it is a
//! general-purpose toolkit kept small enough to verify exhaustively.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod energy;
mod events;
mod idmap;
mod ladder;
mod rng;
mod series;
mod slab;
mod stats;
mod time;

pub use energy::{EnergyComponent, EnergyLedger};
pub use events::{EventQueue, QueueBackend};
pub use idmap::IdMap;
pub use rng::DetRng;
pub use series::{SeriesBucket, TimeSeries};
pub use slab::Slab;
pub use stats::{
    DecayingRate, Ewma, FixedHistogram, LatencyHistogram, Moments, SlidingWindow, TimeWeighted,
};
pub use time::{SimDuration, SimTime};
