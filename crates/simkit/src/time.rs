//! Simulated time.
//!
//! All simulation components share a single notion of time: seconds since the
//! start of the simulation, carried as an `f64` inside [`SimTime`]. A newtype
//! is used (rather than a bare `f64`) so that times, durations, and other
//! floating-point quantities (energies, rates) cannot be mixed up silently.
//!
//! `SimTime` is a point on the timeline; [`SimDuration`] is a distance between
//! two points. The usual arithmetic is provided:
//!
//! * `SimTime + SimDuration -> SimTime`
//! * `SimTime - SimTime -> SimDuration`
//! * `SimDuration` supports `+`, `-`, and scaling by `f64`.
//!
//! Both types are totally ordered via [`SimTime::cmp`]-style semantics
//! implemented over the underlying `f64`; constructors reject NaN so total
//! ordering is sound in practice (`partial_cmp().unwrap()` cannot panic for
//! values produced through the public API).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, in seconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimTime(f64);

/// A span of simulated time, in seconds. May not be negative or NaN.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimDuration(f64);

impl SimTime {
    /// The origin of the simulated timeline.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time from seconds since simulation start.
    ///
    /// # Panics
    /// Panics if `secs` is NaN or negative: the simulated timeline starts at
    /// zero and events cannot be scheduled before it.
    pub fn from_secs(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid SimTime: {secs}");
        SimTime(secs)
    }

    /// Creates a time from whole hours, a convenience for experiment configs.
    pub fn from_hours(hours: f64) -> Self {
        Self::from_secs(hours * 3600.0)
    }

    /// Seconds since simulation start.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// An order-preserving 64-bit encoding of this time: for the
    /// non-negative finite values the constructor admits, IEEE-754 bit
    /// patterns compare (as unsigned integers) exactly like the values
    /// themselves. `-0.0` passes the `>= 0.0` constructor check but has a
    /// different bit pattern from `+0.0`, so it is normalised here.
    ///
    /// [`EventQueue`](crate::EventQueue) packs this into its comparison
    /// key; [`SimTime::from_ordered_bits`] is the exact inverse.
    #[inline]
    pub fn ordered_bits(self) -> u64 {
        if self.0 == 0.0 {
            0
        } else {
            self.0.to_bits()
        }
    }

    /// Reconstructs a time from [`SimTime::ordered_bits`]. Exact: the bits
    /// are the IEEE-754 representation, so no precision is lost.
    ///
    /// # Panics
    /// Panics if `bits` does not encode a valid (non-negative, finite) time.
    #[inline]
    pub fn from_ordered_bits(bits: u64) -> SimTime {
        SimTime::from_secs(f64::from_bits(bits))
    }

    /// Hours since simulation start.
    #[inline]
    pub fn as_hours(self) -> f64 {
        self.0 / 3600.0
    }

    /// Saturating subtraction: the duration from `earlier` to `self`,
    /// or zero if `earlier` is actually later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration((self.0 - earlier.0).max(0.0))
    }

    /// The later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two times.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0.0);

    /// Creates a duration from seconds.
    ///
    /// # Panics
    /// Panics if `secs` is NaN or negative.
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "invalid SimDuration: {secs}"
        );
        SimDuration(secs)
    }

    /// Creates a duration from milliseconds.
    pub fn from_millis(ms: f64) -> Self {
        Self::from_secs(ms / 1e3)
    }

    /// Creates a duration from minutes.
    pub fn from_mins(mins: f64) -> Self {
        Self::from_secs(mins * 60.0)
    }

    /// Creates a duration from hours.
    pub fn from_hours(hours: f64) -> Self {
        Self::from_secs(hours * 3600.0)
    }

    /// The span in seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// The span in milliseconds.
    #[inline]
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// True if this duration is exactly zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// The duration from `rhs` to `self`.
    ///
    /// # Panics
    /// Panics (in debug builds) if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when the ordering is not guaranteed.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(
            self.0 >= rhs.0,
            "SimTime subtraction underflow: {} - {}",
            self.0,
            rhs.0
        );
        SimDuration((self.0 - rhs.0).max(0.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    /// Saturating: never goes below zero.
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration((self.0 - rhs.0).max(0.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = (self.0 - rhs.0).max(0.0);
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs(self.0 * rhs)
    }
}

impl Div<f64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = f64;
    /// The ratio between two durations (dimensionless).
    fn div(self, rhs: SimDuration) -> f64 {
        self.0 / rhs.0
    }
}

impl Eq for SimTime {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Constructors reject NaN, so partial_cmp is total here.
        self.0.partial_cmp(&other.0).expect("SimTime is never NaN")
    }
}

impl Eq for SimDuration {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimDuration {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("SimDuration is never NaN")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1.0 {
            write!(f, "{:.3}ms", self.0 * 1e3)
        } else {
            write!(f, "{:.3}s", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = SimTime::from_secs(7200.0);
        assert_eq!(t.as_secs(), 7200.0);
        assert_eq!(t.as_hours(), 2.0);
        assert_eq!(SimTime::from_hours(2.0), t);
    }

    #[test]
    fn duration_units() {
        assert_eq!(SimDuration::from_millis(1500.0).as_secs(), 1.5);
        assert_eq!(SimDuration::from_mins(2.0).as_secs(), 120.0);
        assert_eq!(SimDuration::from_hours(1.0).as_secs(), 3600.0);
        assert_eq!(SimDuration::from_secs(0.25).as_millis(), 250.0);
    }

    #[test]
    fn arithmetic_roundtrip() {
        let t0 = SimTime::from_secs(10.0);
        let d = SimDuration::from_secs(5.0);
        let t1 = t0 + d;
        assert_eq!(t1.as_secs(), 15.0);
        assert_eq!(t1 - t0, d);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_secs(3.0);
        let b = SimTime::from_secs(8.0);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a).as_secs(), 5.0);
    }

    #[test]
    fn duration_sub_saturates() {
        let a = SimDuration::from_secs(1.0);
        let b = SimDuration::from_secs(4.0);
        assert_eq!(a - b, SimDuration::ZERO);
        let mut c = a;
        c -= b;
        assert_eq!(c, SimDuration::ZERO);
    }

    #[test]
    fn ordering_is_total_for_valid_values() {
        let mut v = [
            SimTime::from_secs(3.0),
            SimTime::ZERO,
            SimTime::from_secs(1.0),
        ];
        v.sort();
        assert_eq!(v[0], SimTime::ZERO);
        assert_eq!(v[2].as_secs(), 3.0);
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let da = SimDuration::from_secs(1.0);
        let db = SimDuration::from_secs(2.0);
        assert_eq!(da.max(db), db);
        assert_eq!(da.min(db), da);
    }

    #[test]
    #[should_panic(expected = "invalid SimTime")]
    fn rejects_negative_time() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    #[should_panic(expected = "invalid SimDuration")]
    fn rejects_nan_duration() {
        let _ = SimDuration::from_secs(f64::NAN);
    }

    #[test]
    fn scaling() {
        let d = SimDuration::from_secs(2.0);
        assert_eq!((d * 3.0).as_secs(), 6.0);
        assert_eq!((d / 4.0).as_secs(), 0.5);
        assert_eq!(d / SimDuration::from_secs(0.5), 4.0);
    }

    #[test]
    fn ordered_bits_roundtrip_and_order() {
        let times = [0.0, 1e-9, 0.5, 1.0, 3600.0, 1e12];
        for w in times.windows(2) {
            let a = SimTime::from_secs(w[0]);
            let b = SimTime::from_secs(w[1]);
            assert!(a.ordered_bits() < b.ordered_bits());
            assert_eq!(SimTime::from_ordered_bits(a.ordered_bits()), a);
            assert_eq!(SimTime::from_ordered_bits(b.ordered_bits()), b);
        }
    }

    #[test]
    fn ordered_bits_normalises_negative_zero() {
        // -0.0 satisfies the `>= 0.0` constructor check but has the sign bit
        // set; the encoding must map it to the same key as +0.0.
        let neg_zero = SimTime::from_secs(-0.0);
        assert_eq!(neg_zero.ordered_bits(), 0);
        assert_eq!(neg_zero.ordered_bits(), SimTime::ZERO.ordered_bits());
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_millis(2.0)), "2.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2.0)), "2.000s");
        assert_eq!(format!("{}", SimTime::from_secs(1.5)), "1.500000s");
    }
}
