//! A fast open-addressed map for sequential `u64` ids.
//!
//! The simulation hot path keys several maps by monotonically assigned ids
//! (request ids, parent ids, migration job ids). `std::collections::HashMap`
//! pays the full SipHash toll on every probe — sound against adversarial
//! keys, wasted on ids the simulator hands out itself. [`IdMap`] replaces it
//! with Fibonacci hashing (one multiply) over an open-addressed table with
//! linear probing and backward-shift deletion.
//!
//! Determinism: iteration visits slots in table order, which is a pure
//! function of the insertion/removal history — no per-process randomness,
//! unlike `HashMap`'s seeded iteration order. Callers that fold iteration
//! results into simulation state should still sort where slot order is not
//! obviously canonical.

/// The golden-ratio multiplier for Fibonacci hashing.
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

/// Minimum table size (power of two).
const MIN_CAP: usize = 8;

/// An open-addressed hash map from `u64` ids to `V`.
///
/// Designed for sequentially assigned keys: one multiply for the hash,
/// linear probing, and load factor capped at 7/8. Not a general-purpose
/// `HashMap` replacement — there is no protection against adversarial key
/// distributions.
///
/// # Examples
/// ```
/// use simkit::IdMap;
///
/// let mut m: IdMap<&str> = IdMap::new();
/// m.insert(7, "seven");
/// assert_eq!(m.get(7), Some(&"seven"));
/// assert_eq!(m.remove(7), Some("seven"));
/// assert!(m.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct IdMap<V> {
    slots: Vec<Option<(u64, V)>>,
    len: usize,
    mask: usize,
    shift: u32,
}

impl<V> IdMap<V> {
    /// Creates an empty map with the minimum table size.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty map that can hold `n` entries without growing.
    pub fn with_capacity(n: usize) -> Self {
        // Headroom so `n` live entries stay under the 7/8 load cap.
        let cap = (n + n / 4).next_power_of_two().max(MIN_CAP);
        IdMap {
            slots: std::iter::repeat_with(|| None).take(cap).collect(),
            len: 0,
            mask: cap - 1,
            shift: 64 - cap.trailing_zeros(),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn home(&self, key: u64) -> usize {
        (key.wrapping_mul(FIB) >> self.shift) as usize
    }

    /// Slot index holding `key`, if present.
    #[inline]
    fn find(&self, key: u64) -> Option<usize> {
        let mut i = self.home(key);
        loop {
            match &self.slots[i] {
                Some((k, _)) if *k == key => return Some(i),
                Some(_) => i = (i + 1) & self.mask,
                None => return None,
            }
        }
    }

    /// Inserts `value` under `key`, returning the previous value if any.
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        if (self.len + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
        let mut i = self.home(key);
        loop {
            match &self.slots[i] {
                Some((k, _)) if *k == key => {
                    let old = self.slots[i].replace((key, value));
                    return old.map(|(_, v)| v);
                }
                Some(_) => i = (i + 1) & self.mask,
                None => {
                    self.slots[i] = Some((key, value));
                    self.len += 1;
                    return None;
                }
            }
        }
    }

    /// A reference to the value under `key`, if present.
    pub fn get(&self, key: u64) -> Option<&V> {
        self.find(key)
            .and_then(|i| self.slots[i].as_ref().map(|(_, v)| v))
    }

    /// A mutable reference to the value under `key`, if present.
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        let i = self.find(key)?;
        self.slots[i].as_mut().map(|(_, v)| v)
    }

    /// True if `key` is present.
    pub fn contains_key(&self, key: u64) -> bool {
        self.find(key).is_some()
    }

    /// A mutable reference to the value under `key`, inserting
    /// `default()` first if absent.
    pub fn get_or_insert_with(&mut self, key: u64, default: impl FnOnce() -> V) -> &mut V {
        if self.find(key).is_none() {
            self.insert(key, default());
        }
        let i = self.find(key).expect("key just inserted");
        self.slots[i]
            .as_mut()
            .map(|(_, v)| v)
            .expect("slot is live")
    }

    /// Removes and returns the value under `key`, if present.
    ///
    /// Uses backward-shift deletion: trailing entries of the probe chain
    /// slide into the hole, so no tombstones accumulate and probe lengths
    /// stay short even under heavy insert/remove churn (the common pattern
    /// for in-flight request tracking).
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let mut hole = self.find(key)?;
        let (_, value) = self.slots[hole].take().expect("found slot is live");
        self.len -= 1;
        let mut j = (hole + 1) & self.mask;
        while let Some((k, _)) = &self.slots[j] {
            // Entry at j may move into the hole only if its home position is
            // at least as far (cyclically) behind j as the hole is.
            let dist_home = j.wrapping_sub(self.home(*k)) & self.mask;
            let dist_hole = j.wrapping_sub(hole) & self.mask;
            if dist_home >= dist_hole {
                self.slots[hole] = self.slots[j].take();
                hole = j;
            }
            j = (j + 1) & self.mask;
        }
        Some(value)
    }

    /// Removes all entries, keeping the table allocation.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s = None;
        }
        self.len = 0;
    }

    /// Iterates `(key, &value)` pairs in table (slot) order.
    ///
    /// Slot order is deterministic for a given insertion/removal history but
    /// is not sorted; sort the results when folding into simulation state.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref().map(|(k, v)| (*k, v)))
    }

    /// Iterates values in table (slot) order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.slots.iter().filter_map(|s| s.as_ref().map(|(_, v)| v))
    }

    /// Iterates values mutably in table (slot) order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> {
        self.slots
            .iter_mut()
            .filter_map(|s| s.as_mut().map(|(_, v)| v))
    }

    /// Doubles the table and rehashes every live entry.
    fn grow(&mut self) {
        let new_cap = self.slots.len() * 2;
        let old = std::mem::replace(
            &mut self.slots,
            std::iter::repeat_with(|| None).take(new_cap).collect(),
        );
        self.mask = new_cap - 1;
        self.shift = 64 - new_cap.trailing_zeros();
        for (k, v) in old.into_iter().flatten() {
            // Direct probe: all keys are distinct, no growth can recurse.
            let mut i = self.home(k);
            while self.slots[i].is_some() {
                i = (i + 1) & self.mask;
            }
            self.slots[i] = Some((k, v));
        }
    }
}

impl<V> Default for IdMap<V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m = IdMap::new();
        assert!(m.is_empty());
        for i in 0..100u64 {
            assert_eq!(m.insert(i, i * 10), None);
        }
        assert_eq!(m.len(), 100);
        for i in 0..100u64 {
            assert_eq!(m.get(i), Some(&(i * 10)));
            assert!(m.contains_key(i));
        }
        for i in 0..100u64 {
            assert_eq!(m.remove(i), Some(i * 10));
            assert_eq!(m.remove(i), None);
        }
        assert!(m.is_empty());
    }

    #[test]
    fn insert_replaces_and_returns_old() {
        let mut m = IdMap::new();
        assert_eq!(m.insert(5, "a"), None);
        assert_eq!(m.insert(5, "b"), Some("a"));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(5), Some(&"b"));
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut m = IdMap::new();
        m.insert(1, 10);
        *m.get_mut(1).unwrap() += 5;
        assert_eq!(m.get(1), Some(&15));
        assert_eq!(m.get_mut(2), None);
    }

    #[test]
    fn get_or_insert_with_inserts_once() {
        let mut m = IdMap::new();
        *m.get_or_insert_with(9, || 0) += 1;
        *m.get_or_insert_with(9, || 100) += 1;
        assert_eq!(m.get(9), Some(&2));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn churn_survives_backward_shift() {
        // Heavy insert/remove with the sequential-id pattern the simulator
        // uses; every remaining key must stay findable through deletions.
        let mut m = IdMap::new();
        let mut next = 0u64;
        let mut live = std::collections::BTreeSet::new();
        for round in 0..50 {
            for _ in 0..20 {
                m.insert(next, next * 3);
                live.insert(next);
                next += 1;
            }
            // Remove a deterministic scattering of live keys.
            let victims: Vec<u64> = live
                .iter()
                .copied()
                .filter(|k| k % 3 == round % 3)
                .collect();
            for k in victims {
                assert_eq!(m.remove(k), Some(k * 3));
                live.remove(&k);
            }
            assert_eq!(m.len(), live.len());
            for &k in &live {
                assert_eq!(m.get(k), Some(&(k * 3)), "key {k} lost after churn");
            }
        }
    }

    #[test]
    fn with_capacity_avoids_growth() {
        let mut m = IdMap::with_capacity(100);
        let cap = m.slots.len();
        for i in 0..100u64 {
            m.insert(i, ());
        }
        assert_eq!(m.slots.len(), cap, "pre-sized map must not grow");
    }

    #[test]
    fn iter_visits_all_entries() {
        let mut m = IdMap::new();
        for i in 0..20u64 {
            m.insert(i, i as i32);
        }
        let mut pairs: Vec<(u64, i32)> = m.iter().map(|(k, v)| (k, *v)).collect();
        pairs.sort_unstable();
        assert_eq!(pairs, (0..20).map(|i| (i as u64, i)).collect::<Vec<_>>());
        let sum: i32 = m.values().sum();
        assert_eq!(sum, (0..20).sum());
        for v in m.values_mut() {
            *v = -*v;
        }
        let sum: i32 = m.values().sum();
        assert_eq!(sum, -(0..20).sum::<i32>());
    }

    #[test]
    fn iteration_order_is_reproducible() {
        let build = || {
            let mut m = IdMap::new();
            for i in 0..64u64 {
                m.insert(i * 7, i);
            }
            for i in 0..16u64 {
                m.remove(i * 14);
            }
            m.iter().map(|(k, _)| k).collect::<Vec<_>>()
        };
        assert_eq!(build(), build(), "slot order must be deterministic");
    }

    #[test]
    fn clear_retains_capacity() {
        let mut m = IdMap::with_capacity(64);
        for i in 0..64u64 {
            m.insert(i, i);
        }
        let cap = m.slots.len();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.slots.len(), cap);
        m.insert(3, 3);
        assert_eq!(m.get(3), Some(&3));
    }

    #[test]
    fn sparse_high_keys_work() {
        // Migration request ids start at 1 << 63; the hash must spread them.
        let mut m = IdMap::new();
        let base = 1u64 << 63;
        for i in 0..200u64 {
            m.insert(base + i, i);
        }
        for i in 0..200u64 {
            assert_eq!(m.get(base + i), Some(&i));
        }
    }
}
