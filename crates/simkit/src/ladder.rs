//! The ladder backend of [`crate::EventQueue`]: a 128-rung radix bucket
//! structure over the packed `(time, seq)` `u128` keys.
//!
//! A discrete-event simulation pops keys in ascending order and pushes
//! almost exclusively *ahead* of the last pop (handlers schedule at
//! `now` or later, and the sequence counter rises monotonically). A
//! comparison-based heap pays `O(log n)` sifts of 32-byte entries on
//! every operation for a generality the workload never uses; this
//! structure exploits the monotone pattern instead:
//!
//! * Keys above the current *active* span live in rung `i` = the index
//!   of the highest bit in which they differ from `anchor`. Push is one
//!   XOR + leading-zeros + `Vec` push, and rungs order the queue
//!   coarsely: every key in a lower rung is smaller than every key in a
//!   higher rung (they agree with `anchor` above their rung bit, and a
//!   lower-rung key keeps `anchor`'s 0 where a higher-rung key has a 1).
//! * The imminent keys live in `active`, a small vector sorted
//!   descending, so pop is a branch plus `Vec::pop`. When it drains, the
//!   lowest occupied rung (one `trailing_zeros` of the occupancy bitmap)
//!   is *activated*: sorted once and swapped in whole. An oversized rung
//!   is first *spread* — the anchor advances to the rung's common prefix
//!   and its keys redistribute by their next differing bit. Every spread
//!   moves keys strictly down the ladder, so each key is touched at most
//!   128 times over its whole lifetime: near-O(1) amortized, with none
//!   of the per-pop relabeling a naive radix queue pays.
//! * A push that lands at or below the active span's ceiling rung must
//!   pop before some queued key, so it enters `active` by binary-search
//!   insertion — cheap because `active` holds one small rung's worth of
//!   keys.
//!
//! Keys at equal times differ only in their low (sequence) bits, so
//! same-time bursts spread into the bottom rungs and drain FIFO at
//! `Vec`-sort cost over tiny buckets.
//!
//! Pushes at or before `last` (the most recent non-late pop) — which the
//! simulation never issues but the public `EventQueue` API permits —
//! fall back to a small binary heap (`late`). Every late key is `<=`
//! some earlier value of `last` and therefore smaller than every queued
//! key, so the pop path only has to check `late` first; correctness for
//! arbitrary push orders is preserved at the cost of one branch on the
//! hot path.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Number of rungs: one per bit of the `u128` key.
const RUNGS: usize = 128;

/// A rung bigger than this is spread across lower rungs instead of being
/// sorted wholesale into `active`; it also caps how large `active` —
/// and therefore the cost of a sorted insert into it — usually gets.
const SPREAD_THRESHOLD: usize = 8;

/// A late entry (key pushed at or before `last`), min-ordered so the
/// fallback `BinaryHeap` pops the smallest key first.
struct Late<E> {
    key: u128,
    payload: E,
}

impl<E> PartialEq for Late<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Late<E> {}
impl<E> PartialOrd for Late<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Late<E> {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the smallest key pops first.
        other.key.cmp(&self.key)
    }
}

/// The radix-rung priority queue. Keys must be unique (the `EventQueue`
/// wrapper guarantees this by packing a fresh sequence number into the
/// low bits of every key).
pub(crate) struct Ladder<E> {
    /// `rungs[i]` holds the keys whose highest bit of difference from
    /// `anchor` is bit `i`. Unsorted within a rung. Invariant: every
    /// rung key is `>= anchor` and greater than every key in `active`.
    rungs: Box<[Vec<(u128, E)>; RUNGS]>,
    /// Bit `i` set ⟺ `rungs[i]` is non-empty.
    occupied: u128,
    /// Rung placement is relative to this. Starts at 0 and only advances
    /// (to a spread rung's common prefix); always at most the smallest
    /// key still queued in the rungs.
    anchor: u128,
    /// The most recent non-late pop: the late/laddered boundary.
    last: u128,
    /// The imminent keys, sorted descending so the minimum pops from the
    /// back. Everything in the rungs is larger than everything here.
    active: Vec<(u128, E)>,
    /// The rung `active` was taken from: a push whose rung is at or
    /// below this ceiling (or whose key is at or below `anchor`) belongs
    /// in `active`, not the rungs.
    active_rung: u32,
    /// Cached minimum over all *non-late* keys; `None` when `active` and
    /// the rungs are empty. Late keys are always smaller and tracked
    /// separately.
    min_key: Option<u128>,
    /// Fallback for keys pushed at or before `last`.
    late: BinaryHeap<Late<E>>,
    len: usize,
}

impl<E> Ladder<E> {
    pub(crate) fn new() -> Self {
        Ladder {
            rungs: Box::new(std::array::from_fn(|_| Vec::new())),
            occupied: 0,
            anchor: 0,
            last: 0,
            active: Vec::new(),
            active_rung: 0,
            min_key: None,
            late: BinaryHeap::new(),
            len: 0,
        }
    }

    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// The smallest key currently queued, if any.
    #[inline]
    pub(crate) fn peek_key(&self) -> Option<u128> {
        // Every late key is <= a past value of `last` and every other
        // key is > the current (monotone) `last`, so late wins outright.
        match self.late.peek() {
            Some(l) => Some(l.key),
            None => self.min_key,
        }
    }

    #[inline]
    pub(crate) fn push(&mut self, key: u128, payload: E) {
        self.len += 1;
        if key <= self.last {
            self.late.push(Late { key, payload });
            return;
        }
        match self.min_key {
            Some(m) if m <= key => {}
            _ => self.min_key = Some(key),
        }
        // `active` is empty only when the rungs hold everything (bulk
        // loading before the first pop, or after a full drain); then
        // every push belongs in a rung. Otherwise a key at or below the
        // active ceiling would pop before some active key, so it must
        // join `active` in sorted position.
        if !self.active.is_empty()
            && (key <= self.anchor || rung_of(key, self.anchor) as u32 <= self.active_rung)
        {
            let pos = self.active.partition_point(|&(k, _)| k > key);
            self.active.insert(pos, (key, payload));
            return;
        }
        let rung = rung_of(key, self.anchor);
        self.rungs[rung].push((key, payload));
        self.occupied |= 1u128 << rung;
    }

    pub(crate) fn pop(&mut self) -> Option<(u128, E)> {
        if let Some(l) = self.late.pop() {
            // `last` stays put: rung placement remains valid, and late
            // keys never re-enter the ladder.
            self.len -= 1;
            return Some((l.key, l.payload));
        }
        if self.active.is_empty() {
            if self.occupied == 0 {
                return None;
            }
            self.activate();
        }
        let (key, payload) = self.active.pop().expect("activation fills active");
        self.len -= 1;
        self.last = key;
        if self.active.is_empty() && self.occupied != 0 {
            self.activate();
        }
        self.min_key = self.active.last().map(|&(k, _)| k);
        Some((key, payload))
    }

    /// Refills `active` from the lowest occupied rung, spreading
    /// oversized rungs down the ladder first. Caller guarantees `active`
    /// is empty and at least one rung is occupied.
    fn activate(&mut self) {
        loop {
            let rung = self.occupied.trailing_zeros() as usize;
            self.occupied &= !(1u128 << rung);
            let mut bucket =
                std::mem::replace(&mut self.rungs[rung], std::mem::take(&mut self.active));
            if bucket.len() <= SPREAD_THRESHOLD || rung == 0 {
                // Sort descending: the minimum pops from the back.
                bucket.sort_unstable_by_key(|b| std::cmp::Reverse(b.0));
                self.active = bucket;
                self.active_rung = rung as u32;
                return;
            }
            // Spread: advance the anchor to this rung's common prefix
            // (all its keys agree above bit `rung` and have a 1 there)
            // and redistribute by the next differing bit. Rungs above
            // are untouched — they differ from the new anchor at the
            // same bit as before. A key equal to the new anchor is the
            // batch minimum; rung 0 keeps it ahead of everything else.
            let above = if rung == RUNGS - 1 {
                0
            } else {
                self.anchor >> (rung + 1) << (rung + 1)
            };
            self.anchor = above | (1u128 << rung);
            for (k, e) in bucket.drain(..) {
                let r = if k == self.anchor {
                    0
                } else {
                    rung_of(k, self.anchor)
                };
                debug_assert!(r < rung, "spread must move keys down");
                self.rungs[r].push((k, e));
                self.occupied |= 1u128 << r;
            }
            self.rungs[rung] = bucket; // hand the capacity back
        }
    }

    pub(crate) fn clear(&mut self) {
        for r in self.rungs.iter_mut() {
            r.clear();
        }
        self.occupied = 0;
        self.anchor = 0;
        self.last = 0;
        self.active.clear();
        self.active_rung = 0;
        self.min_key = None;
        self.late.clear();
        self.len = 0;
    }
}

/// The rung for `key` relative to `anchor`: the index of the highest
/// differing bit. Caller guarantees `key != anchor` (so they differ).
#[inline]
fn rung_of(key: u128, anchor: u128) -> usize {
    (127 - (key ^ anchor).leading_zeros()) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_ascending_regardless_of_push_order() {
        let mut l = Ladder::new();
        for &k in &[5u128, 1, 9, 3, 7, 2, 8, 4, 6] {
            l.push(k, k);
        }
        let mut out = Vec::new();
        while let Some((k, p)) = l.pop() {
            assert_eq!(k, p);
            out.push(k);
        }
        assert_eq!(out, (1..=9).collect::<Vec<u128>>());
        assert_eq!(l.len(), 0);
    }

    #[test]
    fn late_pushes_still_pop_in_order() {
        let mut l = Ladder::new();
        l.push(10, "ten");
        l.push(20, "twenty");
        assert_eq!(l.pop(), Some((10, "ten")));
        // 5 < last=10: takes the late path but must pop before 20.
        l.push(5, "five");
        assert_eq!(l.peek_key(), Some(5));
        assert_eq!(l.pop(), Some((5, "five")));
        assert_eq!(l.pop(), Some((20, "twenty")));
        assert_eq!(l.pop(), None);
    }

    #[test]
    fn wide_key_spread_exercises_high_rungs() {
        // Powers of two hit every rung; push high-to-low so activation
        // repeatedly finds a new lowest rung to swap in.
        let keys: Vec<u128> = (0..120).rev().map(|i| 1u128 << i).collect();
        let mut l = Ladder::new();
        for &k in &keys {
            l.push(k, k);
        }
        let mut out = Vec::new();
        while let Some((k, _)) = l.pop() {
            out.push(k);
        }
        let mut sorted = keys;
        sorted.sort_unstable();
        assert_eq!(out, sorted);
    }

    #[test]
    fn oversized_rung_spreads_and_still_drains_ascending() {
        // 64 consecutive keys land in one high rung (they share a long
        // prefix), forcing the spread path, then interleave with pushes
        // below and above the active span.
        let mut l = Ladder::new();
        for k in 0..64u128 {
            l.push((1 << 90) + k * 3, k);
        }
        assert_eq!(l.pop().map(|(k, _)| k), Some(1 << 90));
        // Below the active ceiling: must pop before the rest.
        l.push((1 << 90) + 1, 1000);
        // Far above: a plain rung push.
        l.push(1 << 100, 2000);
        let mut prev = 1 << 90;
        while let Some((k, _)) = l.pop() {
            assert!(k > prev, "pops must ascend: {prev} then {k}");
            prev = k;
        }
        assert_eq!(prev, 1 << 100);
        assert_eq!(l.len(), 0);
    }

    #[test]
    fn clear_resets_everything() {
        let mut l = Ladder::new();
        l.push(3, ());
        l.pop();
        l.push(1, ()); // late
        l.push(7, ());
        l.clear();
        assert_eq!(l.len(), 0);
        assert_eq!(l.peek_key(), None);
        assert_eq!(l.pop(), None);
        // After clear the anchor resets, so small keys ladder again.
        l.push(1, ());
        assert_eq!(l.pop(), Some((1, ())));
    }
}
