//! Property test: `IdMap` against a `std::collections::HashMap` oracle
//! under delete/reinsert churn.
//!
//! The open-addressed table uses backward-shift deletion (no tombstones),
//! and the delicate case is a removal whose probe chain wraps around the
//! end of the table: shifting the chain must follow the wrap without
//! stranding an entry past its probe position. A small key space over the
//! minimum table capacity keeps the load pinned near the 7/8 growth cap,
//! so every churn step exercises long, wrapping chains.

use simkit::{DetRng, IdMap};
use std::collections::HashMap;

/// One churn campaign: random insert/remove/get against both maps, with a
/// full-contents reconciliation sweep every `check_every` steps.
fn churn(seed: u64, key_space: u64, steps: usize, check_every: usize) {
    let mut rng = DetRng::new(seed, "idmap-oracle");
    let mut map: IdMap<u64> = IdMap::new();
    let mut oracle: HashMap<u64, u64> = HashMap::new();

    for step in 0..steps {
        let key = rng.below(key_space);
        match rng.below(10) {
            // Inserts win 5/10 so the table hovers near its load cap.
            0..=4 => {
                let value = rng.next_u64();
                assert_eq!(
                    map.insert(key, value),
                    oracle.insert(key, value),
                    "seed {seed} step {step}: insert({key}) disagreed"
                );
            }
            5..=7 => {
                assert_eq!(
                    map.remove(key),
                    oracle.remove(&key),
                    "seed {seed} step {step}: remove({key}) disagreed"
                );
            }
            8 => {
                assert_eq!(
                    map.get(key),
                    oracle.get(&key),
                    "seed {seed} step {step}: get({key}) disagreed"
                );
            }
            _ => {
                assert_eq!(
                    map.contains_key(key),
                    oracle.contains_key(&key),
                    "seed {seed} step {step}: contains({key}) disagreed"
                );
            }
        }
        assert_eq!(map.len(), oracle.len(), "seed {seed} step {step}: len");

        if step % check_every == check_every - 1 {
            // Full reconciliation both ways: every oracle entry must be
            // reachable through the probe chains (the property that
            // backward-shift deletion can silently break), and the
            // iterator must not surface ghosts.
            for (&k, &v) in &oracle {
                assert_eq!(
                    map.get(k),
                    Some(&v),
                    "seed {seed} step {step}: key {k} unreachable after churn"
                );
            }
            let mut seen: Vec<(u64, u64)> = map.iter().map(|(k, v)| (k, *v)).collect();
            seen.sort_unstable();
            let mut expect: Vec<(u64, u64)> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
            expect.sort_unstable();
            assert_eq!(seen, expect, "seed {seed} step {step}: contents diverge");
        }
    }
}

#[test]
fn tiny_table_wrapping_chains() {
    // Key space 12 over the minimum 8-slot table: the map rides the 7/8
    // load cap, so probe chains are long and routinely wrap the table
    // end — the exact regime where backward-shift deletion goes wrong.
    for seed in 0..8 {
        churn(seed, 12, 6_000, 64);
    }
}

#[test]
fn medium_table_grow_and_churn() {
    // A wider key space forces growth through several capacities while
    // deletions keep punching holes in the chains.
    for seed in 0..4 {
        churn(1000 + seed, 600, 20_000, 512);
    }
}

#[test]
fn delete_reinsert_same_keys_cycles() {
    // Deterministic worst-case cycle: fill, delete every other key,
    // reinsert with new values, repeat. Verifies remove+insert round
    // trips never lose or duplicate a key.
    let mut map: IdMap<u64> = IdMap::new();
    let mut oracle: HashMap<u64, u64> = HashMap::new();
    for round in 0..200u64 {
        for k in 0..14u64 {
            let v = round * 100 + k;
            assert_eq!(map.insert(k, v), oracle.insert(k, v), "round {round}");
        }
        for k in (0..14u64).filter(|k| (k + round) % 2 == 0) {
            assert_eq!(map.remove(k), oracle.remove(&k), "round {round}");
        }
        assert_eq!(map.len(), oracle.len(), "round {round}");
        for k in 0..14u64 {
            assert_eq!(map.get(k), oracle.get(&k), "round {round} key {k}");
        }
    }
}
