//! Regression lockdown: `SimTime::ordered_bits` must order exactly like
//! `Ord` on the full admitted domain — including the edges where IEEE-754
//! bit patterns are treacherous: the two zeros, subnormals, and values one
//! ULP apart. The packed event-queue key depends on this agreement; a
//! divergence would silently reorder same-instant events.

use simkit::SimTime;

/// The probe grid: every admitted edge case the constructor allows.
/// (`-0.0` passes the `>= 0.0` check and must normalise to `+0.0`.)
fn grid() -> Vec<SimTime> {
    let mut secs: Vec<f64> = vec![
        0.0,
        -0.0,
        f64::from_bits(1),       // smallest positive subnormal
        f64::from_bits(2),       // its neighbour
        f64::MIN_POSITIVE / 2.0, // mid-range subnormal
        f64::MIN_POSITIVE,       // smallest normal
        f64::EPSILON,
        1e-12,
        0.5,
        1.0 - f64::EPSILON / 2.0, // 1.0's lower neighbour
        1.0,
        1.0 + f64::EPSILON, // 1.0's upper neighbour
        2.0,
        3600.0,
        86_400.0,
        1e300,
        f64::MAX,
    ];
    // Adjacent bit patterns around a typical simulation timestamp.
    let t = 1234.567_f64;
    secs.extend([
        f64::from_bits(t.to_bits() - 1),
        t,
        f64::from_bits(t.to_bits() + 1),
    ]);
    secs.into_iter().map(SimTime::from_secs).collect()
}

#[test]
fn ordered_bits_agrees_with_ord_on_every_pair() {
    let grid = grid();
    for &a in &grid {
        for &b in &grid {
            assert_eq!(
                a.ordered_bits().cmp(&b.ordered_bits()),
                a.cmp(&b),
                "bit order diverges from value order for {a:?} vs {b:?}"
            );
        }
    }
}

#[test]
fn ordered_bits_round_trips_exactly() {
    for &t in &grid() {
        let back = SimTime::from_ordered_bits(t.ordered_bits());
        assert_eq!(back, t, "round-trip changed {t:?}");
        // And the re-encoding is stable (the -0.0 normalisation is
        // idempotent: once through, the bits are canonical).
        assert_eq!(back.ordered_bits(), t.ordered_bits());
    }
}

#[test]
fn negative_zero_normalises_to_canonical_zero() {
    let neg = SimTime::from_secs(-0.0);
    let pos = SimTime::from_secs(0.0);
    assert_eq!(neg.ordered_bits(), 0);
    assert_eq!(neg.ordered_bits(), pos.ordered_bits());
    assert_eq!(neg.cmp(&pos), std::cmp::Ordering::Equal);
}
