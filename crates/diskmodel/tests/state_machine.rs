//! Property tests on the disk state machine: arbitrary interleavings of
//! submits, speed requests, and event processing must never wedge the disk,
//! lose a request, or violate energy monotonicity.

use diskmodel::{Disk, DiskRequest, DiskSpec, IoKind, RequestClass, SpeedLevel, SpinTarget};
use simkit::{DetRng, SimTime};

#[derive(Debug, Clone)]
enum Op {
    /// Submit a request at a sector fraction, with given size.
    Submit {
        frac: f64,
        sectors: u32,
        write: bool,
    },
    /// Request a speed level.
    Speed(usize),
    /// Request standby.
    Standby,
    /// Let simulated time pass (process due events).
    Advance { secs: f64 },
}

/// One deterministic pseudo-random op (equal-weight choice of the four).
fn random_op(rng: &mut DetRng) -> Op {
    match rng.below(4) {
        0 => Op::Submit {
            frac: rng.uniform(0.0, 0.99),
            sectors: 1 + rng.below(255) as u32,
            write: rng.chance(0.5),
        },
        1 => Op::Speed(rng.below(6) as usize),
        2 => Op::Standby,
        _ => Op::Advance {
            secs: rng.uniform(0.01, 30.0),
        },
    }
}

/// A deterministic op sequence of length in `[1, max_len]` for `case`.
fn random_ops(case: u64, max_len: u64) -> Vec<Op> {
    let mut rng = DetRng::new(0xD15C ^ case, "disk-ops");
    let n = 1 + rng.below(max_len) as usize;
    (0..n).map(|_| random_op(&mut rng)).collect()
}

/// Runs a scripted scenario; returns (submitted, completed, final_energy).
fn run_ops(ops: &[Op]) -> (u64, u64, f64) {
    let spec = DiskSpec::ultrastar_multispeed(6);
    let mut disk = Disk::new(0, &spec, 99, spec.top_level());
    let cap = disk.service_model().geometry().total_sectors();
    let mut now = SimTime::ZERO;
    let mut submitted = 0u64;
    let mut completed = 0u64;
    let mut next_id = 0u64;
    let mut last_energy = 0.0f64;

    let drain_due = |disk: &mut Disk, upto: SimTime| {
        let mut done = 0u64;
        while let Some(t) = disk.next_event_time() {
            if t > upto {
                break;
            }
            done += disk.on_event(t).len() as u64;
        }
        done
    };

    for op in ops {
        match *op {
            Op::Submit {
                frac,
                sectors,
                write,
            } => {
                let sector = ((frac * cap as f64) as u64).min(cap - u64::from(sectors) - 1);
                disk.submit(
                    now,
                    DiskRequest {
                        id: next_id,
                        sector,
                        sectors,
                        kind: if write { IoKind::Write } else { IoKind::Read },
                        class: RequestClass::Foreground,
                        issue_time: now,
                    },
                );
                next_id += 1;
                submitted += 1;
            }
            Op::Speed(l) => disk.request_speed(now, SpinTarget::Level(SpeedLevel(l))),
            Op::Standby => disk.request_speed(now, SpinTarget::Standby),
            Op::Advance { secs } => {
                let target = now + simkit::SimDuration::from_secs(secs);
                completed += drain_due(&mut disk, target);
                now = target;
            }
        }
        // Energy must be monotone non-decreasing at every step.
        let e = disk.energy(now).total_joules();
        assert!(e >= last_energy - 1e-9, "energy went backwards");
        last_energy = e;
    }
    // Final drain: everything outstanding must complete in bounded time.
    let deadline = now + simkit::SimDuration::from_hours(2.0);
    while let Some(t) = disk.next_event_time() {
        assert!(t <= deadline, "disk wedged: event at {t} beyond deadline");
        completed += disk.on_event(t).len() as u64;
    }
    (submitted, completed, disk.energy(deadline).total_joules())
}

#[test]
fn no_request_is_ever_lost() {
    for case in 0..64 {
        let ops = random_ops(case, 59);
        let (submitted, completed, _) = run_ops(&ops);
        assert_eq!(
            submitted, completed,
            "case {case}: requests lost or duplicated"
        );
    }
}

#[test]
fn deterministic_under_replay() {
    for case in 0..64 {
        let ops = random_ops(1000 + case, 39);
        let a = run_ops(&ops);
        let b = run_ops(&ops);
        assert_eq!(a.0, b.0, "case {case}");
        assert_eq!(a.1, b.1, "case {case}");
        assert!(
            (a.2 - b.2).abs() < 1e-9,
            "case {case}: energy not reproducible"
        );
    }
}

#[test]
fn energy_scales_with_elapsed_time() {
    // A disk left alone consumes idle power exactly proportionally.
    let mut rng = DetRng::new(0xE4E, "energy-gap");
    for case in 0..32 {
        let gap = rng.uniform(1.0, 5000.0);
        let spec = DiskSpec::ultrastar_multispeed(6);
        let mut d1 = Disk::new(0, &spec, 1, spec.top_level());
        let mut d2 = Disk::new(0, &spec, 1, spec.top_level());
        let e1 = d1.energy(SimTime::from_secs(gap)).total_joules();
        let e2 = d2.energy(SimTime::from_secs(2.0 * gap)).total_joules();
        assert!(
            (e2 - 2.0 * e1).abs() < 1e-6 * e2.max(1.0),
            "case {case} gap {gap}"
        );
    }
}

#[test]
fn pathological_thrash_sequence_terminates() {
    // Alternate speed requests and submits with zero advance: everything
    // latches and must still drain afterwards.
    let mut ops = Vec::new();
    for i in 0..30 {
        ops.push(Op::Speed(i % 6));
        ops.push(Op::Submit {
            frac: (i as f64) / 31.0,
            sectors: 8,
            write: i % 2 == 0,
        });
        ops.push(Op::Standby);
    }
    let (submitted, completed, _) = run_ops(&ops);
    assert_eq!(submitted, completed);
}
