//! Logical-block to physical-location mapping over a zoned disk.
//!
//! The disk records more sectors per track on the outer (longer) cylinders
//! than the inner ones — "zoned bit recording". [`Geometry`] precomputes the
//! zone table from a [`DiskSpec`] and answers two questions the service-time
//! model needs:
//!
//! * which **cylinder** a logical sector lives on (seek distance), and
//! * how many **sectors per track** that cylinder has (transfer time and
//!   rotational position granularity).
//!
//! Sector numbering is cylinder-major: all sectors of cylinder 0 (across all
//! surfaces), then cylinder 1, and so on — the conventional serpentine
//! layout abstracted to what a coarse-grained simulator needs.

use crate::spec::DiskSpec;

/// Physical location of a logical sector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Location {
    /// Cylinder index (0 = outermost).
    pub cylinder: u32,
    /// Surface (head) index.
    pub surface: u32,
    /// Sector index within the track.
    pub sector: u32,
    /// Sectors per track at this cylinder.
    pub sectors_per_track: u32,
}

/// Precomputed zone table for sector→location mapping.
#[derive(Debug, Clone)]
pub struct Geometry {
    /// `(first_cylinder, first_sector, sectors_per_track)` per zone,
    /// plus a sentinel with the totals.
    zone_start_cyl: Vec<u32>,
    zone_start_sector: Vec<u64>,
    zone_spt: Vec<u32>,
    surfaces: u32,
    total_sectors: u64,
}

impl Geometry {
    /// Builds the zone table for `spec`.
    pub fn new(spec: &DiskSpec) -> Self {
        let mut zone_start_cyl = Vec::with_capacity(spec.zones as usize + 1);
        let mut zone_start_sector = Vec::with_capacity(spec.zones as usize + 1);
        let mut zone_spt = Vec::with_capacity(spec.zones as usize);
        let mut cyl = 0u32;
        let mut sector = 0u64;
        for z in 0..spec.zones {
            zone_start_cyl.push(cyl);
            zone_start_sector.push(sector);
            let spt = spec.sectors_per_track_in_zone(z);
            zone_spt.push(spt);
            let cyls = spec.cylinders_in_zone(z);
            cyl += cyls;
            sector += u64::from(cyls) * u64::from(spec.surfaces) * u64::from(spt);
        }
        zone_start_cyl.push(cyl);
        zone_start_sector.push(sector);
        Geometry {
            zone_start_cyl,
            zone_start_sector,
            zone_spt,
            surfaces: spec.surfaces,
            total_sectors: sector,
        }
    }

    /// Total sectors on the disk.
    pub fn total_sectors(&self) -> u64 {
        self.total_sectors
    }

    /// Maps a logical sector number to its physical location.
    ///
    /// # Panics
    /// Panics if `sector` is beyond the end of the disk.
    pub fn locate(&self, sector: u64) -> Location {
        assert!(
            sector < self.total_sectors,
            "sector {sector} beyond capacity {}",
            self.total_sectors
        );
        // Binary search for the zone containing this sector.
        let zi = match self.zone_start_sector.binary_search(&sector) {
            Ok(i) => i.min(self.zone_spt.len() - 1),
            Err(i) => i - 1,
        };
        let spt = self.zone_spt[zi];
        let within = sector - self.zone_start_sector[zi];
        let per_cylinder = u64::from(self.surfaces) * u64::from(spt);
        let cyl_off = (within / per_cylinder) as u32;
        let rem = within % per_cylinder;
        let surface = (rem / u64::from(spt)) as u32;
        let track_sector = (rem % u64::from(spt)) as u32;
        Location {
            cylinder: self.zone_start_cyl[zi] + cyl_off,
            surface,
            sector: track_sector,
            sectors_per_track: spt,
        }
    }

    /// Cylinder of a logical sector (the common fast path for seek
    /// distance computations).
    pub fn cylinder_of(&self, sector: u64) -> u32 {
        self.locate(sector).cylinder
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DiskSpec;

    fn geom() -> (DiskSpec, Geometry) {
        let spec = DiskSpec::ultrastar_multispeed(6);
        let g = Geometry::new(&spec);
        (spec, g)
    }

    #[test]
    fn totals_match_spec() {
        let (spec, g) = geom();
        assert_eq!(g.total_sectors(), spec.capacity_sectors());
    }

    #[test]
    fn first_and_last_sectors() {
        let (spec, g) = geom();
        let first = g.locate(0);
        assert_eq!(first.cylinder, 0);
        assert_eq!(first.surface, 0);
        assert_eq!(first.sector, 0);
        assert_eq!(first.sectors_per_track, spec.sectors_outer);

        let last = g.locate(g.total_sectors() - 1);
        assert_eq!(last.cylinder, spec.cylinders - 1);
        assert_eq!(last.surface, spec.surfaces - 1);
        assert_eq!(last.sector, last.sectors_per_track - 1);
        assert_eq!(last.sectors_per_track, spec.sectors_inner);
    }

    #[test]
    fn consecutive_sectors_advance_correctly() {
        let (spec, g) = geom();
        // Crossing a track boundary bumps the surface; crossing the last
        // surface bumps the cylinder.
        let spt = u64::from(spec.sectors_outer);
        let a = g.locate(spt - 1);
        let b = g.locate(spt);
        assert_eq!(a.surface, 0);
        assert_eq!(b.surface, 1);
        assert_eq!(b.sector, 0);

        let per_cyl = spt * u64::from(spec.surfaces);
        let c = g.locate(per_cyl - 1);
        let d = g.locate(per_cyl);
        assert_eq!(c.cylinder, 0);
        assert_eq!(d.cylinder, 1);
        assert_eq!(d.surface, 0);
        assert_eq!(d.sector, 0);
    }

    #[test]
    fn cylinders_monotone_in_sector_number() {
        let (_, g) = geom();
        let n = g.total_sectors();
        let mut prev = 0;
        for i in 0..1000 {
            let s = i * (n - 1) / 999;
            let c = g.cylinder_of(s);
            assert!(c >= prev, "cylinder decreased at sector {s}");
            prev = c;
        }
    }

    #[test]
    #[should_panic(expected = "beyond capacity")]
    fn out_of_range_panics() {
        let (_, g) = geom();
        g.locate(g.total_sectors());
    }

    #[test]
    fn locate_is_within_bounds() {
        let (spec, g) = geom();
        let mut rng = simkit::DetRng::new(0x6E0, "geom-bounds");
        for _ in 0..2_000 {
            let s = rng.below(g.total_sectors());
            let loc = g.locate(s);
            assert!(loc.cylinder < spec.cylinders, "sector {s}");
            assert!(loc.surface < spec.surfaces, "sector {s}");
            assert!(loc.sector < loc.sectors_per_track, "sector {s}");
            assert!(loc.sectors_per_track >= spec.sectors_inner, "sector {s}");
            assert!(loc.sectors_per_track <= spec.sectors_outer, "sector {s}");
        }
    }

    #[test]
    fn locate_is_injective_on_neighbours() {
        let (_, g) = geom();
        let mut rng = simkit::DetRng::new(0x6E0, "geom-inject");
        for _ in 0..2_000 {
            let s = rng.below(g.total_sectors() - 1);
            let a = g.locate(s);
            let b = g.locate(s + 1);
            assert_ne!(
                (a.cylinder, a.surface, a.sector),
                (b.cylinder, b.surface, b.sector),
                "sector {s}"
            );
        }
    }
}
