//! Disk power model.
//!
//! The dominant power sink of a spinning disk is the spindle motor working
//! against aerodynamic drag, which grows super-linearly with rotational
//! speed (≈ RPM^2.8). That non-linearity is the entire reason multi-speed
//! disks are interesting: halving the speed cuts spindle power by ~7×, while
//! only doubling rotational latency. [`PowerModel`] evaluates the
//! [`DiskSpec`] power parameters into per-state wattages and per-transition
//! (latency, energy) pairs.

use crate::spec::{DiskSpec, SpeedLevel};

/// Evaluated power figures for one disk spec.
#[derive(Debug, Clone)]
pub struct PowerModel {
    idle_w: Vec<f64>,
    seek_extra_w: f64,
    transfer_extra_w: f64,
    standby_w: f64,
    spinup_w: f64,
    spindown_w: f64,
    accel: f64,
    decel: f64,
    rpms: Vec<f64>,
}

/// A spindle-speed transition: how long it takes and what it costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transition {
    /// Wall-clock (simulated) duration of the ramp, seconds.
    pub duration_s: f64,
    /// Energy drawn over the ramp, joules.
    pub energy_j: f64,
}

impl PowerModel {
    /// Evaluates the power law of `spec` at every speed level.
    pub fn new(spec: &DiskSpec) -> Self {
        let rpm_max = spec.rpm(spec.top_level());
        let idle_w = spec
            .levels()
            .map(|l| {
                let ratio = spec.rpm(l) / rpm_max;
                spec.power_base_w
                    + (spec.power_idle_full_w - spec.power_base_w)
                        * ratio.powf(spec.spindle_exponent)
            })
            .collect();
        PowerModel {
            idle_w,
            seek_extra_w: spec.power_seek_extra_w,
            transfer_extra_w: spec.power_transfer_extra_w,
            standby_w: spec.power_standby_w,
            spinup_w: spec.power_spinup_w,
            spindown_w: spec.power_spindown_w,
            accel: spec.rpm_accel_per_s,
            decel: spec.rpm_decel_per_s,
            rpms: spec.levels().map(|l| spec.rpm(l)).collect(),
        }
    }

    /// Watts while spinning at `level` with no request in service.
    pub fn idle_w(&self, level: SpeedLevel) -> f64 {
        self.idle_w[level.index()]
    }

    /// Watts while seeking at `level`.
    pub fn seek_w(&self, level: SpeedLevel) -> f64 {
        self.idle_w(level) + self.seek_extra_w
    }

    /// Watts while rotating into position / transferring at `level`.
    pub fn transfer_w(&self, level: SpeedLevel) -> f64 {
        self.idle_w(level) + self.transfer_extra_w
    }

    /// Watts in standby (platters stopped).
    pub fn standby_w(&self) -> f64 {
        self.standby_w
    }

    /// The ramp between two speed levels.
    pub fn level_transition(&self, from: SpeedLevel, to: SpeedLevel) -> Transition {
        self.ramp(self.rpms[from.index()], self.rpms[to.index()])
    }

    /// Spin-up from standby (0 RPM) to `to`.
    pub fn spinup_from_standby(&self, to: SpeedLevel) -> Transition {
        self.ramp(0.0, self.rpms[to.index()])
    }

    /// Spin-down from `from` to standby (0 RPM).
    pub fn spindown_to_standby(&self, from: SpeedLevel) -> Transition {
        self.ramp(self.rpms[from.index()], 0.0)
    }

    fn ramp(&self, from_rpm: f64, to_rpm: f64) -> Transition {
        if (from_rpm - to_rpm).abs() < f64::EPSILON {
            return Transition {
                duration_s: 0.0,
                energy_j: 0.0,
            };
        }
        if to_rpm > from_rpm {
            let duration_s = (to_rpm - from_rpm) / self.accel;
            Transition {
                duration_s,
                energy_j: self.spinup_w * duration_s,
            }
        } else {
            let duration_s = (from_rpm - to_rpm) / self.decel;
            Transition {
                duration_s,
                energy_j: self.spindown_w * duration_s,
            }
        }
    }

    /// The break-even idle duration for dropping from `from` to `to` and
    /// coming back: the time the disk must stay at the lower power before
    /// the transition energy is paid back. Policies use this to decide if a
    /// down-transition is worthwhile; an interval shorter than this *costs*
    /// energy.
    ///
    /// Returns `None` if `to` does not actually draw less idle power.
    pub fn breakeven_idle_s(&self, from: SpeedLevel, to: SpeedLevel) -> Option<f64> {
        let p_hi = self.idle_w(from);
        let p_lo = self.idle_w(to);
        if p_lo >= p_hi {
            return None;
        }
        let down = self.level_transition(from, to);
        let up = self.level_transition(to, from);
        // Energy with transition: E_trans + p_lo·t (spent at low speed)
        // Energy without: p_hi·(t + down.duration + up.duration)
        // Break even at t where both are equal.
        let extra = down.energy_j + up.energy_j - p_hi * (down.duration_s + up.duration_s);
        Some((extra / (p_hi - p_lo)).max(0.0))
    }

    /// Break-even idle time for a full standby round trip from `from`.
    pub fn breakeven_standby_s(&self, from: SpeedLevel) -> f64 {
        let p_hi = self.idle_w(from);
        let p_lo = self.standby_w;
        let down = self.spindown_to_standby(from);
        let up = self.spinup_from_standby(from);
        let extra = down.energy_j + up.energy_j - p_hi * (down.duration_s + up.duration_s);
        (extra / (p_hi - p_lo)).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DiskSpec;

    fn pm() -> (DiskSpec, PowerModel) {
        let spec = DiskSpec::ultrastar_multispeed(6);
        let pm = PowerModel::new(&spec);
        (spec, pm)
    }

    #[test]
    fn idle_power_anchors() {
        let (spec, pm) = pm();
        // At full speed the model hits the datasheet idle figure exactly.
        assert!((pm.idle_w(spec.top_level()) - spec.power_idle_full_w).abs() < 1e-9);
        // The slowest level sits well above the electronics floor but far
        // below full-speed power (the whole point of multi-speed disks).
        let lo = pm.idle_w(spec.bottom_level());
        assert!(lo > spec.power_base_w);
        assert!(lo < 0.5 * spec.power_idle_full_w, "low-speed idle {lo} W");
    }

    #[test]
    fn idle_power_strictly_increasing_in_speed() {
        let (spec, pm) = pm();
        let watts: Vec<f64> = spec.levels().map(|l| pm.idle_w(l)).collect();
        assert!(watts.windows(2).all(|w| w[0] < w[1]), "{watts:?}");
    }

    #[test]
    fn activity_adds_power() {
        let (spec, pm) = pm();
        for l in spec.levels() {
            assert!(pm.seek_w(l) > pm.idle_w(l));
            assert!(pm.transfer_w(l) > pm.idle_w(l));
        }
    }

    #[test]
    fn full_spinup_matches_datasheet() {
        let (spec, pm) = pm();
        let t = pm.spinup_from_standby(spec.top_level());
        assert!(
            (t.duration_s - 10.9).abs() < 0.01,
            "spin-up {}",
            t.duration_s
        );
        assert!((t.energy_j - 26.0 * 10.9).abs() < 0.5);
    }

    #[test]
    fn adjacent_level_transition_cheaper_than_full() {
        let (spec, pm) = pm();
        let small = pm.level_transition(SpeedLevel(2), SpeedLevel(3));
        let full = pm.spinup_from_standby(spec.top_level());
        assert!(small.duration_s < full.duration_s);
        assert!(small.energy_j < full.energy_j);
    }

    #[test]
    fn no_op_transition_is_free() {
        let (_, pm) = pm();
        let t = pm.level_transition(SpeedLevel(3), SpeedLevel(3));
        assert_eq!(t.duration_s, 0.0);
        assert_eq!(t.energy_j, 0.0);
    }

    #[test]
    fn transitions_symmetric_in_duration_shape() {
        let (_, pm) = pm();
        let up = pm.level_transition(SpeedLevel(0), SpeedLevel(5));
        let down = pm.level_transition(SpeedLevel(5), SpeedLevel(0));
        assert!(up.duration_s > 0.0 && down.duration_s > 0.0);
        // Down is configured faster than up for this spec.
        assert!(down.duration_s < up.duration_s);
    }

    #[test]
    fn breakeven_is_minutes_not_hours_for_standby() {
        let (spec, pm) = pm();
        let be = pm.breakeven_standby_s(spec.top_level());
        // Classic result: breakeven for a 15k drive is on the order of tens
        // of seconds to a few minutes.
        assert!((5.0..600.0).contains(&be), "breakeven {be} s");
    }

    #[test]
    fn breakeven_level_none_when_not_cheaper() {
        let (_, pm) = pm();
        assert!(pm.breakeven_idle_s(SpeedLevel(0), SpeedLevel(5)).is_none());
        assert!(pm.breakeven_idle_s(SpeedLevel(3), SpeedLevel(3)).is_none());
        let be = pm.breakeven_idle_s(SpeedLevel(5), SpeedLevel(0)).unwrap();
        assert!(be >= 0.0);
    }

    #[test]
    fn slow_spin_beats_standby_power_only_with_transitions() {
        // Sanity on magnitudes: standby < slowest spin < fastest spin.
        let (spec, pm) = pm();
        assert!(pm.standby_w() < pm.idle_w(spec.bottom_level()));
        assert!(pm.idle_w(spec.bottom_level()) < pm.idle_w(spec.top_level()));
    }
}
