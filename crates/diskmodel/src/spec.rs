//! Disk specifications.
//!
//! A [`DiskSpec`] bundles every parameter of the simulated drive: zoned
//! geometry, the seek-time curve, rotational-speed levels, and the power
//! model. The preset [`DiskSpec::ultrastar_multispeed`] follows the
//! methodology of the multi-speed-disk papers (DRPM, Hibernator): take a
//! real high-end drive of the era — the IBM Ultrastar 36Z15, 15 000 RPM —
//! and extend it with hypothetical lower speed levels, scaling rotational
//! behaviour and spindle power with RPM. No multi-speed drive ever shipped,
//! so *every* evaluation of this design, including the original paper's,
//! runs against exactly this kind of analytically extended model.

/// Index of a rotational-speed level within [`DiskSpec::rpm_levels`]
/// (0 = slowest, `num_levels() - 1` = fastest).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpeedLevel(pub usize);

impl SpeedLevel {
    /// The numeric index of the level.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Complete description of a simulated multi-speed disk.
#[derive(Debug, Clone)]
pub struct DiskSpec {
    /// Human-readable model name, for report tables.
    pub name: String,

    // --- Geometry ---
    /// Number of cylinders (seek distance domain).
    pub cylinders: u32,
    /// Number of recording surfaces (heads).
    pub surfaces: u32,
    /// Sectors per track on the outermost zone.
    pub sectors_outer: u32,
    /// Sectors per track on the innermost zone.
    pub sectors_inner: u32,
    /// Number of zones of constant sectors-per-track.
    pub zones: u32,
    /// Bytes per sector.
    pub sector_bytes: u32,

    // --- Seek model: t(d) = a + b·√d for d ≤ knee, else c + e·d ---
    /// Track-to-track seek time (s); also the floor of the curve.
    pub seek_track_to_track_s: f64,
    /// Full-stroke seek time (s).
    pub seek_full_stroke_s: f64,
    /// Fraction of the stroke where the curve switches from √d to linear.
    pub seek_knee_fraction: f64,
    /// Additional settle time charged to writes (s).
    pub write_settle_s: f64,

    // --- Rotation ---
    /// Available rotational speeds in RPM, ascending. The last entry is the
    /// full (native) speed of the modelled drive.
    pub rpm_levels: Vec<u32>,

    // --- Power model ---
    /// Power of electronics + arm at rest, independent of RPM (W).
    pub power_base_w: f64,
    /// Spindle power at full speed while idling (W); scales with
    /// `(rpm/rpm_max)^spindle_exponent` at lower levels.
    pub power_idle_full_w: f64,
    /// Exponent of the spindle power law (aerodynamic drag ⇒ ~2.8).
    pub spindle_exponent: f64,
    /// Additional power while the arm seeks (W).
    pub power_seek_extra_w: f64,
    /// Additional power while transferring data (W).
    pub power_transfer_extra_w: f64,
    /// Power in standby (platters stopped) (W).
    pub power_standby_w: f64,
    /// Power drawn while accelerating the spindle (W).
    pub power_spinup_w: f64,
    /// Power drawn while decelerating the spindle (W).
    pub power_spindown_w: f64,
    /// Spindle acceleration (RPM per second).
    pub rpm_accel_per_s: f64,
    /// Spindle deceleration (RPM per second).
    pub rpm_decel_per_s: f64,
}

impl DiskSpec {
    /// The IBM Ultrastar 36Z15-derived multi-speed preset with `levels`
    /// evenly spaced speeds from 3 600 RPM to 15 000 RPM.
    ///
    /// Headline numbers (from the published datasheet / DRPM-era papers):
    /// 15 000 RPM, ~3.4 ms average read seek, 36+ GB, idle 10.2 W,
    /// standby 2.5 W, spin-up 26 W over 10.9 s.
    ///
    /// # Panics
    /// Panics if `levels < 1`.
    pub fn ultrastar_multispeed(levels: usize) -> DiskSpec {
        assert!(levels >= 1, "need at least one speed level");
        const RPM_MIN: f64 = 3600.0;
        const RPM_MAX: f64 = 15000.0;
        let rpm_levels: Vec<u32> = if levels == 1 {
            vec![RPM_MAX as u32]
        } else {
            (0..levels)
                .map(|i| {
                    let f = i as f64 / (levels - 1) as f64;
                    (RPM_MIN + f * (RPM_MAX - RPM_MIN)).round() as u32
                })
                .collect()
        };
        DiskSpec {
            name: format!("Ultrastar-36Z15-ms{levels}"),
            cylinders: 18_000,
            surfaces: 8,
            sectors_outer: 700,
            sectors_inner: 500,
            zones: 8,
            sector_bytes: 512,
            seek_track_to_track_s: 0.6e-3,
            seek_full_stroke_s: 6.5e-3,
            seek_knee_fraction: 1.0 / 3.0,
            write_settle_s: 0.5e-3,
            rpm_levels,
            power_base_w: 3.0,
            power_idle_full_w: 10.2,
            spindle_exponent: 2.8,
            power_seek_extra_w: 3.3,
            power_transfer_extra_w: 3.0,
            power_standby_w: 2.5,
            power_spinup_w: 26.0,
            power_spindown_w: 10.0,
            // Full spin-up (0 → 15 000 RPM) in 10.9 s, as per datasheet.
            rpm_accel_per_s: 15000.0 / 10.9,
            rpm_decel_per_s: 15000.0 / 8.0,
        }
    }

    /// The classic two-state drive: full speed or standby. This is the
    /// hardware TPM assumes.
    pub fn ultrastar_single_speed() -> DiskSpec {
        Self::ultrastar_multispeed(1)
    }

    /// A nearline/capacity-class preset: 7 200 RPM top speed, bigger and
    /// slower than the enterprise drive — the kind of spindle archival and
    /// backup tiers use. `levels` evenly spaced speeds from 3 600 RPM to
    /// 7 200 RPM. Lower absolute power, but also a much smaller spread
    /// between the top and bottom levels (1.9× vs the enterprise 3.3×), so
    /// multi-speed management has less room to play with.
    ///
    /// # Panics
    /// Panics if `levels < 1`.
    pub fn nearline_multispeed(levels: usize) -> DiskSpec {
        assert!(levels >= 1, "need at least one speed level");
        const RPM_MIN: f64 = 3600.0;
        const RPM_MAX: f64 = 7200.0;
        let rpm_levels: Vec<u32> = if levels == 1 {
            vec![RPM_MAX as u32]
        } else {
            (0..levels)
                .map(|i| {
                    let f = i as f64 / (levels - 1) as f64;
                    (RPM_MIN + f * (RPM_MAX - RPM_MIN)).round() as u32
                })
                .collect()
        };
        DiskSpec {
            name: format!("Nearline-7200-ms{levels}"),
            cylinders: 60_000,
            surfaces: 10,
            sectors_outer: 1400,
            sectors_inner: 900,
            zones: 16,
            sector_bytes: 512,
            seek_track_to_track_s: 1.0e-3,
            seek_full_stroke_s: 16.0e-3,
            seek_knee_fraction: 1.0 / 3.0,
            write_settle_s: 1.0e-3,
            rpm_levels,
            power_base_w: 2.5,
            power_idle_full_w: 8.0,
            spindle_exponent: 2.8,
            power_seek_extra_w: 3.0,
            power_transfer_extra_w: 2.5,
            power_standby_w: 1.5,
            power_spinup_w: 20.0,
            power_spindown_w: 8.0,
            rpm_accel_per_s: 7200.0 / 15.0, // big platters spin up slowly
            rpm_decel_per_s: 7200.0 / 10.0,
        }
    }

    /// Number of available speed levels.
    pub fn num_levels(&self) -> usize {
        self.rpm_levels.len()
    }

    /// The fastest level.
    pub fn top_level(&self) -> SpeedLevel {
        SpeedLevel(self.rpm_levels.len() - 1)
    }

    /// The slowest level.
    pub fn bottom_level(&self) -> SpeedLevel {
        SpeedLevel(0)
    }

    /// RPM of a level.
    ///
    /// # Panics
    /// Panics if the level is out of range.
    pub fn rpm(&self, level: SpeedLevel) -> f64 {
        self.rpm_levels[level.0] as f64
    }

    /// Iterates all levels, slowest first.
    pub fn levels(&self) -> impl Iterator<Item = SpeedLevel> {
        (0..self.rpm_levels.len()).map(SpeedLevel)
    }

    /// Seconds per revolution at `level`.
    pub fn revolution_time(&self, level: SpeedLevel) -> f64 {
        60.0 / self.rpm(level)
    }

    /// Total capacity in sectors.
    pub fn capacity_sectors(&self) -> u64 {
        let mut total = 0u64;
        for z in 0..self.zones {
            let cyls = self.cylinders_in_zone(z);
            total += u64::from(cyls)
                * u64::from(self.surfaces)
                * u64::from(self.sectors_per_track_in_zone(z));
        }
        total
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_sectors() * u64::from(self.sector_bytes)
    }

    /// Number of cylinders assigned to zone `z` (zones split the stroke
    /// evenly, with the remainder going to the outermost zones).
    pub fn cylinders_in_zone(&self, z: u32) -> u32 {
        let per = self.cylinders / self.zones;
        let extra = self.cylinders % self.zones;
        per + u32::from(z < extra)
    }

    /// Sectors per track in zone `z` (zone 0 is outermost/densest).
    pub fn sectors_per_track_in_zone(&self, z: u32) -> u32 {
        if self.zones == 1 {
            return self.sectors_outer;
        }
        let f = f64::from(z) / f64::from(self.zones - 1);
        let spt =
            f64::from(self.sectors_outer) - f * f64::from(self.sectors_outer - self.sectors_inner);
        spt.round() as u32
    }

    /// Validates internal consistency; returns a description of the first
    /// problem found, if any. Useful when specs come from config files.
    pub fn validate(&self) -> Result<(), String> {
        if self.rpm_levels.is_empty() {
            return Err("no speed levels".into());
        }
        if self.rpm_levels.windows(2).any(|w| w[0] >= w[1]) {
            return Err("rpm_levels must be strictly ascending".into());
        }
        if self.cylinders == 0 || self.surfaces == 0 || self.zones == 0 {
            return Err("geometry must be non-empty".into());
        }
        if self.zones > self.cylinders {
            return Err("more zones than cylinders".into());
        }
        if self.sectors_inner > self.sectors_outer {
            return Err("inner zone denser than outer".into());
        }
        if self.sectors_inner == 0 {
            return Err("sectors_inner must be positive".into());
        }
        if self.seek_track_to_track_s <= 0.0 || self.seek_full_stroke_s < self.seek_track_to_track_s
        {
            return Err("seek curve endpoints inconsistent".into());
        }
        if !(0.0..=1.0).contains(&self.seek_knee_fraction) {
            return Err("seek_knee_fraction outside [0,1]".into());
        }
        if self.rpm_accel_per_s <= 0.0 || self.rpm_decel_per_s <= 0.0 {
            return Err("spindle ramp rates must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_is_valid() {
        for levels in 1..=8 {
            let spec = DiskSpec::ultrastar_multispeed(levels);
            spec.validate().expect("preset should validate");
            assert_eq!(spec.num_levels(), levels);
        }
    }

    #[test]
    fn levels_span_range() {
        let spec = DiskSpec::ultrastar_multispeed(6);
        assert_eq!(spec.rpm(spec.bottom_level()), 3600.0);
        assert_eq!(spec.rpm(spec.top_level()), 15000.0);
        assert_eq!(spec.levels().count(), 6);
    }

    #[test]
    fn single_speed_is_full_speed() {
        let spec = DiskSpec::ultrastar_single_speed();
        assert_eq!(spec.num_levels(), 1);
        assert_eq!(spec.rpm(SpeedLevel(0)), 15000.0);
        assert_eq!(spec.top_level(), spec.bottom_level());
    }

    #[test]
    fn revolution_time_scales_inversely() {
        let spec = DiskSpec::ultrastar_multispeed(2);
        let slow = spec.revolution_time(SpeedLevel(0));
        let fast = spec.revolution_time(SpeedLevel(1));
        assert!((slow / fast - 15000.0 / 3600.0).abs() < 1e-9);
        assert!((fast - 0.004).abs() < 1e-9); // 15000 RPM = 4ms/rev
    }

    #[test]
    fn capacity_is_tens_of_gigabytes() {
        let spec = DiskSpec::ultrastar_multispeed(6);
        let gb = spec.capacity_bytes() as f64 / 1e9;
        assert!((30.0..60.0).contains(&gb), "capacity {gb} GB");
    }

    #[test]
    fn zone_cylinders_sum_to_total() {
        let spec = DiskSpec::ultrastar_multispeed(6);
        let total: u32 = (0..spec.zones).map(|z| spec.cylinders_in_zone(z)).sum();
        assert_eq!(total, spec.cylinders);
    }

    #[test]
    fn zone_density_monotone_decreasing() {
        let spec = DiskSpec::ultrastar_multispeed(6);
        let spts: Vec<u32> = (0..spec.zones)
            .map(|z| spec.sectors_per_track_in_zone(z))
            .collect();
        assert_eq!(spts[0], spec.sectors_outer);
        assert_eq!(*spts.last().unwrap(), spec.sectors_inner);
        assert!(spts.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn validate_catches_bad_specs() {
        let mut s = DiskSpec::ultrastar_multispeed(3);
        s.rpm_levels = vec![5000, 5000];
        assert!(s.validate().is_err());

        let mut s = DiskSpec::ultrastar_multispeed(3);
        s.sectors_inner = s.sectors_outer + 1;
        assert!(s.validate().is_err());

        let mut s = DiskSpec::ultrastar_multispeed(3);
        s.seek_full_stroke_s = 0.0;
        assert!(s.validate().is_err());

        let mut s = DiskSpec::ultrastar_multispeed(3);
        s.rpm_levels.clear();
        assert!(s.validate().is_err());
    }

    #[test]
    fn nearline_preset_is_valid_and_distinct() {
        for levels in 1..=4 {
            let spec = DiskSpec::nearline_multispeed(levels);
            spec.validate().expect("nearline preset should validate");
        }
        let near = DiskSpec::nearline_multispeed(3);
        let ent = DiskSpec::ultrastar_multispeed(3);
        // Bigger…
        assert!(near.capacity_bytes() > ent.capacity_bytes() * 5);
        // …slower at the top…
        assert!(near.rpm(near.top_level()) < ent.rpm(ent.top_level()));
        assert!(near.seek_full_stroke_s > ent.seek_full_stroke_s);
        // …and cheaper to keep spinning.
        assert!(near.power_idle_full_w < ent.power_idle_full_w);
    }

    #[test]
    fn clone_preserves_levels() {
        let spec = DiskSpec::ultrastar_multispeed(4);
        let back = spec.clone();
        assert_eq!(back.rpm_levels, spec.rpm_levels);
        assert_eq!(back.name, spec.name);
    }
}
